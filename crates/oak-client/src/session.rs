//! The canonical client ↔ Oak loop over the simulated world.

use std::collections::HashMap;

use oak_core::engine::{IngestOutcome, Oak};
use oak_core::Instant;
use oak_net::{ClientId, DeviceProfile, SimTime};
use oak_webgen::Corpus;

use crate::browser::{Browser, BrowserConfig, PageLoad};
use crate::universe::Universe;

/// Drives the full Oak interaction for any number of browsers against one
/// Oak-enabled site collection (paper Figs. 4 and 5):
///
/// 1. the browser requests a page; Oak serves it through
///    [`Oak::modify_page`] with the user's active rules applied,
/// 2. the browser loads the page's objects over the network model,
/// 3. the browser POSTs its performance report; Oak ingests it, possibly
///    (de)activating rules for that user.
///
/// `SimSession` owns the engine and one browser per (client, user) pair.
pub struct SimSession<'c> {
    universe: Universe<'c>,
    /// The Oak engine under test (public: experiments inspect logs and
    /// force rule states).
    pub oak: Oak,
    browsers: HashMap<String, Browser>,
    config: BrowserConfig,
    /// Per-vantage-point device classes; vantage points without an entry
    /// use whatever `config.device` says (`None` by default).
    devices: HashMap<ClientId, DeviceProfile>,
}

impl<'c> SimSession<'c> {
    /// Builds a session over `corpus` with the given engine.
    pub fn new(corpus: &'c Corpus, oak: Oak) -> SimSession<'c> {
        SimSession {
            universe: Universe::new(corpus),
            oak,
            browsers: HashMap::new(),
            config: BrowserConfig::default(),
            devices: HashMap::new(),
        }
    }

    /// Overrides the browser configuration for browsers created after
    /// this call.
    pub fn with_browser_config(mut self, config: BrowserConfig) -> SimSession<'c> {
        self.config = config;
        self
    }

    /// Pins a vantage point to a device class. Affects browsers created
    /// after this call (one browser exists per user; assign devices
    /// before the first visit).
    pub fn assign_device(&mut self, client: ClientId, device: DeviceProfile) {
        self.devices.insert(client, device);
    }

    /// The browser configuration a vantage point gets: the session
    /// default, with any pinned device class applied.
    fn config_for(&self, client: ClientId) -> BrowserConfig {
        let mut config = self.config;
        if let Some(device) = self.devices.get(&client) {
            config.device = Some(*device);
        }
        config
    }

    /// The shared corpus index.
    pub fn universe(&self) -> &Universe<'c> {
        &self.universe
    }

    /// The canonical Oak user id for a vantage point.
    pub fn user_for(client: ClientId) -> String {
        format!("u-{}", client.0)
    }

    /// One full interaction: serve (with rewriting), load, report, ingest.
    /// Returns the page load and what the report ingest did.
    pub fn visit(
        &mut self,
        site_index: usize,
        client: ClientId,
        t: SimTime,
    ) -> (PageLoad, IngestOutcome) {
        let corpus = self.universe.corpus();
        let site = &corpus.sites[site_index];
        let user = Self::user_for(client);
        let config = self.config_for(client);
        let browser = self
            .browsers
            .entry(user.clone())
            .or_insert_with(|| Browser::new(client, user.clone(), config));

        let now = Instant(t.as_millis());
        let modified = self
            .oak
            .modify_page(now, &user, &site.index_path, &site.html);
        let load = browser.load_page(
            &self.universe,
            site,
            &modified.html,
            &modified.cache_hints,
            t,
        );
        let outcome = self.oak.ingest_report(now, &load.report, &self.universe);
        (load, outcome)
    }

    /// As [`SimSession::visit`] but without Oak: serves the default page
    /// and ingests nothing. The "default" arm of every comparison figure.
    pub fn visit_default(&mut self, site_index: usize, client: ClientId, t: SimTime) -> PageLoad {
        let corpus = self.universe.corpus();
        let site = &corpus.sites[site_index];
        let user = format!("default-{}", client.0);
        let config = self.config_for(client);
        let browser = self
            .browsers
            .entry(user.clone())
            .or_insert_with(|| Browser::new(client, user, config));
        browser.load_page(&self.universe, site, &site.html, &[], t)
    }

    /// Direct access to a user's browser, if it exists yet.
    pub fn browser(&self, user: &str) -> Option<&Browser> {
        self.browsers.get(user)
    }
}
