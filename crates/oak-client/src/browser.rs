//! The simulated browser.

use std::collections::HashSet;

use oak_core::report::{DeviceClass, ObjectTiming, PerfReport};
use oak_html::Document;
use oak_net::{url_nonce, ClientId, DeviceProfile, SimTime};
use oak_webgen::{Inclusion, Site};

use crate::universe::{original_url, Universe};

/// How the client gathers the measurements it reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReportingMode {
    /// The paper's modified-browser client: every fetch is measured and
    /// reported (§5, Implementation).
    #[default]
    ModifiedBrowser,
    /// The JavaScript Resource Timing API alternative §6 discusses:
    /// timings for third parties are only visible when the provider
    /// opts in with `Timing-Allow-Origin`, so the report omits
    /// non-opted-in fetches — "rendering Oak less effective".
    ResourceTimingApi,
}

/// Browser knobs.
#[derive(Clone, Copy, Debug)]
pub struct BrowserConfig {
    /// Concurrent connections (browsers commonly use 6 per host; the
    /// scheduler applies it globally, which is what dominates makespan on
    /// multi-host pages).
    pub parallelism: usize,
    /// Whether the object cache is on. The paper's benchmark objects are
    /// served with no-cache headers (§5.2), so experiments default to off.
    pub caching: bool,
    /// How measurements reach the report.
    pub reporting: ReportingMode,
    /// HTTP keep-alive: after the first object from a host in a page
    /// load, further objects skip the TCP handshake. Off by default —
    /// the calibrated experiments price each object with a fresh
    /// connection, like the paper's uncached benchmark loads.
    pub keep_alive: bool,
    /// The hardware class this browser runs on. `None` (the default)
    /// is the testbed baseline: no device-side costs, and reports carry
    /// no cohort hint — timings and wire bytes are identical to the
    /// pre-device client. `Some(profile)` adds the profile's radio
    /// latency to every network fetch and its CPU cost to every script,
    /// and stamps reports with the matching [`DeviceClass`].
    pub device: Option<DeviceProfile>,
}

impl Default for BrowserConfig {
    fn default() -> BrowserConfig {
        BrowserConfig {
            parallelism: 6,
            caching: false,
            reporting: ReportingMode::ModifiedBrowser,
            keep_alive: false,
            device: None,
        }
    }
}

/// One object fetch during a page load.
#[derive(Clone, Debug, PartialEq)]
pub struct ObjectFetch {
    /// The fetched URL (post-rewrite if Oak modified the page).
    pub url: String,
    /// Hostname the URL named.
    pub domain: String,
    /// Resolved server IP (dotted quad).
    pub ip: String,
    /// Object size, bytes.
    pub bytes: u64,
    /// Download time, ms (zero for cache hits).
    pub time_ms: f64,
    /// True if served from the browser cache.
    pub from_cache: bool,
}

/// The result of one page load.
#[derive(Clone, Debug)]
pub struct PageLoad {
    /// Page load time: index fetch plus the parallel-fetch makespan, ms.
    pub plt_ms: f64,
    /// Time to fetch the index document alone, ms.
    pub index_ms: f64,
    /// Every object fetch, in discovery order.
    pub fetches: Vec<ObjectFetch>,
    /// The performance report the client POSTs back to Oak (network
    /// fetches only; cache hits involve no server and are not reported).
    pub report: PerfReport,
}

impl PageLoad {
    /// Total bytes transferred (excluding cache hits).
    pub fn bytes_transferred(&self) -> u64 {
        self.fetches
            .iter()
            .filter(|f| !f.from_cache)
            .map(|f| f.bytes)
            .sum()
    }

    /// Exports the load as a minimal HAR-shaped JSON document (the paper's
    /// client reuses "infrastructure designed for use with outputting HAR
    /// files", §5). Useful for eyeballing a load in standard HAR viewers;
    /// the report Oak actually consumes is [`PageLoad::report`].
    pub fn to_har_json(&self) -> String {
        let mut entries = oak_json::Value::array();
        for fetch in &self.fetches {
            let mut request = oak_json::Value::object();
            request.set("method", "GET");
            request.set("url", fetch.url.as_str());

            let mut response = oak_json::Value::object();
            response.set("status", if fetch.from_cache { 304u64 } else { 200 });
            response.set("bodySize", fetch.bytes);

            let mut entry = oak_json::Value::object();
            entry.set("request", request);
            entry.set("response", response);
            entry.set("time", fetch.time_ms);
            entry.set("serverIPAddress", fetch.ip.as_str());
            entry.set("_fromCache", fetch.from_cache);
            entries.push(entry);
        }

        let mut page = oak_json::Value::object();
        page.set("id", "page_1");
        page.set("title", self.report.page.as_str());
        let mut timings = oak_json::Value::object();
        timings.set("onLoad", self.plt_ms);
        page.set("pageTimings", timings);

        let mut creator = oak_json::Value::object();
        creator.set("name", "oak-client");
        creator.set("version", env!("CARGO_PKG_VERSION"));

        let mut log = oak_json::Value::object();
        log.set("version", "1.2");
        log.set("creator", creator);
        log.set("pages", oak_json::Value::Array(vec![page]));
        log.set("entries", entries);

        let mut doc = oak_json::Value::object();
        doc.set("log", log);
        doc.to_string()
    }
}

/// A stateful simulated browser for one (user, vantage point) pair.
///
/// State persisting across loads: the object cache and DNS cache.
/// The Oak user id is the value of the identifying cookie the server
/// assigned (§4); the experiments derive it from the client id.
#[derive(Clone, Debug)]
pub struct Browser {
    /// The vantage point this browser runs at.
    pub client: ClientId,
    /// The Oak user-cookie value.
    pub user: String,
    config: BrowserConfig,
    cache: HashSet<String>,
    dns_cache: HashSet<String>,
}

impl Browser {
    /// A fresh browser with empty caches.
    pub fn new(client: ClientId, user: impl Into<String>, config: BrowserConfig) -> Browser {
        Browser {
            client,
            user: user.into(),
            config,
            cache: HashSet::new(),
            dns_cache: HashSet::new(),
        }
    }

    /// Clears object and DNS caches.
    pub fn clear_caches(&mut self) {
        self.cache.clear();
        self.dns_cache.clear();
    }

    /// Number of cached objects.
    pub fn cached_objects(&self) -> usize {
        self.cache.len()
    }

    /// The cohort hint this browser stamps on its reports: the device
    /// profile's class, or `Unknown` (no hint, v1 wire frames) when no
    /// profile is configured.
    fn device_class(&self) -> DeviceClass {
        self.config
            .device
            .and_then(|p| DeviceClass::parse(p.label))
            .unwrap_or_default()
    }

    /// Loads `site`'s page as delivered in `html` (the Oak-modified
    /// markup; pass `site.html` for the default page), at simulated time
    /// `t`. `alternate_hints` is the parsed `X-Oak-Alternate` header —
    /// `(old_host, new_host)` pairs enabling cache reuse across a Type 2
    /// host swap.
    pub fn load_page(
        &mut self,
        universe: &Universe<'_>,
        site: &Site,
        html: &str,
        alternate_hints: &[(String, String)],
        t: SimTime,
    ) -> PageLoad {
        let world = &universe.corpus().world;

        // --- Index document -------------------------------------------
        let origin_ip = world.ip_of(site.origin);
        let index_fetch = world.fetch(t, self.client, origin_ip, html.len() as u64, 1);
        let mut index_ms = index_fetch.time_ms;
        if let Some(device) = self.config.device {
            // The index is markup, not script: the radio is the only
            // device cost on this fetch.
            index_ms += device.radio_rtt_ms;
        }

        // --- Discover subresources ------------------------------------
        let urls = self.discover(universe, site, html);

        // --- Fetch each one -------------------------------------------
        let mut fetches = Vec::with_capacity(urls.len());
        let mut report = PerfReport::new(self.user.clone(), site.index_path.clone())
            .with_device(self.device_class());
        let mut warm_hosts: HashSet<String> = HashSet::new();
        for url in urls {
            let fetch = self.fetch_object(universe, &url, alternate_hints, t, &mut warm_hosts);
            if let Some(f) = fetch {
                let visible = match self.config.reporting {
                    ReportingMode::ModifiedBrowser => true,
                    ReportingMode::ResourceTimingApi => universe.timing_allowed(&site.host, &f.url),
                };
                if !f.from_cache && visible {
                    report.push(ObjectTiming::new(
                        f.url.clone(),
                        f.ip.clone(),
                        f.bytes,
                        f.time_ms,
                    ));
                }
                fetches.push(f);
            }
        }

        // --- Page load time: bounded-parallel lane schedule ------------
        let mut lanes = vec![0.0f64; self.config.parallelism.max(1)];
        for f in &fetches {
            let lane = lanes
                .iter_mut()
                .min_by(|a, b| a.partial_cmp(b).expect("finite"))
                .expect("at least one lane");
            *lane += f.time_ms;
        }
        let makespan = lanes.into_iter().fold(0.0f64, f64::max);

        PageLoad {
            plt_ms: index_ms + makespan,
            index_ms,
            fetches,
            report,
        }
    }

    /// Everything the delivered markup causes this browser to request, in
    /// discovery order: direct references, inline-script constructions,
    /// loader-script fetch lists, then the page's dynamic objects.
    fn discover(&self, universe: &Universe<'_>, site: &Site, html: &str) -> Vec<String> {
        let doc = Document::parse(html);
        let mut urls: Vec<String> = Vec::new();

        // Relative references (root-relative `/x.css`, sibling `x.css`,
        // protocol-relative `//host/x`) resolve against `<base href>` when
        // present, otherwise the page URL.
        let page_url = oak_http::Url::parse(&site.index_url()).ok();
        let base = match (doc.base_href(), &page_url) {
            (Some(href), Some(page)) => page.join(href).ok().or_else(|| page_url.clone()),
            _ => page_url,
        };
        // A real browser picks ONE srcset candidate per element; we take
        // the first (the 1x default).
        let mut srcset_spans_taken: HashSet<usize> = HashSet::new();
        for r in doc.external_refs() {
            if r.kind == oak_html::RefKind::SrcSet && !srcset_spans_taken.insert(r.span.start) {
                continue;
            }
            let url = if r.url.contains("://") {
                r.url.clone()
            } else if let Some(base) = &base {
                base.join(&r.url)
                    .map(|u| u.to_string())
                    .unwrap_or_else(|_| r.url.clone())
            } else {
                r.url.clone()
            };
            // "Execute" loader scripts: fetch list is the body's
            // oakFetch("…") lines — recursively, because a fetched
            // script may itself be a loader (ad chains).
            expand_script(universe, url, &mut urls, 0);
        }
        for script in doc.inline_scripts() {
            if let Some(url) = interpret_inline_script(&script.text) {
                urls.push(url);
            }
        }
        // Dynamic objects: invisible in markup, still fetched. Oak cannot
        // rewrite them, so they load from their default servers always.
        for object in &site.objects {
            if object.inclusion == Inclusion::Dynamic {
                urls.push(object.url.clone());
            }
        }
        // Browsers fetch each URL once per page (memory cache): an image
        // referenced by both `srcset` and its `src` fallback, or included
        // twice, costs one request.
        let mut seen = HashSet::new();
        urls.retain(|u| seen.insert(u.clone()));
        urls
    }

    fn fetch_object(
        &mut self,
        universe: &Universe<'_>,
        url: &str,
        alternate_hints: &[(String, String)],
        t: SimTime,
        warm_hosts: &mut HashSet<String>,
    ) -> Option<ObjectFetch> {
        let world = &universe.corpus().world;
        let domain = host_of(url)?;
        let bytes = universe.bytes_for(url);

        // Cache probe: the URL itself, or — with an X-Oak-Alternate hint —
        // the same object under its pre-swap URL (§4.3).
        if self.config.caching
            && (self.cache.contains(url)
                || cache_aliases(url, alternate_hints)
                    .iter()
                    .any(|alias| self.cache.contains(alias)))
        {
            return Some(ObjectFetch {
                url: url.to_owned(),
                domain,
                ip: String::new(),
                bytes,
                time_ms: 0.0,
                from_cache: true,
            });
        }

        let ip = world.resolve(&domain, self.client)?;
        let warm = self.config.keep_alive && !warm_hosts.insert(domain.clone());
        let mut time_ms = world
            .fetch_opts(t, self.client, ip, bytes, url_nonce(url), warm)
            .time_ms;
        if !self.dns_cache.contains(&domain) {
            time_ms += world.dns_lookup_ms(t, self.client, url_nonce(&domain));
            self.dns_cache.insert(domain.clone());
        }
        if let Some(device) = self.config.device {
            // Device-side cost rides on the object's measured time: the
            // client's timer spans request-to-executed, so the report
            // attributes the device's own radio and CPU to whatever
            // server the object came from — exactly the confound the
            // cohort detector has to see to be worth testing.
            time_ms += device.object_cost_ms(bytes, is_script_url(url));
        }
        if self.config.caching {
            self.cache.insert(url.to_owned());
        }
        Some(ObjectFetch {
            url: url.to_owned(),
            domain,
            ip: ip.to_string(),
            bytes,
            time_ms,
            from_cache: false,
        })
    }
}

/// URLs under which this object may already be cached, given the Oak
/// alternate hints: map the URL's host back through each `new → old` pair,
/// and un-nest replica URLs.
fn cache_aliases(url: &str, hints: &[(String, String)]) -> Vec<String> {
    let mut aliases = Vec::new();
    if let Some(orig) = original_url(url) {
        aliases.push(orig);
    }
    if let Some(host) = host_of(url) {
        for (old, new) in hints {
            if *new == host {
                aliases.push(url.replacen(new.as_str(), old.as_str(), 1));
            }
        }
    }
    aliases
}

/// The hostname of an absolute URL.
fn host_of(url: &str) -> Option<String> {
    let rest = url.split_once("://")?.1;
    let host = rest.split(['/', '?', '#']).next()?;
    let host = host.split(':').next()?;
    (!host.is_empty()).then(|| host.to_ascii_lowercase())
}

/// Deepest loader-in-loader nesting the browser will execute. Real ad
/// chains run a handful of hops; the cap is a cycle guard, not a tuning
/// knob.
const MAX_SCRIPT_EXPANSION_DEPTH: usize = 16;

/// "Executes" a discovered script URL: expands its loader body's fetch
/// list first (each fetched URL may itself be a loader — ad chains nest),
/// then records the URL itself. Non-loader URLs just get recorded, so on
/// chain-free pages the discovery order is exactly the flat expansion.
fn expand_script(universe: &Universe<'_>, url: String, urls: &mut Vec<String>, depth: usize) {
    if depth < MAX_SCRIPT_EXPANSION_DEPTH {
        if let Some(body) = universe.script_body(&url) {
            for fetched in parse_loader_body(&body) {
                expand_script(universe, fetched, urls, depth + 1);
            }
        }
    }
    urls.push(url);
}

/// Whether a URL names script — the objects whose device-side CPU cost a
/// [`DeviceProfile`] prices. Query and fragment are ignored.
fn is_script_url(url: &str) -> bool {
    let path = url.split(['?', '#']).next().unwrap_or(url);
    path.ends_with(".js")
}

/// Extracts the fetch list from a loader-script body: every
/// `oakFetch("URL")` line.
fn parse_loader_body(body: &str) -> Vec<String> {
    let mut urls = Vec::new();
    let mut rest = body;
    while let Some(found) = rest.find("oakFetch(\"") {
        let after = &rest[found + "oakFetch(\"".len()..];
        if let Some(end) = after.find('"') {
            urls.push(after[..end].to_owned());
            rest = &after[end..];
        } else {
            break;
        }
    }
    urls
}

/// Interprets the corpus's inline-script idiom:
/// `var h = "<host-or-host/prefix>"; var p = "<path>"` →
/// `http://<h><p>`. Returns `None` when the script does not follow the
/// idiom (a real page's arbitrary script — nothing to fetch).
fn interpret_inline_script(text: &str) -> Option<String> {
    let h = extract_var(text, "h")?;
    let p = extract_var(text, "p")?;
    Some(format!("http://{h}{p}"))
}

fn extract_var(text: &str, name: &str) -> Option<String> {
    let needle = format!("var {name} = \"");
    let start = text.find(&needle)? + needle.len();
    let end = text[start..].find('"')? + start;
    Some(text[start..end].to_owned())
}
