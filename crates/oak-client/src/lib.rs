//! The Oak client: a simulated, instrumented browser.
//!
//! The paper's client is "modified versions of the WebKit browser and
//! PhantomJS which collect and send page reports" (§5). A real browser
//! cannot run inside a deterministic experiment, so this crate implements
//! the behaviours of that client that Oak's server logic actually touches:
//!
//! - **Subresource discovery** ([`Browser::load_page`]): parse the
//!   delivered HTML, fetch `src`/`href` references, *execute* the corpus's
//!   inline-script idiom (`var h = "…"; var p = "…"`) and external loader
//!   scripts (`oakFetch("…")` lines), and fetch the page's dynamic objects
//!   whose servers are invisible in the markup.
//! - **Timing** : every fetch is priced by the `oak-net` model; a
//!   browser-like lane scheduler with bounded parallelism turns per-object
//!   times into a page load time.
//! - **Reporting**: after the load, the browser assembles the compact
//!   [`PerfReport`](oak_core::report::PerfReport) Oak ingests — URL,
//!   resolved IP, bytes, download time per object.
//! - **Caching** ([`BrowserConfig::caching`]): an object cache that honors
//!   Oak's `X-Oak-Alternate` hint, so a Type 2 host swap does not force a
//!   re-download (§4.3).
//!
//! The crate also hosts [`SimSession`], the ready-made client↔Oak loop
//! used by examples and the experiment harness, and the
//! [`rules`] helpers that build the URL-prefix Type 2 rules the
//! evaluation's replicated-site experiments use (§5.3).

mod browser;
mod encode;
pub mod rules;
mod session;
mod universe;

pub use browser::{Browser, BrowserConfig, ObjectFetch, PageLoad, ReportingMode};
pub use encode::ReportEncoding;
pub use session::SimSession;
pub use universe::{original_url, replica_url, Universe};

#[cfg(test)]
mod tests;
