//! Report emission: choosing and producing a wire encoding.
//!
//! The browser assembles a [`PerfReport`]; this module turns it into the
//! bytes + `Content-Type` pair a client POSTs to `/oak/report`. Clients
//! default to [`ReportEncoding::Binary`] — the length-prefixed format is
//! both smaller on the wire and cheaper for the server to admit — while
//! [`ReportEncoding::Json`] remains available for debugging and for
//! clients without the binary encoder.

use oak_core::report::PerfReport;
use oak_core::wire::OAK_REPORT_CONTENT_TYPE;

/// A wire encoding for outgoing performance reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReportEncoding {
    /// `application/json` — the original human-readable format.
    Json,
    /// `application/x-oak-report` — the length-prefixed binary format
    /// (DESIGN.md §12). The default.
    #[default]
    Binary,
}

impl ReportEncoding {
    /// The `Content-Type` header value to send with [`encode`]d bytes.
    ///
    /// [`encode`]: ReportEncoding::encode
    pub fn content_type(&self) -> &'static str {
        match self {
            ReportEncoding::Json => "application/json",
            ReportEncoding::Binary => OAK_REPORT_CONTENT_TYPE,
        }
    }

    /// Serializes `report` in this encoding.
    pub fn encode(&self, report: &PerfReport) -> Vec<u8> {
        match self {
            ReportEncoding::Json => report.to_json().into_bytes(),
            ReportEncoding::Binary => report.to_binary(),
        }
    }
}
