//! An indexed view of a corpus for fast per-fetch lookups.

use std::collections::HashMap;

use oak_core::matching::ScriptFetcher;
use oak_webgen::Corpus;

/// The replica URL scheme the replicated-site experiments use (§5.3):
/// every external object is mirrored at
/// `http://<replica_host>/<original_host>/<original_path>`, nesting the
/// original host as the first path segment so mirrored paths never collide
/// across providers.
pub fn replica_url(replica_host: &str, original_url: &str) -> String {
    match original_url.split_once("://") {
        Some((scheme, rest)) => format!("{scheme}://{replica_host}/{rest}"),
        None => format!("http://{replica_host}/{original_url}"),
    }
}

/// Inverts [`replica_url`]: given `http://replica/<host>/<path>`, returns
/// `http://<host>/<path>` when the first path segment looks like a host
/// (contains a dot).
pub fn original_url(url: &str) -> Option<String> {
    let (scheme, rest) = url.split_once("://")?;
    let (_replica_host, nested) = rest.split_once('/')?;
    // The nested portion must itself be host-plus-path: a dotted first
    // segment followed by at least one more segment. A plain object path
    // like `obj.js` is not a nested URL.
    let (nested_host, _path) = nested.split_once('/')?;
    nested_host
        .contains('.')
        .then(|| format!("{scheme}://{nested}"))
}

/// Pre-built indexes over a [`Corpus`]: URL → byte size and script
/// bodies. One `Universe` serves any number of browsers.
pub struct Universe<'c> {
    corpus: &'c Corpus,
    bytes_by_url: HashMap<String, u64>,
}

impl<'c> Universe<'c> {
    /// Indexes every object of every site.
    pub fn new(corpus: &'c Corpus) -> Universe<'c> {
        let mut bytes_by_url = HashMap::new();
        for site in &corpus.sites {
            for object in &site.objects {
                bytes_by_url.insert(object.url.clone(), object.bytes);
            }
        }
        Universe {
            corpus,
            bytes_by_url,
        }
    }

    /// The corpus this universe indexes.
    pub fn corpus(&self) -> &'c Corpus {
        self.corpus
    }

    /// Size of the object at `url`, resolving replica-nested URLs to
    /// their originals. Unknown URLs get a small default (a real server
    /// would return an error page), so a rewrite pointing at a stale path
    /// degrades instead of crashing the experiment.
    pub fn bytes_for(&self, url: &str) -> u64 {
        if let Some(&b) = self.bytes_by_url.get(url) {
            return b;
        }
        if let Some(orig) = original_url(url) {
            if let Some(&b) = self.bytes_by_url.get(&orig) {
                return b;
            }
        }
        512
    }

    /// Body of the external script at `url`, resolving replica-nested
    /// URLs (a mirrored loader serves the same body).
    pub fn script_body(&self, url: &str) -> Option<String> {
        self.corpus
            .script_body(url)
            .or_else(|| original_url(url).and_then(|orig| self.corpus.script_body(&orig)))
    }

    /// Whether the Resource Timing API would expose timing for `url` to
    /// a page served by `site_host` (§6, Alternative Mechanisms):
    /// same-origin resources always, third parties only when the
    /// provider sends `Timing-Allow-Origin`. Replica mirrors are
    /// experiment-owned and always opt in.
    pub fn timing_allowed(&self, site_host: &str, url: &str) -> bool {
        let Some(host) = url
            .split_once("://")
            .and_then(|(_, rest)| rest.split(['/', '?', '#']).next())
            .map(|h| h.split(':').next().unwrap_or(h).to_ascii_lowercase())
        else {
            return false;
        };
        if host == site_host || host.ends_with(&format!(".{site_host}")) {
            return true;
        }
        if host.starts_with("replica-") && host.ends_with(".example") {
            return true;
        }
        self.corpus
            .provider_by_domain(&host)
            .map(|p| p.timing_allow_origin)
            .unwrap_or(false)
    }
}

impl ScriptFetcher for Universe<'_> {
    /// Lets the Oak engine's external-JavaScript matching fetch loader
    /// bodies from the corpus.
    fn fetch_script(&self, url: &str) -> Option<String> {
        self.script_body(url)
    }
}
