//! Rule-generation helpers for the replicated-site experiments.
//!
//! §5.3 ("Generating Rules"): "we consider every external domain
//! contacted during a normal load of each site. We then generate a type 2
//! replacement rule for every observed domain." The alternates are the
//! three regional replica servers holding copies of every external object.
//!
//! The rules built here use a *URL-prefix* scheme: the default text is the
//! shortest block that pins the provider in the page —
//!
//! - `http://<domain>/` for providers referenced by `src` attributes and
//!   loader tags (one rule host-swaps every object of the domain, and the
//!   replica's nested-path layout keeps the object path intact), and
//! - `"<domain>"` (with quotes) for providers reached through the inline
//!   `var h = "<domain>"` idiom, rewritten to `"<replica>/<domain>"` so
//!   the constructed URL lands on the replica's nested path.
//!
//! Domains visible only inside external JavaScript get the prefix rule
//! too: matching can *activate* it through the expanded surface (§4.2.2),
//! but since the text never appears in the page the rewrite is inert —
//! exactly the paper's limitation for dynamically-chosen servers.

use oak_core::rule::Rule;
use oak_net::Region;
use oak_webgen::{Corpus, Inclusion, Site};

/// The replica hostname closest to `region` (§5.3 directs each client to
/// its closest alternative).
pub fn closest_replica(region: Region) -> &'static str {
    match region {
        Region::NorthAmerica | Region::SouthAmerica => "replica-na.example",
        Region::Europe => "replica-eu.example",
        Region::Asia | Region::Oceania => "replica-as.example",
    }
}

/// The Type 2 prefix rule for a `src`-referenced domain.
pub fn prefix_rule(domain: &str, replica_host: &str) -> Rule {
    Rule::replace_identical(
        format!("http://{domain}/"),
        [format!("http://{replica_host}/{domain}/")],
    )
}

/// The Type 2 rule for an inline-script (`var h = "…"`) domain.
pub fn inline_rule(domain: &str, replica_host: &str) -> Rule {
    Rule::replace_identical(
        format!("\"{domain}\""),
        [format!("\"{replica_host}/{domain}\"")],
    )
}

/// Builds one Type 2 rule per external domain of `site`, choosing the
/// form that matches how the site references the domain. Returns
/// `(domain, rule)` pairs in domain order.
pub fn rules_for_site(site: &Site, replica_host: &str) -> Vec<(String, Rule)> {
    site.external_domains()
        .into_iter()
        .map(|domain| {
            let inline = site
                .objects
                .iter()
                .any(|o| o.domain == domain && matches!(o.inclusion, Inclusion::InlineScript));
            let rule = if inline {
                inline_rule(domain, replica_host)
            } else {
                prefix_rule(domain, replica_host)
            };
            (domain.to_owned(), rule)
        })
        .collect()
}

/// As [`rules_for_site`], with the replica chosen nearest to a client
/// region.
pub fn rules_for_site_near(
    corpus: &Corpus,
    site: &Site,
    client_region: Region,
) -> Vec<(String, Rule)> {
    let _ = corpus; // reserved: future per-corpus replica layouts
    rules_for_site(site, closest_replica(client_region))
}

/// As [`rules_for_site`], but every rule carries one alternative per
/// replica host, in the given order. With the engine's §4.2.4 linear
/// walk, a user whose first replica under-performs is advanced to the
/// next — the engine discovers each user's viable mirror on its own.
pub fn rules_for_site_multi(site: &Site, replica_hosts: &[&str]) -> Vec<(String, Rule)> {
    site.external_domains()
        .into_iter()
        .map(|domain| {
            let inline = site
                .objects
                .iter()
                .any(|o| o.domain == domain && matches!(o.inclusion, Inclusion::InlineScript));
            let rule = if inline {
                Rule::replace_identical(
                    format!("\"{domain}\""),
                    replica_hosts
                        .iter()
                        .map(|replica| format!("\"{replica}/{domain}\"")),
                )
            } else {
                Rule::replace_identical(
                    format!("http://{domain}/"),
                    replica_hosts
                        .iter()
                        .map(|replica| format!("http://{replica}/{domain}/")),
                )
            };
            (domain.to_owned(), rule)
        })
        .collect()
}
