//! Tests for the simulated browser, rule helpers, and session loop.

use oak_core::engine::{Oak, OakConfig};
use oak_net::{Region, SimTime};
use oak_webgen::{Corpus, CorpusConfig, Inclusion};

use crate::rules::{closest_replica, inline_rule, prefix_rule, rules_for_site};
use crate::universe::{original_url, replica_url, Universe};
use crate::{Browser, BrowserConfig, SimSession};

fn corpus() -> Corpus {
    Corpus::generate(&CorpusConfig {
        sites: 12,
        seed: 99,
        providers: 40,
        ..CorpusConfig::default()
    })
}

#[test]
fn replica_url_roundtrip() {
    let original = "http://stats.adnet3.example/obj7.js";
    let mirrored = replica_url("replica-eu.example", original);
    assert_eq!(
        mirrored,
        "http://replica-eu.example/stats.adnet3.example/obj7.js"
    );
    assert_eq!(original_url(&mirrored).as_deref(), Some(original));
}

#[test]
fn original_url_rejects_non_nested() {
    assert_eq!(original_url("http://plain.example/obj.js"), None);
    assert_eq!(original_url("not a url"), None);
}

#[test]
fn universe_resolves_bytes_including_replicas() {
    let corpus = corpus();
    let universe = Universe::new(&corpus);
    let object = corpus.sites[0]
        .objects
        .iter()
        .find(|o| o.external)
        .expect("external object");
    assert_eq!(universe.bytes_for(&object.url), object.bytes);
    let mirrored = replica_url("replica-na.example", &object.url);
    assert_eq!(universe.bytes_for(&mirrored), object.bytes);
    assert_eq!(universe.bytes_for("http://unknown.example/x"), 512);
}

#[test]
fn browser_fetches_everything_the_page_causes() {
    let corpus = corpus();
    let universe = Universe::new(&corpus);
    let site = &corpus.sites[0];
    let mut browser = Browser::new(corpus.clients[0], "u-0", BrowserConfig::default());
    let load = browser.load_page(&universe, site, &site.html, &[], SimTime::from_hours(1));

    // Every object of the site is fetched — including dynamic ones and
    // loader-script children.
    for object in &site.objects {
        assert!(
            load.fetches.iter().any(|f| f.url == object.url),
            "object {} ({:?}) was not fetched",
            object.url,
            object.inclusion
        );
    }
    assert!(load.plt_ms > load.index_ms);
    assert_eq!(load.report.entries.len(), load.fetches.len());
    assert!(load.bytes_transferred() > 0);
}

#[test]
fn browser_executes_ad_chains_to_the_end() {
    let corpus = Corpus::generate(&CorpusConfig {
        sites: 12,
        seed: 99,
        providers: 40,
        ad_heavy_fraction: 1.0,
        ad_chain_depth: 3,
        ..CorpusConfig::default()
    });
    let universe = Universe::new(&corpus);
    let site = corpus
        .sites
        .iter()
        .find(|s| s.objects.iter().any(|o| o.url.contains("/chain")))
        .expect("an ad-heavy site exists");
    let mut browser = Browser::new(corpus.clients[0], "u-0", BrowserConfig::default());
    let load = browser.load_page(&universe, site, &site.html, &[], SimTime::from_hours(1));
    // Every object is still fetched — chain hops AND the re-routed ad
    // objects the markup no longer names directly.
    for object in &site.objects {
        assert!(
            load.fetches.iter().any(|f| f.url == object.url),
            "object {} ({:?}) was not fetched",
            object.url,
            object.inclusion
        );
    }
}

#[test]
fn page_load_is_deterministic() {
    let corpus = corpus();
    let universe = Universe::new(&corpus);
    let site = &corpus.sites[1];
    let t = SimTime::from_hours(2);
    let mut b1 = Browser::new(corpus.clients[0], "u-0", BrowserConfig::default());
    let mut b2 = Browser::new(corpus.clients[0], "u-0", BrowserConfig::default());
    let l1 = b1.load_page(&universe, site, &site.html, &[], t);
    let l2 = b2.load_page(&universe, site, &site.html, &[], t);
    assert_eq!(l1.plt_ms, l2.plt_ms);
    assert_eq!(l1.fetches, l2.fetches);
}

#[test]
fn report_entries_carry_resolved_ips() {
    let corpus = corpus();
    let universe = Universe::new(&corpus);
    let site = &corpus.sites[2];
    let mut browser = Browser::new(corpus.clients[3], "u-3", BrowserConfig::default());
    let load = browser.load_page(&universe, site, &site.html, &[], SimTime::from_hours(3));
    for entry in &load.report.entries {
        let object = site.objects.iter().find(|o| o.url == entry.url).unwrap();
        let expected_ip = corpus.world.ip_of(object.server).to_string();
        assert_eq!(entry.ip, expected_ip, "{}", entry.url);
        assert!(entry.time_ms > 0.0);
    }
}

#[test]
fn caching_cuts_repeat_fetch_cost() {
    let corpus = corpus();
    let universe = Universe::new(&corpus);
    let site = &corpus.sites[3];
    let config = BrowserConfig {
        caching: true,
        ..BrowserConfig::default()
    };
    let mut browser = Browser::new(corpus.clients[0], "u-0", config);
    let t = SimTime::from_hours(1);
    let cold = browser.load_page(&universe, site, &site.html, &[], t);
    let warm = browser.load_page(&universe, site, &site.html, &[], t);
    assert!(warm.fetches.iter().all(|f| f.from_cache));
    assert!(warm.plt_ms < cold.plt_ms * 0.5);
    assert!(
        warm.report.entries.is_empty(),
        "cache hits are not reported"
    );
}

#[test]
fn alternate_hint_preserves_cache_across_host_swap() {
    let corpus = corpus();
    let universe = Universe::new(&corpus);
    let site = &corpus.sites[4];
    let object = site
        .objects
        .iter()
        .find(|o| o.external && matches!(o.inclusion, Inclusion::SrcAttr))
        .expect("src-included external object");
    let config = BrowserConfig {
        caching: true,
        ..BrowserConfig::default()
    };
    let mut browser = Browser::new(corpus.clients[0], "u-0", config);
    let t = SimTime::from_hours(1);
    // Cold load fills the cache with the default URLs.
    browser.load_page(&universe, site, &site.html, &[], t);

    // Simulate a Type 2 host swap to a replica, with and without the
    // X-Oak-Alternate hint.
    let swapped_html = site.html.replace(
        &format!("http://{}/", object.domain),
        &format!("http://replica-na.example/{}/", object.domain),
    );
    let hint = vec![(object.domain.clone(), "replica-na.example".to_owned())];
    let with_hint = browser
        .clone()
        .load_page(&universe, site, &swapped_html, &hint, t);
    let swapped_url = replica_url("replica-na.example", &object.url);
    let hit = with_hint
        .fetches
        .iter()
        .find(|f| f.url == swapped_url)
        .expect("swapped object fetched");
    assert!(
        hit.from_cache,
        "hint lets the cached copy serve the new URL"
    );
}

#[test]
fn closest_replica_covers_all_regions() {
    assert_eq!(closest_replica(Region::NorthAmerica), "replica-na.example");
    assert_eq!(closest_replica(Region::Europe), "replica-eu.example");
    assert_eq!(closest_replica(Region::Asia), "replica-as.example");
    assert_eq!(closest_replica(Region::Oceania), "replica-as.example");
    assert_eq!(closest_replica(Region::SouthAmerica), "replica-na.example");
}

#[test]
fn generated_rules_validate_and_cover_external_domains() {
    let corpus = corpus();
    for site in &corpus.sites {
        let rules = rules_for_site(site, "replica-eu.example");
        let domains = site.external_domains();
        assert_eq!(rules.len(), domains.len());
        for (domain, rule) in &rules {
            rule.validate().unwrap_or_else(|e| panic!("{domain}: {e}"));
            assert!(rule.default_text.contains(domain.as_str()));
        }
    }
}

#[test]
fn prefix_rule_rewrites_all_objects_of_domain() {
    let rule = prefix_rule("cdn9.edge.example", "replica-na.example");
    let page = r#"<img src="http://cdn9.edge.example/a.png">
<script src="http://cdn9.edge.example/b.js"></script>"#;
    let mut rewriter = oak_html::Rewriter::new(page);
    let n = rewriter.replace_all(&rule.default_text, &rule.alternatives[0]);
    assert_eq!(n, 2);
    let out = rewriter.apply().unwrap();
    assert!(out.contains("http://replica-na.example/cdn9.edge.example/a.png"));
    assert!(out.contains("http://replica-na.example/cdn9.edge.example/b.js"));
}

#[test]
fn inline_rule_redirects_interpreted_scripts() {
    let corpus = corpus();
    let universe = Universe::new(&corpus);
    // Find a site with an inline-script object.
    let (site, object) = corpus
        .sites
        .iter()
        .find_map(|s| {
            s.objects
                .iter()
                .find(|o| matches!(o.inclusion, Inclusion::InlineScript))
                .map(|o| (s, o))
        })
        .expect("corpus has inline-script objects");
    let rule = inline_rule(&object.domain, "replica-as.example");
    let rewritten = site.html.replace(&rule.default_text, &rule.alternatives[0]);

    let mut browser = Browser::new(corpus.clients[0], "u-0", BrowserConfig::default());
    let load = browser.load_page(&universe, site, &rewritten, &[], SimTime::from_hours(1));
    let expected = replica_url("replica-as.example", &object.url);
    assert!(
        load.fetches.iter().any(|f| f
            .url
            .starts_with(&expected.split('?').next().unwrap().to_string())),
        "inline object should now load from the replica; fetches: {:?}",
        load.fetches.iter().map(|f| &f.url).collect::<Vec<_>>()
    );
}

#[test]
fn session_loop_activates_rules_and_improves_choice() {
    let corpus = corpus();
    // Install prefix rules for every site, pointing at the NA replica.
    let oak = Oak::new(OakConfig::default());
    for site in &corpus.sites {
        for (_, rule) in rules_for_site(site, "replica-na.example") {
            let _ = oak.add_rule(rule);
        }
    }
    let mut session = SimSession::new(&corpus, oak);
    let client = corpus.clients[0];

    let mut activated_any = false;
    for round in 0..6 {
        for site_index in 0..corpus.sites.len() {
            let t = SimTime::from_minutes(round * 30 + site_index as u64);
            let (_, outcome) = session.visit(site_index, client, t);
            activated_any |= !outcome.activated.is_empty();
        }
    }
    assert!(
        activated_any,
        "six rounds over {} sites should activate at least one rule",
        corpus.sites.len()
    );
    assert!(!session.oak.log().is_empty());
}

#[test]
fn keep_alive_reduces_page_load_time() {
    let corpus = corpus();
    let universe = Universe::new(&corpus);
    let site = &corpus.sites[0];
    let t = SimTime::from_hours(1);
    let mut cold = Browser::new(corpus.clients[0], "u-c", BrowserConfig::default());
    let mut warm = Browser::new(
        corpus.clients[0],
        "u-w",
        BrowserConfig {
            keep_alive: true,
            ..BrowserConfig::default()
        },
    );
    let cold_load = cold.load_page(&universe, site, &site.html, &[], t);
    let warm_load = warm.load_page(&universe, site, &site.html, &[], t);
    assert_eq!(cold_load.fetches.len(), warm_load.fetches.len());
    assert!(
        warm_load.plt_ms < cold_load.plt_ms,
        "keep-alive should cut repeated handshakes: {} vs {}",
        warm_load.plt_ms,
        cold_load.plt_ms
    );
    // Per-fetch: the first object of a host costs the same, repeats less.
    for (c, w) in cold_load.fetches.iter().zip(&warm_load.fetches) {
        assert!(w.time_ms <= c.time_ms + 1e-9, "{}", c.url);
    }
}

#[test]
fn har_export_is_valid_json_and_covers_fetches() {
    let corpus = corpus();
    let universe = Universe::new(&corpus);
    let site = &corpus.sites[0];
    let mut browser = Browser::new(corpus.clients[0], "u-har", BrowserConfig::default());
    let load = browser.load_page(&universe, site, &site.html, &[], SimTime::from_hours(1));
    let har = oak_json::parse(&load.to_har_json()).expect("HAR is valid JSON");
    let log = har.get("log").unwrap();
    assert_eq!(log.get("version").and_then(|v| v.as_str()), Some("1.2"));
    let entries = log.get("entries").and_then(|e| e.as_array()).unwrap();
    assert_eq!(entries.len(), load.fetches.len());
    let on_load = log
        .at(0)
        .or(log.get("pages").and_then(|p| p.at(0)))
        .and_then(|p| p.get("pageTimings"))
        .and_then(|t| t.get("onLoad"))
        .and_then(|v| v.as_f64())
        .unwrap();
    assert!((on_load - load.plt_ms).abs() < 1e-9);
}

#[test]
fn resource_timing_mode_omits_non_opted_in_providers() {
    use crate::ReportingMode;
    let corpus = corpus();
    let universe = Universe::new(&corpus);

    // Find a site contacting at least one opted-out provider.
    let (site, opted_out) = corpus
        .sites
        .iter()
        .find_map(|s| {
            s.external_domains()
                .into_iter()
                .find(|d| {
                    corpus
                        .provider_by_domain(d)
                        .is_some_and(|p| !p.timing_allow_origin)
                })
                .map(|d| (s, d.to_owned()))
        })
        .expect("corpus has opted-out providers");

    let t = SimTime::from_hours(2);
    let mut full = Browser::new(corpus.clients[0], "u-f", BrowserConfig::default());
    let mut rt = Browser::new(
        corpus.clients[0],
        "u-rt",
        BrowserConfig {
            reporting: ReportingMode::ResourceTimingApi,
            ..BrowserConfig::default()
        },
    );
    let full_load = full.load_page(&universe, site, &site.html, &[], t);
    let rt_load = rt.load_page(&universe, site, &site.html, &[], t);

    // Same fetches (the page loads identically)…
    assert_eq!(full_load.fetches.len(), rt_load.fetches.len());
    // …but the API-mode report omits the opted-out provider.
    assert!(full_load
        .report
        .entries
        .iter()
        .any(|e| e.url.contains(&opted_out)));
    assert!(!rt_load
        .report
        .entries
        .iter()
        .any(|e| e.url.contains(&opted_out)));
    assert!(rt_load.report.entries.len() < full_load.report.entries.len());
    // Same-origin objects stay visible.
    assert!(rt_load
        .report
        .entries
        .iter()
        .any(|e| e.url.contains(&site.host)));
}

#[test]
fn device_profile_inflates_script_cost_and_stamps_reports() {
    use oak_core::report::DeviceClass;
    use oak_net::DeviceProfile;

    let corpus = corpus();
    let universe = Universe::new(&corpus);
    let site = &corpus.sites[0];
    let t = SimTime::from_hours(1);

    let mut desktop = Browser::new(corpus.clients[0], "u-d", BrowserConfig::default());
    let mut phone = Browser::new(
        corpus.clients[0],
        "u-m",
        BrowserConfig {
            device: Some(DeviceProfile::LOW_END_MOBILE),
            ..BrowserConfig::default()
        },
    );
    let fast = desktop.load_page(&universe, site, &site.html, &[], t);
    let slow = phone.load_page(&universe, site, &site.html, &[], t);

    // Same fetches, slower page: the device pays radio + CPU, the
    // network model is untouched.
    assert_eq!(fast.fetches.len(), slow.fetches.len());
    assert!(slow.plt_ms > fast.plt_ms);
    for (f, s) in fast.fetches.iter().zip(&slow.fetches) {
        let delta = s.time_ms - f.time_ms;
        assert!(
            delta >= DeviceProfile::LOW_END_MOBILE.radio_rtt_ms - 1e-9,
            "{}",
            f.url
        );
        if f.url.split(['?', '#']).next().unwrap().ends_with(".js") {
            assert!(
                delta > DeviceProfile::LOW_END_MOBILE.radio_rtt_ms + 1e-9,
                "script {} should also pay CPU",
                f.url
            );
        }
    }

    // The cohort hint rides the report; the default config stays unknown.
    assert_eq!(slow.report.device, DeviceClass::LowEndMobile);
    assert_eq!(fast.report.device, DeviceClass::Unknown);
}

#[test]
fn session_pins_devices_per_vantage_point() {
    use oak_core::report::DeviceClass;
    use oak_net::DeviceProfile;

    let corpus = corpus();
    let oak = Oak::new(OakConfig::default());
    let mut session = SimSession::new(&corpus, oak);
    session.assign_device(corpus.clients[1], DeviceProfile::MID_MOBILE);

    let t = SimTime::from_hours(1);
    let (mobile_load, _) = session.visit(0, corpus.clients[1], t);
    let (desktop_load, _) = session.visit(0, corpus.clients[2], t);
    assert_eq!(mobile_load.report.device, DeviceClass::MidMobile);
    assert_eq!(desktop_load.report.device, DeviceClass::Unknown);
}

#[test]
fn session_default_arm_never_touches_engine() {
    let corpus = corpus();
    let oak = Oak::new(OakConfig::default());
    let mut session = SimSession::new(&corpus, oak);
    let before = session.oak.log().len();
    session.visit_default(0, corpus.clients[1], SimTime::from_hours(1));
    assert_eq!(session.oak.log().len(), before);
    assert_eq!(session.oak.user_count(), 0);
}
