//! Connection-dependency matching.
//!
//! Oak does not track execution or load dependencies; it needs only the
//! weaker *connection dependency* — "if a block on a page (i.e., a rule)
//! caused the connection to an external server" (§4.2.2). A rule is tied
//! to a violating server at one of three escalating levels:
//!
//! 1. **Direct inclusion** — the rule text contains an HTML tag whose
//!    `src`/`href` resolves to a violator domain.
//! 2. **Text match** — a violator domain appears anywhere in the rule
//!    text (inline scripts build URLs programmatically, so a plain
//!    domain-string search is the right tool).
//! 3. **External JavaScript** — the rule includes `<script src=…>`
//!    whose *fetched body* contains a violator domain; Oak "does not
//!    modify these external scripts, it simply uses them to expand the
//!    surface to which a rule might match".
//!
//! Fig. 8 measures exactly these levels on the Alexa Top 500 (median
//! match rates ≈ 42 % / 60 % / 81 %); the experiment harness re-derives
//! that curve through this module.

use oak_html::Document;

/// How deep matching is allowed to look. Levels are cumulative: each
/// includes everything the previous one matches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MatchLevel {
    /// Only direct `src`/`href` inclusions.
    DirectInclude,
    /// Plus domain-string search over the rule text.
    TextMatch,
    /// Plus one level of fetched external-JavaScript bodies.
    ExternalJs,
}

impl MatchLevel {
    /// All levels, weakest surface first.
    pub const ALL: [MatchLevel; 3] = [
        MatchLevel::DirectInclude,
        MatchLevel::TextMatch,
        MatchLevel::ExternalJs,
    ];
}

/// Fetches the body of an external script so matching can search it.
///
/// Implementations: the live proxy fetches over HTTP; experiments resolve
/// against the synthetic corpus; [`NoFetch`] disables level 3.
pub trait ScriptFetcher {
    /// Returns the script body at `url`, or `None` if unavailable.
    fn fetch_script(&self, url: &str) -> Option<String>;
}

/// A [`ScriptFetcher`] that never fetches — matching stops at
/// [`MatchLevel::TextMatch`] surfaces.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFetch;

impl ScriptFetcher for NoFetch {
    fn fetch_script(&self, _url: &str) -> Option<String> {
        None
    }
}

impl<F> ScriptFetcher for F
where
    F: Fn(&str) -> Option<String>,
{
    fn fetch_script(&self, url: &str) -> Option<String> {
        self(url)
    }
}

/// Memoizes an inner [`ScriptFetcher`].
///
/// Level-3 matching fetches the same loader scripts for every report;
/// over HTTP that is a network round trip per rule per report. The cache
/// remembers both hits and misses (a 404'ing script stays 404 for the
/// cache's lifetime) and is bounded: at [`CachingFetcher::CAPACITY`]
/// entries it stops admitting new URLs rather than evicting, since a
/// site's loader population is small and stable.
pub struct CachingFetcher<F> {
    inner: F,
    cache: std::sync::Mutex<std::collections::HashMap<String, Option<String>>>,
}

impl<F: ScriptFetcher> CachingFetcher<F> {
    /// Maximum number of distinct URLs remembered.
    pub const CAPACITY: usize = 4_096;

    /// Wraps `inner` with a fresh cache.
    pub fn new(inner: F) -> CachingFetcher<F> {
        CachingFetcher {
            inner,
            cache: std::sync::Mutex::new(std::collections::HashMap::new()),
        }
    }

    /// Number of URLs currently cached.
    pub fn cached(&self) -> usize {
        self.cache.lock().expect("fetcher cache lock").len()
    }

    /// Drops all cached entries (e.g. on an operator's rules reload).
    pub fn clear(&self) {
        self.cache.lock().expect("fetcher cache lock").clear();
    }
}

impl<F: ScriptFetcher> ScriptFetcher for CachingFetcher<F> {
    fn fetch_script(&self, url: &str) -> Option<String> {
        let mut cache = self.cache.lock().expect("fetcher cache lock");
        if let Some(entry) = cache.get(url) {
            return entry.clone();
        }
        let fetched = self.inner.fetch_script(url);
        if cache.len() < Self::CAPACITY {
            cache.insert(url.to_owned(), fetched.clone());
        }
        fetched
    }
}

/// The result of matching one rule text against one violator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MatchOutcome {
    /// The weakest level at which the rule matched.
    pub level: MatchLevel,
}

/// A rule text pre-compiled for repeated matching.
///
/// [`match_rule`] tokenizes the rule text on every call; the engine
/// matches every rule against every report, so it compiles each rule's
/// surfaces once at registration ([`RuleSurface::compile`]) and reuses
/// them per report. Matching semantics are identical to [`match_rule`].
#[derive(Clone, Debug)]
pub struct RuleSurface {
    /// Lowercased hosts referenced by `src`/`href` attributes (level 1).
    direct_hosts: Vec<String>,
    /// The whole text, lowercased (level 2 substring search).
    text_lower: String,
    /// External script URLs the text includes (level 3 expansion).
    script_urls: Vec<String>,
}

impl RuleSurface {
    /// Parses and indexes `rule_text` once.
    pub fn compile(rule_text: &str) -> RuleSurface {
        let doc = Document::parse(rule_text);
        let direct_hosts = doc
            .external_refs()
            .iter()
            .filter_map(|r| url_host(&r.url))
            .collect();
        let script_urls = doc
            .external_script_urls()
            .into_iter()
            .map(str::to_owned)
            .collect();
        RuleSurface {
            direct_hosts,
            text_lower: rule_text.to_ascii_lowercase(),
            script_urls,
        }
    }

    /// As [`match_rule`], against the precompiled surfaces.
    pub fn matches(
        &self,
        violator_domains: &[String],
        max_level: MatchLevel,
        fetcher: &dyn ScriptFetcher,
    ) -> Option<MatchOutcome> {
        let domains: Vec<String> = violator_domains
            .iter()
            .map(|d| d.to_ascii_lowercase())
            .collect();
        self.matches_prelowered(&domains, max_level, fetcher)
    }

    /// As [`RuleSurface::matches`], but `domains` must already be
    /// lowercased — the engine lowercases each report's violator domains
    /// once (through its interner) and reuses them across every
    /// candidate rule. Generic over the string handle so interned
    /// `Arc<str>` lists are matched without conversion.
    pub fn matches_prelowered<S: AsRef<str>>(
        &self,
        domains: &[S],
        max_level: MatchLevel,
        fetcher: &dyn ScriptFetcher,
    ) -> Option<MatchOutcome> {
        if domains.is_empty() {
            return None;
        }
        if self
            .direct_hosts
            .iter()
            .any(|host| domains.iter().any(|d| host == d.as_ref()))
        {
            return Some(MatchOutcome {
                level: MatchLevel::DirectInclude,
            });
        }
        if max_level == MatchLevel::DirectInclude {
            return None;
        }
        if domains
            .iter()
            .any(|d| contains_domain(&self.text_lower, d.as_ref()))
        {
            return Some(MatchOutcome {
                level: MatchLevel::TextMatch,
            });
        }
        if max_level == MatchLevel::TextMatch {
            return None;
        }
        for script_url in &self.script_urls {
            if let Some(body) = fetcher.fetch_script(script_url) {
                if text_hits(&body, domains) {
                    return Some(MatchOutcome {
                        level: MatchLevel::ExternalJs,
                    });
                }
            }
        }
        None
    }

    /// Every lowercased domain-shaped token this surface could match at
    /// levels 1–2: the direct `src`/`href` hosts plus each maximal run of
    /// host characters in the text. A violator domain made of host
    /// characters can only satisfy [`contains_domain`] by *being* such a
    /// maximal run (the boundary checks force non-host characters on both
    /// sides), so an index over these tokens is exact for levels 1–2.
    pub fn domain_tokens(&self) -> Vec<String> {
        let mut tokens: Vec<String> = self.direct_hosts.clone();
        let bytes = self.text_lower.as_bytes();
        let mut start = None;
        for (i, &b) in bytes.iter().enumerate() {
            match (is_host_char(b), start) {
                (true, None) => start = Some(i),
                (false, Some(s)) => {
                    tokens.push(self.text_lower[s..i].to_owned());
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = start {
            tokens.push(self.text_lower[s..].to_owned());
        }
        tokens.sort_unstable();
        tokens.dedup();
        tokens
    }

    /// True when the surface references external scripts, i.e. level-3
    /// matching could hit on fetched bodies no index can see.
    pub fn needs_script_scan(&self) -> bool {
        !self.script_urls.is_empty()
    }
}

/// Tests whether `rule_text` has a connection dependency on a server whose
/// domains are `violator_domains`, searching up to `max_level`.
///
/// Returns the weakest level that matched, or `None`. Domain comparison is
/// case-insensitive and exact on the host (a rule naming `cdn.example`
/// does not match violator `xcdn.example`).
pub fn match_rule(
    rule_text: &str,
    violator_domains: &[String],
    max_level: MatchLevel,
    fetcher: &dyn ScriptFetcher,
) -> Option<MatchOutcome> {
    if violator_domains.is_empty() {
        return None;
    }
    let domains: Vec<String> = violator_domains
        .iter()
        .map(|d| d.to_ascii_lowercase())
        .collect();

    let doc = Document::parse(rule_text);

    // Level 1: direct inclusion via src/href attributes.
    if direct_include_hits(&doc, &domains) {
        return Some(MatchOutcome {
            level: MatchLevel::DirectInclude,
        });
    }
    if max_level == MatchLevel::DirectInclude {
        return None;
    }

    // Level 2: domain text anywhere in the rule body (inline scripts
    // constructing URLs programmatically, unparsed fragments, …).
    if text_hits(rule_text, &domains) {
        return Some(MatchOutcome {
            level: MatchLevel::TextMatch,
        });
    }
    if max_level == MatchLevel::TextMatch {
        return None;
    }

    // Level 3: fetch each external script the rule loads and search its
    // body with the same two conditions (applied as text search — script
    // bodies are JavaScript, not HTML).
    for script_url in doc.external_script_urls() {
        if let Some(body) = fetcher.fetch_script(script_url) {
            if text_hits(&body, &domains) {
                return Some(MatchOutcome {
                    level: MatchLevel::ExternalJs,
                });
            }
        }
    }
    None
}

/// True if any `src`-style reference in `doc` points at one of `domains`
/// (domains must already be lowercased).
fn direct_include_hits(doc: &Document, domains: &[String]) -> bool {
    doc.external_refs().iter().any(|r| {
        url_host(&r.url)
            .map(|host| domains.contains(&host))
            .unwrap_or(false)
    })
}

/// True if any domain appears as a substring of `text`, case-insensitively,
/// bounded so `cdn.example` does not match inside `xcdn.example.evil`.
fn text_hits<S: AsRef<str>>(text: &str, domains: &[S]) -> bool {
    let lower = text.to_ascii_lowercase();
    domains.iter().any(|d| contains_domain(&lower, d.as_ref()))
}

/// Substring search with host-boundary checks on both sides.
fn contains_domain(haystack: &str, domain: &str) -> bool {
    if domain.is_empty() {
        return false;
    }
    let mut from = 0;
    while let Some(found) = haystack[from..].find(domain) {
        let start = from + found;
        let end = start + domain.len();
        let left_ok = start == 0 || !is_host_char(haystack.as_bytes()[start - 1]);
        let right_ok = end == haystack.len() || !is_host_char(haystack.as_bytes()[end]);
        if left_ok && right_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

/// Characters that can extend a hostname; a boundary requires a byte
/// outside this set. Counting `.` and `-` as host characters rejects
/// matches embedded in longer hosts (`badexample.com`,
/// `example.com.evil.net`).
pub(crate) fn is_host_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'.' || b == b'-'
}

/// Extracts and lowercases the host of an absolute or protocol-relative
/// URL; returns `None` for relative references (those point at the origin,
/// which is never a violator candidate).
pub fn url_host(url: &str) -> Option<String> {
    let rest = if let Some((_scheme, rest)) = url.split_once("://") {
        rest
    } else {
        url.strip_prefix("//")?
    };
    let authority = rest.split(['/', '?', '#']).next()?;
    let host = authority.rsplit_once('@').map_or(authority, |(_, h)| h);
    let host = host.split(':').next()?;
    (!host.is_empty()).then(|| host.to_ascii_lowercase())
}
