//! Engine-facing time.

use std::fmt;
use std::ops::Add;

/// A millisecond timestamp handed to the engine by its embedder.
///
/// Oak's logic (TTL expiry, violation windows, logs) needs a clock, but
/// whose clock depends on the embedding: the live proxy passes wall time,
/// experiments pass simulated time. Keeping the type local to `oak-core`
/// avoids a dependency on either.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Instant(pub u64);

impl Instant {
    /// The epoch.
    pub const ZERO: Instant = Instant(0);

    /// Milliseconds since the embedder's epoch.
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Saturating elapsed time since `earlier`, in ms.
    pub fn since(self, earlier: Instant) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Instant {
    type Output = Instant;

    /// Advances by `ms` milliseconds.
    fn add(self, ms: u64) -> Instant {
        Instant(self.0 + ms)
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}ms", self.0)
    }
}
