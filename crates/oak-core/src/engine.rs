//! The Oak engine: per-user rule state and page modification.
//!
//! "Both of these processes are performed at the user level. Each client
//! submits its own performance information, which is then considered
//! against its own history. Rules are then activated on a per-client
//! basis, meaning that outgoing pages are modified based on
//! user-perceived performance." (§4)
//!
//! # Concurrency
//!
//! The engine is internally synchronized (every method takes `&self`), so
//! one instance can back a multi-threaded server directly. State is split
//! along the paper's own seams:
//!
//! - the **rule table** (operator rules, their precompiled
//!   [`RuleSurface`]s, and the domain→rule index) is read-mostly and sits
//!   behind one `RwLock`: reports and page serves share it, rule add /
//!   remove takes the write lock;
//! - **user state** (activations, pending counts, per-user GC clock) is
//!   striped across [`SHARD_COUNT`] shards keyed by an FNV-1a hash of the
//!   user id, each behind its own `Mutex`. Requests for different users
//!   contend only when they hash to the same shard.
//!
//! The activity log and the site aggregates are sharded too; [`Oak::log`]
//! stitches shard logs back into one globally ordered history using
//! per-event sequence numbers, and [`Oak::aggregates`] merges the shard
//! accumulators on read.
//!
//! Lock order is rule table before shard, shards in ascending index;
//! no method acquires them in any other order, so the engine cannot
//! deadlock against itself.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use oak_html::{Document, Rewriter};
use oak_json::Value;

use crate::cohort::{CohortBaselines, CohortConfig};
use crate::detect::{detect_violators, DetectorConfig, DetectorPolicy, Violation};
use crate::events::{EngineEvent, EventSink, IngestEffect, SequencedEvent};
use crate::matching::{url_host, MatchLevel, RuleSurface, ScriptFetcher};
use crate::report::PerfReport;
use crate::rule::{Rule, RuleId, RuleType};
use crate::time::Instant;
use crate::{analysis::PageAnalysis, OAK_ALTERNATE_HEADER};

/// How many user-state stripes the engine keeps. Requests for users on
/// different stripes proceed in parallel; 16 is comfortably above the
/// core counts this engine targets while keeping merge-on-read cheap.
pub const SHARD_COUNT: usize = 16;

/// Engine-wide configuration.
#[derive(Clone, Copy, Debug)]
pub struct OakConfig {
    /// Violator-detection parameters (§4.2.1).
    pub detector: DetectorConfig,
    /// Which detection policy runs over each report: the paper's global
    /// within-report test (the default), or the device-cohort-gated
    /// variant (see [`crate::cohort`]). With the default, every
    /// operator-visible surface is byte-identical to the pre-seam
    /// engine.
    pub detector_policy: DetectorPolicy,
    /// How deep connection-dependency matching may look (§4.2.2).
    /// [`MatchLevel::ExternalJs`] — the full mechanism — by default;
    /// lower settings exist for the Fig. 8 ablation.
    pub max_match_level: MatchLevel,
    /// In-memory activity-log retention, as entries *per shard*
    /// ([`Oak::log`] therefore returns at most `SHARD_COUNT ×` this).
    /// `None` retains everything — right for experiments, wrong for a
    /// long-running server: with a retention cap, old entries fall out
    /// of RAM while remaining durable in the write-ahead log.
    pub log_retention: Option<usize>,
}

impl Default for OakConfig {
    fn default() -> OakConfig {
        OakConfig {
            detector: DetectorConfig::default(),
            detector_policy: DetectorPolicy::default(),
            max_match_level: MatchLevel::ExternalJs,
            log_retention: None,
        }
    }
}

/// A rule currently active for one user.
#[derive(Clone, Debug, PartialEq)]
pub struct ActiveRule {
    /// Index into the rule's alternatives list. The starting index and
    /// walk order follow the rule's [`crate::rule::SelectionPolicy`] (§4.2.4).
    pub alternative_index: usize,
    /// How many alternatives have been tried so far (including the
    /// current one); the list is exhausted when this reaches its length.
    pub alternatives_tried: usize,
    /// When the rule was activated (TTL counts from here).
    pub activated_at: Instant,
    /// Severity (distance from the median, in deviation units) of the
    /// violation that activated the rule — the quantity rule history
    /// compares when the alternate later violates (§4.2.3).
    pub default_severity: f64,
}

/// Per-user engine state.
#[derive(Clone, Debug, Default)]
struct UserState {
    active: BTreeMap<RuleId, ActiveRule>,
    /// Violations observed per rule that have not yet reached the
    /// activation policy's threshold.
    pending: BTreeMap<RuleId, u32>,
    /// Last time this user reported or was served — the GC clock.
    last_seen: Instant,
}

/// What a call to [`Oak::ingest_report`] did.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IngestOutcome {
    /// Violators detected in this report.
    pub violations: Vec<Violation>,
    /// Rules newly activated for this user.
    pub activated: Vec<RuleId>,
    /// Active rules that advanced to their next alternative because the
    /// current alternate violated.
    pub advanced: Vec<RuleId>,
    /// Rules deactivated (alternate was worse than the recorded default
    /// and no further alternatives remained).
    pub deactivated: Vec<RuleId>,
    /// Rules that expired by TTL during this ingest.
    pub expired: Vec<RuleId>,
}

/// A page after per-user modification.
#[derive(Clone, Debug, PartialEq)]
pub struct ModifiedPage {
    /// The rewritten HTML.
    pub html: String,
    /// Rules that made at least one edit.
    pub applied: Vec<RuleId>,
    /// `(old_host, new_host)` pairs for Type 2 replacements — the value
    /// of the [`OAK_ALTERNATE_HEADER`] cache hint (§4.3).
    pub cache_hints: Vec<(String, String)>,
}

impl ModifiedPage {
    /// The `X-Oak-Alternate` header value, or `None` when no Type 2 rule
    /// applied.
    pub fn alternate_header(&self) -> Option<String> {
        alternate_header(&self.cache_hints)
    }

    /// Header name/value pair ready to attach to a response.
    pub fn alternate_header_entry(&self) -> Option<(&'static str, String)> {
        self.alternate_header().map(|v| (OAK_ALTERNATE_HEADER, v))
    }
}

/// A page after per-user modification, borrowing the input when no rule
/// edited it — the zero-copy twin of [`ModifiedPage`] used on the serve
/// hot path, where most users run rule-free (§5's steady state).
#[derive(Clone, Debug, PartialEq)]
pub struct ModifiedPageRef<'h> {
    /// The page: `Cow::Borrowed` when untouched, owned when rewritten.
    pub html: std::borrow::Cow<'h, str>,
    /// Rules that made at least one edit.
    pub applied: Vec<RuleId>,
    /// `(old_host, new_host)` pairs for Type 2 replacements.
    pub cache_hints: Vec<(String, String)>,
}

impl ModifiedPageRef<'_> {
    /// The `X-Oak-Alternate` header value, or `None` when no Type 2 rule
    /// applied.
    pub fn alternate_header(&self) -> Option<String> {
        alternate_header(&self.cache_hints)
    }

    /// Header name/value pair ready to attach to a response.
    pub fn alternate_header_entry(&self) -> Option<(&'static str, String)> {
        self.alternate_header().map(|v| (OAK_ALTERNATE_HEADER, v))
    }

    /// Materializes into the owned form (copying only if still borrowed).
    pub fn into_owned(self) -> ModifiedPage {
        ModifiedPage {
            html: self.html.into_owned(),
            applied: self.applied,
            cache_hints: self.cache_hints,
        }
    }
}

fn alternate_header(cache_hints: &[(String, String)]) -> Option<String> {
    if cache_hints.is_empty() {
        return None;
    }
    Some(
        cache_hints
            .iter()
            .map(|(old, new)| format!("{old}={new}"))
            .collect::<Vec<_>>()
            .join(","),
    )
}

/// What happened to a rule for a user, for the activity log (§5 logs
/// "the activation and removal of rules"; Figs. 12/14 and Table 3 are
/// computed from this record).
#[derive(Clone, Debug, PartialEq)]
pub enum LogAction {
    /// Rule became active; carries the triggering violator's IP and the
    /// recorded severity.
    Activated {
        /// The violating server.
        violator_ip: String,
        /// Severity at activation.
        severity: f64,
    },
    /// Rule advanced to its next alternative.
    Advanced {
        /// New alternative index.
        to_index: usize,
    },
    /// Rule deactivated because the alternate under-performed the
    /// recorded default.
    Deactivated,
    /// Rule expired by TTL.
    Expired,
}

/// One activity-log record.
#[derive(Clone, Debug, PartialEq)]
pub struct LogEvent {
    /// When it happened.
    pub time: Instant,
    /// The user whose state changed.
    pub user: String,
    /// The rule affected.
    pub rule: RuleId,
    /// What happened.
    pub action: LogAction,
}

/// The read-mostly half of the engine: operator rules, their precompiled
/// matching surfaces, and the domain→rule inverted index.
#[derive(Debug, Default)]
struct RuleTable {
    rules: BTreeMap<RuleId, Rule>,
    /// Per-rule pre-compiled matching surfaces: `(default, alternatives)`.
    /// Rebuilt on add/remove; reports match against these instead of
    /// re-parsing rule text per violation.
    surfaces: BTreeMap<RuleId, (RuleSurface, Vec<RuleSurface>)>,
    index: DomainIndex,
    next_rule_id: u32,
}

/// Maps violator domains to the rules whose surfaces could possibly match
/// them, so a report consults only candidate rules instead of scanning
/// the whole table.
///
/// Level-1 matching compares violator domains against a surface's direct
/// hosts by equality, and level-2 requires the domain to appear in the
/// rule text with non-host-character boundaries on both sides — which,
/// for a domain made of host characters, means the occurrence is exactly
/// a *maximal run of host characters* in the text. Indexing each
/// surface's direct hosts plus every maximal host-character run of its
/// text therefore loses no level-1/2 match. Level-3 (fetched script
/// bodies) cannot be indexed, so rules that include external scripts go
/// in [`DomainIndex::scan_always`], consulted only when the configured
/// match depth reaches [`MatchLevel::ExternalJs`].
#[derive(Debug, Default)]
struct DomainIndex {
    by_domain: HashMap<String, BTreeSet<RuleId>>,
    /// Rules whose surfaces reference external scripts: their match
    /// surface extends to fetched bodies the index cannot see.
    scan_always: BTreeSet<RuleId>,
}

/// The candidate rules for one report's violators.
enum Candidates {
    /// A violator domain fell outside what the index can answer exactly;
    /// scan the whole table.
    All,
    /// Only these rules can match (ascending id order).
    Subset(BTreeSet<RuleId>),
}

impl DomainIndex {
    /// Indexes one rule's default and alternative surfaces.
    fn insert(&mut self, id: RuleId, default: &RuleSurface, alternatives: &[RuleSurface]) {
        for surface in std::iter::once(default).chain(alternatives) {
            for token in surface.domain_tokens() {
                self.by_domain.entry(token).or_default().insert(id);
            }
            if surface.needs_script_scan() {
                self.scan_always.insert(id);
            }
        }
    }

    /// Rebuilds from scratch (rule removal).
    fn rebuild(surfaces: &BTreeMap<RuleId, (RuleSurface, Vec<RuleSurface>)>) -> DomainIndex {
        let mut index = DomainIndex::default();
        for (id, (default, alternatives)) in surfaces {
            index.insert(*id, default, alternatives);
        }
        index
    }

    /// The rules that could match any of the (already lowercased)
    /// violator domain lists at `max_level`. Generic over the string
    /// handle so interned `Arc<str>` lists need no conversion.
    fn candidates<S: AsRef<str>>(&self, lowered: &[Vec<S>], max_level: MatchLevel) -> Candidates {
        let mut set = BTreeSet::new();
        for domains in lowered {
            for domain in domains {
                let domain = domain.as_ref();
                // The maximal-run argument only covers domains made of
                // host characters; anything else (unexpected in DNS
                // names, but reports are client-supplied) falls back to
                // the exact full scan.
                if !domain.bytes().all(crate::matching::is_host_char) {
                    return Candidates::All;
                }
                if let Some(ids) = self.by_domain.get(domain) {
                    set.extend(ids.iter().copied());
                }
            }
        }
        if max_level == MatchLevel::ExternalJs {
            set.extend(self.scan_always.iter().copied());
        }
        Candidates::Subset(set)
    }
}

/// One stripe of user-keyed state, plus its slice of the activity log and
/// the site aggregates.
#[derive(Debug, Default)]
struct Shard {
    users: HashMap<String, UserState>,
    /// `(sequence, event)`: sequence numbers come from the engine-global
    /// counter, so merging shard logs by sequence reconstructs the exact
    /// global order of state changes.
    log: Vec<(u64, LogEvent)>,
    aggregates: crate::aggregates::SiteAggregates,
}

/// The Oak server engine.
///
/// Owns the operator's rules, every user's activation state, and the
/// activity log. Transport-agnostic: hand it decoded reports and pages.
/// Internally synchronized — share one instance across threads with
/// `Arc<Oak>`; see the module docs for the locking layout.
///
/// With an [`EventSink`] attached ([`Oak::set_event_sink`]), every
/// mutation additionally emits a replayable [`EngineEvent`]; see
/// [`crate::events`] and [`Oak::apply_event`] for the recovery side.
pub struct Oak {
    config: OakConfig,
    rules: RwLock<RuleTable>,
    shards: Vec<Mutex<Shard>>,
    /// Allocates the per-event sequence numbers that order the sharded
    /// activity log.
    log_seq: AtomicU64,
    /// Allocates the sequence numbers that order emitted [`EngineEvent`]s
    /// (allocated under the emitting operation's locks, so sequence order
    /// is application order wherever it matters).
    event_seq: AtomicU64,
    /// Replication epoch stamped on every emitted event (see
    /// [`Oak::set_epoch`]); 0 outside a cluster.
    epoch: AtomicU64,
    sink: Option<Arc<dyn EventSink>>,
    /// Per-(device cohort, server) baselines backing the
    /// [`DetectorPolicy::Cohort`] policy. Bounded, advisory, and
    /// deliberately excluded from snapshots and the WAL (see
    /// [`crate::cohort`]); untouched — never even locked — under the
    /// default global policy.
    cohorts: Mutex<CohortBaselines>,
    /// Stage-latency instrumentation; `None` costs nothing on hot paths.
    obs: Option<Arc<crate::obs::CoreMetrics>>,
    /// Shared lowercase domain/host handles: the per-report violator
    /// domains and every aggregate fold reuse one `Arc<str>` per distinct
    /// name instead of allocating fresh lowercased strings per report.
    interner: crate::intern::Interner,
}

impl fmt::Debug for Oak {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Oak")
            .field("config", &self.config)
            .field("rules", &self.rules)
            .field("shards", &self.shards)
            .field("log_seq", &self.log_seq)
            .field("event_seq", &self.event_seq)
            .field("sink", &self.sink.as_ref().map(|_| "EventSink"))
            .finish()
    }
}

impl Default for Oak {
    fn default() -> Oak {
        Oak::new(OakConfig::default())
    }
}

impl Oak {
    /// An engine with no rules.
    pub fn new(config: OakConfig) -> Oak {
        Oak {
            config,
            rules: RwLock::new(RuleTable::default()),
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            log_seq: AtomicU64::new(0),
            event_seq: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            sink: None,
            cohorts: Mutex::new(CohortBaselines::new(CohortConfig::default())),
            obs: None,
            interner: crate::intern::Interner::new(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &OakConfig {
        &self.config
    }

    /// Attaches the sink that will receive every future mutation as a
    /// [`SequencedEvent`] — typically the `oak-store` write-ahead log.
    /// Takes `&mut self` so it can only happen before the engine is
    /// shared (at boot, after recovery and before serving).
    pub fn set_event_sink(&mut self, sink: Arc<dyn EventSink>) {
        self.sink = Some(sink);
    }

    /// Detaches the event sink, if any.
    pub fn clear_event_sink(&mut self) {
        self.sink = None;
    }

    /// Attaches stage-latency instrumentation. Like
    /// [`Oak::set_event_sink`], takes `&mut self` so it can only happen
    /// before the engine is shared. With no metrics attached the hot
    /// paths read no clock and record nothing.
    pub fn set_obs(&mut self, obs: Arc<crate::obs::CoreMetrics>) {
        self.obs = Some(obs);
    }

    /// Whether mutations are being recorded to a sink.
    pub fn has_event_sink(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits one event to the sink, allocating its sequence number.
    /// Call sites hold the locks their mutation took, which is what makes
    /// sequence order meaningful; the closure defers payload construction
    /// to the sinked case.
    fn emit_with(&self, shard: Option<usize>, build: impl FnOnce() -> EngineEvent) {
        if let Some(sink) = &self.sink {
            let seq = self.event_seq.fetch_add(1, Ordering::Relaxed);
            sink.record(
                shard,
                &SequencedEvent {
                    seq,
                    epoch: self.epoch.load(Ordering::Relaxed),
                    event: build(),
                },
            );
        }
    }

    /// Sets the replication epoch stamped on every event emitted from
    /// now on. A cluster primary calls this with its lease epoch when it
    /// wins an election, so followers tailing the WAL stream can tell
    /// frames from the current leaseholder apart from a deposed one's.
    /// Single-node deployments never call it and emit epoch 0.
    pub fn set_epoch(&self, epoch: u64) {
        self.epoch.store(epoch, Ordering::Relaxed);
    }

    /// The replication epoch currently stamped on emitted events.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// The next event sequence number the engine will allocate — equal to
    /// one past the highest seq already emitted. External oracles
    /// (oak-sim's invariant checkers) compare this across crash-recovery.
    pub fn event_seq(&self) -> u64 {
        self.event_seq.load(Ordering::SeqCst)
    }

    /// The shard index holding `user`'s state.
    fn shard_index(&self, user: &str) -> usize {
        fnv1a(user) as usize % SHARD_COUNT
    }

    /// The shard holding `user`'s state.
    fn shard(&self, user: &str) -> &Mutex<Shard> {
        &self.shards[self.shard_index(user)]
    }

    /// The next global log sequence number.
    fn next_seq(&self) -> u64 {
        self.log_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Registers an operator rule.
    ///
    /// # Errors
    ///
    /// Returns the validation message for internally inconsistent rules
    /// (see [`Rule::validate`]).
    pub fn add_rule(&self, rule: Rule) -> Result<RuleId, String> {
        rule.validate()?;
        let mut table = self.rules.write().expect("rule table lock");
        let id = RuleId(table.next_rule_id);
        table.next_rule_id += 1;
        let default_surface = RuleSurface::compile(&rule.default_text);
        let alt_surfaces: Vec<RuleSurface> = rule
            .alternatives
            .iter()
            .map(|a| RuleSurface::compile(a))
            .collect();
        table.index.insert(id, &default_surface, &alt_surfaces);
        table.surfaces.insert(id, (default_surface, alt_surfaces));
        table.rules.insert(id, rule);
        // Emitted under the write lock: no ingest that can see this rule
        // sequences before it.
        self.emit_with(None, || EngineEvent::RuleAdded {
            id,
            rule: table.rules[&id].clone(),
        });
        Ok(id)
    }

    /// All registered rules, in id order.
    pub fn rules(&self) -> impl Iterator<Item = (RuleId, Rule)> {
        let table = self.rules.read().expect("rule table lock");
        table
            .rules
            .iter()
            .map(|(id, r)| (*id, r.clone()))
            .collect::<Vec<_>>()
            .into_iter()
    }

    /// A rule by id.
    pub fn rule(&self, id: RuleId) -> Option<Rule> {
        self.rules
            .read()
            .expect("rule table lock")
            .rules
            .get(&id)
            .cloned()
    }

    /// Removes a rule from the engine, deactivating it for every user and
    /// clearing pending violation counts. Returns the rule if it existed.
    /// The activity log keeps its history (audits must survive rule
    /// turnover); ids are never reused.
    pub fn remove_rule(&self, id: RuleId) -> Option<Rule> {
        let mut table = self.rules.write().expect("rule table lock");
        let rule = table.rules.remove(&id)?;
        table.surfaces.remove(&id);
        table.index = DomainIndex::rebuild(&table.surfaces);
        for shard in &self.shards {
            let mut shard = shard.lock().expect("shard lock");
            for state in shard.users.values_mut() {
                state.active.remove(&id);
                state.pending.remove(&id);
            }
        }
        self.emit_with(None, || EngineEvent::RuleRemoved { id });
        Some(rule)
    }

    /// The rules currently active for `user`, with their state.
    pub fn active_rules(&self, user: &str) -> Vec<(RuleId, ActiveRule)> {
        self.shard(user)
            .lock()
            .expect("shard lock")
            .users
            .get(user)
            .map(|u| u.active.iter().map(|(id, a)| (*id, a.clone())).collect())
            .unwrap_or_default()
    }

    /// The full activity log, in global event order.
    pub fn log(&self) -> Vec<LogEvent> {
        let mut entries: Vec<(u64, LogEvent)> = Vec::new();
        for shard in &self.shards {
            entries.extend(shard.lock().expect("shard lock").log.iter().cloned());
        }
        entries.sort_by_key(|(seq, _)| *seq);
        entries.into_iter().map(|(_, event)| event).collect()
    }

    /// Users that have submitted at least one report or been force-toggled.
    pub fn user_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard lock").users.len())
            .sum()
    }

    /// Aggregate site performance across every ingested report — the §5
    /// "aggregate site performance" record, rule-independent. Merged
    /// across shards on each call; hold the result rather than re-calling
    /// in a loop.
    pub fn aggregates(&self) -> crate::aggregates::SiteAggregates {
        let mut merged = crate::aggregates::SiteAggregates::new();
        for shard in &self.shards {
            merged.merge(&shard.lock().expect("shard lock").aggregates);
        }
        merged
    }

    /// As [`Oak::aggregates`], but folding into a
    /// [`crate::aggregates::SiteOverview`]: totals and the merged domain
    /// table without the per-user report counts. [`Oak::aggregates`]
    /// costs O(distinct users ever seen) per call, which a serving-path
    /// stats scrape must not pay; this costs O(domains).
    pub fn aggregates_overview(&self) -> crate::aggregates::SiteOverview {
        let mut overview = crate::aggregates::SiteOverview::default();
        for shard in &self.shards {
            overview.fold(&shard.lock().expect("shard lock").aggregates);
        }
        overview
    }

    /// Drops per-user state not touched since `cutoff`; returns how many
    /// users were pruned. Production hygiene: the paper's per-user
    /// profiles are long-lived but not immortal — a profile whose cookie
    /// will never return (crawler, cleared cookies) must not hold memory
    /// forever. The activity log and aggregates are unaffected.
    pub fn prune_inactive_users(&self, cutoff: Instant) -> usize {
        let mut pruned = 0;
        for (index, shard) in self.shards.iter().enumerate() {
            let mut shard = shard.lock().expect("shard lock");
            let mut removed: Vec<String> = Vec::new();
            shard.users.retain(|user, state| {
                let keep = state.last_seen >= cutoff;
                if !keep {
                    removed.push(user.clone());
                }
                keep
            });
            pruned += removed.len();
            if !removed.is_empty() {
                // Sorted so the durable event (and replay) is independent
                // of HashMap iteration order.
                removed.sort_unstable();
                self.emit_with(Some(index), || EngineEvent::Pruned { users: removed });
            }
        }
        pruned
    }

    /// Processes one client report: detects violators, matches them to
    /// rules, and updates this user's activations per policy, history,
    /// and TTL (§4.2). Transport code that knows the client's address
    /// should prefer [`Oak::ingest_report_from`], which lets
    /// subnet-scoped rules (§4.2.4) apply.
    pub fn ingest_report(
        &self,
        now: Instant,
        report: &PerfReport,
        fetcher: &dyn ScriptFetcher,
    ) -> IngestOutcome {
        self.ingest_report_from(now, report, fetcher, None)
    }

    /// As [`Oak::ingest_report`], with the reporting client's IP (dotted
    /// quad) as observed by the transport. Rules carrying a
    /// [`crate::rule::ClientFilter`] only activate when the IP passes.
    pub fn ingest_report_from(
        &self,
        now: Instant,
        report: &PerfReport,
        fetcher: &dyn ScriptFetcher,
        client_ip: Option<&str>,
    ) -> IngestOutcome {
        let _ingest_span = oak_obs::span("ingest");
        let ingest_start = self.obs.as_ref().map(|o| o.now());
        let detect_span = oak_obs::span("detect");
        let analysis = PageAnalysis::from_report(report);
        let violations = match self.config.detector_policy {
            DetectorPolicy::Global => detect_violators(&analysis, &self.config.detector),
            // The cohort lock is taken and released before any rule-table
            // or shard lock below — no ordering cycle is possible.
            DetectorPolicy::Cohort => self
                .cohorts
                .lock()
                .expect("cohort baselines lock")
                .detect_and_update(&analysis, report.device, &self.config.detector),
        };
        let violator_ips: Vec<String> = violations.iter().map(|v| v.ip.clone()).collect();
        // Violator domains are lowercased once per report via the
        // interner; for already-seen domains (the steady state) this is
        // allocation-free, and every surface comparison below reuses the
        // shared handles.
        let lowered: Vec<Vec<Arc<str>>> = violations
            .iter()
            .map(|v| {
                v.domains
                    .iter()
                    .map(|d| self.interner.intern_lower(d))
                    .collect()
            })
            .collect();
        drop(detect_span);
        let detect_end = self.obs.as_ref().map(|o| o.now());
        let mut outcome = IngestOutcome {
            violations: violations.clone(),
            ..IngestOutcome::default()
        };

        let _match_span = oak_obs::span("match");
        let max_level = self.config.max_match_level;
        let table = self.rules.read().expect("rule table lock");
        let candidate_ids: Vec<RuleId> = match table.index.candidates(&lowered, max_level) {
            Candidates::All => table.rules.keys().copied().collect(),
            Candidates::Subset(set) => set.into_iter().collect(),
        };

        let shard_index = self.shard_index(&report.user);
        let mut shard = self.shards[shard_index].lock().expect("shard lock");
        let shard = &mut *shard;
        // Distilled once: the same per-server increments feed the live
        // accumulator and (when a sink is attached) the durable event, so
        // WAL replay folds bit-identical floats.
        let folds = crate::aggregates::distill(&analysis, &violator_ips, &self.interner);
        shard.aggregates.fold_distilled(&report.user, &folds);
        let Shard { users, log, .. } = shard;
        // The replayable effect of this ingest, assembled as decisions are
        // made; only populated when a sink will consume it.
        let collect = self.sink.is_some();
        let mut records: Vec<(u64, LogEvent)> = Vec::new();
        let mut pending_incr: Vec<RuleId> = Vec::new();
        let expired_pairs =
            expire_user_rules(&table.rules, users, log, &self.log_seq, now, &report.user);
        outcome.expired = expired_pairs.iter().map(|(_, id)| *id).collect();
        if collect {
            for (seq, rule) in &expired_pairs {
                records.push((
                    *seq,
                    LogEvent {
                        time: now,
                        user: report.user.clone(),
                        rule: *rule,
                        action: LogAction::Expired,
                    },
                ));
            }
        }
        // One user-state resolution per report, not one per rule — and
        // no key allocation for a returning user.
        if !users.contains_key(&report.user) {
            users.insert(report.user.clone(), UserState::default());
        }
        let user = users.get_mut(&report.user).expect("just inserted");
        user.last_seen = now;

        for rule_id in candidate_ids {
            let rule = &table.rules[&rule_id];

            match user.active.get(&rule_id) {
                None => {
                    // Subnet-scoped rules only consider admitted clients.
                    if !rule.policy.client_filter.admits(client_ip) {
                        continue;
                    }
                    // Does any violator tie to the rule's default text?
                    let surface = &table.surfaces[&rule_id].0;
                    let hit = violations.iter().zip(&lowered).find(|(_, domains)| {
                        surface
                            .matches_prelowered(domains, max_level, fetcher)
                            .is_some()
                    });
                    let Some((violation, _)) = hit else { continue };
                    let pending = user.pending.entry(rule_id).or_insert(0);
                    *pending += 1;
                    if *pending < rule.policy.violations_required {
                        pending_incr.push(rule_id);
                        continue;
                    }
                    user.pending.remove(&rule_id);
                    user.active.insert(
                        rule_id,
                        ActiveRule {
                            alternative_index: initial_alternative(rule, &report.user),
                            alternatives_tried: 1,
                            activated_at: now,
                            default_severity: violation.kind.severity(),
                        },
                    );
                    outcome.activated.push(rule_id);
                    let seq = self.next_seq();
                    let entry = LogEvent {
                        time: now,
                        user: report.user.clone(),
                        rule: rule_id,
                        action: LogAction::Activated {
                            violator_ip: violation.ip.clone(),
                            severity: violation.kind.severity(),
                        },
                    };
                    if collect {
                        records.push((seq, entry.clone()));
                    }
                    log.push((seq, entry));
                }
                Some(active) => {
                    // Rule history (§4.2.3): has the *current alternate*
                    // become a violator? A violation that the default
                    // text also explains is *not* evidence against the
                    // alternate: pages often keep loading residual
                    // objects from the default domain (dynamic inclusions
                    // Oak cannot rewrite), and alternative text commonly
                    // embeds the default's domain (nested-path mirrors),
                    // so without the exclusion the default's own
                    // violations would flap its replacement off.
                    let (default_surface, alt_surfaces) = &table.surfaces[&rule_id];
                    let alt_surface = match alt_surfaces.get(active.alternative_index) {
                        Some(s) => s,
                        None => continue, // Type 1: nothing to re-evaluate.
                    };
                    let hit = violations.iter().zip(&lowered).find(|(_, domains)| {
                        alt_surface
                            .matches_prelowered(domains, max_level, fetcher)
                            .is_some()
                            && default_surface
                                .matches_prelowered(domains, max_level, fetcher)
                                .is_none()
                    });
                    let Some((violation, _)) = hit else { continue };
                    let alt_severity = violation.kind.severity();
                    if alt_severity < active.default_severity {
                        // The alternate, though violating now, is still
                        // closer to the median than the default was:
                        // "chooses the action which minimizes this
                        // distance".
                        continue;
                    }
                    let has_next = active.alternatives_tried < rule.alternatives.len();
                    let user_active = user.active.get_mut(&rule_id).expect("just read");
                    if has_next {
                        // Advance per the selection policy: linear walks
                        // increment; user-hash walks wrap so every
                        // alternative is visited once.
                        user_active.alternative_index =
                            (user_active.alternative_index + 1) % rule.alternatives.len();
                        user_active.alternatives_tried += 1;
                        // The new alternate starts fresh against the
                        // original default's recorded distance.
                        outcome.advanced.push(rule_id);
                        let to_index = user_active.alternative_index;
                        let seq = self.next_seq();
                        let entry = LogEvent {
                            time: now,
                            user: report.user.clone(),
                            rule: rule_id,
                            action: LogAction::Advanced { to_index },
                        };
                        if collect {
                            records.push((seq, entry.clone()));
                        }
                        log.push((seq, entry));
                    } else {
                        user.active.remove(&rule_id);
                        outcome.deactivated.push(rule_id);
                        let seq = self.next_seq();
                        let entry = LogEvent {
                            time: now,
                            user: report.user.clone(),
                            rule: rule_id,
                            action: LogAction::Deactivated,
                        };
                        if collect {
                            records.push((seq, entry.clone()));
                        }
                        log.push((seq, entry));
                    }
                }
            }
        }
        trim_shard_log(log, self.config.log_retention);
        self.emit_with(Some(shard_index), || {
            EngineEvent::Ingest(IngestEffect {
                time: now,
                user: report.user.clone(),
                folds,
                pending: pending_incr,
                records,
            })
        });
        if let Some(obs) = &self.obs {
            let end = obs.now();
            let start = ingest_start.unwrap_or(end);
            crate::obs::CoreMetrics::record(&obs.detect, start, detect_end.unwrap_or(end));
            crate::obs::CoreMetrics::record(&obs.rule_match, detect_end.unwrap_or(end), end);
            crate::obs::CoreMetrics::record(&obs.ingest, start, end);
            obs.reports.inc();
        }
        outcome
    }

    /// Applies the user's active rules to an outgoing page (§4.3).
    ///
    /// Rules are applied in id order; a rule whose edit would overlap an
    /// earlier rule's edit is skipped for the conflicting occurrence (the
    /// operator wrote conflicting rules; Oak keeps serving rather than
    /// failing the page). Sub-rules run after their parent applied at
    /// least one edit.
    pub fn modify_page(&self, now: Instant, user: &str, path: &str, html: &str) -> ModifiedPage {
        self.modify_page_cow(now, user, path, html).into_owned()
    }

    /// As [`Oak::modify_page`], but borrowing: when no active rule edits
    /// the page (the common case) the returned HTML is a `Cow::Borrowed`
    /// of the input and nothing is copied.
    pub fn modify_page_cow<'h>(
        &self,
        now: Instant,
        user: &str,
        path: &str,
        html: &'h str,
    ) -> ModifiedPageRef<'h> {
        let _span = oak_obs::span("modify_page");
        let unmodified = |html: &'h str| ModifiedPageRef {
            html: std::borrow::Cow::Borrowed(html),
            applied: Vec::new(),
            cache_hints: Vec::new(),
        };

        let table = self.rules.read().expect("rule table lock");
        let shard_index = self.shard_index(user);
        let mut shard = self.shards[shard_index].lock().expect("shard lock");
        let shard = &mut *shard;
        let Shard { users, log, .. } = shard;
        let expired_pairs = expire_user_rules(&table.rules, users, log, &self.log_seq, now, user);
        if !expired_pairs.is_empty() {
            // Serving is otherwise read-only; TTL expiry is the one page
            // path that mutates durable state, so it gets its own event.
            trim_shard_log(log, self.config.log_retention);
            self.emit_with(Some(shard_index), || EngineEvent::ServeExpiry {
                time: now,
                user: user.to_owned(),
                expired: expired_pairs,
            });
        }
        let Some(state) = users.get_mut(user) else {
            return unmodified(html);
        };
        state.last_seen = now;
        // Fast path: a user with no active rule in scope gets the page
        // back untouched, with no rewriter construction. (Most users run
        // rule-free most of the time — §5's steady state.)
        if state
            .active
            .keys()
            .all(|rule_id| !table.rules[rule_id].scope.applies_to(path))
        {
            return unmodified(html);
        }

        let rewrite_start = self.obs.as_ref().map(|o| o.now());
        let mut rewriter = Rewriter::new(html);
        let mut applied = Vec::new();
        let mut cache_hints = Vec::new();
        let mut sub_rule_batches: Vec<&Rule> = Vec::new();

        for (rule_id, active) in &state.active {
            let rule = &table.rules[rule_id];
            if !rule.scope.applies_to(path) {
                continue;
            }
            let edits = match rule.rule_type {
                RuleType::Remove => rewriter.delete_all(&rule.default_text),
                RuleType::ReplaceIdentical | RuleType::ReplaceDifferent => {
                    let alternative = &rule.alternatives[active.alternative_index];
                    rewriter.replace_all(&rule.default_text, alternative)
                }
            };
            if edits == 0 {
                continue;
            }
            applied.push(*rule_id);
            if !rule.sub_rules.is_empty() {
                sub_rule_batches.push(rule);
            }
            if rule.rule_type == RuleType::ReplaceIdentical {
                let alternative = &rule.alternatives[active.alternative_index];
                if let Some(pair) = host_swap(&rule.default_text, alternative) {
                    cache_hints.push(pair);
                }
            }
        }

        let mut html = rewriter.apply_cow();
        // Sub-rules are plain find/replace over the already-rewritten
        // page; a sub-rule that matches nothing costs no copy.
        for rule in sub_rule_batches {
            for sub in &rule.sub_rules {
                if !sub.find.is_empty() && html.contains(&sub.find) {
                    html = std::borrow::Cow::Owned(html.replace(&sub.find, &sub.replace));
                }
            }
        }
        if let (Some(obs), Some(start)) = (&self.obs, rewrite_start) {
            crate::obs::CoreMetrics::record(&obs.rewrite, start, obs.now());
        }

        ModifiedPageRef {
            html,
            applied,
            cache_hints,
        }
    }

    /// Forces a rule active for a user regardless of reports — the
    /// evaluation's "Oak with all rules activated" condition (§5.3).
    ///
    /// # Panics
    ///
    /// Panics if `rule_id` is unknown.
    pub fn force_activate(&self, now: Instant, user: &str, rule_id: RuleId) {
        let table = self.rules.read().expect("rule table lock");
        let rule = table
            .rules
            .get(&rule_id)
            .unwrap_or_else(|| panic!("unknown {rule_id}"));
        let index = initial_alternative(rule, user);
        let shard_index = self.shard_index(user);
        let mut shard = self.shards[shard_index].lock().expect("shard lock");
        shard
            .users
            .entry(user.to_owned())
            .or_default()
            .active
            .insert(
                rule_id,
                ActiveRule {
                    alternative_index: index,
                    alternatives_tried: 1,
                    activated_at: now,
                    default_severity: f64::INFINITY,
                },
            );
        self.emit_with(Some(shard_index), || EngineEvent::ForceActivate {
            time: now,
            user: user.to_owned(),
            rule: rule_id,
        });
    }

    /// Deactivates a rule for a user (no log entry; operator action).
    pub fn force_deactivate(&self, user: &str, rule_id: RuleId) {
        let shard_index = self.shard_index(user);
        let mut shard = self.shards[shard_index].lock().expect("shard lock");
        let removed = shard
            .users
            .get_mut(user)
            .is_some_and(|state| state.active.remove(&rule_id).is_some());
        if removed {
            self.emit_with(Some(shard_index), || EngineEvent::ForceDeactivate {
                user: user.to_owned(),
                rule: rule_id,
            });
        }
    }

    /// Applies one recorded event — the recovery half of the event API.
    ///
    /// Replaying a WAL's events in ascending sequence order onto the
    /// engine they were recorded from (or a snapshot of it) rebuilds
    /// byte-identical [`Oak::rules`], [`Oak::active_rules`],
    /// [`Oak::aggregates`], and [`Oak::log`] observables: events carry
    /// resolved decisions (never detector/matcher inputs), so no fetcher
    /// or clock is consulted. Application is total and tolerant — an
    /// event referencing a rule whose `RuleAdded` was lost to an unsynced
    /// WAL tail is applied as far as state allows and never panics.
    ///
    /// Events are *not* re-emitted to an attached sink; recovery attaches
    /// the sink after replay.
    pub fn apply_event(&self, ev: &SequencedEvent) {
        bump_to(&self.event_seq, ev.seq + 1);
        match &ev.event {
            EngineEvent::RuleAdded { id, rule } => {
                let mut table = self.rules.write().expect("rule table lock");
                let default_surface = RuleSurface::compile(&rule.default_text);
                let alt_surfaces: Vec<RuleSurface> = rule
                    .alternatives
                    .iter()
                    .map(|a| RuleSurface::compile(a))
                    .collect();
                table.index.insert(*id, &default_surface, &alt_surfaces);
                table.surfaces.insert(*id, (default_surface, alt_surfaces));
                table.rules.insert(*id, rule.clone());
                // Ids are allocator-ordered; keep the allocator ahead so
                // post-recovery additions never reuse an id.
                table.next_rule_id = table.next_rule_id.max(id.0 + 1);
            }
            EngineEvent::RuleRemoved { id } => {
                let mut table = self.rules.write().expect("rule table lock");
                if table.rules.remove(id).is_some() {
                    table.surfaces.remove(id);
                    table.index = DomainIndex::rebuild(&table.surfaces);
                    for shard in &self.shards {
                        let mut shard = shard.lock().expect("shard lock");
                        for state in shard.users.values_mut() {
                            state.active.remove(id);
                            state.pending.remove(id);
                        }
                    }
                }
            }
            EngineEvent::Ingest(effect) => {
                let table = self.rules.read().expect("rule table lock");
                let mut shard = self.shard(&effect.user).lock().expect("shard lock");
                let shard = &mut *shard;
                shard.aggregates.fold_distilled(&effect.user, &effect.folds);
                let Shard { users, log, .. } = shard;
                let user = users.entry(effect.user.clone()).or_default();
                user.last_seen = effect.time;
                for id in &effect.pending {
                    *user.pending.entry(*id).or_insert(0) += 1;
                }
                for (seq, entry) in &effect.records {
                    bump_to(&self.log_seq, seq + 1);
                    match &entry.action {
                        LogAction::Activated { severity, .. } => {
                            user.pending.remove(&entry.rule);
                            if let Some(rule) = table.rules.get(&entry.rule) {
                                user.active.insert(
                                    entry.rule,
                                    ActiveRule {
                                        alternative_index: initial_alternative(rule, &effect.user),
                                        alternatives_tried: 1,
                                        activated_at: entry.time,
                                        default_severity: *severity,
                                    },
                                );
                            }
                        }
                        LogAction::Advanced { to_index } => {
                            if let Some(active) = user.active.get_mut(&entry.rule) {
                                active.alternative_index = *to_index;
                                active.alternatives_tried += 1;
                            }
                        }
                        LogAction::Deactivated | LogAction::Expired => {
                            user.active.remove(&entry.rule);
                        }
                    }
                    log.push((*seq, entry.clone()));
                }
                trim_shard_log(log, self.config.log_retention);
            }
            EngineEvent::ForceActivate { time, user, rule } => {
                let table = self.rules.read().expect("rule table lock");
                let Some(r) = table.rules.get(rule) else {
                    return;
                };
                let index = initial_alternative(r, user);
                self.shard(user)
                    .lock()
                    .expect("shard lock")
                    .users
                    .entry(user.clone())
                    .or_default()
                    .active
                    .insert(
                        *rule,
                        ActiveRule {
                            alternative_index: index,
                            alternatives_tried: 1,
                            activated_at: *time,
                            default_severity: f64::INFINITY,
                        },
                    );
            }
            EngineEvent::ForceDeactivate { user, rule } => {
                if let Some(state) = self
                    .shard(user)
                    .lock()
                    .expect("shard lock")
                    .users
                    .get_mut(user)
                {
                    state.active.remove(rule);
                }
            }
            EngineEvent::ServeExpiry {
                time,
                user,
                expired,
            } => {
                let mut shard = self.shard(user).lock().expect("shard lock");
                let shard = &mut *shard;
                let Shard { users, log, .. } = shard;
                if let Some(state) = users.get_mut(user) {
                    for (_, rule) in expired {
                        state.active.remove(rule);
                    }
                    state.last_seen = *time;
                }
                for (seq, rule) in expired {
                    bump_to(&self.log_seq, *seq + 1);
                    log.push((
                        *seq,
                        LogEvent {
                            time: *time,
                            user: user.clone(),
                            rule: *rule,
                            action: LogAction::Expired,
                        },
                    ));
                }
                trim_shard_log(log, self.config.log_retention);
            }
            EngineEvent::Pruned { users } => {
                for user in users {
                    self.shard(user)
                        .lock()
                        .expect("shard lock")
                        .users
                        .remove(user);
                }
            }
        }
    }

    /// A consistent point-in-time snapshot of the full engine state as a
    /// JSON document, ready for compaction storage.
    ///
    /// Takes the rule-table read lock and then every shard lock in
    /// ascending order (the engine's lock order), so mutations are
    /// quiesced for the duration and the cut is exact: every event with a
    /// sequence number below the recorded `event_seq` watermark is
    /// reflected, every later one is not. [`Oak::from_snapshot_json`]
    /// inverts it byte-identically.
    pub fn snapshot_json(&self) -> Value {
        let table = self.rules.read().expect("rule table lock");
        let guards: Vec<_> = self
            .shards
            .iter()
            .map(|s| s.lock().expect("shard lock"))
            .collect();

        let mut doc = Value::object();
        doc.set("version", 1u64);
        doc.set("shard_count", SHARD_COUNT as u64);
        doc.set("next_rule_id", u64::from(table.next_rule_id));
        doc.set("log_seq", self.log_seq.load(Ordering::SeqCst));
        doc.set("event_seq", self.event_seq.load(Ordering::SeqCst));
        // Emitted only under replication, like the per-event field: a
        // single-node snapshot stays byte-identical to version 1 files.
        let epoch = self.epoch.load(Ordering::Relaxed);
        if epoch > 0 {
            doc.set("epoch", epoch);
        }

        let mut rules = Value::array();
        for (id, rule) in &table.rules {
            let mut row = Value::object();
            row.set("id", u64::from(id.0));
            row.set("spec", crate::spec::format_rule(rule));
            rules.push(row);
        }
        doc.set("rules", rules);

        let mut shards = Value::array();
        for guard in &guards {
            let mut shard_doc = Value::object();
            let mut users: Vec<(&String, &UserState)> = guard.users.iter().collect();
            users.sort_by_key(|(name, _)| *name);
            let mut user_rows = Value::array();
            for (name, state) in users {
                let mut row = Value::object();
                row.set("user", name.as_str());
                row.set("last_seen", state.last_seen.as_millis());
                let mut active = Value::array();
                for (rule, a) in &state.active {
                    let mut entry = Value::object();
                    entry.set("rule", u64::from(rule.0));
                    entry.set("alt", a.alternative_index as u64);
                    entry.set("tried", a.alternatives_tried as u64);
                    entry.set("at", a.activated_at.as_millis());
                    entry.set("severity", crate::events::f64_to_value(a.default_severity));
                    active.push(entry);
                }
                row.set("active", active);
                let mut pending = Value::array();
                for (rule, count) in &state.pending {
                    let mut pair = Value::array();
                    pair.push(u64::from(rule.0));
                    pair.push(u64::from(*count));
                    pending.push(pair);
                }
                row.set("pending", pending);
                user_rows.push(row);
            }
            shard_doc.set("users", user_rows);
            let mut log_rows = Value::array();
            for (seq, entry) in &guard.log {
                let mut row = entry.to_value();
                row.set("seq", *seq);
                log_rows.push(row);
            }
            shard_doc.set("log", log_rows);
            shard_doc.set("aggregates", guard.aggregates.to_value());
            shards.push(shard_doc);
        }
        doc.set("shards", shards);
        doc
    }

    /// Reconstructs an engine from a [`Oak::snapshot_json`] document.
    ///
    /// # Errors
    ///
    /// Describes the first malformed field; also rejects snapshots from
    /// an engine with a different [`SHARD_COUNT`] (user→shard placement
    /// would not line up).
    pub fn from_snapshot_json(config: OakConfig, doc: &Value) -> Result<Oak, String> {
        let field = |key: &str| {
            doc.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing or non-integer {key:?}"))
        };
        let version = field("version")?;
        if version != 1 {
            return Err(format!("unsupported snapshot version {version}"));
        }
        let shard_count = field("shard_count")?;
        if shard_count != SHARD_COUNT as u64 {
            return Err(format!(
                "snapshot has {shard_count} shards, engine has {SHARD_COUNT}"
            ));
        }

        let oak = Oak::new(config);
        oak.log_seq.store(field("log_seq")?, Ordering::SeqCst);
        oak.event_seq.store(field("event_seq")?, Ordering::SeqCst);
        let epoch = doc.get("epoch").and_then(Value::as_u64).unwrap_or(0);
        oak.epoch.store(epoch, Ordering::Relaxed);
        {
            let mut table = oak.rules.write().expect("rule table lock");
            for row in doc
                .get("rules")
                .and_then(Value::as_array)
                .ok_or("missing \"rules\"")?
            {
                let raw = row.get("id").and_then(Value::as_u64).ok_or("bad rule id")?;
                let id = RuleId(u32::try_from(raw).map_err(|_| "rule id out of range")?);
                let spec = row
                    .get("spec")
                    .and_then(Value::as_str)
                    .ok_or("bad rule spec")?;
                let rule = crate::spec::parse_rule(spec).map_err(|e| e.to_string())?;
                let default_surface = RuleSurface::compile(&rule.default_text);
                let alt_surfaces: Vec<RuleSurface> = rule
                    .alternatives
                    .iter()
                    .map(|a| RuleSurface::compile(a))
                    .collect();
                table.index.insert(id, &default_surface, &alt_surfaces);
                table.surfaces.insert(id, (default_surface, alt_surfaces));
                table.rules.insert(id, rule);
            }
            let next = field("next_rule_id")?;
            table.next_rule_id = u32::try_from(next).map_err(|_| "next_rule_id out of range")?;
        }

        let shard_docs = doc
            .get("shards")
            .and_then(Value::as_array)
            .ok_or("missing \"shards\"")?;
        if shard_docs.len() != SHARD_COUNT {
            return Err(format!(
                "snapshot carries {} shard records, expected {SHARD_COUNT}",
                shard_docs.len()
            ));
        }
        for (index, shard_doc) in shard_docs.iter().enumerate() {
            let mut shard = oak.shards[index].lock().expect("shard lock");
            for row in shard_doc
                .get("users")
                .and_then(Value::as_array)
                .ok_or("missing shard \"users\"")?
            {
                let name = row
                    .get("user")
                    .and_then(Value::as_str)
                    .ok_or("bad user row")?;
                let mut state = UserState {
                    last_seen: Instant(
                        row.get("last_seen")
                            .and_then(Value::as_u64)
                            .ok_or("bad last_seen")?,
                    ),
                    ..UserState::default()
                };
                for entry in row
                    .get("active")
                    .and_then(Value::as_array)
                    .ok_or("missing \"active\"")?
                {
                    let rule_raw = entry
                        .get("rule")
                        .and_then(Value::as_u64)
                        .ok_or("bad active rule")?;
                    let int = |key: &str| {
                        entry
                            .get(key)
                            .and_then(Value::as_u64)
                            .ok_or("bad active entry")
                    };
                    state.active.insert(
                        RuleId(u32::try_from(rule_raw).map_err(|_| "active rule out of range")?),
                        ActiveRule {
                            alternative_index: int("alt")? as usize,
                            alternatives_tried: int("tried")? as usize,
                            activated_at: Instant(int("at")?),
                            default_severity: crate::events::f64_from_value(
                                entry.get("severity").ok_or("missing severity")?,
                            )?,
                        },
                    );
                }
                for pair in row
                    .get("pending")
                    .and_then(Value::as_array)
                    .ok_or("missing \"pending\"")?
                {
                    let rule_raw = pair.at(0).and_then(Value::as_u64).ok_or("bad pending")?;
                    let count = pair.at(1).and_then(Value::as_u64).ok_or("bad pending")?;
                    state.pending.insert(
                        RuleId(u32::try_from(rule_raw).map_err(|_| "pending rule out of range")?),
                        u32::try_from(count).map_err(|_| "pending count out of range")?,
                    );
                }
                shard.users.insert(name.to_owned(), state);
            }
            for row in shard_doc
                .get("log")
                .and_then(Value::as_array)
                .ok_or("missing shard \"log\"")?
            {
                let seq = row
                    .get("seq")
                    .and_then(Value::as_u64)
                    .ok_or("bad log seq")?;
                shard.log.push((seq, LogEvent::from_value(row)?));
            }
            shard.aggregates = crate::aggregates::SiteAggregates::from_value(
                shard_doc
                    .get("aggregates")
                    .ok_or("missing \"aggregates\"")?,
            )?;
        }
        Ok(oak)
    }
}

/// Monotonically raises an atomic counter to at least `target`.
fn bump_to(counter: &AtomicU64, target: u64) {
    counter.fetch_max(target, Ordering::Relaxed);
}

/// Expires TTL-bound activations for one user, appending the `Expired`
/// events to the shard log; returns `(log sequence, rule)` per expiry so
/// callers can record the durable event.
fn expire_user_rules(
    rules: &BTreeMap<RuleId, Rule>,
    users: &mut HashMap<String, UserState>,
    log: &mut Vec<(u64, LogEvent)>,
    log_seq: &AtomicU64,
    now: Instant,
    user: &str,
) -> Vec<(u64, RuleId)> {
    let Some(state) = users.get_mut(user) else {
        return Vec::new();
    };
    let mut expired = Vec::new();
    state.active.retain(|rule_id, active| {
        let ttl = match rules.get(rule_id).and_then(|r| r.ttl_ms) {
            Some(ttl) => ttl,
            None => return true,
        };
        if now.since(active.activated_at) >= ttl {
            expired.push(*rule_id);
            false
        } else {
            true
        }
    });
    expired
        .into_iter()
        .map(|rule_id| {
            let seq = log_seq.fetch_add(1, Ordering::Relaxed);
            log.push((
                seq,
                LogEvent {
                    time: now,
                    user: user.to_owned(),
                    rule: rule_id,
                    action: LogAction::Expired,
                },
            ));
            (seq, rule_id)
        })
        .collect()
}

/// Enforces [`OakConfig::log_retention`] on one shard's log slice:
/// drops the oldest entries (per-shard appends are sequence-ordered, so
/// the front is the oldest) once the cap is exceeded. Dropped entries
/// remain durable in the write-ahead log when a sink is attached.
fn trim_shard_log(log: &mut Vec<(u64, LogEvent)>, retention: Option<usize>) {
    if let Some(cap) = retention {
        if log.len() > cap {
            log.drain(..log.len() - cap);
        }
    }
}

/// The stable hash behind user→shard placement ([`SHARD_COUNT`] modulo
/// of this value). Public so cluster partitioning (`oak-cluster`) can
/// key its consistent-hash ring off the *same* bytes: a user's shard and
/// partition are then both pure functions of the user id.
pub fn shard_key(user: &str) -> u64 {
    fnv1a(user)
}

/// FNV-1a over a string — shard selection and user-hash alternative
/// selection share this.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The starting alternative index for an activation, per the rule's
/// selection policy (§4.2.4).
fn initial_alternative(rule: &Rule, user: &str) -> usize {
    match rule.policy.selection {
        crate::rule::SelectionPolicy::Linear => 0,
        crate::rule::SelectionPolicy::UserHash => {
            if rule.alternatives.is_empty() {
                0
            } else {
                (fnv1a(user) % rule.alternatives.len() as u64) as usize
            }
        }
    }
}

/// For a Type 2 rule, derives the `(old_host, new_host)` cache hint from
/// the first external reference in the default and alternative texts.
fn host_swap(default_text: &str, alternative: &str) -> Option<(String, String)> {
    let old = first_host(default_text)?;
    let new = first_host(alternative)?;
    (old != new).then_some((old, new))
}

fn first_host(text: &str) -> Option<String> {
    let doc = Document::parse(text);
    doc.external_refs().first().and_then(|r| url_host(&r.url))
}
