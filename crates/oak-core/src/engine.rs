//! The Oak engine: per-user rule state and page modification.
//!
//! "Both of these processes are performed at the user level. Each client
//! submits its own performance information, which is then considered
//! against its own history. Rules are then activated on a per-client
//! basis, meaning that outgoing pages are modified based on
//! user-perceived performance." (§4)
//!
//! # Concurrency
//!
//! The engine is internally synchronized (every method takes `&self`), so
//! one instance can back a multi-threaded server directly. State is split
//! along the paper's own seams:
//!
//! - the **rule table** (operator rules, their precompiled
//!   [`RuleSurface`]s, and the domain→rule index) is read-mostly and sits
//!   behind one `RwLock`: reports and page serves share it, rule add /
//!   remove takes the write lock;
//! - **user state** (activations, pending counts, per-user GC clock) is
//!   striped across [`SHARD_COUNT`] shards keyed by an FNV-1a hash of the
//!   user id, each behind its own `Mutex`. Requests for different users
//!   contend only when they hash to the same shard.
//!
//! The activity log and the site aggregates are sharded too; [`Oak::log`]
//! stitches shard logs back into one globally ordered history using
//! per-event sequence numbers, and [`Oak::aggregates`] merges the shard
//! accumulators on read.
//!
//! Lock order is rule table before shard, shards in ascending index;
//! no method acquires them in any other order, so the engine cannot
//! deadlock against itself.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

use oak_html::{Document, Rewriter};

use crate::detect::{detect_violators, DetectorConfig, Violation};
use crate::matching::{url_host, MatchLevel, RuleSurface, ScriptFetcher};
use crate::report::PerfReport;
use crate::rule::{Rule, RuleId, RuleType};
use crate::time::Instant;
use crate::{analysis::PageAnalysis, OAK_ALTERNATE_HEADER};

/// How many user-state stripes the engine keeps. Requests for users on
/// different stripes proceed in parallel; 16 is comfortably above the
/// core counts this engine targets while keeping merge-on-read cheap.
pub const SHARD_COUNT: usize = 16;

/// Engine-wide configuration.
#[derive(Clone, Copy, Debug)]
pub struct OakConfig {
    /// Violator-detection parameters (§4.2.1).
    pub detector: DetectorConfig,
    /// How deep connection-dependency matching may look (§4.2.2).
    /// [`MatchLevel::ExternalJs`] — the full mechanism — by default;
    /// lower settings exist for the Fig. 8 ablation.
    pub max_match_level: MatchLevel,
}

impl Default for OakConfig {
    fn default() -> OakConfig {
        OakConfig {
            detector: DetectorConfig::default(),
            max_match_level: MatchLevel::ExternalJs,
        }
    }
}

/// A rule currently active for one user.
#[derive(Clone, Debug, PartialEq)]
pub struct ActiveRule {
    /// Index into the rule's alternatives list. The starting index and
    /// walk order follow the rule's [`crate::rule::SelectionPolicy`] (§4.2.4).
    pub alternative_index: usize,
    /// How many alternatives have been tried so far (including the
    /// current one); the list is exhausted when this reaches its length.
    pub alternatives_tried: usize,
    /// When the rule was activated (TTL counts from here).
    pub activated_at: Instant,
    /// Severity (distance from the median, in deviation units) of the
    /// violation that activated the rule — the quantity rule history
    /// compares when the alternate later violates (§4.2.3).
    pub default_severity: f64,
}

/// Per-user engine state.
#[derive(Clone, Debug, Default)]
struct UserState {
    active: BTreeMap<RuleId, ActiveRule>,
    /// Violations observed per rule that have not yet reached the
    /// activation policy's threshold.
    pending: BTreeMap<RuleId, u32>,
    /// Last time this user reported or was served — the GC clock.
    last_seen: Instant,
}

/// What a call to [`Oak::ingest_report`] did.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IngestOutcome {
    /// Violators detected in this report.
    pub violations: Vec<Violation>,
    /// Rules newly activated for this user.
    pub activated: Vec<RuleId>,
    /// Active rules that advanced to their next alternative because the
    /// current alternate violated.
    pub advanced: Vec<RuleId>,
    /// Rules deactivated (alternate was worse than the recorded default
    /// and no further alternatives remained).
    pub deactivated: Vec<RuleId>,
    /// Rules that expired by TTL during this ingest.
    pub expired: Vec<RuleId>,
}

/// A page after per-user modification.
#[derive(Clone, Debug, PartialEq)]
pub struct ModifiedPage {
    /// The rewritten HTML.
    pub html: String,
    /// Rules that made at least one edit.
    pub applied: Vec<RuleId>,
    /// `(old_host, new_host)` pairs for Type 2 replacements — the value
    /// of the [`OAK_ALTERNATE_HEADER`] cache hint (§4.3).
    pub cache_hints: Vec<(String, String)>,
}

impl ModifiedPage {
    /// The `X-Oak-Alternate` header value, or `None` when no Type 2 rule
    /// applied.
    pub fn alternate_header(&self) -> Option<String> {
        if self.cache_hints.is_empty() {
            return None;
        }
        Some(
            self.cache_hints
                .iter()
                .map(|(old, new)| format!("{old}={new}"))
                .collect::<Vec<_>>()
                .join(","),
        )
    }

    /// Header name/value pair ready to attach to a response.
    pub fn alternate_header_entry(&self) -> Option<(&'static str, String)> {
        self.alternate_header().map(|v| (OAK_ALTERNATE_HEADER, v))
    }
}

/// What happened to a rule for a user, for the activity log (§5 logs
/// "the activation and removal of rules"; Figs. 12/14 and Table 3 are
/// computed from this record).
#[derive(Clone, Debug, PartialEq)]
pub enum LogAction {
    /// Rule became active; carries the triggering violator's IP and the
    /// recorded severity.
    Activated {
        /// The violating server.
        violator_ip: String,
        /// Severity at activation.
        severity: f64,
    },
    /// Rule advanced to its next alternative.
    Advanced {
        /// New alternative index.
        to_index: usize,
    },
    /// Rule deactivated because the alternate under-performed the
    /// recorded default.
    Deactivated,
    /// Rule expired by TTL.
    Expired,
}

/// One activity-log record.
#[derive(Clone, Debug, PartialEq)]
pub struct LogEvent {
    /// When it happened.
    pub time: Instant,
    /// The user whose state changed.
    pub user: String,
    /// The rule affected.
    pub rule: RuleId,
    /// What happened.
    pub action: LogAction,
}

/// The read-mostly half of the engine: operator rules, their precompiled
/// matching surfaces, and the domain→rule inverted index.
#[derive(Debug, Default)]
struct RuleTable {
    rules: BTreeMap<RuleId, Rule>,
    /// Per-rule pre-compiled matching surfaces: `(default, alternatives)`.
    /// Rebuilt on add/remove; reports match against these instead of
    /// re-parsing rule text per violation.
    surfaces: BTreeMap<RuleId, (RuleSurface, Vec<RuleSurface>)>,
    index: DomainIndex,
    next_rule_id: u32,
}

/// Maps violator domains to the rules whose surfaces could possibly match
/// them, so a report consults only candidate rules instead of scanning
/// the whole table.
///
/// Level-1 matching compares violator domains against a surface's direct
/// hosts by equality, and level-2 requires the domain to appear in the
/// rule text with non-host-character boundaries on both sides — which,
/// for a domain made of host characters, means the occurrence is exactly
/// a *maximal run of host characters* in the text. Indexing each
/// surface's direct hosts plus every maximal host-character run of its
/// text therefore loses no level-1/2 match. Level-3 (fetched script
/// bodies) cannot be indexed, so rules that include external scripts go
/// in [`DomainIndex::scan_always`], consulted only when the configured
/// match depth reaches [`MatchLevel::ExternalJs`].
#[derive(Debug, Default)]
struct DomainIndex {
    by_domain: HashMap<String, BTreeSet<RuleId>>,
    /// Rules whose surfaces reference external scripts: their match
    /// surface extends to fetched bodies the index cannot see.
    scan_always: BTreeSet<RuleId>,
}

/// The candidate rules for one report's violators.
enum Candidates {
    /// A violator domain fell outside what the index can answer exactly;
    /// scan the whole table.
    All,
    /// Only these rules can match (ascending id order).
    Subset(BTreeSet<RuleId>),
}

impl DomainIndex {
    /// Indexes one rule's default and alternative surfaces.
    fn insert(&mut self, id: RuleId, default: &RuleSurface, alternatives: &[RuleSurface]) {
        for surface in std::iter::once(default).chain(alternatives) {
            for token in surface.domain_tokens() {
                self.by_domain.entry(token).or_default().insert(id);
            }
            if surface.needs_script_scan() {
                self.scan_always.insert(id);
            }
        }
    }

    /// Rebuilds from scratch (rule removal).
    fn rebuild(surfaces: &BTreeMap<RuleId, (RuleSurface, Vec<RuleSurface>)>) -> DomainIndex {
        let mut index = DomainIndex::default();
        for (id, (default, alternatives)) in surfaces {
            index.insert(*id, default, alternatives);
        }
        index
    }

    /// The rules that could match any of the (already lowercased)
    /// violator domain lists at `max_level`.
    fn candidates(&self, lowered: &[Vec<String>], max_level: MatchLevel) -> Candidates {
        let mut set = BTreeSet::new();
        for domains in lowered {
            for domain in domains {
                // The maximal-run argument only covers domains made of
                // host characters; anything else (unexpected in DNS
                // names, but reports are client-supplied) falls back to
                // the exact full scan.
                if !domain.bytes().all(crate::matching::is_host_char) {
                    return Candidates::All;
                }
                if let Some(ids) = self.by_domain.get(domain) {
                    set.extend(ids.iter().copied());
                }
            }
        }
        if max_level == MatchLevel::ExternalJs {
            set.extend(self.scan_always.iter().copied());
        }
        Candidates::Subset(set)
    }
}

/// One stripe of user-keyed state, plus its slice of the activity log and
/// the site aggregates.
#[derive(Debug, Default)]
struct Shard {
    users: HashMap<String, UserState>,
    /// `(sequence, event)`: sequence numbers come from the engine-global
    /// counter, so merging shard logs by sequence reconstructs the exact
    /// global order of state changes.
    log: Vec<(u64, LogEvent)>,
    aggregates: crate::aggregates::SiteAggregates,
}

/// The Oak server engine.
///
/// Owns the operator's rules, every user's activation state, and the
/// activity log. Transport-agnostic: hand it decoded reports and pages.
/// Internally synchronized — share one instance across threads with
/// `Arc<Oak>`; see the module docs for the locking layout.
#[derive(Debug)]
pub struct Oak {
    config: OakConfig,
    rules: RwLock<RuleTable>,
    shards: Vec<Mutex<Shard>>,
    /// Allocates the per-event sequence numbers that order the sharded
    /// activity log.
    log_seq: AtomicU64,
}

impl Default for Oak {
    fn default() -> Oak {
        Oak::new(OakConfig::default())
    }
}

impl Oak {
    /// An engine with no rules.
    pub fn new(config: OakConfig) -> Oak {
        Oak {
            config,
            rules: RwLock::new(RuleTable::default()),
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            log_seq: AtomicU64::new(0),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &OakConfig {
        &self.config
    }

    /// The shard holding `user`'s state.
    fn shard(&self, user: &str) -> &Mutex<Shard> {
        &self.shards[fnv1a(user) as usize % SHARD_COUNT]
    }

    /// The next global log sequence number.
    fn next_seq(&self) -> u64 {
        self.log_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Registers an operator rule.
    ///
    /// # Errors
    ///
    /// Returns the validation message for internally inconsistent rules
    /// (see [`Rule::validate`]).
    pub fn add_rule(&self, rule: Rule) -> Result<RuleId, String> {
        rule.validate()?;
        let mut table = self.rules.write().expect("rule table lock");
        let id = RuleId(table.next_rule_id);
        table.next_rule_id += 1;
        let default_surface = RuleSurface::compile(&rule.default_text);
        let alt_surfaces: Vec<RuleSurface> = rule
            .alternatives
            .iter()
            .map(|a| RuleSurface::compile(a))
            .collect();
        table.index.insert(id, &default_surface, &alt_surfaces);
        table.surfaces.insert(id, (default_surface, alt_surfaces));
        table.rules.insert(id, rule);
        Ok(id)
    }

    /// All registered rules, in id order.
    pub fn rules(&self) -> impl Iterator<Item = (RuleId, Rule)> {
        let table = self.rules.read().expect("rule table lock");
        table
            .rules
            .iter()
            .map(|(id, r)| (*id, r.clone()))
            .collect::<Vec<_>>()
            .into_iter()
    }

    /// A rule by id.
    pub fn rule(&self, id: RuleId) -> Option<Rule> {
        self.rules
            .read()
            .expect("rule table lock")
            .rules
            .get(&id)
            .cloned()
    }

    /// Removes a rule from the engine, deactivating it for every user and
    /// clearing pending violation counts. Returns the rule if it existed.
    /// The activity log keeps its history (audits must survive rule
    /// turnover); ids are never reused.
    pub fn remove_rule(&self, id: RuleId) -> Option<Rule> {
        let mut table = self.rules.write().expect("rule table lock");
        let rule = table.rules.remove(&id)?;
        table.surfaces.remove(&id);
        table.index = DomainIndex::rebuild(&table.surfaces);
        for shard in &self.shards {
            let mut shard = shard.lock().expect("shard lock");
            for state in shard.users.values_mut() {
                state.active.remove(&id);
                state.pending.remove(&id);
            }
        }
        Some(rule)
    }

    /// The rules currently active for `user`, with their state.
    pub fn active_rules(&self, user: &str) -> Vec<(RuleId, ActiveRule)> {
        self.shard(user)
            .lock()
            .expect("shard lock")
            .users
            .get(user)
            .map(|u| u.active.iter().map(|(id, a)| (*id, a.clone())).collect())
            .unwrap_or_default()
    }

    /// The full activity log, in global event order.
    pub fn log(&self) -> Vec<LogEvent> {
        let mut entries: Vec<(u64, LogEvent)> = Vec::new();
        for shard in &self.shards {
            entries.extend(shard.lock().expect("shard lock").log.iter().cloned());
        }
        entries.sort_by_key(|(seq, _)| *seq);
        entries.into_iter().map(|(_, event)| event).collect()
    }

    /// Users that have submitted at least one report or been force-toggled.
    pub fn user_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard lock").users.len())
            .sum()
    }

    /// Aggregate site performance across every ingested report — the §5
    /// "aggregate site performance" record, rule-independent. Merged
    /// across shards on each call; hold the result rather than re-calling
    /// in a loop.
    pub fn aggregates(&self) -> crate::aggregates::SiteAggregates {
        let mut merged = crate::aggregates::SiteAggregates::new();
        for shard in &self.shards {
            merged.merge(&shard.lock().expect("shard lock").aggregates);
        }
        merged
    }

    /// Drops per-user state not touched since `cutoff`; returns how many
    /// users were pruned. Production hygiene: the paper's per-user
    /// profiles are long-lived but not immortal — a profile whose cookie
    /// will never return (crawler, cleared cookies) must not hold memory
    /// forever. The activity log and aggregates are unaffected.
    pub fn prune_inactive_users(&self, cutoff: Instant) -> usize {
        let mut pruned = 0;
        for shard in &self.shards {
            let mut shard = shard.lock().expect("shard lock");
            let before = shard.users.len();
            shard.users.retain(|_, state| state.last_seen >= cutoff);
            pruned += before - shard.users.len();
        }
        pruned
    }

    /// Processes one client report: detects violators, matches them to
    /// rules, and updates this user's activations per policy, history,
    /// and TTL (§4.2). Transport code that knows the client's address
    /// should prefer [`Oak::ingest_report_from`], which lets
    /// subnet-scoped rules (§4.2.4) apply.
    pub fn ingest_report(
        &self,
        now: Instant,
        report: &PerfReport,
        fetcher: &dyn ScriptFetcher,
    ) -> IngestOutcome {
        self.ingest_report_from(now, report, fetcher, None)
    }

    /// As [`Oak::ingest_report`], with the reporting client's IP (dotted
    /// quad) as observed by the transport. Rules carrying a
    /// [`crate::rule::ClientFilter`] only activate when the IP passes.
    pub fn ingest_report_from(
        &self,
        now: Instant,
        report: &PerfReport,
        fetcher: &dyn ScriptFetcher,
        client_ip: Option<&str>,
    ) -> IngestOutcome {
        let analysis = PageAnalysis::from_report(report);
        let violations = detect_violators(&analysis, &self.config.detector);
        let violator_ips: Vec<String> = violations.iter().map(|v| v.ip.clone()).collect();
        // Violator domains are lowercased once per report; every surface
        // comparison below reuses them.
        let lowered: Vec<Vec<String>> = violations
            .iter()
            .map(|v| v.domains.iter().map(|d| d.to_ascii_lowercase()).collect())
            .collect();
        let mut outcome = IngestOutcome {
            violations: violations.clone(),
            ..IngestOutcome::default()
        };

        let max_level = self.config.max_match_level;
        let table = self.rules.read().expect("rule table lock");
        let candidate_ids: Vec<RuleId> = match table.index.candidates(&lowered, max_level) {
            Candidates::All => table.rules.keys().copied().collect(),
            Candidates::Subset(set) => set.into_iter().collect(),
        };

        let mut shard = self.shard(&report.user).lock().expect("shard lock");
        let shard = &mut *shard;
        shard.aggregates.fold(report, &violator_ips);
        let Shard { users, log, .. } = shard;
        outcome.expired =
            expire_user_rules(&table.rules, users, log, &self.log_seq, now, &report.user);
        // One user-state resolution per report, not one per rule.
        let user = users.entry(report.user.clone()).or_default();
        user.last_seen = now;

        for rule_id in candidate_ids {
            let rule = &table.rules[&rule_id];

            match user.active.get(&rule_id) {
                None => {
                    // Subnet-scoped rules only consider admitted clients.
                    if !rule.policy.client_filter.admits(client_ip) {
                        continue;
                    }
                    // Does any violator tie to the rule's default text?
                    let surface = &table.surfaces[&rule_id].0;
                    let hit = violations.iter().zip(&lowered).find(|(_, domains)| {
                        surface
                            .matches_prelowered(domains, max_level, fetcher)
                            .is_some()
                    });
                    let Some((violation, _)) = hit else { continue };
                    let pending = user.pending.entry(rule_id).or_insert(0);
                    *pending += 1;
                    if *pending < rule.policy.violations_required {
                        continue;
                    }
                    user.pending.remove(&rule_id);
                    user.active.insert(
                        rule_id,
                        ActiveRule {
                            alternative_index: initial_alternative(rule, &report.user),
                            alternatives_tried: 1,
                            activated_at: now,
                            default_severity: violation.kind.severity(),
                        },
                    );
                    outcome.activated.push(rule_id);
                    log.push((
                        self.next_seq(),
                        LogEvent {
                            time: now,
                            user: report.user.clone(),
                            rule: rule_id,
                            action: LogAction::Activated {
                                violator_ip: violation.ip.clone(),
                                severity: violation.kind.severity(),
                            },
                        },
                    ));
                }
                Some(active) => {
                    // Rule history (§4.2.3): has the *current alternate*
                    // become a violator? A violation that the default
                    // text also explains is *not* evidence against the
                    // alternate: pages often keep loading residual
                    // objects from the default domain (dynamic inclusions
                    // Oak cannot rewrite), and alternative text commonly
                    // embeds the default's domain (nested-path mirrors),
                    // so without the exclusion the default's own
                    // violations would flap its replacement off.
                    let (default_surface, alt_surfaces) = &table.surfaces[&rule_id];
                    let alt_surface = match alt_surfaces.get(active.alternative_index) {
                        Some(s) => s,
                        None => continue, // Type 1: nothing to re-evaluate.
                    };
                    let hit = violations.iter().zip(&lowered).find(|(_, domains)| {
                        alt_surface
                            .matches_prelowered(domains, max_level, fetcher)
                            .is_some()
                            && default_surface
                                .matches_prelowered(domains, max_level, fetcher)
                                .is_none()
                    });
                    let Some((violation, _)) = hit else { continue };
                    let alt_severity = violation.kind.severity();
                    if alt_severity < active.default_severity {
                        // The alternate, though violating now, is still
                        // closer to the median than the default was:
                        // "chooses the action which minimizes this
                        // distance".
                        continue;
                    }
                    let has_next = active.alternatives_tried < rule.alternatives.len();
                    let user_active = user.active.get_mut(&rule_id).expect("just read");
                    if has_next {
                        // Advance per the selection policy: linear walks
                        // increment; user-hash walks wrap so every
                        // alternative is visited once.
                        user_active.alternative_index =
                            (user_active.alternative_index + 1) % rule.alternatives.len();
                        user_active.alternatives_tried += 1;
                        // The new alternate starts fresh against the
                        // original default's recorded distance.
                        outcome.advanced.push(rule_id);
                        let to_index = user_active.alternative_index;
                        log.push((
                            self.next_seq(),
                            LogEvent {
                                time: now,
                                user: report.user.clone(),
                                rule: rule_id,
                                action: LogAction::Advanced { to_index },
                            },
                        ));
                    } else {
                        user.active.remove(&rule_id);
                        outcome.deactivated.push(rule_id);
                        log.push((
                            self.next_seq(),
                            LogEvent {
                                time: now,
                                user: report.user.clone(),
                                rule: rule_id,
                                action: LogAction::Deactivated,
                            },
                        ));
                    }
                }
            }
        }
        outcome
    }

    /// Applies the user's active rules to an outgoing page (§4.3).
    ///
    /// Rules are applied in id order; a rule whose edit would overlap an
    /// earlier rule's edit is skipped for the conflicting occurrence (the
    /// operator wrote conflicting rules; Oak keeps serving rather than
    /// failing the page). Sub-rules run after their parent applied at
    /// least one edit.
    pub fn modify_page(&self, now: Instant, user: &str, path: &str, html: &str) -> ModifiedPage {
        let unmodified = |html: &str| ModifiedPage {
            html: html.to_owned(),
            applied: Vec::new(),
            cache_hints: Vec::new(),
        };

        let table = self.rules.read().expect("rule table lock");
        let mut shard = self.shard(user).lock().expect("shard lock");
        let shard = &mut *shard;
        let Shard { users, log, .. } = shard;
        expire_user_rules(&table.rules, users, log, &self.log_seq, now, user);
        let Some(state) = users.get_mut(user) else {
            return unmodified(html);
        };
        state.last_seen = now;
        // Fast path: a user with no active rule in scope gets the page
        // back untouched, with no rewriter construction. (Most users run
        // rule-free most of the time — §5's steady state.)
        if state
            .active
            .keys()
            .all(|rule_id| !table.rules[rule_id].scope.applies_to(path))
        {
            return unmodified(html);
        }

        let mut rewriter = Rewriter::new(html);
        let mut applied = Vec::new();
        let mut cache_hints = Vec::new();
        let mut sub_rule_batches: Vec<&Rule> = Vec::new();

        for (rule_id, active) in &state.active {
            let rule = &table.rules[rule_id];
            if !rule.scope.applies_to(path) {
                continue;
            }
            let edits = match rule.rule_type {
                RuleType::Remove => rewriter.delete_all(&rule.default_text),
                RuleType::ReplaceIdentical | RuleType::ReplaceDifferent => {
                    let alternative = &rule.alternatives[active.alternative_index];
                    rewriter.replace_all(&rule.default_text, alternative)
                }
            };
            if edits == 0 {
                continue;
            }
            applied.push(*rule_id);
            if !rule.sub_rules.is_empty() {
                sub_rule_batches.push(rule);
            }
            if rule.rule_type == RuleType::ReplaceIdentical {
                let alternative = &rule.alternatives[active.alternative_index];
                if let Some(pair) = host_swap(&rule.default_text, alternative) {
                    cache_hints.push(pair);
                }
            }
        }

        let mut html = rewriter.apply().expect("validated edits");
        // Sub-rules are plain find/replace over the already-rewritten page.
        for rule in sub_rule_batches {
            for sub in &rule.sub_rules {
                if !sub.find.is_empty() {
                    html = html.replace(&sub.find, &sub.replace);
                }
            }
        }

        ModifiedPage {
            html,
            applied,
            cache_hints,
        }
    }

    /// Forces a rule active for a user regardless of reports — the
    /// evaluation's "Oak with all rules activated" condition (§5.3).
    ///
    /// # Panics
    ///
    /// Panics if `rule_id` is unknown.
    pub fn force_activate(&self, now: Instant, user: &str, rule_id: RuleId) {
        let table = self.rules.read().expect("rule table lock");
        let rule = table
            .rules
            .get(&rule_id)
            .unwrap_or_else(|| panic!("unknown {rule_id}"));
        let index = initial_alternative(rule, user);
        self.shard(user)
            .lock()
            .expect("shard lock")
            .users
            .entry(user.to_owned())
            .or_default()
            .active
            .insert(
                rule_id,
                ActiveRule {
                    alternative_index: index,
                    alternatives_tried: 1,
                    activated_at: now,
                    default_severity: f64::INFINITY,
                },
            );
    }

    /// Deactivates a rule for a user (no log entry; operator action).
    pub fn force_deactivate(&self, user: &str, rule_id: RuleId) {
        if let Some(state) = self
            .shard(user)
            .lock()
            .expect("shard lock")
            .users
            .get_mut(user)
        {
            state.active.remove(&rule_id);
        }
    }
}

/// Expires TTL-bound activations for one user; returns the expired rule
/// ids and appends the `Expired` events to the shard log.
fn expire_user_rules(
    rules: &BTreeMap<RuleId, Rule>,
    users: &mut HashMap<String, UserState>,
    log: &mut Vec<(u64, LogEvent)>,
    log_seq: &AtomicU64,
    now: Instant,
    user: &str,
) -> Vec<RuleId> {
    let Some(state) = users.get_mut(user) else {
        return Vec::new();
    };
    let mut expired = Vec::new();
    state.active.retain(|rule_id, active| {
        let ttl = match rules.get(rule_id).and_then(|r| r.ttl_ms) {
            Some(ttl) => ttl,
            None => return true,
        };
        if now.since(active.activated_at) >= ttl {
            expired.push(*rule_id);
            false
        } else {
            true
        }
    });
    for rule_id in &expired {
        log.push((
            log_seq.fetch_add(1, Ordering::Relaxed),
            LogEvent {
                time: now,
                user: user.to_owned(),
                rule: *rule_id,
                action: LogAction::Expired,
            },
        ));
    }
    expired
}

/// FNV-1a over a string — shard selection and user-hash alternative
/// selection share this.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The starting alternative index for an activation, per the rule's
/// selection policy (§4.2.4).
fn initial_alternative(rule: &Rule, user: &str) -> usize {
    match rule.policy.selection {
        crate::rule::SelectionPolicy::Linear => 0,
        crate::rule::SelectionPolicy::UserHash => {
            if rule.alternatives.is_empty() {
                0
            } else {
                (fnv1a(user) % rule.alternatives.len() as u64) as usize
            }
        }
    }
}

/// For a Type 2 rule, derives the `(old_host, new_host)` cache hint from
/// the first external reference in the default and alternative texts.
fn host_swap(default_text: &str, alternative: &str) -> Option<(String, String)> {
    let old = first_host(default_text)?;
    let new = first_host(alternative)?;
    (old != new).then_some((old, new))
}

fn first_host(text: &str) -> Option<String> {
    let doc = Document::parse(text);
    doc.external_refs().first().and_then(|r| url_host(&r.url))
}
