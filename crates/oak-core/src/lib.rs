//! The Oak system: user-targeted web performance.
//!
//! This crate implements the paper's contribution end to end:
//!
//! 1. **Performance reports** ([`report`]): the compact HAR-like documents
//!    clients POST back — per object: URL, resolved server IP, byte size,
//!    download time (§4, §5 Implementation).
//! 2. **Performance analysis** ([`analysis`]): grouping report entries by
//!    the IP the client connected to, tracking all domain names involved,
//!    and averaging small-object times (< 50 KB) and large-object
//!    throughputs (≥ 50 KB) per server (§4.2).
//! 3. **Violator detection** ([`detect`]): the Median-Absolute-Deviation
//!    outlier test — a server is a violator when its small-object time
//!    exceeds `median + k·MAD` or its large-object throughput falls below
//!    `median − k·MAD`, with `k = 2` (§4.2.1).
//! 4. **Rules** ([`rule`], [`spec`]): the operator vocabulary — Type 1
//!    (remove), Type 2 (same object, alternative source), Type 3
//!    (different object), each with TTL, scope, sub-rules, a list of
//!    alternatives, and activation policy (§4.1, §4.2.4).
//! 5. **Connection-dependency matching** ([`matching`]): deciding whether
//!    a rule *caused* the connection to a violating server, at three
//!    escalating levels — direct `src` inclusion, domain text match, and
//!    one-level external-JavaScript expansion (§4.2.2, Fig. 8).
//! 6. **The engine** ([`engine`]): per-user state — rule activation,
//!    violation-count policies, TTL expiry, the rule-history
//!    distance-minimization rollback (§4.2.3) — and per-user page
//!    modification with the cache-hint response header (§4.3).
//!
//! The crate is transport- and testbed-agnostic: it never opens sockets
//! and never looks at a clock it isn't handed. `oak-server` binds it to
//! HTTP; `oak-client`/`oak-net` bind it to the simulated Internet.
//!
//! # Examples
//!
//! ```
//! use oak_core::prelude::*;
//!
//! // An operator rule: swap jQuery to a mirror if its CDN misbehaves.
//! let rule = Rule::replace_identical(
//!     r#"<script src="http://cdn-a.example/jquery.js">"#,
//!     [r#"<script src="http://cdn-b.example/jquery.js">"#],
//! );
//! let oak = Oak::new(OakConfig::default());
//! let rule_id = oak.add_rule(rule).unwrap();
//!
//! // A client report in which cdn-a.example is clearly the odd one out.
//! let mut report = PerfReport::new("u-1", "/index.html");
//! report.push(ObjectTiming::new("http://cdn-a.example/jquery.js", "10.0.0.1", 30_000, 900.0));
//! report.push(ObjectTiming::new("http://img.example/a.png", "10.0.0.2", 30_000, 80.0));
//! report.push(ObjectTiming::new("http://img.example/b.png", "10.0.0.2", 30_000, 95.0));
//! report.push(ObjectTiming::new("http://fonts.example/f.woff", "10.0.0.3", 30_000, 70.0));
//! report.push(ObjectTiming::new("http://api.example/d.js", "10.0.0.4", 30_000, 90.0));
//!
//! let outcome = oak.ingest_report(Instant::ZERO, &report, &NoFetch);
//! assert_eq!(outcome.activated, vec![rule_id]);
//!
//! // The user's next page is rewritten to the mirror.
//! let page = r#"<script src="http://cdn-a.example/jquery.js"></script>"#;
//! let modified = oak.modify_page(Instant::ZERO, "u-1", "/index.html", page);
//! assert!(modified.html.contains("cdn-b.example"));
//! ```

pub mod aggregates;
pub mod analysis;
pub mod audit;
pub mod cohort;
pub mod detect;
pub mod engine;
pub mod events;
pub mod fetch;
pub mod intern;
pub mod matching;
pub mod obs;
pub mod report;
pub mod rule;
pub mod spec;
pub mod stats;
pub mod wire;

mod time;

pub use time::Instant;

/// The response header Oak uses to tell clients that an object moved hosts
/// under a Type 2 rule, so a cached copy fetched from the old host remains
/// usable (§4.3). Value format: comma-separated `old-host=new-host` pairs.
pub const OAK_ALTERNATE_HEADER: &str = "X-Oak-Alternate";

/// One-stop imports for typical use.
pub mod prelude {
    pub use crate::analysis::{PageAnalysis, ServerStats};
    pub use crate::cohort::{CohortBaselines, CohortConfig};
    pub use crate::detect::{
        DetectorConfig, DetectorPolicy, OutlierMethod, Violation, ViolationKind,
    };
    pub use crate::engine::{IngestOutcome, ModifiedPage, Oak, OakConfig};
    pub use crate::fetch::{FetchPolicy, FetchSnapshot, FetchStats, ResilientFetcher};
    pub use crate::matching::{MatchLevel, NoFetch, ScriptFetcher};
    pub use crate::obs::CoreMetrics;
    pub use crate::report::{DeviceClass, ObjectTiming, PerfReport};
    pub use crate::rule::{
        ActivationPolicy, ClientFilter, Rule, RuleId, RuleType, SelectionPolicy, SubRule,
    };
    pub use crate::Instant;
    pub use crate::OAK_ALTERNATE_HEADER;
}

#[cfg(test)]
mod tests;
