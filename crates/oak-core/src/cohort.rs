//! Per-device-cohort violator baselines.
//!
//! The paper's detector compares servers *within one report* (§4.2.1),
//! which silently assumes every server is equally expensive for every
//! client. PAPERS.md says otherwise: mobile CPUs pay an order of
//! magnitude more to execute script than desktops, and ad chains are
//! almost pure script — so a low-end phone's report makes every healthy
//! ad server look like an outlier, and the global test blames servers
//! for the client's own silicon.
//!
//! The cohort policy ([`crate::detect::DetectorPolicy::Cohort`]) keeps
//! the paper's test as a *candidate generator* and adds a second,
//! conjunctive condition: the server must also deviate from what **this
//! device cohort** has historically observed from **this server**. A
//! slow-for-everyone-on-mobile ad server sits exactly at its cohort
//! baseline and is exonerated; a server that suddenly degrades exceeds
//! its own history for every cohort and stays flagged.
//!
//! Two consequences, both deliberate:
//!
//! - **False positives only shrink.** A cohort flag requires a global
//!   flag first, so `FP(cohort) ⊆ FP(global)` holds by construction —
//!   which is what makes the CI gate ("cohort strictly below global on
//!   the mobile mix") and the oak-sim device invariant ("never blame a
//!   healthy server for device-induced slowness") robust rather than
//!   statistical luck.
//! - **Chronic outliers are forgiven.** A server that has been slow
//!   since before its baseline warmed — or one whose impairment
//!   persists long enough to *become* the baseline — stops being
//!   flagged. That is a real false-negative cost, paid knowingly and
//!   measured honestly by `bench_detector` (BENCH_detector.json carries
//!   both FP and FN rates for both policies).
//!
//! Baselines are bounded (ring buffers per key, a hard cap on tracked
//! keys) and deliberately *not* durable: they are advisory statistics,
//! not state the engine's event log must replay, so snapshots and the
//! WAL stay byte-identical with the seam in place. After recovery the
//! baselines are cold and the cohort detector abstains until they
//! re-warm — conservative in exactly the direction the policy already
//! leans.

use std::collections::HashMap;

use crate::analysis::PageAnalysis;
use crate::detect::{detect_violators, DetectorConfig, Violation, ViolationKind};
use crate::report::DeviceClass;
use crate::stats::median_and_mad;

/// Cohort-baseline parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CohortConfig {
    /// Observations a `(cohort, server)` baseline needs before the
    /// cohort test will confirm a flag. Below this the baseline is cold
    /// and the policy abstains (drops the candidate flag).
    pub min_samples: usize,
    /// Ring capacity per `(cohort, server)` metric: old observations
    /// age out, so a migrated server or repriced path re-baselines
    /// within this many reports.
    pub ring: usize,
    /// Multiplicative guard band on the historical median. A candidate
    /// survives only past `guard × median + k·MAD` (times) or under
    /// `(median − k·MAD) / guard` (throughput). Diurnal load swings and
    /// per-fetch noise move a healthy server well under 2×; a real
    /// impairment (3–8× in the simulated world, and in the paper's
    /// Fig. 9 injections) clears it.
    pub guard: f64,
    /// Hard cap on tracked `(cohort, server)` keys. Past it, new keys
    /// are not created — their candidates are dropped as cold — so a
    /// hostile report stream cannot grow this table without bound.
    pub max_keys: usize,
}

impl Default for CohortConfig {
    fn default() -> CohortConfig {
        CohortConfig {
            min_samples: 8,
            ring: 64,
            guard: 2.0,
            max_keys: 4096,
        }
    }
}

/// A fixed-capacity ring of `f64` observations.
#[derive(Clone, Debug, Default)]
struct Ring {
    samples: Vec<f64>,
    /// Overwrite position once `samples` reaches capacity.
    next: usize,
}

impl Ring {
    fn push(&mut self, value: f64, capacity: usize) {
        if self.samples.len() < capacity {
            self.samples.push(value);
        } else {
            self.samples[self.next] = value;
            self.next = (self.next + 1) % capacity.max(1);
        }
    }
}

/// What one cohort has seen from one server.
#[derive(Clone, Debug, Default)]
struct ServerBaseline {
    /// Per-report average small-object times, ms.
    small_ms: Ring,
    /// Per-report average large-object throughputs, kbit/s.
    large_kbps: Ring,
}

/// The cohort detector's working state: per-(device class, server IP)
/// observation rings. Owned by the engine behind a mutex; one
/// `detect_and_update` call per ingested report.
#[derive(Debug, Default)]
pub struct CohortBaselines {
    config: CohortConfig,
    per: HashMap<(DeviceClass, String), ServerBaseline>,
}

impl CohortBaselines {
    /// Empty baselines with the given parameters.
    pub fn new(config: CohortConfig) -> CohortBaselines {
        CohortBaselines {
            config,
            per: HashMap::new(),
        }
    }

    /// Tracked `(cohort, server)` keys — bounded by
    /// [`CohortConfig::max_keys`].
    pub fn tracked_keys(&self) -> usize {
        self.per.len()
    }

    /// Runs cohort-gated detection over one analyzed report, then folds
    /// the report's per-server observations into `device`'s baselines.
    ///
    /// The candidate set is exactly [`detect_violators`]'s output; each
    /// candidate survives only when its `(device, ip)` baseline is warm
    /// and the observation exceeds the guarded historical envelope.
    /// Updating *after* testing keeps the current observation out of
    /// its own baseline.
    pub fn detect_and_update(
        &mut self,
        analysis: &PageAnalysis,
        device: DeviceClass,
        detector: &DetectorConfig,
    ) -> Vec<Violation> {
        let mut violations = detect_violators(analysis, detector);
        violations.retain(|v| self.confirms(device, v, detector));
        self.update(analysis, device);
        violations
    }

    /// Whether the cohort baseline confirms a candidate flag.
    fn confirms(&self, device: DeviceClass, candidate: &Violation, det: &DetectorConfig) -> bool {
        let Some(baseline) = self.per.get(&(device, candidate.ip.clone())) else {
            return false;
        };
        let (ring, observed) = match candidate.kind {
            ViolationKind::SlowSmallObjects { observed_ms, .. } => {
                (&baseline.small_ms, observed_ms)
            }
            ViolationKind::LowThroughput { observed_kbps, .. } => {
                (&baseline.large_kbps, observed_kbps)
            }
        };
        if ring.samples.len() < self.config.min_samples {
            return false;
        }
        let Some((median, mad)) = median_and_mad(&ring.samples) else {
            return false;
        };
        match candidate.kind {
            ViolationKind::SlowSmallObjects { .. } => {
                observed > self.config.guard * median + det.threshold * mad
            }
            ViolationKind::LowThroughput { .. } => {
                observed < (median - det.threshold * mad).max(0.0) / self.config.guard
            }
        }
    }

    /// Folds one report's per-server averages into `device`'s rings.
    fn update(&mut self, analysis: &PageAnalysis, device: DeviceClass) {
        for server in analysis.iter() {
            let key = (device, server.ip.clone());
            // At capacity, untracked servers stay cold (and thus
            // unflaggable by this policy) rather than unbounded.
            if !self.per.contains_key(&key) && self.per.len() >= self.config.max_keys {
                continue;
            }
            let baseline = self.per.entry(key).or_default();
            if let Some(t) = server.avg_small_time_ms() {
                baseline.small_ms.push(t, self.config.ring);
            }
            if let Some(k) = server.avg_large_tput_kbps() {
                baseline.large_kbps.push(k, self.config.ring);
            }
        }
    }
}
