//! Resilient external-script fetching.
//!
//! Level-3 connection-dependency matching fetches external JavaScript
//! bodies (§4.2.2), which puts third-party hosts on the report-ingest
//! path — and third-party hosts are routinely slow or dead. A naive
//! fetcher lets one hung host stall `ingest_report_from` indefinitely
//! and block a whole engine shard. [`ResilientFetcher`] decorates any
//! [`ScriptFetcher`] with the standard defenses:
//!
//! - a **per-attempt deadline**: the inner fetch runs on a helper thread
//!   and is abandoned when the deadline passes, so ingest latency is
//!   bounded no matter what the host does;
//! - **bounded retries** with deterministic, jittered exponential
//!   backoff (jitter is a hash of URL and attempt — reruns replay
//!   identically);
//! - a **negative-result cache** with TTL: a URL that just failed is not
//!   re-fetched on every report;
//! - a **per-host circuit breaker**: after N consecutive failures the
//!   host's circuit opens and fetches are skipped outright; after a
//!   cooldown one half-open probe is let through — success closes the
//!   circuit, failure re-opens it.
//!
//! All decisions use the engine-style [`Instant`] clock the embedder
//! installs, so breaker transitions are testable with a fake clock. The
//! outcomes land in [`FetchStats`], which the Oak service exports under
//! `fetch` in `/oak/stats`. None of this changes engine semantics: a
//! skipped or failed fetch is exactly a [`NoFetch`]-style `None`, which
//! matching already treats as "surface unavailable".
//!
//! [`NoFetch`]: crate::matching::NoFetch
//!
//! [`FlakyFetcher`] is the deterministic counterpart for tests and
//! benches: a scripted schedule of successes, failures, and hangs.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::matching::{url_host, ScriptFetcher};
use crate::Instant;

/// Tuning for [`ResilientFetcher`].
#[derive(Clone, Copy, Debug)]
pub struct FetchPolicy {
    /// Wall-clock budget per fetch attempt; `None` trusts the inner
    /// fetcher to return promptly (no helper thread is spawned).
    pub deadline: Option<Duration>,
    /// Extra attempts after the first failure (0 = fail fast).
    pub retries: u32,
    /// Base backoff between attempts; attempt `k` sleeps
    /// `base · 2^k + jitter(url, k)` where jitter < base.
    pub backoff_base: Duration,
    /// How long (engine-clock ms) a failed URL stays in the negative
    /// cache; 0 disables the cache.
    pub negative_ttl_ms: u64,
    /// Consecutive failures on one host that open its circuit.
    pub breaker_threshold: u32,
    /// How long (engine-clock ms) an open circuit skips fetches before
    /// letting a half-open probe through.
    pub breaker_cooldown_ms: u64,
}

impl Default for FetchPolicy {
    fn default() -> FetchPolicy {
        FetchPolicy {
            deadline: Some(Duration::from_millis(500)),
            retries: 1,
            backoff_base: Duration::from_millis(10),
            negative_ttl_ms: 30_000,
            breaker_threshold: 3,
            breaker_cooldown_ms: 10_000,
        }
    }
}

/// Fetch-outcome counters (atomics; share via [`Arc`]).
#[derive(Debug, Default)]
pub struct FetchStats {
    attempts: AtomicU64,
    successes: AtomicU64,
    failures: AtomicU64,
    timeouts: AtomicU64,
    negative_cache_hits: AtomicU64,
    breaker_open_skips: AtomicU64,
    breaker_opens: AtomicU64,
}

/// A point-in-time copy of [`FetchStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FetchSnapshot {
    /// Individual attempts handed to the inner fetcher.
    pub attempts: u64,
    /// Attempts that returned a script body.
    pub successes: u64,
    /// Attempts that returned nothing (including timeouts).
    pub failures: u64,
    /// Attempts abandoned at the deadline (also counted in `failures`).
    pub timeouts: u64,
    /// Fetches answered `None` straight from the negative cache.
    pub negative_cache_hits: u64,
    /// Fetches skipped because the host's circuit was open.
    pub breaker_open_skips: u64,
    /// Times any host's circuit transitioned closed → open.
    pub breaker_opens: u64,
}

impl FetchStats {
    /// Reads every counter.
    pub fn snapshot(&self) -> FetchSnapshot {
        FetchSnapshot {
            attempts: self.attempts.load(Ordering::Relaxed),
            successes: self.successes.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            negative_cache_hits: self.negative_cache_hits.load(Ordering::Relaxed),
            breaker_open_skips: self.breaker_open_skips.load(Ordering::Relaxed),
            breaker_opens: self.breaker_opens.load(Ordering::Relaxed),
        }
    }
}

/// Circuit-breaker bookkeeping for one host.
#[derive(Clone, Copy, Debug, Default)]
struct HostCircuit {
    consecutive_failures: u32,
    /// `Some(t)` while open: opened at `t`; cleared when a probe closes
    /// the circuit.
    opened_at: Option<Instant>,
}

/// What the breaker allows for one fetch.
enum Admission {
    /// Circuit closed: fetch normally.
    Closed,
    /// Circuit open and cooling down: skip.
    Skip,
    /// Cooldown over: this call is the half-open probe.
    Probe,
}

/// The decorator. See the module docs for the state machine.
///
/// The inner fetcher travels in an [`Arc`] because deadline enforcement
/// hands it to a helper thread; a timed-out attempt is abandoned (the
/// thread finishes in the background and its late result is dropped).
pub struct ResilientFetcher {
    inner: Arc<dyn ScriptFetcher + Send + Sync>,
    policy: FetchPolicy,
    clock: Box<dyn Fn() -> Instant + Send + Sync>,
    stats: Arc<FetchStats>,
    /// URL → engine-clock expiry of the remembered failure.
    negative: Mutex<HashMap<String, Instant>>,
    /// Host → breaker state.
    circuits: Mutex<HashMap<String, HostCircuit>>,
    /// Attempt-duration instrumentation: a nanosecond clock (finer than
    /// the engine `Instant` above) and the histogram attempts land in.
    obs: Option<(oak_obs::Clock, Arc<oak_obs::Histogram>)>,
}

/// Bound on remembered failures, mirroring
/// [`crate::matching::CachingFetcher::CAPACITY`]'s stop-admitting policy.
const NEGATIVE_CAPACITY: usize = 4_096;

impl ResilientFetcher {
    /// Wraps `inner` with `policy`, a zero clock, and fresh stats. Call
    /// [`ResilientFetcher::with_clock`] to install a real clock — TTL
    /// and cooldowns never elapse under the zero clock.
    pub fn new(
        inner: impl ScriptFetcher + Send + Sync + 'static,
        policy: FetchPolicy,
    ) -> ResilientFetcher {
        ResilientFetcher {
            inner: Arc::new(inner),
            policy,
            clock: Box::new(|| Instant::ZERO),
            stats: Arc::new(FetchStats::default()),
            negative: Mutex::new(HashMap::new()),
            circuits: Mutex::new(HashMap::new()),
            obs: None,
        }
    }

    /// Installs the clock that drives TTLs and breaker cooldowns (wall
    /// time in deployments, a fake clock in tests).
    pub fn with_clock(
        mut self,
        clock: impl Fn() -> Instant + Send + Sync + 'static,
    ) -> ResilientFetcher {
        self.clock = Box::new(clock);
        self
    }

    /// Installs attempt-duration instrumentation: each inner fetch
    /// attempt's wall time (measured with `clock`, nanoseconds) is
    /// recorded into `histogram` in microseconds.
    pub fn with_obs(
        mut self,
        clock: oak_obs::Clock,
        histogram: Arc<oak_obs::Histogram>,
    ) -> ResilientFetcher {
        self.obs = Some((clock, histogram));
        self
    }

    /// The shared counters (hand a clone to whatever renders stats).
    pub fn stats_handle(&self) -> Arc<FetchStats> {
        Arc::clone(&self.stats)
    }

    /// A point-in-time copy of the counters.
    pub fn stats(&self) -> FetchSnapshot {
        self.stats.snapshot()
    }

    /// True while `host`'s circuit is open (including a pending probe).
    pub fn circuit_open(&self, host: &str) -> bool {
        self.circuits
            .lock()
            .expect("circuit lock")
            .get(host)
            .is_some_and(|c| c.opened_at.is_some())
    }

    /// Consults the breaker for `host` at time `now`.
    fn admit(&self, host: &str, now: Instant) -> Admission {
        let mut circuits = self.circuits.lock().expect("circuit lock");
        let circuit = circuits.entry(host.to_owned()).or_default();
        match circuit.opened_at {
            None => Admission::Closed,
            Some(opened) if now.since(opened) < self.policy.breaker_cooldown_ms => Admission::Skip,
            Some(_) => Admission::Probe,
        }
    }

    /// Records an attempt outcome against `host`'s circuit.
    fn record(&self, host: &str, now: Instant, success: bool) {
        let mut circuits = self.circuits.lock().expect("circuit lock");
        let circuit = circuits.entry(host.to_owned()).or_default();
        if success {
            *circuit = HostCircuit::default();
            return;
        }
        circuit.consecutive_failures += 1;
        let newly_open = circuit.opened_at.is_none()
            && circuit.consecutive_failures >= self.policy.breaker_threshold;
        if newly_open {
            self.stats.breaker_opens.fetch_add(1, Ordering::Relaxed);
        }
        if newly_open || circuit.opened_at.is_some() {
            // Opening, or a failed half-open probe: (re)start the cooldown.
            circuit.opened_at = Some(now);
        }
    }

    /// One attempt against the inner fetcher, deadline enforced.
    fn attempt(&self, url: &str) -> Option<String> {
        self.stats.attempts.fetch_add(1, Ordering::Relaxed);
        let _span = oak_obs::span("fetch");
        let start = self.obs.as_ref().map(|(clock, _)| clock());
        let result = match self.policy.deadline {
            None => self.inner.fetch_script(url),
            Some(deadline) => {
                let (tx, rx) = std::sync::mpsc::channel();
                let inner = Arc::clone(&self.inner);
                let url = url.to_owned();
                std::thread::spawn(move || {
                    let _ = tx.send(inner.fetch_script(&url));
                });
                match rx.recv_timeout(deadline) {
                    Ok(result) => result,
                    Err(_) => {
                        self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                        None
                    }
                }
            }
        };
        match &result {
            Some(_) => self.stats.successes.fetch_add(1, Ordering::Relaxed),
            None => self.stats.failures.fetch_add(1, Ordering::Relaxed),
        };
        if let (Some((clock, histogram)), Some(start)) = (&self.obs, start) {
            histogram.record(oak_obs::elapsed_us(start, clock()));
        }
        result
    }

    /// Deterministic backoff before retry attempt `k` (k ≥ 1).
    fn backoff(&self, url: &str, attempt: u32) -> Duration {
        let base = self.policy.backoff_base;
        if base.is_zero() {
            return base;
        }
        let exp = base.saturating_mul(1 << attempt.min(6));
        let jitter_ms = fnv1a(url.as_bytes(), attempt) % (base.as_millis().max(1) as u64);
        exp + Duration::from_millis(jitter_ms)
    }

    fn remember_failure(&self, url: &str, now: Instant) {
        if self.policy.negative_ttl_ms == 0 {
            return;
        }
        let mut negative = self.negative.lock().expect("negative cache lock");
        if negative.len() >= NEGATIVE_CAPACITY {
            // Cheap pressure valve: drop expired entries; if everything
            // is still live, stop admitting rather than evict.
            negative.retain(|_, expiry| *expiry > now);
            if negative.len() >= NEGATIVE_CAPACITY {
                return;
            }
        }
        negative.insert(url.to_owned(), now + self.policy.negative_ttl_ms);
    }

    fn failure_remembered(&self, url: &str, now: Instant) -> bool {
        let mut negative = self.negative.lock().expect("negative cache lock");
        match negative.get(url) {
            Some(expiry) if now < *expiry => true,
            Some(_) => {
                negative.remove(url);
                false
            }
            None => false,
        }
    }
}

impl ScriptFetcher for ResilientFetcher {
    fn fetch_script(&self, url: &str) -> Option<String> {
        let now = (self.clock)();
        if self.failure_remembered(url, now) {
            self.stats
                .negative_cache_hits
                .fetch_add(1, Ordering::Relaxed);
            return None;
        }
        // Relative URLs have no host to break on; attempt them directly.
        let host = url_host(url).unwrap_or_default();
        match self.admit(&host, now) {
            Admission::Skip => {
                self.stats
                    .breaker_open_skips
                    .fetch_add(1, Ordering::Relaxed);
                return None;
            }
            Admission::Probe => {
                // Exactly one attempt, no retries: the probe either heals
                // the circuit or re-arms the cooldown.
                let result = self.attempt(url);
                self.record(&host, now, result.is_some());
                if result.is_none() {
                    self.remember_failure(url, now);
                }
                return result;
            }
            Admission::Closed => {}
        }
        let mut attempt_index = 0;
        loop {
            let result = self.attempt(url);
            self.record(&host, now, result.is_some());
            if result.is_some() {
                return result;
            }
            if attempt_index >= self.policy.retries || self.circuit_open(&host) {
                self.remember_failure(url, now);
                return None;
            }
            attempt_index += 1;
            std::thread::sleep(self.backoff(url, attempt_index));
        }
    }
}

/// FNV-1a over the URL plus the attempt counter — the deterministic
/// jitter source (same URL + attempt ⇒ same jitter, different URLs
/// de-synchronize).
fn fnv1a(bytes: &[u8], seed: u32) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes.iter().chain(seed.to_le_bytes().iter()) {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One step of a [`FlakyFetcher`] script.
#[derive(Clone, Debug)]
pub enum FetchStep {
    /// Return this body.
    Ok(String),
    /// Return `None` immediately.
    Fail,
    /// Sleep this long, then return `None` — a hanging host. Combined
    /// with a [`ResilientFetcher`] deadline shorter than the hang, this
    /// exercises the timeout path.
    Hang(Duration),
}

/// A [`ScriptFetcher`] that follows a script, for deterministic
/// resilience tests and benches. Steps are consumed in order; when the
/// script runs out, every further fetch repeats the final step (an empty
/// script always fails).
pub struct FlakyFetcher {
    script: Mutex<VecDeque<FetchStep>>,
    last: Mutex<FetchStep>,
    calls: AtomicU64,
}

impl FlakyFetcher {
    /// A fetcher that will follow `script`.
    pub fn new(script: impl IntoIterator<Item = FetchStep>) -> FlakyFetcher {
        FlakyFetcher {
            script: Mutex::new(script.into_iter().collect()),
            last: Mutex::new(FetchStep::Fail),
            calls: AtomicU64::new(0),
        }
    }

    /// How many fetches have been asked of this fetcher.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

impl ScriptFetcher for FlakyFetcher {
    fn fetch_script(&self, _url: &str) -> Option<String> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        let step = match self.script.lock().expect("flaky script lock").pop_front() {
            Some(step) => {
                *self.last.lock().expect("flaky last lock") = step.clone();
                step
            }
            None => self.last.lock().expect("flaky last lock").clone(),
        };
        match step {
            FetchStep::Ok(body) => Some(body),
            FetchStep::Fail => None,
            FetchStep::Hang(how_long) => {
                std::thread::sleep(how_long);
                None
            }
        }
    }
}
