//! Violator detection.
//!
//! "We then label all servers whose performance was worse than the median
//! (i.e., longer time, lower throughput) by more than twice the MAD as
//! being potential violators." (§4.2.1) Both tests run when a server has
//! both small and large objects; either suffices to label it.

use crate::analysis::PageAnalysis;
use crate::stats::{mean, median_and_mad, stddev};

/// Which criterion anchors the outlier test.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum OutlierMethod {
    /// Median ± k·MAD — the paper's choice: robust, because the statistic
    /// must not be dragged by the outliers it hunts.
    #[default]
    Mad,
    /// Mean ± k·σ — kept as an ablation; the experiment harness shows it
    /// under-detects when one extreme server inflates σ.
    StdDev,
    /// Fixed absolute bounds — the alternative §6 discusses and rejects:
    /// "Oak could employ absolute conditions of performance, for example
    /// a maximum time or minimum throughput for a specific object".
    /// Requires operator-tuned parameters and mislabels every server for
    /// clients on slow links; kept as an ablation.
    Absolute {
        /// Small objects slower than this are violators, ms.
        max_small_ms: f64,
        /// Large objects below this throughput are violators, kbit/s.
        min_large_kbps: f64,
    },
}

/// Which detection policy the engine runs on each ingested report.
///
/// The policy is a seam, not a parameter tweak: [`DetectorPolicy::Global`]
/// is the paper's within-report test, stateless across reports;
/// [`DetectorPolicy::Cohort`] layers per-(device-class, server) historical
/// baselines on top (see [`crate::cohort`]) so that slowness every report
/// from a cohort exhibits — mobile CPUs paying for ad-chain script, not a
/// failing server — stops being flagged. Selected by `oak-serve
/// --detector`; the default is the paper's detector, and with the default
/// every operator surface is byte-identical to the pre-seam engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DetectorPolicy {
    /// The paper's §4.2.1 test: per-report medians over all servers.
    #[default]
    Global,
    /// Global test gated by per-cohort baselines: a server is only
    /// blamed when it is an outlier within the report *and* it deviates
    /// from what this device cohort has historically seen from it.
    Cohort,
}

impl DetectorPolicy {
    /// The CLI spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            DetectorPolicy::Global => "global",
            DetectorPolicy::Cohort => "cohort",
        }
    }

    /// Parses the CLI spelling; `None` for anything else.
    pub fn parse(text: &str) -> Option<DetectorPolicy> {
        match text {
            "global" => Some(DetectorPolicy::Global),
            "cohort" => Some(DetectorPolicy::Cohort),
            _ => None,
        }
    }
}

/// Detection parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DetectorConfig {
    /// The `k` in `median + k·MAD`; the paper uses 2.
    pub threshold: f64,
    /// Deviation statistic (MAD by default).
    pub method: OutlierMethod,
    /// Minimum number of servers on a page for detection to run; with
    /// fewer there is no meaningful population to deviate from.
    pub min_servers: usize,
}

impl Default for DetectorConfig {
    /// The paper's parameters: `2 × MAD`, at least 3 servers.
    fn default() -> DetectorConfig {
        DetectorConfig {
            threshold: 2.0,
            method: OutlierMethod::Mad,
            min_servers: 3,
        }
    }
}

/// Why a server was flagged.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ViolationKind {
    /// Average small-object time exceeded `median + k·dev`.
    SlowSmallObjects {
        /// The server's average small-object time, ms.
        observed_ms: f64,
        /// Median of all servers' averages, ms.
        median_ms: f64,
        /// The deviation statistic (MAD or σ), ms.
        deviation_ms: f64,
    },
    /// Average large-object throughput fell below `median − k·dev`.
    LowThroughput {
        /// The server's average large-object throughput, kbit/s.
        observed_kbps: f64,
        /// Median of all servers' averages, kbit/s.
        median_kbps: f64,
        /// The deviation statistic (MAD or σ), kbit/s.
        deviation_kbps: f64,
    },
}

impl ViolationKind {
    /// Distance past the median, in units of the deviation statistic —
    /// the "difference between the median performance and the performance
    /// of the violator" that rule history records (§4.2.3), normalized so
    /// time- and throughput-based violations compare on one scale.
    pub fn severity(&self) -> f64 {
        match *self {
            ViolationKind::SlowSmallObjects {
                observed_ms,
                median_ms,
                deviation_ms,
            } => (observed_ms - median_ms) / deviation_ms.max(f64::EPSILON),
            ViolationKind::LowThroughput {
                observed_kbps,
                median_kbps,
                deviation_kbps,
            } => (median_kbps - observed_kbps) / deviation_kbps.max(f64::EPSILON),
        }
    }
}

/// A flagged server.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// The violating server's IP.
    pub ip: String,
    /// Domains that resolved to that IP in this report.
    pub domains: Vec<String>,
    /// Why it was flagged (first failing test when both apply; small-object
    /// time is checked first, matching the paper's presentation order).
    pub kind: ViolationKind,
}

/// Runs violator detection over an analyzed page.
///
/// Returns violations in IP order. Servers lacking the relevant object
/// class are simply not tested on that axis; "a violation of either type
/// will result in the server being labeled as a violator".
pub fn detect_violators(analysis: &PageAnalysis, config: &DetectorConfig) -> Vec<Violation> {
    if analysis.server_count() < config.min_servers {
        return Vec::new();
    }
    if let OutlierMethod::Absolute {
        max_small_ms,
        min_large_kbps,
    } = config.method
    {
        return detect_absolute(analysis, max_small_ms, min_large_kbps);
    }

    // Population statistics over per-server averages.
    let small_avgs: Vec<f64> = analysis
        .iter()
        .filter_map(|s| s.avg_small_time_ms())
        .collect();
    let large_avgs: Vec<f64> = analysis
        .iter()
        .filter_map(|s| s.avg_large_tput_kbps())
        .collect();

    let small_stats = center_and_deviation(&small_avgs, config.method);
    let large_stats = center_and_deviation(&large_avgs, config.method);

    let mut violations = Vec::new();
    for server in analysis.iter() {
        let small_violation = match (server.avg_small_time_ms(), small_stats) {
            (Some(observed), Some((center, dev))) if dev > 0.0 => (observed
                > center + config.threshold * dev)
                .then_some(ViolationKind::SlowSmallObjects {
                    observed_ms: observed,
                    median_ms: center,
                    deviation_ms: dev,
                }),
            _ => None,
        };
        let large_violation = match (server.avg_large_tput_kbps(), large_stats) {
            (Some(observed), Some((center, dev))) if dev > 0.0 => (observed
                < center - config.threshold * dev)
                .then_some(ViolationKind::LowThroughput {
                    observed_kbps: observed,
                    median_kbps: center,
                    deviation_kbps: dev,
                }),
            _ => None,
        };
        if let Some(kind) = small_violation.or(large_violation) {
            violations.push(Violation {
                ip: server.ip.clone(),
                domains: server.domains.iter().cloned().collect(),
                kind,
            });
        }
    }
    violations
}

fn center_and_deviation(values: &[f64], method: OutlierMethod) -> Option<(f64, f64)> {
    match method {
        OutlierMethod::Mad => median_and_mad(values),
        OutlierMethod::StdDev => Some((mean(values)?, stddev(values)?)),
        OutlierMethod::Absolute { .. } => unreachable!("absolute handled before statistics"),
    }
}

/// Fixed-bound detection (the §6 ablation). Violation records reuse the
/// relative-detection fields: the bound plays the role of the center, and
/// half the bound the deviation, so severities stay comparable-ish across
/// methods.
fn detect_absolute(
    analysis: &PageAnalysis,
    max_small_ms: f64,
    min_large_kbps: f64,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    for server in analysis.iter() {
        let small = server
            .avg_small_time_ms()
            .filter(|&t| t > max_small_ms)
            .map(|observed| ViolationKind::SlowSmallObjects {
                observed_ms: observed,
                median_ms: max_small_ms,
                deviation_ms: max_small_ms / 2.0,
            });
        let large = server
            .avg_large_tput_kbps()
            .filter(|&t| t < min_large_kbps)
            .map(|observed| ViolationKind::LowThroughput {
                observed_kbps: observed,
                median_kbps: min_large_kbps,
                deviation_kbps: min_large_kbps / 2.0,
            });
        if let Some(kind) = small.or(large) {
            violations.push(Violation {
                ip: server.ip.clone(),
                domains: server.domains.iter().cloned().collect(),
                kind,
            });
        }
    }
    violations
}
