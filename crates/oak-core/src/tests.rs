//! Unit and property tests for the Oak core.

mod aggregates_tests;
mod analysis_tests;
mod audit_tests;
mod cohort_tests;
mod detect_tests;
mod engine_props;
mod engine_tests;
mod fetch_tests;
mod intern_tests;
mod matching_tests;
mod policy_tests;
mod report_tests;
mod spec_tests;
mod stats_tests;
mod wire_tests;
