//! FNV-bucketed string interning for domain/host names.
//!
//! Ingest touches the same handful of domain strings millions of times:
//! every violating report names the same CDN hosts, every fold carries
//! the same per-server domain sets, and the rule table indexes the same
//! rule domains. Interning collapses those to shared `Arc<str>` handles —
//! one allocation the first time a (case-folded) name is seen, a hash +
//! refcount bump every time after.
//!
//! Two hostile-input properties are load-bearing:
//!
//! - [`Interner::intern_lower`] hashes and compares *as if lowercased*
//!   without allocating, so the per-report cost for an already-known
//!   domain is zero allocations regardless of the case the client sent.
//! - The table is capacity-capped: past [`Interner::CAPACITY`] distinct
//!   strings, new names are still returned as fresh `Arc`s but are not
//!   retained, so a client spraying unique domains cannot grow the
//!   coordinator's memory without bound.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Lock stripes; must be a power of two. Matches the engine's shard
/// count so contention behaves the same under the bench workloads.
const STRIPES: usize = 16;

/// A concurrent, capacity-capped intern table keyed by FNV-1a of the
/// lowercased bytes.
pub struct Interner {
    stripes: Vec<Mutex<HashMap<u64, Vec<Arc<str>>>>>,
    interned: AtomicUsize,
}

impl Default for Interner {
    fn default() -> Self {
        Interner::new()
    }
}

impl Interner {
    /// Most distinct strings retained. A real deployment sees thousands
    /// of domains; 65,536 leaves headroom while bounding hostile growth
    /// (beyond it, interning degrades to plain allocation, never errors).
    pub const CAPACITY: usize = 65_536;

    /// An empty interner.
    pub fn new() -> Interner {
        Interner {
            stripes: (0..STRIPES).map(|_| Mutex::new(HashMap::new())).collect(),
            interned: AtomicUsize::new(0),
        }
    }

    /// Returns the shared lowercase form of `s`, allocating only the
    /// first time this name (compared ASCII-case-insensitively) is seen.
    pub fn intern_lower(&self, s: &str) -> Arc<str> {
        let hash = fnv1a_lower(s);
        let stripe = &self.stripes[(hash as usize) & (STRIPES - 1)];
        let mut table = stripe.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(bucket) = table.get(&hash) {
            if let Some(hit) = bucket.iter().find(|c| eq_lower(c, s)) {
                return Arc::clone(hit);
            }
        }
        let fresh: Arc<str> = if s.bytes().any(|b| b.is_ascii_uppercase()) {
            Arc::from(s.to_ascii_lowercase())
        } else {
            Arc::from(s)
        };
        if self.interned.load(Ordering::Relaxed) < Interner::CAPACITY {
            self.interned.fetch_add(1, Ordering::Relaxed);
            table.entry(hash).or_default().push(Arc::clone(&fresh));
        }
        fresh
    }

    /// Distinct strings currently retained (diagnostics and tests).
    pub fn len(&self) -> usize {
        self.interned.load(Ordering::Relaxed)
    }

    /// True when nothing has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// FNV-1a over the ASCII-lowercased bytes of `s`, no allocation.
fn fnv1a_lower(s: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        hash ^= u64::from(b.to_ascii_lowercase());
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Is `candidate` (already lowercase) the ASCII-case-folded form of `s`?
fn eq_lower(candidate: &str, s: &str) -> bool {
    candidate.len() == s.len()
        && candidate
            .bytes()
            .zip(s.bytes())
            .all(|(c, b)| c == b.to_ascii_lowercase())
}
