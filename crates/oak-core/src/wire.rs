//! The binary report wire format (`application/x-oak-report`).
//!
//! JSON stays the lingua franca for debuggability, but the hot ingest
//! path gets a length-prefixed binary encoding that both ends handle
//! cheaply: the client writes length-prefixed raw bytes (no escaping
//! pass), and the decoder *slices* the request body — url/ip/user/page
//! bytes are borrowed from the buffer and only copied into the
//! [`PerfReport`] after every bound check has passed.
//!
//! Layout (all multi-byte integers are LEB128 varints unless noted;
//! DESIGN.md §12 is the normative spec):
//!
//! ```text
//! u8      version          — 0x01 or WIRE_VERSION (0x02)
//! u8      device           — version 0x02 only: the DeviceClass wire
//!                            byte (0 unknown, 1 desktop, 2 mid-mobile,
//!                            3 low-end-mobile); v1 frames have no
//!                            device byte and decode as `unknown`
//! varint  user_len         + user_len bytes of UTF-8
//! varint  page_len         + page_len bytes of UTF-8
//! varint  entry_count      — must be ≤ PerfReport::MAX_ENTRIES
//! entry_count × {
//!   varint url_len         + url_len bytes of UTF-8
//!   varint ip_len          + ip_len bytes of UTF-8
//!   varint bytes           — must be ≤ PerfReport::MAX_BYTES
//!   f64le  time_ms         — must be finite, 0 ≤ t ≤ MAX_TIME_MS
//! }
//! ```
//!
//! Version negotiation is encoder-side: a report whose device class is
//! `unknown` is emitted as a v1 frame, byte-identical to what pre-device
//! encoders produced, so old decoders keep accepting everything a
//! device-free client sends. Only a report that actually carries a
//! cohort hint pays the v2 byte — and only v2-aware decoders see those.
//!
//! Decoding enforces exactly the bounds [`PerfReport::from_json`]
//! enforces, with the same error text, so the two encodings accept the
//! same set of reports. Every length is validated against the bytes
//! actually remaining before any allocation is sized from it — a lying
//! prefix or an entry-count bomb costs the attacker nothing but an error.

use crate::report::{DeviceClass, ObjectTiming, PerfReport, ReportDecodeError};

/// The negotiated media type for binary reports.
pub const OAK_REPORT_CONTENT_TYPE: &str = "application/x-oak-report";

/// The current wire version: v2 added the device-class byte.
pub const WIRE_VERSION: u8 = 0x02;

/// The original device-free layout; still decoded, and still what the
/// encoder emits for reports without a device hint.
pub const WIRE_VERSION_V1: u8 = 0x01;

/// Smallest possible encoded entry: two empty strings (1 varint byte
/// each), a 1-byte `bytes` varint, and the fixed 8-byte time. Used to
/// cap speculative `Vec` capacity from a claimed entry count.
const MIN_ENTRY_BYTES: usize = 11;

/// Encodes `report` into the binary wire format.
pub fn encode(report: &PerfReport) -> Vec<u8> {
    // Exact-ish preallocation: strings + worst-case varints + fixed parts.
    let mut out = Vec::with_capacity(
        2 + 10
            + report.user.len()
            + report.page.len()
            + 20
            + report
                .entries
                .iter()
                .map(|e| e.url.len() + e.ip.len() + 20 + 8)
                .sum::<usize>(),
    );
    if report.device == DeviceClass::Unknown {
        // No hint to carry: stay on the v1 layout so the frame is
        // byte-identical to pre-device encoders.
        out.push(WIRE_VERSION_V1);
    } else {
        out.push(WIRE_VERSION);
        out.push(report.device.wire_byte());
    }
    put_bytes(&mut out, report.user.as_bytes());
    put_bytes(&mut out, report.page.as_bytes());
    put_varint(&mut out, report.entries.len() as u64);
    for e in &report.entries {
        put_bytes(&mut out, e.url.as_bytes());
        put_bytes(&mut out, e.ip.as_bytes());
        put_varint(&mut out, e.bytes);
        out.extend_from_slice(&e.time_ms.to_le_bytes());
    }
    out
}

/// Decodes a binary report, enforcing the same bounds as
/// [`PerfReport::from_json`].
///
/// # Errors
///
/// Returns [`ReportDecodeError`] on a version mismatch, truncated or
/// trailing bytes, lengths exceeding the buffer, invalid UTF-8, or any
/// out-of-bounds field value. Never panics, and never allocates more
/// than the input could legitimately describe.
pub fn decode(bytes: &[u8]) -> Result<PerfReport, ReportDecodeError> {
    let mut r = Reader { bytes, pos: 0 };
    let version = r.u8("version")?;
    let device = match version {
        WIRE_VERSION_V1 => DeviceClass::Unknown,
        WIRE_VERSION => {
            let byte = r.u8("device")?;
            DeviceClass::from_wire_byte(byte).ok_or_else(|| {
                ReportDecodeError::new(format!("unknown device class 0x{byte:02x}"))
            })?
        }
        _ => {
            return Err(ReportDecodeError::new(format!(
                "unsupported wire version 0x{version:02x} \
                 (expected 0x{WIRE_VERSION_V1:02x} or 0x{WIRE_VERSION:02x})"
            )))
        }
    };
    // Borrowed slices only — nothing is copied until the whole frame
    // has validated.
    let user = r.str("user")?;
    let page = r.str("page")?;
    let count = r.varint("entry count")? as usize;
    if count > PerfReport::MAX_ENTRIES {
        return Err(ReportDecodeError::new(format!(
            "{} entries exceed the {} limit",
            count,
            PerfReport::MAX_ENTRIES
        )));
    }
    // A lying count can still pass the MAX_ENTRIES check; never size the
    // Vec beyond what the remaining bytes could actually hold.
    let mut entries = Vec::with_capacity(count.min(r.remaining() / MIN_ENTRY_BYTES));
    for i in 0..count {
        let url = r.str("url").map_err(|e| e.in_entry(i))?;
        let ip = r.str("ip").map_err(|e| e.in_entry(i))?;
        let object_bytes = r.varint("bytes").map_err(|e| e.in_entry(i))?;
        if object_bytes > PerfReport::MAX_BYTES {
            return Err(ReportDecodeError::new(format!(
                "entry {i}: bytes not a non-negative integer within 2^53"
            )));
        }
        let time_ms = r.f64("time_ms").map_err(|e| e.in_entry(i))?;
        if !time_ms.is_finite() || !(0.0..=PerfReport::MAX_TIME_MS).contains(&time_ms) {
            return Err(ReportDecodeError::new(format!(
                "entry {i}: time_ms not a finite non-negative number within bounds"
            )));
        }
        entries.push(ObjectTiming::new(url, ip, object_bytes, time_ms));
    }
    if r.remaining() != 0 {
        return Err(ReportDecodeError::new(format!(
            "{} trailing bytes after the last entry",
            r.remaining()
        )));
    }
    Ok(PerfReport {
        user: user.to_owned(),
        page: page.to_owned(),
        device,
        entries,
    })
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_varint(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// A bounds-checked cursor over the frame. All reads are borrowed.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn u8(&mut self, what: &str) -> Result<u8, ReportDecodeError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| truncated(what, self.pos))?;
        self.pos += 1;
        Ok(b)
    }

    /// LEB128, at most 10 bytes, rejecting bits past u64.
    fn varint(&mut self, what: &str) -> Result<u64, ReportDecodeError> {
        let mut value = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.u8(what)?;
            let payload = u64::from(byte & 0x7f);
            if shift == 63 && payload > 1 {
                return Err(ReportDecodeError::new(format!(
                    "{what} varint overflows 64 bits at byte {}",
                    self.pos
                )));
            }
            value |= payload << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(ReportDecodeError::new(format!(
            "{what} varint longer than 10 bytes at byte {}",
            self.pos
        )))
    }

    /// A varint length prefix followed by that many UTF-8 bytes, borrowed.
    fn str(&mut self, what: &str) -> Result<&'a str, ReportDecodeError> {
        let len = self.varint(what)? as usize;
        if len > self.remaining() {
            return Err(ReportDecodeError::new(format!(
                "{what} length {len} exceeds the {} bytes remaining",
                self.remaining()
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + len];
        self.pos += len;
        std::str::from_utf8(slice)
            .map_err(|_| ReportDecodeError::new(format!("{what} is not valid UTF-8")))
    }

    fn f64(&mut self, what: &str) -> Result<f64, ReportDecodeError> {
        if self.remaining() < 8 {
            return Err(truncated(what, self.pos));
        }
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.bytes[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(f64::from_le_bytes(raw))
    }
}

fn truncated(what: &str, pos: usize) -> ReportDecodeError {
    ReportDecodeError::new(format!("frame truncated reading {what} at byte {pos}"))
}
