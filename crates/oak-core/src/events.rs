//! The replayable event API: every engine mutation as a serializable record.
//!
//! The engine's observable state — rules, per-user activations, the
//! activity log, the site aggregates — is worth weeks of client reports
//! (§3), so it must survive restarts. This module defines the durable
//! form of that state's *history*: each `&self` mutation on
//! [`crate::engine::Oak`] emits one [`EngineEvent`], tagged with a global
//! sequence number, to an optional [`EventSink`] (in production, the
//! `oak-store` write-ahead log). Replaying the events in sequence order
//! onto a fresh engine — [`crate::engine::Oak::apply_event`] — rebuilds
//! the exact pre-crash observables.
//!
//! # Distilled effects, not raw inputs
//!
//! Events record *decisions*, not inputs. An ingest's outcome depends on
//! the external-script fetcher ([`crate::matching::ScriptFetcher`]),
//! which is not available (and not deterministic) at recovery time, so
//! [`IngestEffect`] carries the resolved per-rule transitions and the
//! distilled aggregate folds instead of the client report. Replay then
//! needs no detector, no matcher, and no fetcher — it is a pure state
//! application, deterministic by construction. The only re-derived
//! quantity is an activation's starting alternative index, which is a
//! pure function of the rule's selection policy and the user id
//! ([`crate::rule::SelectionPolicy`]).
//!
//! # Sequencing and shards
//!
//! Event sequence numbers are allocated while the emitting operation
//! still holds its engine locks, so for any two events that touch the
//! same lock (same user shard, or the rule table), sequence order equals
//! application order. Events for different shards commute, which is what
//! lets the WAL keep one segment per shard and merge by sequence number
//! on recovery.
//!
//! # Float fidelity
//!
//! Recovery must be byte-identical, so `f64` fields (severities, timing
//! samples, aggregate sums) are encoded as JSON *strings* via Rust's
//! shortest-round-trip formatter rather than as JSON numbers: this
//! preserves every finite value exactly and survives the non-finite
//! severities that [`crate::engine::Oak::force_activate`] records.

use oak_json::Value;

use crate::aggregates::ServerFold;
use crate::engine::{LogAction, LogEvent};
use crate::rule::{Rule, RuleId};
use crate::spec;
use crate::time::Instant;

/// Where emitted events go. `oak-store` implements this over per-shard
/// WAL segments; tests implement it over a `Mutex<Vec<_>>`.
///
/// `record` is called while the engine still holds the locks the
/// mutation took, so per-shard calls are already serialized in sequence
/// order; implementations must not call back into the engine.
pub trait EventSink: Send + Sync {
    /// Persists one event. `shard` is the user-state stripe the event
    /// belongs to, or `None` for rule-table (engine-global) events.
    fn record(&self, shard: Option<usize>, event: &SequencedEvent);
}

/// An [`EngineEvent`] with its global sequence number.
///
/// (No `PartialEq`: [`Rule`] scopes carry compiled patterns that do not
/// compare; tests compare events through [`SequencedEvent::to_value`].)
#[derive(Clone, Debug)]
pub struct SequencedEvent {
    /// Global event order; replay applies events ascending.
    pub seq: u64,
    /// Replication epoch the event was emitted under (see
    /// [`crate::engine::Oak::set_epoch`]). Single-node deployments leave
    /// it 0; `oak-cluster` stamps the primary's lease epoch so a
    /// follower tailing the WAL stream can reject frames from a deposed
    /// primary. Events journaled before the field existed decode as
    /// epoch 0.
    pub epoch: u64,
    /// What happened.
    pub event: EngineEvent,
}

/// One engine mutation, in replayable (fetcher-free) form.
#[derive(Clone, Debug)]
pub enum EngineEvent {
    /// An operator rule was registered under `id`.
    RuleAdded {
        /// The id the engine allocated.
        id: RuleId,
        /// The rule, exactly as validated.
        rule: Rule,
    },
    /// A rule was removed (activations and pending counts cleared).
    RuleRemoved {
        /// The removed rule.
        id: RuleId,
    },
    /// A client report was ingested; see [`IngestEffect`].
    Ingest(IngestEffect),
    /// [`crate::engine::Oak::force_activate`] ran.
    ForceActivate {
        /// Activation time.
        time: Instant,
        /// The user toggled.
        user: String,
        /// The rule forced active.
        rule: RuleId,
    },
    /// [`crate::engine::Oak::force_deactivate`] removed an activation.
    ForceDeactivate {
        /// The user toggled.
        user: String,
        /// The rule deactivated.
        rule: RuleId,
    },
    /// Serving a page expired TTL-bound activations
    /// (`modify_page` is otherwise read-only and unlogged).
    ServeExpiry {
        /// Serve time.
        time: Instant,
        /// The user served.
        user: String,
        /// `(log sequence, rule)` per expiry, in log order.
        expired: Vec<(u64, RuleId)>,
    },
    /// [`crate::engine::Oak::prune_inactive_users`] dropped these users
    /// from one shard. Recording the resolved user list (not the cutoff)
    /// keeps replay exact even though per-user `last_seen` clocks are
    /// only approximately reconstructed.
    Pruned {
        /// The users removed.
        users: Vec<String>,
    },
}

/// The distilled, replayable effect of one [`crate::engine::Oak::ingest_report`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IngestEffect {
    /// Ingest time (becomes the user's `last_seen`).
    pub time: Instant,
    /// The reporting user.
    pub user: String,
    /// Per-server aggregate increments (see
    /// [`crate::aggregates::SiteAggregates::fold_distilled`]).
    pub folds: Vec<ServerFold>,
    /// Rules whose pending-violation counter incremented without
    /// reaching the activation quota.
    pub pending: Vec<RuleId>,
    /// `(log sequence, event)` for every activity-log record this ingest
    /// appended — activations, advances, deactivations, TTL expiries —
    /// in append order. Replay applies both the log append and the
    /// user-state transition each record implies.
    pub records: Vec<(u64, LogEvent)>,
}

/// Exact `f64` encoding: Rust's shortest-round-trip decimal, as a JSON
/// string (survives `inf`; JSON numbers cannot).
pub(crate) fn f64_to_value(v: f64) -> Value {
    Value::String(format!("{v}"))
}

/// Inverse of [`f64_to_value`].
pub(crate) fn f64_from_value(v: &Value) -> Result<f64, String> {
    let s = v.as_str().ok_or("expected float string")?;
    s.parse::<f64>()
        .map_err(|e| format!("bad float {s:?}: {e}"))
}

fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-integer {key:?}"))
}

fn str_field<'v>(v: &'v Value, key: &str) -> Result<&'v str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing or non-string {key:?}"))
}

fn rule_id_field(v: &Value, key: &str) -> Result<RuleId, String> {
    let raw = u64_field(v, key)?;
    u32::try_from(raw)
        .map(RuleId)
        .map_err(|_| format!("rule id {raw} out of range"))
}

fn array_field<'v>(v: &'v Value, key: &str) -> Result<&'v [Value], String> {
    v.get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| format!("missing or non-array {key:?}"))
}

impl LogEvent {
    /// Encodes one activity-log record (without its sequence number).
    pub fn to_value(&self) -> Value {
        let mut doc = Value::object();
        doc.set("time", self.time.as_millis());
        doc.set("user", self.user.as_str());
        doc.set("rule", u64::from(self.rule.0));
        let mut action = Value::object();
        match &self.action {
            LogAction::Activated {
                violator_ip,
                severity,
            } => {
                action.set("k", "activated");
                action.set("ip", violator_ip.as_str());
                action.set("severity", f64_to_value(*severity));
            }
            LogAction::Advanced { to_index } => {
                action.set("k", "advanced");
                action.set("to", *to_index as u64);
            }
            LogAction::Deactivated => action.set("k", "deactivated"),
            LogAction::Expired => action.set("k", "expired"),
        }
        doc.set("action", action);
        doc
    }

    /// Inverse of [`LogEvent::to_value`].
    ///
    /// # Errors
    ///
    /// Describes the first malformed field.
    pub fn from_value(v: &Value) -> Result<LogEvent, String> {
        let action_value = v.get("action").ok_or("missing \"action\"")?;
        let action = match str_field(action_value, "k")? {
            "activated" => LogAction::Activated {
                violator_ip: str_field(action_value, "ip")?.to_owned(),
                severity: f64_from_value(action_value.get("severity").ok_or("missing severity")?)?,
            },
            "advanced" => LogAction::Advanced {
                to_index: u64_field(action_value, "to")? as usize,
            },
            "deactivated" => LogAction::Deactivated,
            "expired" => LogAction::Expired,
            other => return Err(format!("unknown log action {other:?}")),
        };
        Ok(LogEvent {
            time: Instant(u64_field(v, "time")?),
            user: str_field(v, "user")?.to_owned(),
            rule: rule_id_field(v, "rule")?,
            action,
        })
    }
}

impl ServerFold {
    /// Encodes one aggregate fold.
    pub fn to_value(&self) -> Value {
        let mut doc = Value::object();
        let mut domains = Value::array();
        for d in &self.domains {
            domains.push(&**d);
        }
        doc.set("domains", domains);
        doc.set("objects", self.objects);
        doc.set("bytes", self.bytes);
        let mut small = Value::array();
        for &t in &self.small_times_ms {
            small.push(f64_to_value(t));
        }
        doc.set("small", small);
        let mut large = Value::array();
        for &t in &self.large_tputs_kbps {
            large.push(f64_to_value(t));
        }
        doc.set("large", large);
        doc.set("violated", self.violated);
        doc
    }

    /// Inverse of [`ServerFold::to_value`].
    ///
    /// # Errors
    ///
    /// Describes the first malformed field.
    pub fn from_value(v: &Value) -> Result<ServerFold, String> {
        let mut fold = ServerFold {
            domains: Vec::new(),
            objects: u64_field(v, "objects")?,
            bytes: u64_field(v, "bytes")?,
            small_times_ms: Vec::new(),
            large_tputs_kbps: Vec::new(),
            violated: v
                .get("violated")
                .and_then(Value::as_bool)
                .ok_or("missing \"violated\"")?,
        };
        for d in array_field(v, "domains")? {
            fold.domains
                .push(std::sync::Arc::from(d.as_str().ok_or("non-string domain")?));
        }
        for t in array_field(v, "small")? {
            fold.small_times_ms.push(f64_from_value(t)?);
        }
        for t in array_field(v, "large")? {
            fold.large_tputs_kbps.push(f64_from_value(t)?);
        }
        Ok(fold)
    }
}

fn records_to_value(records: &[(u64, LogEvent)]) -> Value {
    let mut out = Value::array();
    for (seq, event) in records {
        let mut rec = event.to_value();
        rec.set("seq", *seq);
        out.push(rec);
    }
    out
}

fn records_from_value(v: &Value, key: &str) -> Result<Vec<(u64, LogEvent)>, String> {
    let mut out = Vec::new();
    for rec in array_field(v, key)? {
        out.push((u64_field(rec, "seq")?, LogEvent::from_value(rec)?));
    }
    Ok(out)
}

impl SequencedEvent {
    /// Encodes the event as a self-describing JSON object — the WAL frame
    /// payload.
    pub fn to_value(&self) -> Value {
        let mut doc = Value::object();
        doc.set("seq", self.seq);
        if self.epoch > 0 {
            doc.set("epoch", self.epoch);
        }
        match &self.event {
            EngineEvent::RuleAdded { id, rule } => {
                doc.set("t", "rule_added");
                doc.set("id", u64::from(id.0));
                // Rules travel in the §4.1 spec format, which round-trips
                // every field (alternatives, TTL, scope, policies,
                // sub-rules) through an existing, tested codec.
                doc.set("spec", spec::format_rule(rule));
            }
            EngineEvent::RuleRemoved { id } => {
                doc.set("t", "rule_removed");
                doc.set("id", u64::from(id.0));
            }
            EngineEvent::Ingest(effect) => {
                doc.set("t", "ingest");
                doc.set("time", effect.time.as_millis());
                doc.set("user", effect.user.as_str());
                let mut folds = Value::array();
                for fold in &effect.folds {
                    folds.push(fold.to_value());
                }
                doc.set("folds", folds);
                let mut pending = Value::array();
                for id in &effect.pending {
                    pending.push(u64::from(id.0));
                }
                doc.set("pending", pending);
                doc.set("records", records_to_value(&effect.records));
            }
            EngineEvent::ForceActivate { time, user, rule } => {
                doc.set("t", "force_activate");
                doc.set("time", time.as_millis());
                doc.set("user", user.as_str());
                doc.set("rule", u64::from(rule.0));
            }
            EngineEvent::ForceDeactivate { user, rule } => {
                doc.set("t", "force_deactivate");
                doc.set("user", user.as_str());
                doc.set("rule", u64::from(rule.0));
            }
            EngineEvent::ServeExpiry {
                time,
                user,
                expired,
            } => {
                doc.set("t", "serve_expiry");
                doc.set("time", time.as_millis());
                doc.set("user", user.as_str());
                let mut list = Value::array();
                for (seq, rule) in expired {
                    let mut pair = Value::array();
                    pair.push(*seq);
                    pair.push(u64::from(rule.0));
                    list.push(pair);
                }
                doc.set("expired", list);
            }
            EngineEvent::Pruned { users } => {
                doc.set("t", "pruned");
                let mut list = Value::array();
                for user in users {
                    list.push(user.as_str());
                }
                doc.set("users", list);
            }
        }
        doc
    }

    /// Inverse of [`SequencedEvent::to_value`].
    ///
    /// # Errors
    ///
    /// Describes the first malformed field, including rule-spec parse
    /// failures.
    pub fn from_value(v: &Value) -> Result<SequencedEvent, String> {
        let seq = u64_field(v, "seq")?;
        // Absent on events journaled before replication existed (and on
        // every single-node WAL): those are epoch 0 by definition.
        let epoch = v.get("epoch").and_then(Value::as_u64).unwrap_or(0);
        let event = match str_field(v, "t")? {
            "rule_added" => EngineEvent::RuleAdded {
                id: rule_id_field(v, "id")?,
                rule: spec::parse_rule(str_field(v, "spec")?).map_err(|e| e.to_string())?,
            },
            "rule_removed" => EngineEvent::RuleRemoved {
                id: rule_id_field(v, "id")?,
            },
            "ingest" => {
                let mut effect = IngestEffect {
                    time: Instant(u64_field(v, "time")?),
                    user: str_field(v, "user")?.to_owned(),
                    folds: Vec::new(),
                    pending: Vec::new(),
                    records: records_from_value(v, "records")?,
                };
                for fold in array_field(v, "folds")? {
                    effect.folds.push(ServerFold::from_value(fold)?);
                }
                for id in array_field(v, "pending")? {
                    let raw = id.as_u64().ok_or("non-integer pending rule id")?;
                    effect.pending.push(RuleId(
                        u32::try_from(raw).map_err(|_| "pending rule id out of range")?,
                    ));
                }
                EngineEvent::Ingest(effect)
            }
            "force_activate" => EngineEvent::ForceActivate {
                time: Instant(u64_field(v, "time")?),
                user: str_field(v, "user")?.to_owned(),
                rule: rule_id_field(v, "rule")?,
            },
            "force_deactivate" => EngineEvent::ForceDeactivate {
                user: str_field(v, "user")?.to_owned(),
                rule: rule_id_field(v, "rule")?,
            },
            "serve_expiry" => {
                let mut expired = Vec::new();
                for pair in array_field(v, "expired")? {
                    let seq = pair.at(0).and_then(Value::as_u64).ok_or("bad expiry seq")?;
                    let raw = pair
                        .at(1)
                        .and_then(Value::as_u64)
                        .ok_or("bad expiry rule")?;
                    expired.push((
                        seq,
                        RuleId(u32::try_from(raw).map_err(|_| "expiry rule id out of range")?),
                    ));
                }
                EngineEvent::ServeExpiry {
                    time: Instant(u64_field(v, "time")?),
                    user: str_field(v, "user")?.to_owned(),
                    expired,
                }
            }
            "pruned" => {
                let mut users = Vec::new();
                for user in array_field(v, "users")? {
                    users.push(user.as_str().ok_or("non-string pruned user")?.to_owned());
                }
                EngineEvent::Pruned { users }
            }
            other => return Err(format!("unknown event type {other:?}")),
        };
        Ok(SequencedEvent { seq, epoch, event })
    }
}
