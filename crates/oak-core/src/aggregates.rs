//! Aggregate site-performance accounting.
//!
//! Besides per-user rule state, the paper's server "maintains log
//! information on the objects downloaded from particular servers, the
//! activation and removal of rules, as well as aggregate site
//! performance" (§5). This module is that third piece: streaming
//! aggregates over every ingested report, independent of any rule — the
//! raw material for dashboards and for the §6 auditing workflow.

use std::collections::BTreeMap;

use crate::analysis::PageAnalysis;
use crate::report::PerfReport;

/// Streaming mean/min/max without storing samples.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RunningStat {
    /// Number of samples folded in.
    pub count: u64,
    /// Sum of samples (for the mean).
    sum: f64,
    /// Smallest sample seen.
    pub min: f64,
    /// Largest sample seen.
    pub max: f64,
}

impl RunningStat {
    /// Folds one sample.
    pub fn push(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.sum += value;
        self.count += 1;
    }

    /// The mean, or `None` before any sample.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Folds another accumulator in, as if its samples had been pushed
    /// here (means merge exactly; min/max combine).
    pub fn merge(&mut self, other: &RunningStat) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// Aggregates for one external domain across all users and reports.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DomainAggregate {
    /// Objects fetched from the domain.
    pub objects: u64,
    /// Total bytes served.
    pub bytes: u64,
    /// Small-object download times, ms.
    pub small_time_ms: RunningStat,
    /// Large-object throughputs, kbit/s.
    pub large_tput_kbps: RunningStat,
    /// How many times the domain was flagged as a violator.
    pub violations: u64,
    /// Distinct reporting users seen (approximate: counts unique users
    /// while the set is small; see [`SiteAggregates::USER_SAMPLE_CAP`]).
    pub users_seen: u64,
}

impl DomainAggregate {
    /// Folds another domain's accumulator in (shard merge).
    fn merge(&mut self, other: &DomainAggregate) {
        self.objects += other.objects;
        self.bytes += other.bytes;
        self.small_time_ms.merge(&other.small_time_ms);
        self.large_tput_kbps.merge(&other.large_tput_kbps);
        self.violations += other.violations;
        self.users_seen += other.users_seen;
    }
}

/// Whole-site aggregates, updated per report.
#[derive(Clone, Debug, Default)]
pub struct SiteAggregates {
    domains: BTreeMap<String, DomainAggregate>,
    users: BTreeMap<String, u64>,
    reports: u64,
    /// Per-domain user sampling stops growing past this many distinct
    /// users per domain (bounded memory under adversarial user churn).
    user_samples: BTreeMap<(String, String), ()>,
}

impl SiteAggregates {
    /// Per-domain distinct-user tracking caps at this many (domain, user)
    /// pairs overall; beyond it, `users_seen` stops increasing.
    pub const USER_SAMPLE_CAP: usize = 100_000;

    /// An empty accumulator.
    pub fn new() -> SiteAggregates {
        SiteAggregates::default()
    }

    /// Folds one report (and the violations its analysis produced).
    pub fn fold(&mut self, report: &PerfReport, violator_ips: &[String]) {
        self.reports += 1;
        *self.users.entry(report.user.clone()).or_insert(0) += 1;

        let analysis = PageAnalysis::from_report(report);
        for server in analysis.iter() {
            for domain in &server.domains {
                let agg = self.domains.entry(domain.clone()).or_default();
                agg.objects += server.object_count as u64;
                agg.bytes += server.total_bytes;
                for &t in &server.small_times_ms {
                    agg.small_time_ms.push(t);
                }
                for &t in &server.large_tputs_kbps {
                    agg.large_tput_kbps.push(t);
                }
                if violator_ips.contains(&server.ip) {
                    agg.violations += 1;
                }
                if self.user_samples.len() < Self::USER_SAMPLE_CAP
                    && self
                        .user_samples
                        .insert((domain.clone(), report.user.clone()), ())
                        .is_none()
                {
                    agg.users_seen += 1;
                }
            }
        }
    }

    /// Folds a whole other accumulator in. The engine stripes aggregates
    /// per user-state shard and merges on read; because each user maps to
    /// exactly one shard, the per-user report counts and `(domain, user)`
    /// sample sets of different shards are disjoint, and adding them is
    /// exact. (The [`SiteAggregates::USER_SAMPLE_CAP`] bound then applies
    /// per shard rather than globally.)
    pub fn merge(&mut self, other: &SiteAggregates) {
        self.reports += other.reports;
        for (user, count) in &other.users {
            *self.users.entry(user.clone()).or_insert(0) += count;
        }
        for (domain, agg) in &other.domains {
            self.domains.entry(domain.clone()).or_default().merge(agg);
        }
        for key in other.user_samples.keys() {
            self.user_samples.insert(key.clone(), ());
        }
    }

    /// Reports folded so far.
    pub fn report_count(&self) -> u64 {
        self.reports
    }

    /// Distinct users that have reported.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// The aggregate for one domain, if seen.
    pub fn domain(&self, domain: &str) -> Option<&DomainAggregate> {
        self.domains.get(domain)
    }

    /// Iterates over `(domain, aggregate)` in domain order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &DomainAggregate)> {
        self.domains.iter().map(|(d, a)| (d.as_str(), a))
    }

    /// Domains ordered by violation count, worst first — the §6 "which
    /// components of their sites are performing poorly" view, without
    /// requiring any rules to be configured.
    pub fn worst_domains(&self) -> Vec<(&str, &DomainAggregate)> {
        let mut rows: Vec<(&str, &DomainAggregate)> = self.iter().collect();
        rows.sort_by(|a, b| b.1.violations.cmp(&a.1.violations).then(a.0.cmp(b.0)));
        rows
    }
}
