//! Aggregate site-performance accounting.
//!
//! Besides per-user rule state, the paper's server "maintains log
//! information on the objects downloaded from particular servers, the
//! activation and removal of rules, as well as aggregate site
//! performance" (§5). This module is that third piece: streaming
//! aggregates over every ingested report, independent of any rule — the
//! raw material for dashboards and for the §6 auditing workflow.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use oak_json::Value;

use crate::analysis::PageAnalysis;
use crate::events::{f64_from_value, f64_to_value};
use crate::intern::Interner;
use crate::report::PerfReport;

/// Streaming mean/min/max without storing samples.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RunningStat {
    /// Number of samples folded in.
    pub count: u64,
    /// Sum of samples (for the mean).
    sum: f64,
    /// Smallest sample seen.
    pub min: f64,
    /// Largest sample seen.
    pub max: f64,
}

impl RunningStat {
    /// Folds one sample.
    pub fn push(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.sum += value;
        self.count += 1;
    }

    /// The mean, or `None` before any sample.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Folds another accumulator in, as if its samples had been pushed
    /// here (means merge exactly; min/max combine).
    pub fn merge(&mut self, other: &RunningStat) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// Aggregates for one external domain across all users and reports.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DomainAggregate {
    /// Objects fetched from the domain.
    pub objects: u64,
    /// Total bytes served.
    pub bytes: u64,
    /// Small-object download times, ms.
    pub small_time_ms: RunningStat,
    /// Large-object throughputs, kbit/s.
    pub large_tput_kbps: RunningStat,
    /// How many times the domain was flagged as a violator.
    pub violations: u64,
    /// Distinct reporting users seen (approximate: counts unique users
    /// while the set is small; see [`SiteAggregates::USER_SAMPLE_CAP`]).
    pub users_seen: u64,
}

impl DomainAggregate {
    /// Folds another domain's accumulator in (shard merge).
    fn merge(&mut self, other: &DomainAggregate) {
        self.objects += other.objects;
        self.bytes += other.bytes;
        self.small_time_ms.merge(&other.small_time_ms);
        self.large_tput_kbps.merge(&other.large_tput_kbps);
        self.violations += other.violations;
        self.users_seen += other.users_seen;
    }
}

/// One server's contribution to the aggregates from a single report —
/// the distilled, replayable form of a fold. The engine derives these
/// from the report's [`PageAnalysis`] once per ingest; the same values
/// feed the live accumulator and the durable
/// [`crate::events::IngestEffect`], so replay folds the exact float
/// sequence the live engine folded.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServerFold {
    /// Domain names resolving to the server (analysis order), as shared
    /// interned handles — folding a report clones refcounts, not bytes.
    pub domains: Vec<Arc<str>>,
    /// Objects fetched from it in this report.
    pub objects: u64,
    /// Bytes fetched from it in this report.
    pub bytes: u64,
    /// Small-object download times, ms (report order).
    pub small_times_ms: Vec<f64>,
    /// Large-object throughputs, kbit/s (report order).
    pub large_tputs_kbps: Vec<f64>,
    /// Whether the detector flagged the server as a violator.
    pub violated: bool,
}

/// Distills a report's per-server analysis into replayable folds.
/// Domain names go through `interner`, so steady-state traffic naming
/// known domains allocates nothing here.
pub fn distill(
    analysis: &PageAnalysis,
    violator_ips: &[String],
    interner: &Interner,
) -> Vec<ServerFold> {
    analysis
        .iter()
        .map(|server| ServerFold {
            domains: server
                .domains
                .iter()
                .map(|d| interner.intern_lower(d))
                .collect(),
            objects: server.object_count as u64,
            bytes: server.total_bytes,
            small_times_ms: server.small_times_ms.clone(),
            large_tputs_kbps: server.large_tputs_kbps.clone(),
            violated: violator_ips.contains(&server.ip),
        })
        .collect()
}

/// A scrape-cost-bounded view of the site aggregates: report and
/// distinct-user totals plus the merged per-domain records, without the
/// per-user report counts. Merging full [`SiteAggregates`] clones one
/// map entry per distinct user ever seen — exact, and required for
/// snapshots, but O(lifetime users) per call. A stats endpoint hit
/// while the engine holds millions of user records must not pay that,
/// so the serving path folds shards into this instead: cost is bounded
/// by the (small, site-shaped) domain set.
#[derive(Clone, Debug, Default)]
pub struct SiteOverview {
    /// Reports folded across every shard.
    pub reports: u64,
    /// Distinct reporting users across every shard. Shards partition
    /// users, so per-shard counts sum exactly.
    pub users: u64,
    domains: BTreeMap<Arc<str>, DomainAggregate>,
}

impl SiteOverview {
    /// Folds one shard's accumulator in. Only the domain table is
    /// deep-merged; the per-user map contributes its length.
    pub fn fold(&mut self, shard: &SiteAggregates) {
        self.reports += shard.reports;
        self.users += shard.users.len() as u64;
        for (domain, agg) in &shard.domains {
            self.domains
                .entry(Arc::clone(domain))
                .or_default()
                .merge(agg);
        }
    }

    /// Domains ordered by violation count, worst first — same ordering
    /// as [`SiteAggregates::worst_domains`].
    pub fn worst_domains(&self) -> Vec<(&str, &DomainAggregate)> {
        let mut rows: Vec<(&str, &DomainAggregate)> =
            self.domains.iter().map(|(d, a)| (&**d, a)).collect();
        rows.sort_by(|a, b| b.1.violations.cmp(&a.1.violations).then(a.0.cmp(b.0)));
        rows
    }
}

/// Whole-site aggregates, updated per report.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SiteAggregates {
    domains: BTreeMap<Arc<str>, DomainAggregate>,
    users: BTreeMap<String, u64>,
    reports: u64,
    /// Distinct users sampled per domain, capped in total by
    /// [`SiteAggregates::USER_SAMPLE_CAP`] (bounded memory under
    /// adversarial user churn). Nested rather than keyed by
    /// `(domain, user)` pairs so the membership probe on the hot fold
    /// path needs no key allocation.
    user_samples: BTreeMap<Arc<str>, BTreeSet<String>>,
    /// Total `(domain, user)` pairs across `user_samples`.
    sample_count: usize,
}

impl SiteAggregates {
    /// Per-domain distinct-user tracking caps at this many (domain, user)
    /// pairs overall; beyond it, `users_seen` stops increasing.
    pub const USER_SAMPLE_CAP: usize = 100_000;

    /// An empty accumulator.
    pub fn new() -> SiteAggregates {
        SiteAggregates::default()
    }

    /// Folds one report (and the violations its analysis produced).
    /// Convenience wrapper over [`distill`] + [`SiteAggregates::fold_distilled`].
    pub fn fold(&mut self, report: &PerfReport, violator_ips: &[String]) {
        let analysis = PageAnalysis::from_report(report);
        let interner = Interner::new();
        self.fold_distilled(&report.user, &distill(&analysis, violator_ips, &interner));
    }

    /// Folds pre-distilled per-server increments. This is the canonical
    /// fold path: the live engine and WAL replay both call it with the
    /// same [`ServerFold`] values, so the floating-point accumulation
    /// order — and therefore every recovered sum — is bit-identical.
    pub fn fold_distilled(&mut self, user: &str, folds: &[ServerFold]) {
        self.reports += 1;
        // A returning user (the steady state) costs a lookup, not a key
        // allocation.
        match self.users.get_mut(user) {
            Some(count) => *count += 1,
            None => {
                self.users.insert(user.to_owned(), 1);
            }
        }

        for server in folds {
            for domain in &server.domains {
                let agg = self.domains.entry(Arc::clone(domain)).or_default();
                agg.objects += server.objects;
                agg.bytes += server.bytes;
                // Per-sample push order is load-bearing: WAL replay must
                // reproduce bit-identical float sums.
                for &t in &server.small_times_ms {
                    agg.small_time_ms.push(t);
                }
                for &t in &server.large_tputs_kbps {
                    agg.large_tput_kbps.push(t);
                }
                if server.violated {
                    agg.violations += 1;
                }
                if self.sample_count < Self::USER_SAMPLE_CAP {
                    let sampled = self.user_samples.entry(Arc::clone(domain)).or_default();
                    if !sampled.contains(user) {
                        sampled.insert(user.to_owned());
                        self.sample_count += 1;
                        agg.users_seen += 1;
                    }
                }
            }
        }
    }

    /// Folds a whole other accumulator in. The engine stripes aggregates
    /// per user-state shard and merges on read; because each user maps to
    /// exactly one shard, the per-user report counts and `(domain, user)`
    /// sample sets of different shards are disjoint, and adding them is
    /// exact. (The [`SiteAggregates::USER_SAMPLE_CAP`] bound then applies
    /// per shard rather than globally.)
    pub fn merge(&mut self, other: &SiteAggregates) {
        self.reports += other.reports;
        for (user, count) in &other.users {
            *self.users.entry(user.clone()).or_insert(0) += count;
        }
        for (domain, agg) in &other.domains {
            self.domains
                .entry(Arc::clone(domain))
                .or_default()
                .merge(agg);
        }
        for (domain, users) in &other.user_samples {
            let sampled = self.user_samples.entry(Arc::clone(domain)).or_default();
            for user in users {
                if sampled.insert(user.clone()) {
                    self.sample_count += 1;
                }
            }
        }
    }

    /// Reports folded so far.
    pub fn report_count(&self) -> u64 {
        self.reports
    }

    /// Distinct users that have reported.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// The aggregate for one domain, if seen.
    pub fn domain(&self, domain: &str) -> Option<&DomainAggregate> {
        self.domains.get(domain)
    }

    /// Iterates over `(domain, aggregate)` in domain order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &DomainAggregate)> {
        self.domains.iter().map(|(d, a)| (&**d, a))
    }

    /// Domains ordered by violation count, worst first — the §6 "which
    /// components of their sites are performing poorly" view, without
    /// requiring any rules to be configured.
    pub fn worst_domains(&self) -> Vec<(&str, &DomainAggregate)> {
        let mut rows: Vec<(&str, &DomainAggregate)> = self.iter().collect();
        rows.sort_by(|a, b| b.1.violations.cmp(&a.1.violations).then(a.0.cmp(b.0)));
        rows
    }

    /// Encodes the accumulator for an engine snapshot. All maps are
    /// ordered, so equal accumulators encode byte-identically; float
    /// fields use the exact string codec (see [`crate::events`]).
    pub fn to_value(&self) -> Value {
        let mut doc = Value::object();
        doc.set("reports", self.reports);
        let mut users = Value::array();
        for (user, count) in &self.users {
            let mut pair = Value::array();
            pair.push(user.as_str());
            pair.push(*count);
            users.push(pair);
        }
        doc.set("users", users);
        let mut domains = Value::array();
        for (domain, agg) in &self.domains {
            let mut row = Value::object();
            row.set("domain", &**domain);
            row.set("objects", agg.objects);
            row.set("bytes", agg.bytes);
            row.set("violations", agg.violations);
            row.set("users_seen", agg.users_seen);
            row.set("small", agg.small_time_ms.to_value());
            row.set("large", agg.large_tput_kbps.to_value());
            domains.push(row);
        }
        doc.set("domains", domains);
        // Flat `[domain, user]` pairs, exactly the order the old flat
        // map produced (domain then user, both sorted) — the snapshot
        // byte format is unchanged by the nested representation.
        let mut samples = Value::array();
        for (domain, users) in &self.user_samples {
            for user in users {
                let mut pair = Value::array();
                pair.push(&**domain);
                pair.push(user.as_str());
                samples.push(pair);
            }
        }
        doc.set("samples", samples);
        doc
    }

    /// Inverse of [`SiteAggregates::to_value`].
    ///
    /// # Errors
    ///
    /// Describes the first malformed field.
    pub fn from_value(v: &Value) -> Result<SiteAggregates, String> {
        let mut out = SiteAggregates {
            reports: v
                .get("reports")
                .and_then(Value::as_u64)
                .ok_or("missing \"reports\"")?,
            ..SiteAggregates::default()
        };
        for pair in v
            .get("users")
            .and_then(Value::as_array)
            .ok_or("missing \"users\"")?
        {
            let user = pair.at(0).and_then(Value::as_str).ok_or("bad user entry")?;
            let count = pair.at(1).and_then(Value::as_u64).ok_or("bad user count")?;
            out.users.insert(user.to_owned(), count);
        }
        for row in v
            .get("domains")
            .and_then(Value::as_array)
            .ok_or("missing \"domains\"")?
        {
            let domain = row
                .get("domain")
                .and_then(Value::as_str)
                .ok_or("bad domain row")?;
            let field = |key: &str| row.get(key).and_then(Value::as_u64).ok_or("bad domain row");
            out.domains.insert(
                Arc::from(domain),
                DomainAggregate {
                    objects: field("objects")?,
                    bytes: field("bytes")?,
                    violations: field("violations")?,
                    users_seen: field("users_seen")?,
                    small_time_ms: RunningStat::from_value(
                        row.get("small").ok_or("missing \"small\"")?,
                    )?,
                    large_tput_kbps: RunningStat::from_value(
                        row.get("large").ok_or("missing \"large\"")?,
                    )?,
                },
            );
        }
        for pair in v
            .get("samples")
            .and_then(Value::as_array)
            .ok_or("missing \"samples\"")?
        {
            let domain = pair.at(0).and_then(Value::as_str).ok_or("bad sample")?;
            let user = pair.at(1).and_then(Value::as_str).ok_or("bad sample")?;
            let sampled = out.user_samples.entry(Arc::from(domain)).or_default();
            if sampled.insert(user.to_owned()) {
                out.sample_count += 1;
            }
        }
        Ok(out)
    }
}

impl RunningStat {
    /// Encodes the accumulator with exact float strings.
    pub fn to_value(&self) -> Value {
        let mut doc = Value::object();
        doc.set("count", self.count);
        doc.set("sum", f64_to_value(self.sum));
        doc.set("min", f64_to_value(self.min));
        doc.set("max", f64_to_value(self.max));
        doc
    }

    /// Inverse of [`RunningStat::to_value`].
    ///
    /// # Errors
    ///
    /// Describes the first malformed field.
    pub fn from_value(v: &Value) -> Result<RunningStat, String> {
        Ok(RunningStat {
            count: v
                .get("count")
                .and_then(Value::as_u64)
                .ok_or("missing \"count\"")?,
            sum: f64_from_value(v.get("sum").ok_or("missing \"sum\"")?)?,
            min: f64_from_value(v.get("min").ok_or("missing \"min\"")?)?,
            max: f64_from_value(v.get("max").ok_or("missing \"max\"")?)?,
        })
    }
}
