//! Per-server performance analysis of a report.
//!
//! "Oak begins by grouping all objects by the IP address to which the
//! client ultimately connected, keeping track of all related domain names.
//! We then consider the average time for small objects, and the average
//! throughput for large objects. Small objects are defined to be any
//! object less than 50 KB." (§4.2)

use std::collections::{BTreeMap, BTreeSet};

use crate::report::PerfReport;
use crate::stats::mean;

/// The small/large cut-over, bytes. The paper fixes 50 KB; the knob exists
/// for the ablation benches.
pub const DEFAULT_SIZE_SPLIT: u64 = 50_000;

/// Aggregated view of one server (one IP) within one report.
#[derive(Clone, Debug, PartialEq)]
pub struct ServerStats {
    /// The server's IP, as reported by the client.
    pub ip: String,
    /// Every domain name observed resolving to this IP in the report.
    pub domains: BTreeSet<String>,
    /// Download times of objects under the size split, ms.
    pub small_times_ms: Vec<f64>,
    /// Throughputs of objects at or over the size split, kbit/s.
    pub large_tputs_kbps: Vec<f64>,
    /// Total bytes fetched from this server.
    pub total_bytes: u64,
    /// Number of objects fetched from this server.
    pub object_count: usize,
}

impl ServerStats {
    /// Average small-object download time, if any small objects were seen.
    pub fn avg_small_time_ms(&self) -> Option<f64> {
        mean(&self.small_times_ms)
    }

    /// Average large-object throughput, if any large objects were seen.
    pub fn avg_large_tput_kbps(&self) -> Option<f64> {
        mean(&self.large_tputs_kbps)
    }
}

/// A report regrouped per server, ready for violator detection.
///
/// "These reports make no decisions on what objects may need to be acted
/// on, but instead stores the raw information about the observed
/// performance." (§4.2)
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PageAnalysis {
    /// Stats per IP, keyed and ordered by IP string.
    pub servers: BTreeMap<String, ServerStats>,
}

impl PageAnalysis {
    /// Groups a report's entries by server IP using the paper's 50 KB
    /// size split.
    pub fn from_report(report: &PerfReport) -> PageAnalysis {
        PageAnalysis::from_report_with_split(report, DEFAULT_SIZE_SPLIT)
    }

    /// As [`PageAnalysis::from_report`] with an explicit small/large split.
    pub fn from_report_with_split(report: &PerfReport, size_split: u64) -> PageAnalysis {
        let mut servers: BTreeMap<String, ServerStats> = BTreeMap::new();
        for entry in &report.entries {
            let stats = servers
                .entry(entry.ip.clone())
                .or_insert_with(|| ServerStats {
                    ip: entry.ip.clone(),
                    domains: BTreeSet::new(),
                    small_times_ms: Vec::new(),
                    large_tputs_kbps: Vec::new(),
                    total_bytes: 0,
                    object_count: 0,
                });
            if let Some(host) = entry.host() {
                // Domains are tracked lowercase (URL hosts are
                // case-insensitive); fold here, allocating only when the
                // client actually sent uppercase or a new name.
                if host.bytes().any(|b| b.is_ascii_uppercase()) {
                    stats.domains.insert(host.to_ascii_lowercase());
                } else if !stats.domains.contains(host) {
                    stats.domains.insert(host.to_owned());
                }
            }
            if entry.bytes < size_split {
                stats.small_times_ms.push(entry.time_ms);
            } else {
                stats.large_tputs_kbps.push(entry.throughput_kbps());
            }
            stats.total_bytes += entry.bytes;
            stats.object_count += 1;
        }
        PageAnalysis { servers }
    }

    /// Number of distinct servers contacted.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Iterates over server stats in IP order.
    pub fn iter(&self) -> impl Iterator<Item = &ServerStats> {
        self.servers.values()
    }

    /// The stats for one IP, if present.
    pub fn server(&self, ip: &str) -> Option<&ServerStats> {
        self.servers.get(ip)
    }
}
