//! Engine instrumentation: the oak-core metric bundle.
//!
//! [`CoreMetrics`] registers every engine-side family once and holds
//! pre-resolved handles; the engine ([`crate::Oak::set_obs`]), the
//! serving layer (report parse), and the resilient fetcher record into
//! them without ever touching the registry again. All durations come
//! from the embedder's [`Clock`], which is what keeps them reproducible
//! under `oak-sim`.

use std::sync::Arc;

use oak_obs::{elapsed_us, Clock, Counter, Histogram, Registry, DURATION_BOUNDS_US};

/// Pre-resolved handles for the engine's metric families.
pub struct CoreMetrics {
    clock: Clock,
    /// `oak_core_ingest_duration_us` — one whole `ingest_report_from`.
    pub ingest: Arc<Histogram>,
    /// `oak_core_detect_duration_us` — page analysis + violator detection.
    pub detect: Arc<Histogram>,
    /// `oak_core_rule_match_duration_us` — candidate lookup + rule loop.
    pub rule_match: Arc<Histogram>,
    /// `oak_core_report_parse_duration_us` — JSON → `PerfReport`
    /// (recorded by the serving layer, which owns the parse).
    pub report_parse: Arc<Histogram>,
    /// `oak_html_rewrite_duration_us` — rewriter construction through
    /// sub-rule application in `modify_page`.
    pub rewrite: Arc<Histogram>,
    /// `oak_fetch_attempt_duration_us` — one inner fetch attempt
    /// (recorded by [`crate::fetch::ResilientFetcher`]).
    pub fetch_attempt: Arc<Histogram>,
    /// `oak_core_reports_ingested_total`.
    pub reports: Arc<Counter>,
    /// `oak_report_decode_total{encoding="json"}` — reports decoded from
    /// the JSON wire format (recorded by the serving layer).
    pub decode_json: Arc<Counter>,
    /// `oak_report_decode_total{encoding="binary"}`.
    pub decode_binary: Arc<Counter>,
    /// `oak_report_decode_errors_total{encoding="json"}`.
    pub decode_errors_json: Arc<Counter>,
    /// `oak_report_decode_errors_total{encoding="binary"}`.
    pub decode_errors_binary: Arc<Counter>,
}

impl CoreMetrics {
    /// Registers the engine families in `registry`; durations are
    /// measured with `clock`.
    pub fn new(registry: &Registry, clock: Clock) -> Arc<CoreMetrics> {
        let duration =
            |name: &str, help: &str| registry.histogram(name, help, &[], DURATION_BOUNDS_US);
        Arc::new(CoreMetrics {
            clock,
            ingest: duration(
                "oak_core_ingest_duration_us",
                "Time to ingest one client performance report.",
            ),
            detect: duration(
                "oak_core_detect_duration_us",
                "Time to analyze a report and detect violators.",
            ),
            rule_match: duration(
                "oak_core_rule_match_duration_us",
                "Time to match detected violators against the rule table.",
            ),
            report_parse: duration(
                "oak_core_report_parse_duration_us",
                "Time to parse a performance report from JSON.",
            ),
            rewrite: duration(
                "oak_html_rewrite_duration_us",
                "Time to apply active rules to an outgoing page.",
            ),
            fetch_attempt: duration(
                "oak_fetch_attempt_duration_us",
                "Time per external-script fetch attempt.",
            ),
            reports: registry.counter(
                "oak_core_reports_ingested_total",
                "Client performance reports ingested by the engine.",
                &[],
            ),
            decode_json: registry.counter(
                "oak_report_decode_total",
                "Performance reports decoded, by wire encoding.",
                &[("encoding", "json")],
            ),
            decode_binary: registry.counter(
                "oak_report_decode_total",
                "Performance reports decoded, by wire encoding.",
                &[("encoding", "binary")],
            ),
            decode_errors_json: registry.counter(
                "oak_report_decode_errors_total",
                "Performance reports rejected at decode, by wire encoding.",
                &[("encoding", "json")],
            ),
            decode_errors_binary: registry.counter(
                "oak_report_decode_errors_total",
                "Performance reports rejected at decode, by wire encoding.",
                &[("encoding", "binary")],
            ),
        })
    }

    /// The current clock reading, nanoseconds.
    pub fn now(&self) -> u64 {
        (self.clock)()
    }

    /// The clock these metrics are measured with.
    pub fn clock(&self) -> Clock {
        Arc::clone(&self.clock)
    }

    /// Records `start_ns..end_ns` into `histogram` in microseconds.
    pub fn record(histogram: &Histogram, start_ns: u64, end_ns: u64) {
        histogram.record(elapsed_us(start_ns, end_ns));
    }
}
