use oak_pattern::Scope;

use crate::engine::{LogAction, ModifiedPage, Oak, OakConfig};
use crate::matching::NoFetch;
use crate::report::{ObjectTiming, PerfReport};
use crate::rule::{Rule, RuleId};
use crate::time::Instant;

const JQ_DEFAULT: &str = r#"<script src="http://cdn-a.example/jquery.js">"#;
const JQ_ALT_B: &str = r#"<script src="http://cdn-b.example/jquery.js">"#;
const JQ_ALT_C: &str = r#"<script src="http://cdn-c.example/jquery.js">"#;

/// A report where `slow_host` (at `slow_ip`) is far out of family.
fn report_with_slow(user: &str, slow_host: &str, slow_ip: &str, slow_ms: f64) -> PerfReport {
    let mut r = PerfReport::new(user, "/index.html");
    r.push(ObjectTiming::new(
        format!("http://{slow_host}/jquery.js"),
        slow_ip,
        30_000,
        slow_ms,
    ));
    r.push(ObjectTiming::new(
        "http://img.example/a.png",
        "10.0.0.2",
        30_000,
        80.0,
    ));
    r.push(ObjectTiming::new(
        "http://img.example/b.png",
        "10.0.0.2",
        30_000,
        95.0,
    ));
    r.push(ObjectTiming::new(
        "http://fonts.example/f.woff",
        "10.0.0.3",
        30_000,
        70.0,
    ));
    r.push(ObjectTiming::new(
        "http://api.example/d.js",
        "10.0.0.4",
        30_000,
        90.0,
    ));
    r
}

fn engine_with_jq_rule(alternatives: &[&str]) -> (Oak, RuleId) {
    let oak = Oak::new(OakConfig::default());
    let id = oak
        .add_rule(Rule::replace_identical(JQ_DEFAULT, alternatives.to_vec()))
        .unwrap();
    (oak, id)
}

#[test]
fn violation_activates_matching_rule() {
    let (oak, id) = engine_with_jq_rule(&[JQ_ALT_B]);
    let report = report_with_slow("u-1", "cdn-a.example", "10.0.0.1", 900.0);
    let outcome = oak.ingest_report(Instant::ZERO, &report, &NoFetch);
    assert_eq!(outcome.violations.len(), 1);
    assert_eq!(outcome.activated, vec![id]);
    assert_eq!(oak.active_rules("u-1").len(), 1);
    assert!(matches!(
        oak.log().last().unwrap().action,
        LogAction::Activated { .. }
    ));
}

#[test]
fn healthy_report_activates_nothing() {
    let (oak, _) = engine_with_jq_rule(&[JQ_ALT_B]);
    let report = report_with_slow("u-1", "cdn-a.example", "10.0.0.1", 85.0);
    let outcome = oak.ingest_report(Instant::ZERO, &report, &NoFetch);
    assert!(outcome.violations.is_empty());
    assert!(outcome.activated.is_empty());
    assert!(oak.active_rules("u-1").is_empty());
}

#[test]
fn unrelated_violator_does_not_activate() {
    // fonts.example violates, but no rule references it.
    let (oak, _) = engine_with_jq_rule(&[JQ_ALT_B]);
    let report = report_with_slow("u-1", "unrelated.example", "10.0.0.9", 900.0);
    let outcome = oak.ingest_report(Instant::ZERO, &report, &NoFetch);
    assert_eq!(outcome.violations.len(), 1);
    assert!(outcome.activated.is_empty());
}

#[test]
fn activation_is_per_user() {
    let (oak, _) = engine_with_jq_rule(&[JQ_ALT_B]);
    let report = report_with_slow("u-slow", "cdn-a.example", "10.0.0.1", 900.0);
    oak.ingest_report(Instant::ZERO, &report, &NoFetch);
    assert_eq!(oak.active_rules("u-slow").len(), 1);
    assert!(
        oak.active_rules("u-other").is_empty(),
        "other users untouched"
    );

    let page = format!("{JQ_DEFAULT}</script>");
    let slow_page = oak.modify_page(Instant::ZERO, "u-slow", "/index.html", &page);
    let other_page = oak.modify_page(Instant::ZERO, "u-other", "/index.html", &page);
    assert!(slow_page.html.contains("cdn-b.example"));
    assert!(other_page.html.contains("cdn-a.example"));
}

#[test]
fn modify_page_rewrites_and_reports_hints() {
    let (oak, id) = engine_with_jq_rule(&[JQ_ALT_B]);
    oak.ingest_report(
        Instant::ZERO,
        &report_with_slow("u-1", "cdn-a.example", "10.0.0.1", 900.0),
        &NoFetch,
    );
    let page = format!("<html>{JQ_DEFAULT}</script></html>");
    let modified = oak.modify_page(Instant::ZERO, "u-1", "/index.html", &page);
    assert_eq!(modified.applied, vec![id]);
    assert!(modified.html.contains("cdn-b.example"));
    assert!(!modified.html.contains("cdn-a.example"));
    // Type 2 → cache hint header (§4.3).
    assert_eq!(
        modified.cache_hints,
        vec![("cdn-a.example".to_owned(), "cdn-b.example".to_owned())]
    );
    assert_eq!(
        modified.alternate_header().as_deref(),
        Some("cdn-a.example=cdn-b.example")
    );
}

#[test]
fn type1_rule_removes_text() {
    let oak = Oak::new(OakConfig::default());
    let widget = r#"<script src="http://widget.example/w.js"></script>"#;
    oak.add_rule(Rule::remove(widget)).unwrap();
    let report = report_with_slow("u-1", "widget.example", "10.0.0.1", 900.0);
    oak.ingest_report(Instant::ZERO, &report, &NoFetch);
    let page = format!("<html>{widget}<p>content</p></html>");
    let modified = oak.modify_page(Instant::ZERO, "u-1", "/index.html", &page);
    assert_eq!(modified.html, "<html><p>content</p></html>");
    assert!(
        modified.cache_hints.is_empty(),
        "removals carry no cache hint"
    );
}

#[test]
fn scope_limits_modification() {
    let oak = Oak::new(OakConfig::default());
    oak.add_rule(
        Rule::replace_identical(JQ_DEFAULT, [JQ_ALT_B])
            .with_scope(Scope::parse("/shop/*").unwrap()),
    )
    .unwrap();
    let mut report = report_with_slow("u-1", "cdn-a.example", "10.0.0.1", 900.0);
    report.page = "/shop/item1".into();
    oak.ingest_report(Instant::ZERO, &report, &NoFetch);

    let page = format!("{JQ_DEFAULT}</script>");
    let in_scope = oak.modify_page(Instant::ZERO, "u-1", "/shop/item2", &page);
    let out_of_scope = oak.modify_page(Instant::ZERO, "u-1", "/about", &page);
    assert!(in_scope.html.contains("cdn-b.example"));
    assert!(out_of_scope.html.contains("cdn-a.example"));
}

#[test]
fn ttl_expires_activations() {
    let oak = Oak::new(OakConfig::default());
    let id = oak
        .add_rule(Rule::replace_identical(JQ_DEFAULT, [JQ_ALT_B]).with_ttl_ms(Some(10_000)))
        .unwrap();
    oak.ingest_report(
        Instant::ZERO,
        &report_with_slow("u-1", "cdn-a.example", "10.0.0.1", 900.0),
        &NoFetch,
    );
    assert_eq!(oak.active_rules("u-1").len(), 1);

    let page = format!("{JQ_DEFAULT}</script>");
    let at_9s = oak.modify_page(Instant(9_000), "u-1", "/", &page);
    assert!(at_9s.html.contains("cdn-b.example"), "still active at 9 s");
    let at_11s = oak.modify_page(Instant(11_000), "u-1", "/", &page);
    assert!(at_11s.html.contains("cdn-a.example"), "expired at 11 s");
    assert!(oak.active_rules("u-1").is_empty());
    assert!(oak
        .log()
        .iter()
        .any(|e| e.rule == id && e.action == LogAction::Expired));
}

#[test]
fn violations_required_policy_defers_activation() {
    let oak = Oak::new(OakConfig::default());
    oak.add_rule(Rule::replace_identical(JQ_DEFAULT, [JQ_ALT_B]).with_violations_required(3))
        .unwrap();
    let report = report_with_slow("u-1", "cdn-a.example", "10.0.0.1", 900.0);
    assert!(oak
        .ingest_report(Instant(0), &report, &NoFetch)
        .activated
        .is_empty());
    assert!(oak
        .ingest_report(Instant(1), &report, &NoFetch)
        .activated
        .is_empty());
    let third = oak.ingest_report(Instant(2), &report, &NoFetch);
    assert_eq!(third.activated.len(), 1, "third violation activates");
}

#[test]
fn rule_history_keeps_better_alternate() {
    // Default violated with huge severity; alternate later violates mildly.
    // History keeps the alternate: it is still closer to the median.
    let (oak, id) = engine_with_jq_rule(&[JQ_ALT_B]);
    oak.ingest_report(
        Instant(0),
        &report_with_slow("u-1", "cdn-a.example", "10.0.0.1", 5_000.0),
        &NoFetch,
    );
    assert_eq!(oak.active_rules("u-1").len(), 1);
    let default_severity = oak.active_rules("u-1")[0].1.default_severity;

    let mild = report_with_slow("u-1", "cdn-b.example", "10.0.0.8", 230.0);
    let outcome = oak.ingest_report(Instant(1), &mild, &NoFetch);
    assert_eq!(outcome.violations.len(), 1, "alternate does violate");
    assert!(outcome.violations[0].kind.severity() < default_severity);
    assert!(outcome.deactivated.is_empty(), "alternate retained");
    assert_eq!(oak.active_rules("u-1")[0].0, id);
}

#[test]
fn rule_history_reverts_worse_alternate() {
    // Default violated mildly; alternate violates catastrophically →
    // deactivate (no further alternatives).
    let (oak, _) = engine_with_jq_rule(&[JQ_ALT_B]);
    oak.ingest_report(
        Instant(0),
        &report_with_slow("u-1", "cdn-a.example", "10.0.0.1", 280.0),
        &NoFetch,
    );
    assert_eq!(oak.active_rules("u-1").len(), 1);

    let awful = report_with_slow("u-1", "cdn-b.example", "10.0.0.8", 9_000.0);
    let outcome = oak.ingest_report(Instant(1), &awful, &NoFetch);
    assert_eq!(outcome.deactivated.len(), 1);
    assert!(oak.active_rules("u-1").is_empty());
    assert!(oak.log().iter().any(|e| e.action == LogAction::Deactivated));
}

#[test]
fn alternatives_advance_linearly() {
    // Two alternatives: when B violates badly, advance to C (§4.2.4
    // "Oak progresses through the list linearly with each activation").
    let (oak, id) = engine_with_jq_rule(&[JQ_ALT_B, JQ_ALT_C]);
    oak.ingest_report(
        Instant(0),
        &report_with_slow("u-1", "cdn-a.example", "10.0.0.1", 280.0),
        &NoFetch,
    );
    let awful_b = report_with_slow("u-1", "cdn-b.example", "10.0.0.8", 9_000.0);
    let outcome = oak.ingest_report(Instant(1), &awful_b, &NoFetch);
    assert_eq!(outcome.advanced, vec![id]);
    assert_eq!(oak.active_rules("u-1")[0].1.alternative_index, 1);

    let page = format!("{JQ_DEFAULT}</script>");
    let modified = oak.modify_page(Instant(2), "u-1", "/", &page);
    assert!(modified.html.contains("cdn-c.example"));

    // C also violates badly → list exhausted → deactivate.
    let awful_c = report_with_slow("u-1", "cdn-c.example", "10.0.0.7", 9_000.0);
    let outcome = oak.ingest_report(Instant(3), &awful_c, &NoFetch);
    assert_eq!(outcome.deactivated, vec![id]);
}

#[test]
fn sub_rules_fire_with_parent() {
    let oak = Oak::new(OakConfig::default());
    oak.add_rule(
        Rule::replace_identical(JQ_DEFAULT, [JQ_ALT_B])
            .with_sub_rule("<!-- jq-config: a -->", "<!-- jq-config: b -->"),
    )
    .unwrap();
    oak.ingest_report(
        Instant(0),
        &report_with_slow("u-1", "cdn-a.example", "10.0.0.1", 900.0),
        &NoFetch,
    );
    let page = format!("{JQ_DEFAULT}</script><!-- jq-config: a -->");
    let modified = oak.modify_page(Instant(0), "u-1", "/", &page);
    assert!(modified.html.contains("jq-config: b"));

    // A page where the parent makes no edit leaves the sub-rule dormant.
    let other_page = "<!-- jq-config: a -->".to_owned();
    let unmodified = oak.modify_page(Instant(0), "u-1", "/", &other_page);
    assert!(unmodified.html.contains("jq-config: a"));
}

#[test]
fn force_activate_and_deactivate() {
    let (oak, id) = engine_with_jq_rule(&[JQ_ALT_B]);
    oak.force_activate(Instant::ZERO, "u-x", id);
    let page = format!("{JQ_DEFAULT}</script>");
    assert!(oak
        .modify_page(Instant::ZERO, "u-x", "/", &page)
        .html
        .contains("cdn-b.example"));
    oak.force_deactivate("u-x", id);
    assert!(oak
        .modify_page(Instant::ZERO, "u-x", "/", &page)
        .html
        .contains("cdn-a.example"));
}

#[test]
fn add_rule_validates() {
    let oak = Oak::new(OakConfig::default());
    assert!(oak.add_rule(Rule::replace_identical("", ["x"])).is_err());
    assert!(oak
        .add_rule(Rule::replace_identical("abc", Vec::<String>::new()))
        .is_err());
    assert!(
        oak.add_rule(Rule::replace_identical("abc", ["xxabcxx"]))
            .is_err(),
        "alternative containing default is rejected"
    );
    let mut bad_type1 = Rule::remove("abc");
    bad_type1.alternatives.push("x".into());
    assert!(oak.add_rule(bad_type1).is_err());
}

#[test]
fn modify_page_for_unknown_user_is_identity() {
    let (oak, _) = engine_with_jq_rule(&[JQ_ALT_B]);
    let page = format!("{JQ_DEFAULT}</script>");
    let out = oak.modify_page(Instant::ZERO, "nobody", "/", &page);
    assert_eq!(
        out,
        ModifiedPage {
            html: page.clone(),
            applied: vec![],
            cache_hints: vec![]
        }
    );
}

#[test]
fn log_records_the_activation_trail() {
    let (oak, id) = engine_with_jq_rule(&[JQ_ALT_B]);
    oak.ingest_report(
        Instant(5),
        &report_with_slow("u-1", "cdn-a.example", "10.0.0.1", 900.0),
        &NoFetch,
    );
    let log = oak.log();
    let event = log.last().unwrap();
    assert_eq!(event.rule, id);
    assert_eq!(event.user, "u-1");
    assert_eq!(event.time, Instant(5));
    match &event.action {
        LogAction::Activated {
            violator_ip,
            severity,
        } => {
            assert_eq!(violator_ip, "10.0.0.1");
            assert!(*severity > 2.0);
        }
        other => panic!("expected activation, got {other:?}"),
    }
}

#[test]
fn multiple_rules_apply_in_one_pass() {
    let oak = Oak::new(OakConfig::default());
    let ad = r#"<iframe src="http://ads.example/banner"></iframe>"#;
    oak.add_rule(Rule::replace_identical(JQ_DEFAULT, [JQ_ALT_B]))
        .unwrap();
    oak.add_rule(Rule::remove(ad)).unwrap();

    // One report in which both cdn-a and ads.example violate.
    let mut report = PerfReport::new("u-1", "/");
    report.push(ObjectTiming::new(
        "http://cdn-a.example/jquery.js",
        "10.0.0.1",
        30_000,
        900.0,
    ));
    report.push(ObjectTiming::new(
        "http://ads.example/banner",
        "10.0.0.5",
        30_000,
        950.0,
    ));
    report.push(ObjectTiming::new(
        "http://img.example/a.png",
        "10.0.0.2",
        30_000,
        80.0,
    ));
    report.push(ObjectTiming::new(
        "http://img.example/b.png",
        "10.0.0.2",
        30_000,
        95.0,
    ));
    report.push(ObjectTiming::new(
        "http://fonts.example/f.woff",
        "10.0.0.3",
        30_000,
        70.0,
    ));
    report.push(ObjectTiming::new(
        "http://api.example/d.js",
        "10.0.0.4",
        30_000,
        90.0,
    ));
    let outcome = oak.ingest_report(Instant::ZERO, &report, &NoFetch);
    assert_eq!(outcome.activated.len(), 2);

    let page = format!("<html>{JQ_DEFAULT}</script>{ad}</html>");
    let modified = oak.modify_page(Instant::ZERO, "u-1", "/", &page);
    assert!(modified.html.contains("cdn-b.example"));
    assert!(!modified.html.contains("ads.example"));
    assert_eq!(modified.applied.len(), 2);
}

#[test]
fn remove_rule_deactivates_everywhere_and_keeps_history() {
    let (oak, id) = engine_with_jq_rule(&[JQ_ALT_B]);
    oak.ingest_report(
        Instant(0),
        &report_with_slow("u-1", "cdn-a.example", "10.0.0.1", 900.0),
        &NoFetch,
    );
    assert_eq!(oak.active_rules("u-1").len(), 1);
    let log_len = oak.log().len();

    let removed = oak.remove_rule(id).expect("rule existed");
    assert_eq!(removed.default_text, JQ_DEFAULT);
    assert!(oak.rule(id).is_none());
    assert!(oak.active_rules("u-1").is_empty());
    assert_eq!(oak.log().len(), log_len, "history preserved");
    assert!(oak.remove_rule(id).is_none(), "second removal is a no-op");

    // The page serves unmodified afterwards.
    let page = format!("{JQ_DEFAULT}</script>");
    let out = oak.modify_page(Instant(1), "u-1", "/", &page);
    assert_eq!(out.html, page);

    // New rules get fresh ids — no reuse.
    let next = oak.add_rule(Rule::remove("<!-- x -->")).unwrap();
    assert!(next.0 > id.0);
}

#[test]
fn prune_inactive_users_drops_only_stale_state() {
    let (oak, _) = engine_with_jq_rule(&[JQ_ALT_B]);
    oak.ingest_report(
        Instant(1_000),
        &report_with_slow("u-old", "cdn-a.example", "10.0.0.1", 900.0),
        &NoFetch,
    );
    oak.ingest_report(
        Instant(50_000),
        &report_with_slow("u-new", "cdn-a.example", "10.0.0.1", 900.0),
        &NoFetch,
    );
    assert_eq!(oak.user_count(), 2);

    let pruned = oak.prune_inactive_users(Instant(10_000));
    assert_eq!(pruned, 1);
    assert_eq!(oak.user_count(), 1);
    assert!(
        oak.active_rules("u-old").is_empty(),
        "stale profile dropped"
    );
    assert_eq!(oak.active_rules("u-new").len(), 1, "fresh profile intact");
    // The log survives pruning: audit history is append-only.
    assert!(oak.log().iter().any(|e| e.user == "u-old"));

    // Serving a page refreshes last_seen, protecting the user from GC.
    oak.modify_page(Instant(100_000), "u-new", "/", "x");
    assert_eq!(oak.prune_inactive_users(Instant(60_000)), 0);
}

#[test]
fn reactivation_after_deactivation_needs_fresh_violations() {
    let (oak, _) = engine_with_jq_rule(&[JQ_ALT_B]);
    // Activate, then deactivate via terrible alternate.
    oak.ingest_report(
        Instant(0),
        &report_with_slow("u-1", "cdn-a.example", "10.0.0.1", 280.0),
        &NoFetch,
    );
    oak.ingest_report(
        Instant(1),
        &report_with_slow("u-1", "cdn-b.example", "10.0.0.8", 9_000.0),
        &NoFetch,
    );
    assert!(oak.active_rules("u-1").is_empty());
    // Default violates again → can re-activate.
    let outcome = oak.ingest_report(
        Instant(2),
        &report_with_slow("u-1", "cdn-a.example", "10.0.0.1", 900.0),
        &NoFetch,
    );
    assert_eq!(outcome.activated.len(), 1);
}

#[test]
fn concurrent_disjoint_users_keep_independent_state() {
    use std::sync::Arc;

    let oak = Arc::new(Oak::new(OakConfig::default()));
    let id = oak
        .add_rule(Rule::replace_identical(JQ_DEFAULT, vec![JQ_ALT_B]))
        .unwrap();

    let handles: Vec<_> = (0..8)
        .map(|t| {
            let oak = Arc::clone(&oak);
            std::thread::spawn(move || {
                let user = format!("u-{t}");
                let report = report_with_slow(&user, "cdn-a.example", "10.0.0.1", 900.0);
                oak.ingest_report(Instant::ZERO, &report, &NoFetch);
                let page = format!("{JQ_DEFAULT}</script>");
                oak.modify_page(Instant::ZERO, &user, "/index.html", &page)
            })
        })
        .collect();
    for handle in handles {
        let modified = handle.join().unwrap();
        assert!(modified.html.contains("cdn-b.example"));
    }

    assert_eq!(oak.user_count(), 8);
    for t in 0..8 {
        assert_eq!(oak.active_rules(&format!("u-{t}")), oak.active_rules("u-0"));
    }
    let log = oak.log();
    let activations = log
        .iter()
        .filter(|e| matches!(e.action, LogAction::Activated { .. }))
        .count();
    assert_eq!(activations, 8, "one activation per user, none lost");
    assert!(log.iter().all(|e| e.rule == id));
    assert_eq!(oak.aggregates().report_count(), 8);
}

#[test]
fn log_merges_across_shards_in_ingestion_order() {
    // Users land on different state shards, but the merged log must
    // still read back in exact ingestion order.
    let (oak, _) = engine_with_jq_rule(&[JQ_ALT_B]);
    let users = ["u-a", "u-b", "u-c", "u-d", "u-e"];
    for user in users {
        let report = report_with_slow(user, "cdn-a.example", "10.0.0.1", 900.0);
        oak.ingest_report(Instant::ZERO, &report, &NoFetch);
    }
    let logged: Vec<String> = oak.log().iter().map(|e| e.user.clone()).collect();
    assert_eq!(logged, users.map(str::to_owned).to_vec());
}

#[test]
fn aggregates_merge_is_exact_across_shards() {
    let (oak, _) = engine_with_jq_rule(&[JQ_ALT_B]);
    for t in 0..20 {
        let user = format!("agg-u{t}");
        let report = report_with_slow(&user, "cdn-a.example", "10.0.0.1", 900.0);
        oak.ingest_report(Instant::ZERO, &report, &NoFetch);
        oak.ingest_report(Instant(1), &report, &NoFetch);
    }
    let agg = oak.aggregates();
    assert_eq!(agg.report_count(), 40);
    assert_eq!(agg.user_count(), 20);
    let img = agg.domain("img.example").expect("seen in every report");
    assert_eq!(img.users_seen, 20, "per-shard user sets are disjoint");
    // 2 png objects x 2 reports x 20 users.
    assert_eq!(img.small_time_ms.count, 80);
}
