use crate::analysis::{PageAnalysis, DEFAULT_SIZE_SPLIT};
use crate::report::{ObjectTiming, PerfReport};

fn report_with(entries: &[(&str, &str, u64, f64)]) -> PerfReport {
    let mut r = PerfReport::new("u", "/");
    for &(url, ip, bytes, time) in entries {
        r.push(ObjectTiming::new(url, ip, bytes, time));
    }
    r
}

#[test]
fn groups_by_ip_not_domain() {
    // Two domains co-hosted on one IP form one server entry — the paper's
    // "grouping all objects by the IP address … keeping track of all
    // related domain names".
    let r = report_with(&[
        ("http://img.a.example/1.png", "10.0.0.1", 10_000, 50.0),
        ("http://static.a.example/2.png", "10.0.0.1", 10_000, 60.0),
        ("http://other.example/3.png", "10.0.0.2", 10_000, 70.0),
    ]);
    let a = PageAnalysis::from_report(&r);
    assert_eq!(a.server_count(), 2);
    let s = a.server("10.0.0.1").unwrap();
    assert_eq!(
        s.domains.iter().cloned().collect::<Vec<_>>(),
        ["img.a.example", "static.a.example"]
    );
    assert_eq!(s.object_count, 2);
    assert_eq!(s.total_bytes, 20_000);
}

#[test]
fn splits_small_and_large_at_50kb() {
    let r = report_with(&[
        (
            "http://h.example/small",
            "10.0.0.1",
            DEFAULT_SIZE_SPLIT - 1,
            40.0,
        ),
        (
            "http://h.example/large",
            "10.0.0.1",
            DEFAULT_SIZE_SPLIT,
            100.0,
        ),
    ]);
    let a = PageAnalysis::from_report(&r);
    let s = a.server("10.0.0.1").unwrap();
    assert_eq!(s.small_times_ms, [40.0]);
    assert_eq!(s.large_tputs_kbps.len(), 1);
    // 50 KB ≥ split → throughput entry: 50_000·8 bits / 100 ms = 4000 kbps.
    assert!((s.large_tputs_kbps[0] - 4_000.0).abs() < 1e-9);
}

#[test]
fn averages_are_per_class() {
    let r = report_with(&[
        ("http://h.example/a", "10.0.0.1", 1_000, 10.0),
        ("http://h.example/b", "10.0.0.1", 1_000, 30.0),
        ("http://h.example/c", "10.0.0.1", 100_000, 100.0),
        ("http://h.example/d", "10.0.0.1", 100_000, 400.0),
    ]);
    let a = PageAnalysis::from_report(&r);
    let s = a.server("10.0.0.1").unwrap();
    assert_eq!(s.avg_small_time_ms(), Some(20.0));
    // Throughputs: 8000 and 2000 kbps → mean 5000.
    assert_eq!(s.avg_large_tput_kbps(), Some(5_000.0));
}

#[test]
fn missing_class_yields_none() {
    let r = report_with(&[("http://h.example/only-small", "10.0.0.1", 100, 10.0)]);
    let a = PageAnalysis::from_report(&r);
    let s = a.server("10.0.0.1").unwrap();
    assert!(s.avg_small_time_ms().is_some());
    assert_eq!(s.avg_large_tput_kbps(), None);
}

#[test]
fn custom_split_moves_the_boundary() {
    let r = report_with(&[("http://h.example/x", "10.0.0.1", 30_000, 50.0)]);
    let default = PageAnalysis::from_report(&r);
    assert_eq!(default.server("10.0.0.1").unwrap().small_times_ms.len(), 1);
    let tight = PageAnalysis::from_report_with_split(&r, 10_000);
    assert_eq!(tight.server("10.0.0.1").unwrap().small_times_ms.len(), 0);
    assert_eq!(tight.server("10.0.0.1").unwrap().large_tputs_kbps.len(), 1);
}

#[test]
fn empty_report_analyzes_to_empty() {
    let a = PageAnalysis::from_report(&PerfReport::new("u", "/"));
    assert_eq!(a.server_count(), 0);
    assert!(a.iter().next().is_none());
    assert!(a.server("10.0.0.1").is_none());
}

#[test]
fn unparseable_urls_still_count_toward_stats() {
    let r = report_with(&[("garbage-url", "10.0.0.1", 100, 10.0)]);
    let a = PageAnalysis::from_report(&r);
    let s = a.server("10.0.0.1").unwrap();
    assert!(s.domains.is_empty());
    assert_eq!(s.object_count, 1);
}
