//! Property tests for engine-wide invariants.

use proptest::prelude::*;

use crate::engine::{Oak, OakConfig};
use crate::matching::NoFetch;
use crate::report::{ObjectTiming, PerfReport};
use crate::rule::Rule;
use crate::time::Instant;

/// Strategy: a syntactically valid report with 0–10 entries over a small
/// pool of hosts and IPs.
fn report_strategy() -> impl Strategy<Value = PerfReport> {
    let entry = (
        0usize..8,       // host index
        0usize..8,       // ip index
        0u64..300_000,   // bytes
        0.0f64..5_000.0, // time
    );
    ("[a-z]{1,6}", prop::collection::vec(entry, 0..10)).prop_map(|(user, entries)| {
        let mut report = PerfReport::new(format!("u-{user}"), "/p");
        for (h, ip, bytes, time) in entries {
            report.push(ObjectTiming::new(
                format!("http://host{h}.example/obj"),
                format!("10.0.0.{ip}"),
                bytes,
                time,
            ));
        }
        report
    })
}

fn engine_with_rules() -> Oak {
    let oak = Oak::new(OakConfig::default());
    for h in 0..8 {
        oak.add_rule(Rule::replace_identical(
            format!("http://host{h}.example/"),
            [
                format!("http://m1.example/host{h}.example/"),
                format!("http://m2.example/host{h}.example/"),
            ],
        ))
        .unwrap();
    }
    oak
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ingest and modify never panic, whatever the reports contain, and
    /// the activity log only ever grows.
    #[test]
    fn engine_is_total_under_arbitrary_reports(
        reports in prop::collection::vec(report_strategy(), 1..20),
    ) {
        let oak = engine_with_rules();
        let mut last_log = 0;
        for (i, report) in reports.iter().enumerate() {
            oak.ingest_report(Instant(i as u64), report, &NoFetch);
            prop_assert!(oak.log().len() >= last_log);
            last_log = oak.log().len();
            let page = oak.modify_page(
                Instant(i as u64),
                &report.user,
                "/p",
                r#"<img src="http://host0.example/x.png">"#,
            );
            prop_assert!(page.html.contains("<img"));
        }
    }

    /// Per-user isolation: whatever user A reports, user B's active rules
    /// and pages are untouched.
    #[test]
    fn users_never_interfere(reports in prop::collection::vec(report_strategy(), 1..16)) {
        let oak = engine_with_rules();
        let bystander = "u-bystander";
        let page = r#"<script src="http://host1.example/a.js"></script>"#;
        let before = oak.modify_page(Instant::ZERO, bystander, "/p", page);
        for (i, report) in reports.iter().enumerate() {
            prop_assume!(report.user != bystander);
            oak.ingest_report(Instant(i as u64), report, &NoFetch);
        }
        prop_assert!(oak.active_rules(bystander).is_empty());
        let after = oak.modify_page(Instant(99_999), bystander, "/p", page);
        prop_assert_eq!(before.html, after.html);
    }

    /// Rewriting is idempotent: applying a user's rules to an
    /// already-rewritten page changes nothing further (replacement rules
    /// validate that alternatives do not contain the default text).
    #[test]
    fn modification_is_idempotent(reports in prop::collection::vec(report_strategy(), 1..8)) {
        let oak = engine_with_rules();
        for (i, report) in reports.iter().enumerate() {
            oak.ingest_report(Instant(i as u64), report, &NoFetch);
        }
        let page = (0..8)
            .map(|h| format!(r#"<img src="http://host{h}.example/pic.png">"#))
            .collect::<Vec<_>>()
            .join("\n");
        for report in reports {
            let once = oak.modify_page(Instant(50), &report.user, "/p", &page);
            let twice = oak.modify_page(Instant(50), &report.user, "/p", &once.html);
            prop_assert_eq!(&once.html, &twice.html);
            prop_assert!(twice.applied.is_empty(), "second pass must make no edits");
        }
    }

    /// The engine's outcome lists are consistent with its state: newly
    /// activated rules are active afterwards, deactivated ones are not.
    #[test]
    fn outcome_matches_state(report in report_strategy()) {
        let oak = engine_with_rules();
        let outcome = oak.ingest_report(Instant::ZERO, &report, &NoFetch);
        let active: Vec<_> = oak.active_rules(&report.user).iter().map(|(id, _)| *id).collect();
        for id in &outcome.activated {
            prop_assert!(active.contains(id));
        }
        for id in &outcome.deactivated {
            prop_assert!(!active.contains(id));
        }
    }
}
