//! The domain interner: case-insensitive dedup, zero-allocation hits,
//! and the hostile-growth capacity cap.

use std::sync::Arc;

use crate::intern::Interner;

#[test]
fn same_name_shares_one_allocation() {
    let interner = Interner::new();
    let a = interner.intern_lower("cdn.example");
    let b = interner.intern_lower("cdn.example");
    assert!(Arc::ptr_eq(&a, &b));
    assert_eq!(interner.len(), 1);
}

#[test]
fn case_variants_fold_to_one_entry() {
    let interner = Interner::new();
    let lower = interner.intern_lower("cdn.example");
    let upper = interner.intern_lower("CDN.Example");
    let mixed = interner.intern_lower("cDn.ExAmPlE");
    assert!(Arc::ptr_eq(&lower, &upper));
    assert!(Arc::ptr_eq(&lower, &mixed));
    assert_eq!(&*upper, "cdn.example");
    assert_eq!(interner.len(), 1);
}

#[test]
fn distinct_names_are_distinct() {
    let interner = Interner::new();
    let a = interner.intern_lower("a.example");
    let b = interner.intern_lower("b.example");
    assert!(!Arc::ptr_eq(&a, &b));
    assert_eq!(interner.len(), 2);
    assert!(!interner.is_empty());
}

#[test]
fn non_ascii_names_intern_verbatim() {
    let interner = Interner::new();
    // ASCII folding only: non-ASCII bytes pass through untouched, and
    // must round-trip exactly.
    let name = interner.intern_lower("bücher.example");
    assert_eq!(&*name, "bücher.example");
    assert!(!Arc::ptr_eq(
        &name,
        &interner.intern_lower("BÜCHER.example")
    ));
}

/// Past [`Interner::CAPACITY`] distinct names the table stops retaining:
/// results stay correct, memory stays bounded.
#[test]
fn capacity_caps_retention() {
    let interner = Interner::new();
    for i in 0..Interner::CAPACITY + 100 {
        let name = interner.intern_lower(&format!("host-{i}.example"));
        assert_eq!(&*name, &format!("host-{i}.example"));
    }
    assert!(interner.len() <= Interner::CAPACITY);
    // Overflow names still fold correctly, they just aren't shared.
    let over = interner.intern_lower("OVERFLOW.example");
    assert_eq!(&*over, "overflow.example");
}
