//! The binary wire format: round-trip equivalence with JSON and the
//! hostile-frame suite (truncation, lying lengths, bombs — error, never
//! panic, never over-allocate).

use proptest::prelude::*;

use crate::report::{DeviceClass, ObjectTiming, PerfReport};
use crate::wire;

/// Strategy: any device class, including `Unknown` (which exercises the
/// v1-frame emission path in the encoder).
fn any_device() -> impl Strategy<Value = DeviceClass> {
    (0usize..DeviceClass::ALL.len()).prop_map(|i| DeviceClass::ALL[i])
}

/// Strategy: a report whose every field is within bounds, with printable
/// unicode strings (`\PC` mixes in multi-byte characters) and
/// integer-valued times (so the JSON decimal round-trip is exact and
/// `==` comparison is meaningful).
fn valid_report() -> impl Strategy<Value = PerfReport> {
    let text = || "\\PC{0,12}";
    let entry = (
        text(),
        text(),
        0u64..PerfReport::MAX_BYTES + 1,
        0u64..32_000_000_001,
    );
    (
        text(),
        text(),
        any_device(),
        prop::collection::vec(entry, 0..6),
    )
        .prop_map(|(user, page, device, entries)| {
            let mut report = PerfReport::new(user, page).with_device(device);
            for (url, ip, bytes, time) in entries {
                report.push(ObjectTiming::new(url, ip, bytes, time as f64));
            }
            report
        })
}

/// LEB128, mirroring the encoder, for hand-crafting hostile frames.
fn varint(mut v: u64) -> Vec<u8> {
    let mut out = Vec::new();
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return out;
        }
        out.push(byte | 0x80);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// decode ∘ encode is the identity on valid reports.
    #[test]
    fn binary_round_trips(report in valid_report()) {
        let decoded = PerfReport::from_binary(&report.to_binary()).expect("valid round trip");
        prop_assert_eq!(decoded, report);
    }

    /// The two wire formats decode to the same report — JSON and binary
    /// clients are indistinguishable past the decoder.
    #[test]
    fn json_and_binary_agree(report in valid_report()) {
        let via_json = PerfReport::from_json(&report.to_json()).expect("json round trip");
        let via_binary = PerfReport::from_binary(&report.to_binary()).expect("binary round trip");
        prop_assert_eq!(&via_json, &via_binary);
        prop_assert_eq!(via_json, report);
    }

    /// Every strict prefix of a valid frame is an error — truncation can
    /// never produce a report, and never panics.
    #[test]
    fn every_truncation_errors(report in valid_report()) {
        let frame = report.to_binary();
        for len in 0..frame.len() {
            prop_assert!(PerfReport::from_binary(&frame[..len]).is_err());
        }
    }

    /// Arbitrary garbage decodes to an error or a report, never a panic.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = PerfReport::from_binary(&bytes);
    }
}

/// Bound violations produce the *same* error text on both wire formats,
/// so a client debugging a rejection sees one vocabulary.
#[test]
fn bounds_rejected_identically() {
    // Too many entries.
    let mut big = PerfReport::new("u", "/p");
    for _ in 0..=PerfReport::MAX_ENTRIES {
        big.push(ObjectTiming::new("http://h.example/o", "10.0.0.1", 1, 1.0));
    }
    let json_err = PerfReport::from_json(&big.to_json()).unwrap_err();
    let bin_err = PerfReport::from_binary(&big.to_binary()).unwrap_err();
    assert_eq!(json_err.to_string(), bin_err.to_string());
    assert!(json_err.to_string().contains("entries exceed"));

    // Object bytes past 2^53 (1 << 60 is exactly representable in both
    // a JSON double and a varint, so the two decoders see one value).
    let mut fat = PerfReport::new("u", "/p");
    fat.push(ObjectTiming::new(
        "http://h.example/o",
        "10.0.0.1",
        1 << 60,
        1.0,
    ));
    let json_err = PerfReport::from_json(&fat.to_json()).unwrap_err();
    let bin_err = PerfReport::from_binary(&fat.to_binary()).unwrap_err();
    assert_eq!(json_err.to_string(), bin_err.to_string());
    assert_eq!(
        json_err.to_string(),
        "bad performance report: entry 0: bytes not a non-negative integer within 2^53"
    );

    // Time out of range.
    let mut slow = PerfReport::new("u", "/p");
    slow.push(ObjectTiming::new(
        "http://h.example/o",
        "10.0.0.1",
        1,
        PerfReport::MAX_TIME_MS * 2.0,
    ));
    let json_err = PerfReport::from_json(&slow.to_json()).unwrap_err();
    let bin_err = PerfReport::from_binary(&slow.to_binary()).unwrap_err();
    assert_eq!(json_err.to_string(), bin_err.to_string());
    assert_eq!(
        json_err.to_string(),
        "bad performance report: entry 0: time_ms not a finite non-negative number within bounds"
    );
}

#[test]
fn rejects_wrong_version() {
    let err = PerfReport::from_binary(&[0x03]).unwrap_err();
    assert_eq!(
        err.to_string(),
        "bad performance report: unsupported wire version 0x03 (expected 0x01 or 0x02)"
    );
    assert!(PerfReport::from_binary(&[]).is_err());
}

/// A v1 frame — no device byte — decodes with the `Unknown` cohort, so
/// pre-device clients keep working against a v2 decoder.
#[test]
fn v1_frames_decode_as_unknown_device() {
    let mut frame = vec![wire::WIRE_VERSION_V1];
    frame.extend(varint(1));
    frame.push(b'u');
    frame.extend(varint(2));
    frame.extend(b"/p");
    frame.extend(varint(0)); // no entries
    let report = PerfReport::from_binary(&frame).expect("v1 frame decodes");
    assert_eq!(report.device, DeviceClass::Unknown);
    assert_eq!(report.user, "u");
}

/// The encoder downgrades device-free reports to the v1 layout — the
/// frame is byte-identical to what a pre-device encoder produced.
#[test]
fn unknown_device_emits_v1_frames() {
    let report = PerfReport::new("u", "/p");
    assert_eq!(report.device, DeviceClass::Unknown);
    let frame = report.to_binary();
    assert_eq!(frame[0], wire::WIRE_VERSION_V1);

    let hinted = PerfReport::new("u", "/p").with_device(DeviceClass::MidMobile);
    let hinted_frame = hinted.to_binary();
    assert_eq!(hinted_frame[0], wire::WIRE_VERSION);
    assert_eq!(hinted_frame.len(), frame.len() + 1);
}

/// A v2 frame cut off right at the device byte is a truncation error.
#[test]
fn rejects_v2_frame_truncated_at_device() {
    let err = PerfReport::from_binary(&[wire::WIRE_VERSION]).unwrap_err();
    assert_eq!(
        err.to_string(),
        "bad performance report: frame truncated reading device at byte 1"
    );
}

/// Device bytes past the known classes are rejected, not aliased.
#[test]
fn rejects_unknown_device_byte() {
    for byte in [0x04u8, 0x7f, 0xff] {
        let err = PerfReport::from_binary(&[wire::WIRE_VERSION, byte]).unwrap_err();
        assert_eq!(
            err.to_string(),
            format!("bad performance report: unknown device class 0x{byte:02x}")
        );
    }
}

#[test]
fn rejects_lying_length_prefix() {
    // Claims a 200-byte user name; only 2 bytes follow.
    let mut frame = vec![wire::WIRE_VERSION, 0x02];
    frame.extend(varint(200));
    frame.extend(b"hi");
    let err = PerfReport::from_binary(&frame).unwrap_err();
    assert!(
        err.to_string().contains("exceeds the"),
        "unexpected error: {err}"
    );
}

#[test]
fn rejects_non_utf8_strings() {
    let mut frame = vec![wire::WIRE_VERSION, 0x02];
    frame.extend(varint(2));
    frame.extend([0xff, 0xfe]);
    let err = PerfReport::from_binary(&frame).unwrap_err();
    assert_eq!(
        err.to_string(),
        "bad performance report: user is not valid UTF-8"
    );
}

/// An entry-count bomb: the header claims the maximum entry count with an
/// empty body. Must fail fast on the missing first entry — and the
/// decoder's capacity clamp means the claimed count never sizes an
/// allocation the remaining bytes couldn't justify.
#[test]
fn rejects_entry_count_bomb() {
    let mut frame = vec![wire::WIRE_VERSION, 0x02];
    frame.extend(varint(0)); // user ""
    frame.extend(varint(0)); // page ""
    frame.extend(varint(PerfReport::MAX_ENTRIES as u64));
    let err = PerfReport::from_binary(&frame).unwrap_err();
    assert!(
        err.to_string().contains("truncated"),
        "unexpected error: {err}"
    );

    // Over the limit entirely: same message as the JSON bound.
    let mut frame = vec![wire::WIRE_VERSION, 0x02];
    frame.extend(varint(0));
    frame.extend(varint(0));
    frame.extend(varint(PerfReport::MAX_ENTRIES as u64 + 1));
    let err = PerfReport::from_binary(&frame).unwrap_err();
    assert_eq!(
        err.to_string(),
        "bad performance report: 10001 entries exceed the 10000 limit"
    );
}

#[test]
fn rejects_varint_overflow() {
    let mut frame = vec![wire::WIRE_VERSION, 0x02];
    frame.extend([0xff; 10]); // user-length varint with bits past u64
    assert!(PerfReport::from_binary(&frame).is_err());
}

#[test]
fn rejects_trailing_bytes() {
    let mut frame = PerfReport::new("u", "/p").to_binary();
    frame.push(0x00);
    let err = PerfReport::from_binary(&frame).unwrap_err();
    assert_eq!(
        err.to_string(),
        "bad performance report: 1 trailing bytes after the last entry"
    );
}

#[test]
fn binary_is_smaller_than_json() {
    let mut report = PerfReport::new("u-1", "/index.html");
    for i in 0..50 {
        report.push(ObjectTiming::new(
            format!("http://cdn{i}.example/asset-{i}.js"),
            format!("10.0.0.{i}"),
            10_000 + i,
            120.0,
        ));
    }
    assert!(report.to_binary().len() < report.to_json().len());
}
