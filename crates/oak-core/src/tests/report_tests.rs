use crate::report::{DeviceClass, ObjectTiming, PerfReport};

fn sample_report() -> PerfReport {
    let mut r = PerfReport::new("u-42", "/shop/index.html");
    r.push(ObjectTiming::new(
        "http://cdn.example/app.js",
        "10.0.0.1",
        90_000,
        420.5,
    ));
    r.push(ObjectTiming::new(
        "http://ads.example/pixel.gif",
        "10.0.0.2",
        43,
        95.0,
    ));
    r
}

#[test]
fn json_roundtrip() {
    let r = sample_report();
    let decoded = PerfReport::from_json(&r.to_json()).unwrap();
    assert_eq!(decoded, r);
}

/// The device field round-trips through JSON, is omitted when unknown
/// (so device-free output is byte-identical to the pre-device encoder),
/// and rejects unrecognized class names.
#[test]
fn device_json_roundtrip() {
    for device in DeviceClass::ALL {
        let r = sample_report().with_device(device);
        let json = r.to_json();
        if device == DeviceClass::Unknown {
            assert!(!json.contains("device"), "unexpected device key: {json}");
            assert_eq!(json, sample_report().to_json());
        } else {
            assert!(json.contains(&format!("\"device\":\"{}\"", device.as_str())));
        }
        assert_eq!(PerfReport::from_json(&json).unwrap(), r);
    }

    let bad = r#"{"user":"u","page":"/p","device":"toaster","entries":[]}"#;
    let err = PerfReport::from_json(bad).unwrap_err();
    assert_eq!(
        err.to_string(),
        "bad performance report: unknown device class \"toaster\""
    );
}

/// The CLI/JSON spellings and the wire bytes both round-trip the enum.
#[test]
fn device_class_spellings() {
    for device in DeviceClass::ALL {
        assert_eq!(DeviceClass::parse(device.as_str()), Some(device));
    }
    assert_eq!(DeviceClass::parse("phone"), None);
}

#[test]
fn throughput_is_bits_per_ms() {
    let t = ObjectTiming::new("http://h/x", "1.2.3.4", 1_000, 80.0);
    // 8000 bits / 80 ms = 100 kbit/s.
    assert!((t.throughput_kbps() - 100.0).abs() < 1e-9);
}

#[test]
fn host_extraction() {
    // `host()` borrows from the URL in its original case; the analysis
    // layer folds to lowercase where domains are tracked.
    assert_eq!(
        ObjectTiming::new("http://A.Example/z", "1.1.1.1", 1, 1.0).host(),
        Some("A.Example")
    );
    assert_eq!(
        ObjectTiming::new("not a url", "1.1.1.1", 1, 1.0).host(),
        None
    );
}

#[test]
fn host_agrees_with_url_parse() {
    // The borrowed extractor must accept/reject exactly what Url::parse
    // does, and agree (case-folded) on the host when both accept.
    for url in [
        "http://a.example/z",
        "http://A.Example:8080/z?q=1#frag",
        "https://x.y.z.example",
        "http://user@host/",
        "http://host:notaport/",
        "http://:80/",
        "http:///path",
        "ftp+ssh://mixed.example/x",
        "nocolon.example/x",
        "://empty.scheme/",
        "http://sp ace.example/",
    ] {
        let timing = ObjectTiming::new(url, "1.1.1.1", 1, 1.0);
        let parsed = oak_http::Url::parse(url).ok();
        assert_eq!(
            timing.host().map(str::to_ascii_lowercase),
            parsed.map(|u| u.host().to_owned()),
            "host_of and Url::parse disagree on {url:?}"
        );
    }
}

#[test]
fn decode_rejects_missing_fields() {
    for bad in [
        r#"{}"#,
        r#"{"user":"u"}"#,
        r#"{"user":"u","page":"/"}"#,
        r#"{"user":"u","page":"/","entries":[{}]}"#,
        r#"{"user":"u","page":"/","entries":[{"url":"x","ip":"i","bytes":1}]}"#,
    ] {
        assert!(PerfReport::from_json(bad).is_err(), "{bad}");
    }
}

#[test]
fn decode_rejects_poisoned_numbers() {
    // A hostile client must not smuggle NaN/negatives into the statistics.
    let neg = r#"{"user":"u","page":"/","entries":[{"url":"x","ip":"i","bytes":1,"time_ms":-5}]}"#;
    assert!(PerfReport::from_json(neg).is_err());
    let frac_bytes =
        r#"{"user":"u","page":"/","entries":[{"url":"x","ip":"i","bytes":1.5,"time_ms":5}]}"#;
    assert!(PerfReport::from_json(frac_bytes).is_err());
}

#[test]
fn decode_rejects_bad_json() {
    assert!(PerfReport::from_json("{not json").is_err());
    assert!(PerfReport::from_json("").is_err());
}

#[test]
fn wire_size_tracks_entry_count() {
    // Fig. 15's premise: report size grows with objects fetched.
    let mut small = PerfReport::new("u", "/");
    let mut large = PerfReport::new("u", "/");
    for i in 0..5 {
        small.push(ObjectTiming::new(
            format!("http://h/{i}"),
            "1.1.1.1",
            100,
            10.0,
        ));
    }
    for i in 0..200 {
        large.push(ObjectTiming::new(
            format!("http://h/{i}"),
            "1.1.1.1",
            100,
            10.0,
        ));
    }
    assert!(large.wire_size() > small.wire_size() * 10);
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Serialize → decode is the identity for valid reports.
        #[test]
        fn report_roundtrip(
            user in "[a-z0-9-]{1,12}",
            page in "/[a-z0-9/]{0,20}",
            entries in prop::collection::vec(
                ("[a-z:/.]{1,30}", "[0-9.]{7,15}", any::<u32>(), 0.0f64..1e7),
                0..20,
            ),
        ) {
            let mut r = PerfReport::new(user, page);
            for (url, ip, bytes, time) in entries {
                r.push(ObjectTiming::new(url, ip, u64::from(bytes), time));
            }
            prop_assert_eq!(PerfReport::from_json(&r.to_json()).unwrap(), r);
        }

        /// from_json never panics on arbitrary input.
        #[test]
        fn decode_is_total(text in "\\PC{0,128}") {
            let _ = PerfReport::from_json(&text);
        }
    }
}
