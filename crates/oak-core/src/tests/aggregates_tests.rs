use crate::aggregates::{RunningStat, SiteAggregates};
use crate::report::{ObjectTiming, PerfReport};

#[test]
fn running_stat_tracks_mean_min_max() {
    let mut s = RunningStat::default();
    assert_eq!(s.mean(), None);
    s.push(10.0);
    s.push(30.0);
    s.push(20.0);
    assert_eq!(s.count, 3);
    assert_eq!(s.mean(), Some(20.0));
    assert_eq!(s.min, 10.0);
    assert_eq!(s.max, 30.0);
}

fn report(user: &str, slow: bool) -> PerfReport {
    let mut r = PerfReport::new(user, "/");
    r.push(ObjectTiming::new(
        "http://cdn.example/a.js",
        "10.0.0.1",
        10_000,
        if slow { 900.0 } else { 90.0 },
    ));
    r.push(ObjectTiming::new(
        "http://cdn.example/big.bin",
        "10.0.0.1",
        200_000,
        400.0,
    ));
    r.push(ObjectTiming::new(
        "http://img.example/b.png",
        "10.0.0.2",
        10_000,
        80.0,
    ));
    r
}

#[test]
fn fold_accumulates_per_domain() {
    let mut agg = SiteAggregates::new();
    agg.fold(&report("u-1", false), &[]);
    agg.fold(&report("u-2", false), &[]);
    assert_eq!(agg.report_count(), 2);
    assert_eq!(agg.user_count(), 2);

    let cdn = agg.domain("cdn.example").unwrap();
    assert_eq!(cdn.objects, 4, "two objects per report");
    assert_eq!(cdn.bytes, 2 * 210_000);
    assert_eq!(cdn.small_time_ms.count, 2);
    assert_eq!(cdn.large_tput_kbps.count, 2);
    assert_eq!(cdn.users_seen, 2);
    assert_eq!(cdn.violations, 0);
    assert!(agg.domain("img.example").is_some());
    assert!(agg.domain("missing.example").is_none());
}

#[test]
fn violations_attribute_to_the_flagged_ip() {
    let mut agg = SiteAggregates::new();
    agg.fold(&report("u-1", true), &["10.0.0.1".to_owned()]);
    assert_eq!(agg.domain("cdn.example").unwrap().violations, 1);
    assert_eq!(agg.domain("img.example").unwrap().violations, 0);
    let worst = agg.worst_domains();
    assert_eq!(worst[0].0, "cdn.example");
}

#[test]
fn repeat_users_counted_once_per_domain() {
    let mut agg = SiteAggregates::new();
    for _ in 0..5 {
        agg.fold(&report("u-same", false), &[]);
    }
    assert_eq!(agg.user_count(), 1);
    assert_eq!(agg.domain("cdn.example").unwrap().users_seen, 1);
}

#[test]
fn engine_exposes_aggregates() {
    use crate::engine::{Oak, OakConfig};
    use crate::matching::NoFetch;
    use crate::Instant;

    let oak = Oak::new(OakConfig::default());
    // Five servers so detection runs; one egregious outlier.
    let mut r = PerfReport::new("u-1", "/");
    r.push(ObjectTiming::new(
        "http://slow.example/x",
        "10.0.0.1",
        10_000,
        900.0,
    ));
    for i in 2..6 {
        r.push(ObjectTiming::new(
            format!("http://ok{i}.example/x"),
            format!("10.0.0.{i}"),
            10_000,
            90.0 + i as f64,
        ));
    }
    oak.ingest_report(Instant::ZERO, &r, &NoFetch);
    let agg = oak.aggregates();
    assert_eq!(agg.report_count(), 1);
    assert_eq!(agg.domain("slow.example").unwrap().violations, 1);
    assert_eq!(agg.worst_domains()[0].0, "slow.example");
}

#[test]
fn overview_matches_the_full_merge() {
    use crate::engine::{Oak, OakConfig};
    use crate::matching::NoFetch;
    use crate::Instant;

    // Users spread across shards, some returning — the overview (the
    // serving path's cheap fold) must agree with the exact merge on
    // every total and on the domain ordering.
    let oak = Oak::new(OakConfig::default());
    for i in 0..40 {
        let r = report(&format!("u-{}", i % 25), i % 7 == 0);
        oak.ingest_report(Instant(i), &r, &NoFetch);
    }
    let full = oak.aggregates();
    let overview = oak.aggregates_overview();
    assert_eq!(overview.reports, full.report_count());
    assert_eq!(overview.users, full.user_count() as u64);
    let full_worst: Vec<&str> = full.worst_domains().iter().map(|(d, _)| *d).collect();
    let overview_worst: Vec<&str> = overview.worst_domains().iter().map(|(d, _)| *d).collect();
    assert_eq!(overview_worst, full_worst);
    for (domain, agg) in full.worst_domains() {
        let o = overview
            .worst_domains()
            .into_iter()
            .find(|(d, _)| *d == domain)
            .expect("domain present in overview")
            .1
            .clone();
        assert_eq!(o.objects, agg.objects, "{domain} objects");
        assert_eq!(o.bytes, agg.bytes, "{domain} bytes");
        assert_eq!(o.violations, agg.violations, "{domain} violations");
        assert_eq!(
            o.small_time_ms.mean(),
            agg.small_time_ms.mean(),
            "{domain} small-time mean"
        );
    }
}
