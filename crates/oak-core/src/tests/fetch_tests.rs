//! Resilient-fetcher tests: deadlines, retries, negative cache, and the
//! per-host circuit breaker — all on a fake clock, so breaker transitions
//! are asserted deterministically.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::engine::{Oak, OakConfig};
use crate::fetch::{FetchPolicy, FetchStep, FlakyFetcher, ResilientFetcher};
use crate::matching::ScriptFetcher;
use crate::report::{ObjectTiming, PerfReport};
use crate::rule::Rule;
use crate::Instant;

/// A policy with no deadline thread and no sleeps, for pure
/// state-machine tests.
fn instant_policy() -> FetchPolicy {
    FetchPolicy {
        deadline: None,
        retries: 0,
        backoff_base: Duration::ZERO,
        negative_ttl_ms: 0,
        breaker_threshold: 3,
        breaker_cooldown_ms: 1_000,
    }
}

/// A shared fake clock the fetcher reads through its closure.
fn fake_clock() -> (Arc<AtomicU64>, impl Fn() -> Instant + Send + Sync) {
    let time = Arc::new(AtomicU64::new(0));
    let handle = Arc::clone(&time);
    (time, move || Instant(handle.load(Ordering::SeqCst)))
}

#[test]
fn passes_through_successes_and_failures() {
    let inner = FlakyFetcher::new([
        FetchStep::Ok("body one".into()),
        FetchStep::Fail,
        FetchStep::Ok("body two".into()),
    ]);
    let fetcher = ResilientFetcher::new(inner, instant_policy());
    assert_eq!(
        fetcher.fetch_script("http://a.example/x.js").as_deref(),
        Some("body one")
    );
    assert_eq!(fetcher.fetch_script("http://a.example/x.js"), None);
    assert_eq!(
        fetcher.fetch_script("http://a.example/x.js").as_deref(),
        Some("body two")
    );
    let stats = fetcher.stats();
    assert_eq!(stats.attempts, 3);
    assert_eq!(stats.successes, 2);
    assert_eq!(stats.failures, 1);
    assert_eq!(stats.timeouts, 0);
}

#[test]
fn retries_until_success_within_budget() {
    let inner = FlakyFetcher::new([
        FetchStep::Fail,
        FetchStep::Fail,
        FetchStep::Ok("third time lucky".into()),
    ]);
    let policy = FetchPolicy {
        retries: 2,
        breaker_threshold: 10,
        ..instant_policy()
    };
    let fetcher = ResilientFetcher::new(inner, policy);
    assert_eq!(
        fetcher.fetch_script("http://a.example/x.js").as_deref(),
        Some("third time lucky")
    );
    assert_eq!(fetcher.stats().attempts, 3);
}

#[test]
fn deadline_bounds_a_hanging_inner_fetcher() {
    let inner = FlakyFetcher::new([FetchStep::Hang(Duration::from_secs(5))]);
    let policy = FetchPolicy {
        deadline: Some(Duration::from_millis(50)),
        ..instant_policy()
    };
    let fetcher = ResilientFetcher::new(inner, policy);
    let started = std::time::Instant::now();
    assert_eq!(fetcher.fetch_script("http://dead.example/x.js"), None);
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "fetch must return at the deadline, not after the 5 s hang"
    );
    let stats = fetcher.stats();
    assert_eq!(stats.timeouts, 1);
    assert_eq!(stats.failures, 1);
}

#[test]
fn negative_cache_absorbs_repeat_failures_until_ttl() {
    let (time, clock) = fake_clock();
    let inner = FlakyFetcher::new([FetchStep::Fail, FetchStep::Ok("revived".into())]);
    let policy = FetchPolicy {
        negative_ttl_ms: 500,
        breaker_threshold: 100,
        ..instant_policy()
    };
    let fetcher = ResilientFetcher::new(inner, policy).with_clock(clock);
    assert_eq!(fetcher.fetch_script("http://a.example/x.js"), None);
    // Within the TTL: answered from the cache, no inner attempt.
    assert_eq!(fetcher.fetch_script("http://a.example/x.js"), None);
    assert_eq!(fetcher.fetch_script("http://a.example/x.js"), None);
    let stats = fetcher.stats();
    assert_eq!(stats.attempts, 1);
    assert_eq!(stats.negative_cache_hits, 2);
    // Past the TTL: the next fetch goes through and succeeds.
    time.store(501, Ordering::SeqCst);
    assert_eq!(
        fetcher.fetch_script("http://a.example/x.js").as_deref(),
        Some("revived")
    );
}

#[test]
fn breaker_opens_after_threshold_and_heals_via_half_open_probe() {
    let (time, clock) = fake_clock();
    // 3 failures open the circuit; the first probe fails (re-arming the
    // cooldown); the second probe succeeds and closes it.
    let inner = FlakyFetcher::new([
        FetchStep::Fail,
        FetchStep::Fail,
        FetchStep::Fail,
        FetchStep::Fail,
        FetchStep::Ok("healed".into()),
        FetchStep::Ok("steady".into()),
    ]);
    let policy = FetchPolicy {
        breaker_threshold: 3,
        breaker_cooldown_ms: 1_000,
        ..instant_policy()
    };
    let fetcher = ResilientFetcher::new(inner, policy).with_clock(clock);
    let url = "http://flaky.example/lib.js";

    for _ in 0..3 {
        assert_eq!(fetcher.fetch_script(url), None);
    }
    assert!(fetcher.circuit_open("flaky.example"));
    assert_eq!(fetcher.stats().breaker_opens, 1);

    // While cooling down, fetches are skipped without touching the host.
    assert_eq!(fetcher.fetch_script(url), None);
    assert_eq!(fetcher.fetch_script(url), None);
    let stats = fetcher.stats();
    assert_eq!(stats.breaker_open_skips, 2);
    assert_eq!(stats.attempts, 3, "open circuit must not attempt fetches");

    // Cooldown elapses: the half-open probe runs — and fails, so the
    // circuit re-opens with a fresh cooldown from t=1000.
    time.store(1_000, Ordering::SeqCst);
    assert_eq!(fetcher.fetch_script(url), None);
    assert_eq!(fetcher.stats().attempts, 4);
    assert!(fetcher.circuit_open("flaky.example"));
    time.store(1_500, Ordering::SeqCst);
    assert_eq!(fetcher.fetch_script(url), None, "still cooling down");
    assert_eq!(fetcher.stats().attempts, 4);

    // Second probe succeeds: circuit closes, traffic flows again.
    time.store(2_000, Ordering::SeqCst);
    assert_eq!(fetcher.fetch_script(url).as_deref(), Some("healed"));
    assert!(!fetcher.circuit_open("flaky.example"));
    assert_eq!(fetcher.fetch_script(url).as_deref(), Some("steady"));
}

#[test]
fn breaker_is_per_host() {
    let inner = FlakyFetcher::new([FetchStep::Fail]); // repeats forever
    let policy = FetchPolicy {
        breaker_threshold: 2,
        ..instant_policy()
    };
    let fetcher = ResilientFetcher::new(inner, policy);
    for _ in 0..2 {
        fetcher.fetch_script("http://down.example/a.js");
    }
    assert!(fetcher.circuit_open("down.example"));
    assert!(!fetcher.circuit_open("fine.example"));
    // The healthy host is still attempted (then skipped only once ITS
    // failures accumulate).
    fetcher.fetch_script("http://fine.example/b.js");
    assert_eq!(fetcher.stats().attempts, 3);
}

/// A report whose page pulls the rule's script from a clearly violating
/// server, forcing level-3 (external JS) matching to fetch.
fn violating_report() -> PerfReport {
    let mut report = PerfReport::new("u-1", "/index.html");
    report.push(ObjectTiming::new(
        "http://loader.example/loader.js",
        "10.0.0.1",
        30_000,
        900.0,
    ));
    report.push(ObjectTiming::new(
        "http://img.example/a.png",
        "10.0.0.2",
        30_000,
        80.0,
    ));
    report.push(ObjectTiming::new(
        "http://img.example/b.png",
        "10.0.0.2",
        30_000,
        95.0,
    ));
    report.push(ObjectTiming::new(
        "http://fonts.example/f.woff",
        "10.0.0.3",
        30_000,
        70.0,
    ));
    report.push(ObjectTiming::new(
        "http://api.example/d.js",
        "10.0.0.4",
        30_000,
        90.0,
    ));
    report
}

#[test]
fn ingest_with_hanging_fetcher_completes_within_the_deadline() {
    let oak = Oak::new(OakConfig::default());
    // The rule references the loader only through an external script, so
    // matching must fetch — and the host hangs.
    oak.add_rule(Rule::replace_identical(
        r#"<script src="http://cdn-a.example/veneer.js">"#,
        [r#"<script src="http://cdn-b.example/veneer.js">"#],
    ))
    .unwrap();
    let inner = FlakyFetcher::new([FetchStep::Hang(Duration::from_secs(30))]);
    let policy = FetchPolicy {
        deadline: Some(Duration::from_millis(100)),
        retries: 0,
        ..instant_policy()
    };
    let fetcher = ResilientFetcher::new(inner, policy);
    let started = std::time::Instant::now();
    let outcome = oak.ingest_report_from(Instant::ZERO, &violating_report(), &fetcher, None);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "ingest stalled on a hanging script host: {:?}",
        started.elapsed()
    );
    assert!(outcome.activated.is_empty());
    assert!(fetcher.stats().timeouts >= 1);
}
