use crate::rule::RuleType;
use crate::spec::{parse_rule, parse_rules};

#[test]
fn parses_the_papers_example() {
    let rule = parse_rule(
        r#"
        (2,                                            # Replacement Type
         "<script src=\"http://s1.com/jquery.js\">",
         "<script src=\"http://s2.net/jquery.js\">",
         0,                                            # Never Expire
         *)                                            # Site wide
        "#,
    )
    .unwrap();
    assert_eq!(rule.rule_type, RuleType::ReplaceIdentical);
    assert_eq!(
        rule.default_text,
        r#"<script src="http://s1.com/jquery.js">"#
    );
    assert_eq!(
        rule.alternatives,
        [r#"<script src="http://s2.net/jquery.js">"#]
    );
    assert!(rule.ttl_ms.is_none(), "0 means never expire");
    assert!(rule.scope.applies_to("/any/page/at/all"));
}

#[test]
fn parses_type1_with_no_alternative() {
    let rule =
        parse_rule(r#"(1, "<iframe src=\"http://ads.example/b\"></iframe>", -, 60000, "/shop/*")"#)
            .unwrap();
    assert_eq!(rule.rule_type, RuleType::Remove);
    assert!(rule.alternatives.is_empty());
    assert_eq!(rule.ttl_ms, Some(60_000));
    assert!(rule.scope.applies_to("/shop/widget"));
    assert!(!rule.scope.applies_to("/about"));
}

#[test]
fn parses_alternative_lists() {
    let rule = parse_rule(r#"(3, "default", ["alt one", "alt two", "alt three"], 0, *)"#).unwrap();
    assert_eq!(rule.rule_type, RuleType::ReplaceDifferent);
    assert_eq!(rule.alternatives.len(), 3);
    assert_eq!(rule.alternatives[1], "alt two");
}

#[test]
fn parses_regex_scope() {
    let rule = parse_rule(r#"(2, "x", "y", 0, "re:^/item/\\d+$")"#).unwrap();
    assert!(rule.scope.applies_to("/item/42"));
    assert!(!rule.scope.applies_to("/item/abc"));
}

#[test]
fn parses_escapes() {
    let rule = parse_rule(r#"(2, "a\"b\\c\nd\te", "z", 0, *)"#).unwrap();
    assert_eq!(rule.default_text, "a\"b\\c\nd\te");
}

#[test]
fn parses_multiple_rules() {
    let rules = parse_rules(
        r#"
        # CDN failover rules
        (2, "one", "uno", 0, *)
        (1, "two", -, 0, *)   # drop the slow widget
        (3, "three", ["tres", "drei"], 5000, "/x/*")
        "#,
    )
    .unwrap();
    assert_eq!(rules.len(), 3);
    assert_eq!(rules[0].default_text, "one");
    assert_eq!(rules[1].rule_type, RuleType::Remove);
    assert_eq!(rules[2].alternatives.len(), 2);
}

#[test]
fn empty_input_parses_to_no_rules() {
    assert_eq!(parse_rules("").unwrap().len(), 0);
    assert_eq!(parse_rules("  # only a comment\n").unwrap().len(), 0);
}

#[test]
fn reports_line_numbers() {
    let err = parse_rules("(2, \"a\", \"b\", 0, *)\n\n(9, \"x\", \"y\", 0, *)").unwrap_err();
    assert_eq!(err.line, 3);
    assert!(err.to_string().contains("line 3"));
}

#[test]
fn rejects_syntax_errors() {
    for bad in [
        "2, \"a\", \"b\", 0, *)",     // missing (
        "(2 \"a\", \"b\", 0, *)",     // missing comma
        "(2, \"a\", \"b\", 0, *",     // missing )
        "(2, \"a\", \"b\", zero, *)", // non-integer ttl
        "(2, \"a, \"b\", 0, *)",      // unterminated-ish string
        "(2, \"a\", \"b\", 0, *) trailing",
        "(4, \"a\", \"b\", 0, *)",         // unknown type
        "(2, \"a\", [\"b\" \"c\"], 0, *)", // missing comma in list
        "(2, \"a\\q\", \"b\", 0, *)",      // bad escape
    ] {
        assert!(parse_rule(bad).is_err(), "{bad:?} should fail");
    }
}

#[test]
fn rejects_semantically_invalid_rules() {
    // Type 1 with an alternative.
    assert!(parse_rule(r#"(1, "a", "b", 0, *)"#).is_err());
    // Type 2 with no alternative.
    assert!(parse_rule(r#"(2, "a", -, 0, *)"#).is_err());
    // Alternative contains the default text.
    assert!(parse_rule(r#"(2, "abc", "xxabcxx", 0, *)"#).is_err());
}

#[test]
fn parses_policy_options() {
    use crate::rule::{ClientFilter, SelectionPolicy};
    let rule = parse_rule(
        r#"(2, "default", ["a", "b"], 0, *,
            violations = 3,
            selection = userhash,
            subnet = "10.3.",
            sub = "x" => "y",
            sub = "p" => "q")"#,
    )
    .unwrap();
    assert_eq!(rule.policy.violations_required, 3);
    assert_eq!(rule.policy.selection, SelectionPolicy::UserHash);
    assert_eq!(
        rule.policy.client_filter,
        ClientFilter::IpPrefix("10.3.".into())
    );
    assert_eq!(rule.sub_rules.len(), 2);
    assert_eq!(rule.sub_rules[1].find, "p");
    assert_eq!(rule.sub_rules[1].replace, "q");
}

#[test]
fn options_default_when_absent() {
    use crate::rule::{ClientFilter, SelectionPolicy};
    let rule = parse_rule(r#"(2, "d", "a", 0, *)"#).unwrap();
    assert_eq!(rule.policy.violations_required, 1);
    assert_eq!(rule.policy.selection, SelectionPolicy::Linear);
    assert_eq!(rule.policy.client_filter, ClientFilter::Any);
    assert!(rule.sub_rules.is_empty());
}

#[test]
fn rejects_bad_options() {
    for bad in [
        r#"(2, "d", "a", 0, *, violations = 0)"#,
        r#"(2, "d", "a", 0, *, violations = x)"#,
        r#"(2, "d", "a", 0, *, selection = random)"#,
        r#"(2, "d", "a", 0, *, subnet = "")"#,
        r#"(2, "d", "a", 0, *, sub = "" => "y")"#,
        r#"(2, "d", "a", 0, *, sub = "x" "y")"#,
        r#"(2, "d", "a", 0, *, frobnicate = 7)"#,
        r#"(2, "d", "a", 0, *, violations)"#,
    ] {
        assert!(parse_rule(bad).is_err(), "{bad:?} should fail");
    }
}

#[test]
fn options_compose_with_multiple_rules() {
    let rules = parse_rules(
        r#"
        (2, "one", "uno", 0, *, violations = 2)
        (1, "two", -, 0, *, subnet = "10.")
        "#,
    )
    .unwrap();
    assert_eq!(rules.len(), 2);
    assert_eq!(rules[0].policy.violations_required, 2);
    assert!(matches!(
        rules[1].policy.client_filter,
        crate::rule::ClientFilter::IpPrefix(_)
    ));
}

#[test]
fn format_rule_roundtrips() {
    use crate::rule::{Rule, SelectionPolicy};
    use crate::spec::{format_rule, format_rules};
    use oak_pattern::Scope;

    let rules = vec![
        Rule::replace_identical("http://a.example/", ["http://m.example/a.example/"]),
        Rule::remove(r#"<iframe src="http://ads.example/x"></iframe>"#)
            .with_ttl_ms(Some(60_000))
            .with_scope(Scope::parse("/shop/*").unwrap()),
        Rule::replace_different("old \"quoted\" text\nwith newline", ["new\ttext", "third"])
            .with_violations_required(3)
            .with_selection(SelectionPolicy::UserHash)
            .with_client_prefix("10.3.")
            .with_sub_rule("find-me", "replace-me"),
    ];
    for rule in &rules {
        let text = format_rule(rule);
        let parsed = parse_rule(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
        assert_eq!(parsed.rule_type, rule.rule_type);
        assert_eq!(parsed.default_text, rule.default_text);
        assert_eq!(parsed.alternatives, rule.alternatives);
        assert_eq!(parsed.ttl_ms, rule.ttl_ms);
        assert_eq!(parsed.scope.to_source(), rule.scope.to_source());
        assert_eq!(parsed.policy, rule.policy);
        assert_eq!(parsed.sub_rules, rule.sub_rules);
    }
    // And a whole file.
    let file = format_rules(rules.iter());
    assert_eq!(parse_rules(&file).unwrap().len(), rules.len());
}

mod format_properties {
    use super::*;
    use crate::spec::format_rule;
    use proptest::prelude::*;

    proptest! {
        /// format → parse is the identity for arbitrary text payloads.
        #[test]
        fn format_parse_roundtrip(
            default_text in "[ -~]{1,40}",
            alt in "[ -~]{1,40}",
            ttl in prop::option::of(1u64..1_000_000),
            violations in 1u32..5,
        ) {
            // Skip the pathological case validation rejects.
            prop_assume!(!alt.contains(&default_text));
            let rule = crate::rule::Rule::replace_identical(&default_text, [alt])
                .with_ttl_ms(ttl)
                .with_violations_required(violations);
            let text = format_rule(&rule);
            let parsed = parse_rule(&text).unwrap();
            prop_assert_eq!(parsed.default_text, rule.default_text);
            prop_assert_eq!(parsed.alternatives, rule.alternatives);
            prop_assert_eq!(parsed.ttl_ms, rule.ttl_ms);
            prop_assert_eq!(
                parsed.policy.violations_required,
                rule.policy.violations_required
            );
        }
    }
}

#[test]
fn roundtrips_through_engine() {
    use crate::engine::{Oak, OakConfig};
    let oak = Oak::new(OakConfig::default());
    for rule in parse_rules(
        r#"(2, "<img src=\"http://a.example/x\">", "<img src=\"http://b.example/x\">", 0, *)"#,
    )
    .unwrap()
    {
        oak.add_rule(rule).unwrap();
    }
    assert_eq!(oak.rules().count(), 1);
}
