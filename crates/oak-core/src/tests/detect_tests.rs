use crate::analysis::PageAnalysis;
use crate::detect::{detect_violators, DetectorConfig, OutlierMethod, ViolationKind};
use crate::report::{ObjectTiming, PerfReport};

/// A report with five servers serving one small object each, at the given
/// times.
fn small_object_report(times: &[f64]) -> PerfReport {
    let mut r = PerfReport::new("u", "/");
    for (i, &t) in times.iter().enumerate() {
        r.push(ObjectTiming::new(
            format!("http://host{i}.example/obj"),
            format!("10.0.0.{}", i + 1),
            1_000,
            t,
        ));
    }
    r
}

fn large_object_report(tputs_kbps: &[f64]) -> PerfReport {
    let mut r = PerfReport::new("u", "/");
    for (i, &tput) in tputs_kbps.iter().enumerate() {
        // time = bits / kbps; 800_000 bits at `tput` kbps.
        let bytes = 100_000u64;
        let time_ms = bytes as f64 * 8.0 / tput;
        r.push(ObjectTiming::new(
            format!("http://big{i}.example/blob"),
            format!("10.0.1.{}", i + 1),
            bytes,
            time_ms,
        ));
    }
    r
}

#[test]
fn detects_slow_small_object_server() {
    let r = small_object_report(&[100.0, 110.0, 90.0, 105.0, 500.0]);
    let a = PageAnalysis::from_report(&r);
    let v = detect_violators(&a, &DetectorConfig::default());
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].ip, "10.0.0.5");
    assert_eq!(v[0].domains, ["host4.example"]);
    match v[0].kind {
        ViolationKind::SlowSmallObjects {
            observed_ms,
            median_ms,
            ..
        } => {
            assert_eq!(observed_ms, 500.0);
            assert_eq!(median_ms, 105.0);
        }
        _ => panic!("expected small-object violation"),
    }
}

#[test]
fn detects_low_throughput_server() {
    let r = large_object_report(&[4_000.0, 4_200.0, 3_900.0, 4_100.0, 300.0]);
    let a = PageAnalysis::from_report(&r);
    let v = detect_violators(&a, &DetectorConfig::default());
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].ip, "10.0.1.5");
    assert!(matches!(v[0].kind, ViolationKind::LowThroughput { .. }));
}

#[test]
fn healthy_population_has_no_violators() {
    let r = small_object_report(&[95.0, 100.0, 105.0, 110.0, 98.0]);
    let a = PageAnalysis::from_report(&r);
    assert!(detect_violators(&a, &DetectorConfig::default()).is_empty());
}

#[test]
fn threshold_formula_is_exact() {
    // The probe participates in the population statistics. With servers at
    // 90, 95, 105, 110 and a probe near 125: sorted medians give
    // median = 105, deviations {15, 10, 0, 5, ~20} → MAD = 10, so the
    // violation boundary sits at 105 + 2·10 = 125.
    let config = DetectorConfig::default();
    let below = small_object_report(&[90.0, 95.0, 105.0, 110.0, 124.9]);
    let above = small_object_report(&[90.0, 95.0, 105.0, 110.0, 125.1]);
    assert!(detect_violators(&PageAnalysis::from_report(&below), &config).is_empty());
    let v = detect_violators(&PageAnalysis::from_report(&above), &config);
    assert_eq!(v.len(), 1, "just past median + 2·MAD is a violation");
}

#[test]
fn min_servers_gate() {
    // Two servers, one ostensibly slow: no population to deviate from.
    let r = small_object_report(&[100.0, 900.0]);
    let a = PageAnalysis::from_report(&r);
    assert!(detect_violators(&a, &DetectorConfig::default()).is_empty());
    let loose = DetectorConfig {
        min_servers: 2,
        ..DetectorConfig::default()
    };
    // Even allowed, two points give MAD = half the gap and no violation
    // beyond 2·MAD; nothing is flagged. Either way: no panic, no nonsense.
    let _ = detect_violators(&a, &loose);
}

#[test]
fn uniformly_slow_client_is_not_a_violation_storm() {
    // "users on narrow-bandwidth long-haul links will likely see low
    // performance no matter which servers they are communicating with,
    // and Oak need not waste its time with such cases" (§4.2.1).
    let r = small_object_report(&[2_000.0, 2_100.0, 1_900.0, 2_050.0, 2_000.0]);
    let a = PageAnalysis::from_report(&r);
    assert!(detect_violators(&a, &DetectorConfig::default()).is_empty());
}

#[test]
fn either_test_suffices() {
    // A server with fine small objects but terrible throughput violates.
    let mut r = PerfReport::new("u", "/");
    for i in 0..4 {
        r.push(ObjectTiming::new(
            format!("http://ok{i}.example/s"),
            format!("10.0.0.{i}"),
            1_000,
            100.0 + i as f64 * 5.0,
        ));
        r.push(ObjectTiming::new(
            format!("http://ok{i}.example/l"),
            format!("10.0.0.{i}"),
            200_000,
            // Vary the healthy servers so the throughput MAD is nonzero.
            400.0 + i as f64 * 15.0,
        ));
    }
    // Mixed server: small objects healthy, large objects starved.
    r.push(ObjectTiming::new(
        "http://mixed.example/s",
        "10.0.0.9",
        1_000,
        102.0,
    ));
    r.push(ObjectTiming::new(
        "http://mixed.example/l",
        "10.0.0.9",
        200_000,
        40_000.0,
    ));
    let a = PageAnalysis::from_report(&r);
    let v = detect_violators(&a, &DetectorConfig::default());
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].ip, "10.0.0.9");
    assert!(matches!(v[0].kind, ViolationKind::LowThroughput { .. }));
}

#[test]
fn threshold_knob_changes_sensitivity() {
    let r = small_object_report(&[90.0, 100.0, 110.0, 105.0, 160.0]);
    let a = PageAnalysis::from_report(&r);
    let tight = DetectorConfig {
        threshold: 1.0,
        ..DetectorConfig::default()
    };
    // Times sorted: 90,100,105,110,160 → median 105, MAD 5; the probe at
    // 160 sits 11 MADs out, so k = 12 is just loose enough to ignore it.
    let loose = DetectorConfig {
        threshold: 12.0,
        ..DetectorConfig::default()
    };
    assert!(!detect_violators(&a, &tight).is_empty());
    assert!(detect_violators(&a, &loose).is_empty());
}

#[test]
fn stddev_ablation_detects_differently() {
    // Two far outliers: MAD flags both; σ is inflated by them and the
    // detection threshold balloons. This is the paper's argument in
    // miniature.
    let r = small_object_report(&[100.0, 102.0, 98.0, 101.0, 99.0, 1_000.0, 1_050.0]);
    let a = PageAnalysis::from_report(&r);
    let mad_hits = detect_violators(&a, &DetectorConfig::default());
    let sd_hits = detect_violators(
        &a,
        &DetectorConfig {
            method: OutlierMethod::StdDev,
            ..DetectorConfig::default()
        },
    );
    assert_eq!(mad_hits.len(), 2);
    assert!(sd_hits.len() < 2, "σ swallows its own outliers");
}

#[test]
fn severity_is_normalized_distance() {
    let kind = ViolationKind::SlowSmallObjects {
        observed_ms: 130.0,
        median_ms: 100.0,
        deviation_ms: 10.0,
    };
    assert!((kind.severity() - 3.0).abs() < 1e-12);
    let kind = ViolationKind::LowThroughput {
        observed_kbps: 200.0,
        median_kbps: 1_000.0,
        deviation_kbps: 200.0,
    };
    assert!((kind.severity() - 4.0).abs() < 1e-12);
}

#[test]
fn zero_mad_population_never_divides_by_zero() {
    // All servers identical: MAD = 0; the `dev > 0` guard suppresses
    // detection instead of flagging everything.
    let r = small_object_report(&[100.0, 100.0, 100.0, 100.0, 100.0]);
    let a = PageAnalysis::from_report(&r);
    assert!(detect_violators(&a, &DetectorConfig::default()).is_empty());
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Detection is total and flags at most all servers.
        #[test]
        fn detection_is_total(times in prop::collection::vec(1.0f64..1e5, 0..20)) {
            let r = small_object_report(&times);
            let a = PageAnalysis::from_report(&r);
            let v = detect_violators(&a, &DetectorConfig::default());
            prop_assert!(v.len() <= a.server_count());
        }

        /// Every flagged server is genuinely past the threshold.
        #[test]
        fn flagged_servers_exceed_threshold(
            times in prop::collection::vec(1.0f64..1e4, 3..20),
        ) {
            let r = small_object_report(&times);
            let a = PageAnalysis::from_report(&r);
            let config = DetectorConfig::default();
            for v in detect_violators(&a, &config) {
                match v.kind {
                    ViolationKind::SlowSmallObjects { observed_ms, median_ms, deviation_ms } => {
                        prop_assert!(observed_ms > median_ms + config.threshold * deviation_ms);
                        prop_assert!(v.kind.severity() > config.threshold);
                    }
                    _ => prop_assert!(false, "small-object report produced throughput violation"),
                }
            }
        }

        /// Raising the threshold never flags more servers (monotonicity).
        #[test]
        fn threshold_is_monotone(
            times in prop::collection::vec(1.0f64..1e4, 3..15),
            k1 in 0.5f64..4.0,
            k2 in 0.5f64..4.0,
        ) {
            let (lo, hi) = if k1 <= k2 { (k1, k2) } else { (k2, k1) };
            let r = small_object_report(&times);
            let a = PageAnalysis::from_report(&r);
            let loose = detect_violators(&a, &DetectorConfig { threshold: hi, ..Default::default() });
            let tight = detect_violators(&a, &DetectorConfig { threshold: lo, ..Default::default() });
            prop_assert!(loose.len() <= tight.len());
            // And every loose hit is also a tight hit.
            for v in &loose {
                prop_assert!(tight.iter().any(|t| t.ip == v.ip));
            }
        }
    }
}
