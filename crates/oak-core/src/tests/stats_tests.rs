use crate::stats::*;

#[test]
fn median_odd_even_empty() {
    assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
    assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
    assert_eq!(median(&[7.0]), Some(7.0));
    assert_eq!(median(&[]), None);
}

#[test]
fn mad_formula_matches_paper() {
    // MAD = medianᵢ(|xᵢ − medianⱼ(xⱼ)|)
    let xs = [1.0, 2.0, 3.0, 4.0, 100.0];
    let m = median(&xs).unwrap();
    assert_eq!(m, 3.0);
    // Deviations: 2, 1, 0, 1, 97 → median 1.
    assert_eq!(mad(&xs, m), Some(1.0));
}

#[test]
fn mad_is_robust_where_stddev_is_not() {
    // One extreme outlier hardly moves the MAD but explodes σ — the
    // paper's §4.2.1 argument for MAD.
    let clean = [10.0, 11.0, 12.0, 13.0, 14.0];
    let dirty = [10.0, 11.0, 12.0, 13.0, 5000.0];
    let (_, mad_clean) = median_and_mad(&clean).unwrap();
    let (_, mad_dirty) = median_and_mad(&dirty).unwrap();
    assert!(mad_dirty <= mad_clean * 2.0, "MAD barely moves");
    let sd_clean = stddev(&clean).unwrap();
    let sd_dirty = stddev(&dirty).unwrap();
    assert!(sd_dirty > sd_clean * 100.0, "σ explodes");
}

#[test]
fn mean_and_stddev() {
    assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
    assert_eq!(mean(&[]), None);
    assert_eq!(stddev(&[5.0, 5.0, 5.0]), Some(0.0));
    let sd = stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
    assert!((sd - 2.0).abs() < 1e-12);
    assert_eq!(stddev(&[]), None);
}

#[test]
fn percentile_interpolates() {
    let xs = [10.0, 20.0, 30.0, 40.0];
    assert_eq!(percentile(&xs, 0.0), Some(10.0));
    assert_eq!(percentile(&xs, 100.0), Some(40.0));
    assert_eq!(percentile(&xs, 50.0), Some(25.0));
    assert_eq!(percentile(&xs, 150.0), Some(40.0), "clamped");
    assert_eq!(percentile(&[], 50.0), None);
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The median lies within the sample range and at least half the
        /// sample sits on each side.
        #[test]
        fn median_is_central(xs in prop::collection::vec(-1e6f64..1e6, 1..50)) {
            let m = median(&xs).unwrap();
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(m >= lo && m <= hi);
            let below = xs.iter().filter(|&&x| x <= m).count();
            let above = xs.iter().filter(|&&x| x >= m).count();
            prop_assert!(below * 2 >= xs.len());
            prop_assert!(above * 2 >= xs.len());
        }

        /// MAD is non-negative and invariant under translation.
        #[test]
        fn mad_translation_invariant(
            xs in prop::collection::vec(-1e5f64..1e5, 1..40),
            shift in -1e5f64..1e5,
        ) {
            let (m1, d1) = median_and_mad(&xs).unwrap();
            let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
            let (m2, d2) = median_and_mad(&shifted).unwrap();
            prop_assert!(d1 >= 0.0);
            prop_assert!((m2 - (m1 + shift)).abs() < 1e-6);
            prop_assert!((d2 - d1).abs() < 1e-6);
        }

        /// MAD scales with the sample.
        #[test]
        fn mad_scales(
            xs in prop::collection::vec(-1e4f64..1e4, 2..40),
            scale in 0.1f64..10.0,
        ) {
            let (_, d1) = median_and_mad(&xs).unwrap();
            let scaled: Vec<f64> = xs.iter().map(|x| x * scale).collect();
            let (_, d2) = median_and_mad(&scaled).unwrap();
            prop_assert!((d2 - d1 * scale).abs() < 1e-6 * (1.0 + d1 * scale));
        }

        /// Percentile is monotone in p.
        #[test]
        fn percentile_monotone(
            xs in prop::collection::vec(-1e5f64..1e5, 1..30),
            p1 in 0.0f64..100.0,
            p2 in 0.0f64..100.0,
        ) {
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            prop_assert!(percentile(&xs, lo) <= percentile(&xs, hi));
        }
    }
}
