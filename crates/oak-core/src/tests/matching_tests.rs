use std::collections::HashMap;

use crate::matching::{match_rule, url_host, MatchLevel, NoFetch, ScriptFetcher};

fn domains(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| (*s).to_owned()).collect()
}

/// A fetcher backed by a fixed url → body table.
struct TableFetcher(HashMap<String, String>);

impl ScriptFetcher for TableFetcher {
    fn fetch_script(&self, url: &str) -> Option<String> {
        self.0.get(url).cloned()
    }
}

#[test]
fn direct_include_matches_src_attribute() {
    let rule = r#"<script src="http://cdn.violator.example/lib.js"></script>"#;
    let hit = match_rule(
        rule,
        &domains(&["cdn.violator.example"]),
        MatchLevel::DirectInclude,
        &NoFetch,
    );
    assert_eq!(hit.map(|m| m.level), Some(MatchLevel::DirectInclude));
}

#[test]
fn direct_include_matches_img_and_link() {
    let img = r#"<img src="http://img.v.example/x.png">"#;
    let link = r#"<link rel="stylesheet" href="http://css.v.example/m.css">"#;
    assert!(match_rule(
        img,
        &domains(&["img.v.example"]),
        MatchLevel::DirectInclude,
        &NoFetch
    )
    .is_some());
    assert!(match_rule(
        link,
        &domains(&["css.v.example"]),
        MatchLevel::DirectInclude,
        &NoFetch
    )
    .is_some());
}

#[test]
fn direct_include_requires_exact_host() {
    let rule = r#"<img src="http://sub.cdn.example/x.png">"#;
    assert!(
        match_rule(
            rule,
            &domains(&["cdn.example"]),
            MatchLevel::DirectInclude,
            &NoFetch
        )
        .is_none(),
        "parent domain must not match a sub-domain host"
    );
    assert!(
        match_rule(
            rule,
            &domains(&["SUB.CDN.EXAMPLE"]),
            MatchLevel::DirectInclude,
            &NoFetch
        )
        .is_some(),
        "comparison is case-insensitive"
    );
}

#[test]
fn text_match_finds_domains_in_inline_scripts() {
    // "these scripts often do not contain well formed URLs, and instead
    // construct the final URL programatically" (§4.2.2).
    let rule = r#"<script>
        var host = "tracker.ads.example";
        img.src = "http://" + host + "/pixel?" + Date.now();
    </script>"#;
    let hit = match_rule(
        rule,
        &domains(&["tracker.ads.example"]),
        MatchLevel::TextMatch,
        &NoFetch,
    );
    assert_eq!(hit.map(|m| m.level), Some(MatchLevel::TextMatch));
    // But NOT at the direct-include level.
    assert!(match_rule(
        rule,
        &domains(&["tracker.ads.example"]),
        MatchLevel::DirectInclude,
        &NoFetch
    )
    .is_none());
}

#[test]
fn text_match_respects_host_boundaries() {
    let rule = "<script>connect('http://badcdn.example/x')</script>";
    assert!(
        match_rule(
            rule,
            &domains(&["cdn.example"]),
            MatchLevel::TextMatch,
            &NoFetch
        )
        .is_none(),
        "cdn.example must not match inside badcdn.example"
    );
    let rule2 = "<script>connect('http://cdn.example.evil.net/x')</script>";
    assert!(
        match_rule(
            rule2,
            &domains(&["cdn.example"]),
            MatchLevel::TextMatch,
            &NoFetch
        )
        .is_none(),
        "cdn.example must not match a longer host"
    );
}

#[test]
fn external_js_expansion_matches_through_one_level() {
    // Fig. 6's scenario: the rule includes script1.js from server 1, and
    // that script fetches image2.jpg from server 3. The rule must match
    // violator server 3 only via the fetched script body.
    let rule = r#"<script src="http://server1.example/script1.js"></script>"#;
    let mut table = HashMap::new();
    table.insert(
        "http://server1.example/script1.js".to_owned(),
        r#"document.write('<img src="http://server3.example/image2.jpg">')"#.to_owned(),
    );
    let fetcher = TableFetcher(table);

    let hit = match_rule(
        rule,
        &domains(&["server3.example"]),
        MatchLevel::ExternalJs,
        &fetcher,
    );
    assert_eq!(hit.map(|m| m.level), Some(MatchLevel::ExternalJs));
    // Level capped below ExternalJs: no match.
    assert!(match_rule(
        rule,
        &domains(&["server3.example"]),
        MatchLevel::TextMatch,
        &fetcher
    )
    .is_none());
    // The script's own host still matches at level 1.
    assert_eq!(
        match_rule(
            rule,
            &domains(&["server1.example"]),
            MatchLevel::ExternalJs,
            &fetcher
        )
        .map(|m| m.level),
        Some(MatchLevel::DirectInclude)
    );
}

#[test]
fn external_js_expansion_is_one_level_only() {
    // A domain reachable only through a script-loaded-by-a-script is not
    // matched: "this process could be continued to an additional layer …
    // however, the payoff is rapidly diminishing" (§4.2.2).
    let rule = r#"<script src="http://l1.example/a.js"></script>"#;
    let mut table = HashMap::new();
    table.insert(
        "http://l1.example/a.js".to_owned(),
        r#"load("http://l2.example/b.js")"#.to_owned(),
    );
    table.insert(
        "http://l2.example/b.js".to_owned(),
        r#"img("http://l3.example/pix.gif")"#.to_owned(),
    );
    let fetcher = TableFetcher(table);
    assert!(match_rule(
        rule,
        &domains(&["l3.example"]),
        MatchLevel::ExternalJs,
        &fetcher
    )
    .is_none());
    // l2 appears in l1's body → matched at the ExternalJs level.
    assert!(match_rule(
        rule,
        &domains(&["l2.example"]),
        MatchLevel::ExternalJs,
        &fetcher
    )
    .is_some());
}

#[test]
fn weakest_level_wins() {
    // A rule that matches at both level 1 and level 2 reports level 1.
    let rule = r#"<img src="http://v.example/x.png"><script>var d="v.example";</script>"#;
    let hit = match_rule(
        rule,
        &domains(&["v.example"]),
        MatchLevel::ExternalJs,
        &NoFetch,
    );
    assert_eq!(hit.map(|m| m.level), Some(MatchLevel::DirectInclude));
}

#[test]
fn no_domains_no_match() {
    assert!(match_rule(
        "<img src=\"http://a/x\">",
        &[],
        MatchLevel::ExternalJs,
        &NoFetch
    )
    .is_none());
}

#[test]
fn unfetchable_scripts_do_not_match() {
    let rule = r#"<script src="http://gone.example/a.js"></script>"#;
    assert!(match_rule(
        rule,
        &domains(&["hidden.example"]),
        MatchLevel::ExternalJs,
        &NoFetch
    )
    .is_none());
}

#[test]
fn closure_fetcher_works() {
    let rule = r#"<script src="http://s.example/a.js"></script>"#;
    let fetcher =
        |url: &str| (url == "http://s.example/a.js").then(|| "ping('deep.example')".to_owned());
    assert!(match_rule(
        rule,
        &domains(&["deep.example"]),
        MatchLevel::ExternalJs,
        &fetcher
    )
    .is_some());
}

#[test]
fn url_host_forms() {
    assert_eq!(url_host("http://A.B.example/x"), Some("a.b.example".into()));
    assert_eq!(
        url_host("https://h.example:8443/p?q"),
        Some("h.example".into())
    );
    assert_eq!(
        url_host("//proto.relative.example/y"),
        Some("proto.relative.example".into())
    );
    assert_eq!(url_host("/relative/path"), None);
    assert_eq!(url_host("relative.html"), None);
    assert_eq!(url_host("http:///nohost"), None);
    assert_eq!(url_host("http://user@h.example/"), Some("h.example".into()));
}

#[test]
fn caching_fetcher_memoizes_hits_and_misses() {
    use crate::matching::CachingFetcher;
    use std::sync::atomic::{AtomicUsize, Ordering};

    let calls = AtomicUsize::new(0);
    let fetcher = CachingFetcher::new(|url: &str| {
        calls.fetch_add(1, Ordering::SeqCst);
        (url == "http://has.example/a.js").then(|| "body".to_owned())
    });

    assert_eq!(
        fetcher.fetch_script("http://has.example/a.js").as_deref(),
        Some("body")
    );
    assert_eq!(
        fetcher.fetch_script("http://has.example/a.js").as_deref(),
        Some("body")
    );
    assert_eq!(fetcher.fetch_script("http://404.example/b.js"), None);
    assert_eq!(fetcher.fetch_script("http://404.example/b.js"), None);
    assert_eq!(calls.load(Ordering::SeqCst), 2, "one inner call per URL");
    assert_eq!(fetcher.cached(), 2);
    fetcher.clear();
    assert_eq!(fetcher.cached(), 0);
    fetcher.fetch_script("http://has.example/a.js");
    assert_eq!(calls.load(Ordering::SeqCst), 3, "cleared cache refetches");
}

#[test]
fn rule_surface_agrees_with_match_rule() {
    use crate::matching::RuleSurface;
    let texts = [
        r#"<script src="http://cdn.v.example/lib.js"></script>"#,
        r#"<script>var h = "tracker.example"; ping(h);</script>"#,
        r#"<img src="http://img.example/x.png"><script src="http://l1.example/a.js"></script>"#,
        "plain text mentioning cdn.example here",
        "",
    ];
    let domain_sets: Vec<Vec<String>> = vec![
        vec!["cdn.v.example".into()],
        vec!["tracker.example".into()],
        vec!["img.example".into(), "other.example".into()],
        vec!["cdn.example".into()],
        vec!["deep.example".into()],
        vec![],
    ];
    let fetcher =
        |url: &str| (url == "http://l1.example/a.js").then(|| "go('deep.example')".to_owned());
    for text in texts {
        let surface = RuleSurface::compile(text);
        for domains in &domain_sets {
            for level in MatchLevel::ALL {
                let direct = match_rule(text, domains, level, &fetcher);
                let compiled = surface.matches(domains, level, &fetcher);
                assert_eq!(
                    direct.map(|m| m.level),
                    compiled.map(|m| m.level),
                    "text={text:?} domains={domains:?} level={level:?}"
                );
            }
        }
    }
}

#[test]
fn match_levels_are_ordered() {
    assert!(MatchLevel::DirectInclude < MatchLevel::TextMatch);
    assert!(MatchLevel::TextMatch < MatchLevel::ExternalJs);
    assert_eq!(MatchLevel::ALL.len(), 3);
}

/// The domain→rule index is exact for levels 1–2 because a host-charactered
/// domain can only pass `contains_domain`'s boundary checks by *being* a
/// maximal host-character run — i.e. one of `domain_tokens()`.
#[test]
fn domain_tokens_cover_exactly_the_text_matchable_domains() {
    use crate::matching::RuleSurface;

    let texts = [
        r#"<script src="http://cdn.v.example/lib.js"></script>"#,
        r#"<script>var h = "tracker.example"; ping(h);</script>"#,
        "plain text mentioning cdn.example here",
        "edge-case cdn.example",           // token at end of text
        "cdn.example starts the text",     // token at start
        "embedded xcdn.example.evil host", // must NOT index cdn.example
        "hyphen-host.example and trail-",
        "UPPER.Example is lowercased",
        "",
    ];
    let candidates = [
        "cdn.v.example",
        "tracker.example",
        "cdn.example",
        "xcdn.example.evil",
        "cdn.example.evil",
        "hyphen-host.example",
        "upper.example",
        "absent.example",
    ];
    for text in texts {
        let surface = RuleSurface::compile(text);
        let tokens = surface.domain_tokens();
        for candidate in candidates {
            let matched = surface
                .matches(&[candidate.to_owned()], MatchLevel::TextMatch, &NoFetch)
                .is_some();
            assert_eq!(
                matched,
                tokens.iter().any(|t| t == candidate),
                "index exactness violated: text={text:?} candidate={candidate:?}"
            );
        }
    }
}
