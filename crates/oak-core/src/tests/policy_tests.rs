//! Tests for the §4.2.4 policy extensions: client filters, selection
//! policies, and the §6 absolute-threshold detection ablation.

use crate::analysis::PageAnalysis;
use crate::detect::{detect_violators, DetectorConfig, OutlierMethod};
use crate::engine::{Oak, OakConfig};
use crate::matching::NoFetch;
use crate::report::{ObjectTiming, PerfReport};
use crate::rule::{ClientFilter, Rule, SelectionPolicy};
use crate::time::Instant;

const JQ: &str = r#"<script src="http://cdn-a.example/jquery.js">"#;

fn violating_report(user: &str) -> PerfReport {
    let mut r = PerfReport::new(user, "/");
    r.push(ObjectTiming::new(
        "http://cdn-a.example/jquery.js",
        "10.0.0.1",
        30_000,
        900.0,
    ));
    r.push(ObjectTiming::new(
        "http://img.example/a.png",
        "10.0.0.2",
        30_000,
        80.0,
    ));
    r.push(ObjectTiming::new(
        "http://img.example/b.png",
        "10.0.0.2",
        30_000,
        95.0,
    ));
    r.push(ObjectTiming::new(
        "http://fonts.example/f.woff",
        "10.0.0.3",
        30_000,
        70.0,
    ));
    r.push(ObjectTiming::new(
        "http://api.example/d.js",
        "10.0.0.4",
        30_000,
        90.0,
    ));
    r
}

// ---------------------------------------------------------------------
// Client filters
// ---------------------------------------------------------------------

#[test]
fn client_filter_admits() {
    assert!(ClientFilter::Any.admits(None));
    assert!(ClientFilter::Any.admits(Some("1.2.3.4")));
    let subnet = ClientFilter::IpPrefix("10.3.".into());
    assert!(subnet.admits(Some("10.3.7.9")));
    assert!(
        !subnet.admits(Some("10.30.7.9")),
        "prefix is textual: dot included"
    );
    assert!(!subnet.admits(Some("192.168.0.1")));
    assert!(
        !subnet.admits(None),
        "subnet rules never match unattributed traffic"
    );
}

#[test]
fn subnet_scoped_rule_only_activates_for_matching_clients() {
    let oak = Oak::new(OakConfig::default());
    oak.add_rule(
        Rule::replace_identical(JQ, [r#"<script src="http://cdn-b.example/jquery.js">"#])
            .with_client_prefix("10.3."),
    )
    .unwrap();

    let inside = oak.ingest_report_from(
        Instant::ZERO,
        &violating_report("u-inside"),
        &NoFetch,
        Some("10.3.0.77"),
    );
    assert_eq!(inside.activated.len(), 1);

    let outside = oak.ingest_report_from(
        Instant::ZERO,
        &violating_report("u-outside"),
        &NoFetch,
        Some("10.4.0.77"),
    );
    assert!(outside.activated.is_empty());
    assert_eq!(
        outside.violations.len(),
        1,
        "violation is seen, rule just filtered"
    );

    let anonymous = oak.ingest_report(Instant::ZERO, &violating_report("u-anon"), &NoFetch);
    assert!(
        anonymous.activated.is_empty(),
        "no IP, no subnet-scoped activation"
    );
}

// ---------------------------------------------------------------------
// Selection policies
// ---------------------------------------------------------------------

#[test]
fn user_hash_selection_spreads_users_across_alternatives() {
    let alts: Vec<String> = (0..4)
        .map(|i| format!(r#"<script src="http://mirror{i}.example/jquery.js">"#))
        .collect();
    let oak = Oak::new(OakConfig::default());
    let id = oak
        .add_rule(Rule::replace_identical(JQ, alts).with_selection(SelectionPolicy::UserHash))
        .unwrap();

    let mut seen = std::collections::BTreeSet::new();
    for i in 0..24 {
        let user = format!("u-{i}");
        oak.ingest_report(Instant::ZERO, &violating_report(&user), &NoFetch);
        let active = oak.active_rules(&user);
        assert_eq!(active.len(), 1);
        seen.insert(active[0].1.alternative_index);
        assert_eq!(active[0].0, id);
    }
    assert!(
        seen.len() >= 3,
        "24 users should land on at least 3 of 4 mirrors, got {seen:?}"
    );
}

#[test]
fn user_hash_is_stable_per_user() {
    let alts: Vec<String> = (0..5)
        .map(|i| format!(r#"<script src="http://mirror{i}.example/jquery.js">"#))
        .collect();
    let index_for = |user: &str| {
        let oak = Oak::new(OakConfig::default());
        oak.add_rule(
            Rule::replace_identical(JQ, alts.clone()).with_selection(SelectionPolicy::UserHash),
        )
        .unwrap();
        oak.ingest_report(Instant::ZERO, &violating_report(user), &NoFetch);
        oak.active_rules(user)[0].1.alternative_index
    };
    assert_eq!(index_for("alice"), index_for("alice"));
}

#[test]
fn user_hash_advancement_wraps_and_exhausts() {
    let alts = [
        r#"<script src="http://m0.example/jquery.js">"#,
        r#"<script src="http://m1.example/jquery.js">"#,
        r#"<script src="http://m2.example/jquery.js">"#,
    ];
    let oak = Oak::new(OakConfig::default());
    oak.add_rule(Rule::replace_identical(JQ, alts).with_selection(SelectionPolicy::UserHash))
        .unwrap();
    let user = "u-wrap";
    // Mild default violation: severity comparisons keep forcing advances.
    oak.ingest_report(Instant(0), &violating_report(user), &NoFetch);
    let start = oak.active_rules(user)[0].1.alternative_index;

    // Each currently-selected mirror violates catastrophically in turn.
    let mut visited = vec![start];
    for step in 1..3 {
        let current = oak.active_rules(user)[0].1.alternative_index;
        let mut bad = PerfReport::new(user, "/");
        bad.push(ObjectTiming::new(
            format!("http://m{current}.example/jquery.js"),
            "10.0.0.9",
            30_000,
            9_000.0,
        ));
        bad.push(ObjectTiming::new(
            "http://img.example/a.png",
            "10.0.0.2",
            30_000,
            80.0,
        ));
        bad.push(ObjectTiming::new(
            "http://img.example/b.png",
            "10.0.0.2",
            30_000,
            95.0,
        ));
        bad.push(ObjectTiming::new(
            "http://fonts.example/f.woff",
            "10.0.0.3",
            30_000,
            70.0,
        ));
        bad.push(ObjectTiming::new(
            "http://api.example/d.js",
            "10.0.0.4",
            30_000,
            90.0,
        ));
        let outcome = oak.ingest_report(Instant(step), &bad, &NoFetch);
        assert_eq!(outcome.advanced.len(), 1, "step {step} should advance");
        let next = oak.active_rules(user)[0].1.alternative_index;
        assert_eq!(next, (current + 1) % 3, "wrapping advance");
        visited.push(next);
    }
    // All three mirrors visited exactly once.
    visited.sort_unstable();
    assert_eq!(visited, [0, 1, 2]);

    // A third bad alternate exhausts the list → deactivate.
    let current = oak.active_rules(user)[0].1.alternative_index;
    let mut bad = violating_report(user);
    bad.entries[0] = ObjectTiming::new(
        format!("http://m{current}.example/jquery.js"),
        "10.0.0.9",
        30_000,
        9_000.0,
    );
    let outcome = oak.ingest_report(Instant(9), &bad, &NoFetch);
    assert_eq!(outcome.deactivated.len(), 1);
    assert!(oak.active_rules(user).is_empty());
}

// ---------------------------------------------------------------------
// Absolute-threshold detection (the §6 ablation)
// ---------------------------------------------------------------------

#[test]
fn absolute_method_flags_by_fixed_bounds() {
    let method = OutlierMethod::Absolute {
        max_small_ms: 300.0,
        min_large_kbps: 1_000.0,
    };
    let config = DetectorConfig {
        method,
        ..DetectorConfig::default()
    };
    let mut r = PerfReport::new("u", "/");
    r.push(ObjectTiming::new(
        "http://fast.example/s",
        "10.0.0.1",
        10_000,
        100.0,
    ));
    r.push(ObjectTiming::new(
        "http://slow.example/s",
        "10.0.0.2",
        10_000,
        350.0,
    ));
    // 100 KB in 2 s → 400 kbit/s, below the floor.
    r.push(ObjectTiming::new(
        "http://thin.example/l",
        "10.0.0.3",
        100_000,
        2_000.0,
    ));
    let v = detect_violators(&PageAnalysis::from_report(&r), &config);
    let ips: Vec<&str> = v.iter().map(|v| v.ip.as_str()).collect();
    assert_eq!(ips, ["10.0.0.2", "10.0.0.3"]);
}

#[test]
fn absolute_method_flags_uniformly_slow_pages_where_mad_does_not() {
    // The §6 argument: a narrowband client sees everything slow; MAD
    // correctly stays quiet, absolute bounds flag the world.
    let mut r = PerfReport::new("u", "/");
    for i in 0..6 {
        r.push(ObjectTiming::new(
            format!("http://h{i}.example/s"),
            format!("10.0.0.{i}"),
            10_000,
            2_000.0 + i as f64 * 40.0,
        ));
    }
    let analysis = PageAnalysis::from_report(&r);
    assert!(detect_violators(&analysis, &DetectorConfig::default()).is_empty());
    let absolute = DetectorConfig {
        method: OutlierMethod::Absolute {
            max_small_ms: 500.0,
            min_large_kbps: 100.0,
        },
        ..DetectorConfig::default()
    };
    assert_eq!(detect_violators(&analysis, &absolute).len(), 6);
}

#[test]
fn absolute_severity_is_positive_past_the_bound() {
    let method = OutlierMethod::Absolute {
        max_small_ms: 200.0,
        min_large_kbps: 1_000.0,
    };
    let mut r = PerfReport::new("u", "/");
    for i in 0..3 {
        r.push(ObjectTiming::new(
            format!("http://h{i}.example/s"),
            format!("10.0.0.{i}"),
            10_000,
            400.0,
        ));
    }
    let config = DetectorConfig {
        method,
        ..DetectorConfig::default()
    };
    for v in detect_violators(&PageAnalysis::from_report(&r), &config) {
        assert!(v.kind.severity() > 0.0);
    }
}
