//! The cohort detector: cold abstention, warm confirmation, chronic
//! exoneration, the FP ⊆ construction, and the key-cap bound.

use proptest::prelude::*;

use crate::analysis::PageAnalysis;
use crate::cohort::{CohortBaselines, CohortConfig};
use crate::detect::{detect_violators, DetectorConfig, DetectorPolicy};
use crate::engine::{Oak, OakConfig};
use crate::matching::NoFetch;
use crate::report::{DeviceClass, ObjectTiming, PerfReport};
use crate::rule::Rule;
use crate::Instant;

/// Five servers; `slow_ms` prices the first one's small object, the rest
/// sit in a healthy 70–95 ms band. At 900 ms the first server is a clear
/// global MAD outlier.
fn report_with_slow_server(slow_ms: f64) -> PerfReport {
    let mut report = PerfReport::new("u-1", "/index.html");
    report.push(ObjectTiming::new(
        "http://ads.example/chain.js",
        "10.0.0.1",
        30_000,
        slow_ms,
    ));
    for (i, healthy_ms) in [80.0, 95.0, 70.0, 90.0].iter().enumerate() {
        report.push(ObjectTiming::new(
            format!("http://srv{i}.example/a.js"),
            format!("10.0.0.{}", i + 2),
            30_000,
            *healthy_ms,
        ));
    }
    report
}

fn flagged_ips(baselines: &mut CohortBaselines, report: &PerfReport) -> Vec<String> {
    let analysis = PageAnalysis::from_report(report);
    baselines
        .detect_and_update(&analysis, report.device, &DetectorConfig::default())
        .into_iter()
        .map(|v| v.ip)
        .collect()
}

/// A cold baseline abstains: the global test flags the slow server, the
/// cohort gate drops it for lack of history.
#[test]
fn cold_baselines_abstain() {
    let report = report_with_slow_server(900.0).with_device(DeviceClass::MidMobile);
    let analysis = PageAnalysis::from_report(&report);
    assert_eq!(
        detect_violators(&analysis, &DetectorConfig::default()).len(),
        1,
        "precondition: the global test must flag the slow server"
    );
    let mut baselines = CohortBaselines::new(CohortConfig::default());
    assert!(flagged_ips(&mut baselines, &report).is_empty());
}

/// A server that degrades past its own warm, healthy history stays
/// flagged — the cohort gate confirms real regressions.
#[test]
fn warm_baseline_confirms_a_real_regression() {
    let mut baselines = CohortBaselines::new(CohortConfig::default());
    // Warm every baseline with healthy reports (no global outliers).
    for _ in 0..CohortConfig::default().min_samples {
        let healthy = report_with_slow_server(85.0).with_device(DeviceClass::MidMobile);
        assert!(flagged_ips(&mut baselines, &healthy).is_empty());
    }
    // The ad server jumps to 10× its own history: flag survives.
    let degraded = report_with_slow_server(900.0).with_device(DeviceClass::MidMobile);
    assert_eq!(flagged_ips(&mut baselines, &degraded), vec!["10.0.0.1"]);
}

/// A server that is *always* slow for this cohort — device-induced
/// script cost, not a failing server — warms its baseline at the slow
/// value and is exonerated, report after report.
#[test]
fn chronically_slow_for_cohort_is_exonerated() {
    let mut baselines = CohortBaselines::new(CohortConfig::default());
    for _ in 0..32 {
        let report = report_with_slow_server(900.0).with_device(DeviceClass::LowEndMobile);
        assert!(
            flagged_ips(&mut baselines, &report).is_empty(),
            "cohort-normal slowness must never be blamed on the server"
        );
    }
}

/// Baselines are per cohort: a desktop that suddenly sees ad-server
/// slowness is not exonerated by the mobile cohort's inflated history.
#[test]
fn cohorts_do_not_share_baselines() {
    let mut baselines = CohortBaselines::new(CohortConfig::default());
    for _ in 0..16 {
        let mobile = report_with_slow_server(900.0).with_device(DeviceClass::LowEndMobile);
        flagged_ips(&mut baselines, &mobile);
        let desktop = report_with_slow_server(85.0).with_device(DeviceClass::Desktop);
        assert!(flagged_ips(&mut baselines, &desktop).is_empty());
    }
    let degraded = report_with_slow_server(900.0).with_device(DeviceClass::Desktop);
    assert_eq!(flagged_ips(&mut baselines, &degraded), vec!["10.0.0.1"]);
}

/// The key-cap bound: past `max_keys`, new servers stay untracked (and
/// cold), so a hostile report stream cannot grow the table.
#[test]
fn key_cap_bounds_tracked_state() {
    let config = CohortConfig {
        max_keys: 8,
        ..CohortConfig::default()
    };
    let mut baselines = CohortBaselines::new(config);
    for i in 0..100 {
        let mut report = PerfReport::new("u", "/p").with_device(DeviceClass::Desktop);
        for j in 0..5 {
            report.push(ObjectTiming::new(
                format!("http://h{i}-{j}.example/a.js"),
                format!("10.{i}.{j}.1"),
                30_000,
                80.0,
            ));
        }
        flagged_ips(&mut baselines, &report);
    }
    assert_eq!(baselines.tracked_keys(), 8);
}

/// The engine seam: under the default global policy the lib.rs doc
/// example activates its rule on the first report; under the cohort
/// policy the same report abstains (cold baselines) — and the default
/// path never even constructs cohort state.
#[test]
fn engine_policy_seam_gates_activation() {
    for (policy, expect_activation) in [
        (DetectorPolicy::Global, true),
        (DetectorPolicy::Cohort, false),
    ] {
        let oak = Oak::new(OakConfig {
            detector_policy: policy,
            ..OakConfig::default()
        });
        let rule = Rule::replace_identical(
            r#"<script src="http://ads.example/chain.js">"#,
            [r#"<script src="http://mirror.example/chain.js">"#],
        );
        let rule_id = oak.add_rule(rule).unwrap();
        let report = report_with_slow_server(900.0).with_device(DeviceClass::MidMobile);
        let outcome = oak.ingest_report(Instant::ZERO, &report, &NoFetch);
        if expect_activation {
            assert_eq!(outcome.activated, vec![rule_id]);
        } else {
            assert!(outcome.activated.is_empty());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FP(cohort) ⊆ FP(global) by construction: whatever the history,
    /// the cohort detector never flags a server the global test would
    /// not have flagged on the same report.
    #[test]
    fn cohort_flags_are_a_subset_of_global(
        warmup in prop::collection::vec((60.0f64..2_000.0, 0usize..4), 0..24),
        probe_ms in 60.0f64..2_000.0,
        device_index in 0usize..4,
    ) {
        let mut baselines = CohortBaselines::new(CohortConfig::default());
        for (slow_ms, dev) in warmup {
            let report = report_with_slow_server(slow_ms).with_device(DeviceClass::ALL[dev]);
            flagged_ips(&mut baselines, &report);
        }
        let probe = report_with_slow_server(probe_ms).with_device(DeviceClass::ALL[device_index]);
        let analysis = PageAnalysis::from_report(&probe);
        let global: Vec<String> = detect_violators(&analysis, &DetectorConfig::default())
            .into_iter()
            .map(|v| v.ip)
            .collect();
        for ip in flagged_ips(&mut baselines, &probe) {
            prop_assert!(global.contains(&ip), "{ip} flagged by cohort but not global");
        }
    }
}
