use crate::audit::audit;
use crate::engine::{LogAction, LogEvent};
use crate::rule::RuleId;
use crate::time::Instant;

fn ev(user: &str, rule: u32, action: LogAction) -> LogEvent {
    LogEvent {
        time: Instant::ZERO,
        user: user.into(),
        rule: RuleId(rule),
        action,
    }
}

fn activated(user: &str, rule: u32, ip: &str, severity: f64) -> LogEvent {
    ev(
        user,
        rule,
        LogAction::Activated {
            violator_ip: ip.into(),
            severity,
        },
    )
}

#[test]
fn empty_log_audits_to_empty_report() {
    let report = audit(&[]);
    assert_eq!(report.events, 0);
    assert_eq!(report.users, 0);
    assert_eq!(report.total_activations(), 0);
    assert!(report.busiest_rules().is_empty());
}

#[test]
fn aggregates_per_rule() {
    let log = vec![
        activated("u-1", 0, "10.0.0.1", 4.0),
        activated("u-2", 0, "10.0.0.1", 6.0),
        activated("u-1", 1, "10.0.0.9", 3.0),
        ev("u-1", 0, LogAction::Advanced { to_index: 1 }),
        ev("u-2", 0, LogAction::Deactivated),
        ev("u-1", 1, LogAction::Expired),
    ];
    let report = audit(&log);
    assert_eq!(report.events, 6);
    assert_eq!(report.users, 2);
    assert_eq!(report.total_activations(), 3);

    let r0 = &report.rules[&RuleId(0)];
    assert_eq!(r0.activations, 2);
    assert_eq!(r0.advancements, 1);
    assert_eq!(r0.deactivations, 1);
    assert_eq!(r0.expirations, 0);
    assert_eq!(r0.distinct_users, 2);
    assert_eq!(r0.mean_severity, 5.0);
    assert_eq!(r0.violator_ips["10.0.0.1"], 2);
    assert_eq!(r0.abandon_rate(), 0.5);

    let r1 = &report.rules[&RuleId(1)];
    assert_eq!(r1.activations, 1);
    assert_eq!(r1.expirations, 1);
    assert_eq!(r1.abandon_rate(), 0.0);
}

#[test]
fn busiest_rules_sorted_by_activations() {
    let log = vec![
        activated("u", 5, "10.0.0.1", 2.0),
        activated("u", 3, "10.0.0.1", 2.0),
        activated("u", 3, "10.0.0.1", 2.0),
    ];
    let report = audit(&log);
    let ranked: Vec<u32> = report.busiest_rules().iter().map(|(id, _)| id.0).collect();
    assert_eq!(ranked, [3, 5]);
}

#[test]
fn display_renders_operator_table() {
    let log = vec![
        activated("u-1", 0, "10.0.0.1", 4.0),
        ev("u-1", 0, LogAction::Deactivated),
    ];
    let rendered = audit(&log).to_string();
    assert!(rendered.contains("oak audit: 2 events, 1 users"));
    assert!(rendered.contains("rule0"));
    assert!(rendered.contains("10.0.0.1 (1x)"));
}

#[test]
fn audit_from_live_engine_log() {
    use crate::engine::{Oak, OakConfig};
    use crate::matching::NoFetch;
    use crate::report::{ObjectTiming, PerfReport};
    use crate::rule::Rule;

    let oak = Oak::new(OakConfig::default());
    let id = oak
        .add_rule(Rule::replace_identical(
            r#"<script src="http://cdn-a.example/jquery.js">"#,
            [r#"<script src="http://cdn-b.example/jquery.js">"#],
        ))
        .unwrap();
    let mut report = PerfReport::new("u-1", "/");
    report.push(ObjectTiming::new(
        "http://cdn-a.example/jquery.js",
        "10.0.0.1",
        30_000,
        900.0,
    ));
    report.push(ObjectTiming::new(
        "http://img.example/a.png",
        "10.0.0.2",
        30_000,
        80.0,
    ));
    report.push(ObjectTiming::new(
        "http://img.example/b.png",
        "10.0.0.2",
        30_000,
        95.0,
    ));
    report.push(ObjectTiming::new(
        "http://fonts.example/f.woff",
        "10.0.0.3",
        30_000,
        70.0,
    ));
    report.push(ObjectTiming::new(
        "http://api.example/d.js",
        "10.0.0.4",
        30_000,
        90.0,
    ));
    oak.ingest_report(Instant::ZERO, &report, &NoFetch);

    let summary = audit(&oak.log());
    assert_eq!(summary.rules[&id].activations, 1);
    assert!(summary.rules[&id].mean_severity > 2.0);
}
