//! Operator-specified rules.
//!
//! "These rules consist of: A rule type, a block of text representing a
//! default object, a block of text representing an alternative object, a
//! time to live, a scope, and a potential list of sub-rules." (§4.1)
//! §4.2.4 adds activation policies (e.g. "only activating a rule after 3
//! violations") and multiple alternatives walked linearly.

use oak_pattern::Scope;

/// Identifies a rule within an [`crate::engine::Oak`] instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RuleId(pub u32);

impl std::fmt::Display for RuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rule{}", self.0)
    }
}

/// The three rule types of §4.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RuleType {
    /// Type 1: the default object text is removed outright. No
    /// alternative is needed.
    Remove,
    /// Type 2: the same object served from an alternative source; the
    /// browser may keep using a cached copy (the engine emits the
    /// [`crate::OAK_ALTERNATE_HEADER`] cache hint).
    ReplaceIdentical,
    /// Type 3: a non-identical replacement object.
    ReplaceDifferent,
}

impl RuleType {
    /// The paper's numeric code (1, 2, 3).
    pub fn code(self) -> u8 {
        match self {
            RuleType::Remove => 1,
            RuleType::ReplaceIdentical => 2,
            RuleType::ReplaceDifferent => 3,
        }
    }

    /// Parses the paper's numeric code.
    pub fn from_code(code: u8) -> Option<RuleType> {
        Some(match code {
            1 => RuleType::Remove,
            2 => RuleType::ReplaceIdentical,
            3 => RuleType::ReplaceDifferent,
            _ => return None,
        })
    }
}

/// A simple find/replace applied only when the parent rule is active:
/// "rules may also load sub-rules … simple replacements which occur only
/// if the parent rule is activated" (§4.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubRule {
    /// Text to find.
    pub find: String,
    /// Replacement text.
    pub replace: String,
}

/// How the engine walks a rule's alternatives list (§4.2.4: "By default,
/// Oak progresses through the list linearly with each activation, however
/// this can further be configured via a selection policy").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SelectionPolicy {
    /// Start at the first alternative; advance linearly when the current
    /// alternate under-performs; deactivate when the list is exhausted.
    #[default]
    Linear,
    /// Start at an alternative chosen by hashing the user id, spreading
    /// different users across the alternatives (useful when alternates
    /// are capacity-limited mirrors); advancement wraps, visiting each
    /// alternative once.
    UserHash,
}

/// Restricts which clients a rule may activate for (§4.2.4: "it could
/// further discriminate the activation of rules based on client
/// information, for example by IP subnet").
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum ClientFilter {
    /// No restriction.
    #[default]
    Any,
    /// Only clients whose IP starts with this dotted prefix, e.g.
    /// `"10.3."` or a full `/24` like `"10.3.7."`.
    IpPrefix(String),
}

impl ClientFilter {
    /// True if a client at `ip` (dotted quad; `None` when the transport
    /// did not supply one) passes the filter. Absent IPs only pass
    /// [`ClientFilter::Any`] — a subnet-scoped rule must never activate
    /// on unattributed traffic.
    pub fn admits(&self, ip: Option<&str>) -> bool {
        match self {
            ClientFilter::Any => true,
            ClientFilter::IpPrefix(prefix) => ip.is_some_and(|ip| ip.starts_with(prefix.as_str())),
        }
    }
}

/// When a matching violation may actually activate a rule (§4.2.4).
#[derive(Clone, Debug, PartialEq)]
pub struct ActivationPolicy {
    /// Violations (across reports) required before activation; 1 activates
    /// immediately, 3 models the paper's expensive-CDN example.
    pub violations_required: u32,
    /// Alternative selection behaviour.
    pub selection: SelectionPolicy,
    /// Which clients this rule applies to.
    pub client_filter: ClientFilter,
}

impl Default for ActivationPolicy {
    /// Activate on the first violation, walk alternatives linearly, for
    /// every client.
    fn default() -> ActivationPolicy {
        ActivationPolicy {
            violations_required: 1,
            selection: SelectionPolicy::default(),
            client_filter: ClientFilter::default(),
        }
    }
}

/// An operator rule.
#[derive(Clone, Debug)]
pub struct Rule {
    /// Rule type.
    pub rule_type: RuleType,
    /// The default-object text block as it appears in pages.
    pub default_text: String,
    /// Alternative text blocks; activation walks this list linearly
    /// (§4.2.4). Empty for Type 1.
    pub alternatives: Vec<String>,
    /// Time to live once activated, in milliseconds; `None` never expires
    /// (the paper's `0`).
    pub ttl_ms: Option<u64>,
    /// Which pages the rule applies to.
    pub scope: Scope,
    /// Simple replacements performed only while this rule is active.
    pub sub_rules: Vec<SubRule>,
    /// Activation policy.
    pub policy: ActivationPolicy,
}

impl Rule {
    /// A Type 1 rule: remove `default_text` when activated. Site-wide,
    /// never expires.
    pub fn remove(default_text: impl Into<String>) -> Rule {
        Rule {
            rule_type: RuleType::Remove,
            default_text: default_text.into(),
            alternatives: Vec::new(),
            ttl_ms: None,
            scope: Scope::SiteWide,
            sub_rules: Vec::new(),
            policy: ActivationPolicy::default(),
        }
    }

    /// A Type 2 rule: same object at alternative sources. Site-wide,
    /// never expires.
    pub fn replace_identical<I, S>(default_text: impl Into<String>, alternatives: I) -> Rule
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Rule {
            rule_type: RuleType::ReplaceIdentical,
            default_text: default_text.into(),
            alternatives: alternatives.into_iter().map(Into::into).collect(),
            ttl_ms: None,
            scope: Scope::SiteWide,
            sub_rules: Vec::new(),
            policy: ActivationPolicy::default(),
        }
    }

    /// A Type 3 rule: a different object replaces the default. Site-wide,
    /// never expires.
    pub fn replace_different<I, S>(default_text: impl Into<String>, alternatives: I) -> Rule
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Rule {
            rule_type: RuleType::ReplaceDifferent,
            ..Rule::replace_identical(default_text, alternatives)
        }
    }

    /// Builder-style: set the TTL in milliseconds (`None` = never expire).
    pub fn with_ttl_ms(mut self, ttl_ms: Option<u64>) -> Rule {
        self.ttl_ms = ttl_ms;
        self
    }

    /// Builder-style: set the scope.
    pub fn with_scope(mut self, scope: Scope) -> Rule {
        self.scope = scope;
        self
    }

    /// Builder-style: add a sub-rule.
    pub fn with_sub_rule(mut self, find: impl Into<String>, replace: impl Into<String>) -> Rule {
        self.sub_rules.push(SubRule {
            find: find.into(),
            replace: replace.into(),
        });
        self
    }

    /// Builder-style: require `n` violations before activation.
    pub fn with_violations_required(mut self, n: u32) -> Rule {
        self.policy.violations_required = n.max(1);
        self
    }

    /// Builder-style: set the alternative selection policy.
    pub fn with_selection(mut self, selection: SelectionPolicy) -> Rule {
        self.policy.selection = selection;
        self
    }

    /// Builder-style: restrict the rule to clients whose IP starts with
    /// `prefix` (e.g. `"10.3."`).
    pub fn with_client_prefix(mut self, prefix: impl Into<String>) -> Rule {
        self.policy.client_filter = ClientFilter::IpPrefix(prefix.into());
        self
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description when the rule cannot possibly work: empty
    /// default text, a replacement rule with no alternatives, or default
    /// text contained in one of its own alternatives (which would make
    /// rewriting non-idempotent).
    pub fn validate(&self) -> Result<(), String> {
        if self.default_text.is_empty() {
            return Err("default text is empty".into());
        }
        if self.rule_type != RuleType::Remove && self.alternatives.is_empty() {
            return Err("replacement rule has no alternatives".into());
        }
        if self.rule_type == RuleType::Remove && !self.alternatives.is_empty() {
            return Err("Type 1 (remove) rule must not carry alternatives".into());
        }
        for (i, alt) in self.alternatives.iter().enumerate() {
            if alt.contains(&self.default_text) {
                return Err(format!(
                    "alternative {i} contains the default text; replacement would not be idempotent"
                ));
            }
        }
        Ok(())
    }
}
