//! Client performance reports.
//!
//! "This report contains information on which external servers the client
//! communicated with, the size of the objects loaded from each of those
//! servers, and download times for each loaded object" (§4). The
//! implementation section adds that reports use HAR-style infrastructure
//! but carry "only a limited set of fields: the loaded URL, the size of
//! the loaded object, and the timing information of that object" (§5) —
//! deliberately small, since Fig. 15 sizes the median report under 10 KB.

use std::borrow::Cow;
use std::error::Error;
use std::fmt;

use oak_json::{Event, ParseError, Scanner, Value};

/// The reporting client's device cohort.
///
/// Mobile CPUs execute script an order of magnitude slower than desktop
/// parts ("What slows you down? Your network or your device?"), so the
/// same healthy ad server produces very different object timings across
/// device classes. Reports carry the class as a hint; the
/// [`crate::detect::DetectorPolicy::Cohort`] detector keys its baselines
/// on it. Reports from clients that predate the field — or that choose
/// not to disclose — decode as [`DeviceClass::Unknown`], which behaves
/// as its own cohort.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DeviceClass {
    /// No hint: pre-field encodings and privacy-conscious clients.
    #[default]
    Unknown,
    /// Desktop-class CPU on a wired or wifi link.
    Desktop,
    /// Mid-range mobile hardware on a cellular radio.
    MidMobile,
    /// Low-end mobile hardware on a cellular radio.
    LowEndMobile,
}

impl DeviceClass {
    /// Every class, in wire-byte order.
    pub const ALL: [DeviceClass; 4] = [
        DeviceClass::Unknown,
        DeviceClass::Desktop,
        DeviceClass::MidMobile,
        DeviceClass::LowEndMobile,
    ];

    /// The canonical wire spelling (JSON `device` field, CLI flags).
    pub fn as_str(self) -> &'static str {
        match self {
            DeviceClass::Unknown => "unknown",
            DeviceClass::Desktop => "desktop",
            DeviceClass::MidMobile => "mid-mobile",
            DeviceClass::LowEndMobile => "low-end-mobile",
        }
    }

    /// Parses the canonical spelling; `None` for anything else.
    pub fn parse(text: &str) -> Option<DeviceClass> {
        DeviceClass::ALL.into_iter().find(|c| c.as_str() == text)
    }

    /// The binary wire byte (see [`crate::wire`]).
    pub(crate) fn wire_byte(self) -> u8 {
        match self {
            DeviceClass::Unknown => 0,
            DeviceClass::Desktop => 1,
            DeviceClass::MidMobile => 2,
            DeviceClass::LowEndMobile => 3,
        }
    }

    /// Inverts [`DeviceClass::wire_byte`]; `None` for unassigned bytes.
    pub(crate) fn from_wire_byte(byte: u8) -> Option<DeviceClass> {
        DeviceClass::ALL.get(byte as usize).copied()
    }
}

/// One fetched object, as measured by the client.
#[derive(Clone, Debug, PartialEq)]
pub struct ObjectTiming {
    /// The loaded URL.
    pub url: String,
    /// The server IP the client ultimately connected to (dotted quad).
    /// This is the grouping key for analysis (§4.2).
    pub ip: String,
    /// Object size in bytes.
    pub bytes: u64,
    /// Download time in milliseconds.
    pub time_ms: f64,
}

impl ObjectTiming {
    /// Creates a timing entry.
    pub fn new(url: impl Into<String>, ip: impl Into<String>, bytes: u64, time_ms: f64) -> Self {
        ObjectTiming {
            url: url.into(),
            ip: ip.into(),
            bytes,
            time_ms,
        }
    }

    /// Achieved throughput in kbit/s (bits per millisecond).
    pub fn throughput_kbps(&self) -> f64 {
        self.bytes as f64 * 8.0 / self.time_ms.max(1e-9)
    }

    /// The hostname portion of the URL, if the URL parses — borrowed
    /// from the URL string, in its original case. Callers that need the
    /// canonical lowercase form fold it themselves (and the analysis
    /// layer does so without allocating when the host is already
    /// lowercase, the overwhelmingly common case).
    pub fn host(&self) -> Option<&str> {
        oak_http::host_of(&self.url)
    }
}

/// A complete report for one page load by one user.
#[derive(Clone, Debug, PartialEq)]
pub struct PerfReport {
    /// The reporting user's Oak cookie value.
    pub user: String,
    /// The page path the report describes.
    pub page: String,
    /// The reporting device's cohort hint. [`DeviceClass::Unknown`] for
    /// encodings that predate the field; serialization omits it in that
    /// case, so device-free reports are byte-identical to the old format.
    pub device: DeviceClass,
    /// Per-object measurements.
    pub entries: Vec<ObjectTiming>,
}

/// A report that failed to decode.
#[derive(Clone, Debug, PartialEq)]
pub struct ReportDecodeError(String);

impl ReportDecodeError {
    /// Crate-internal constructor (the JSON and binary decoders live in
    /// separate modules but share this error type).
    pub(crate) fn new(message: impl Into<String>) -> ReportDecodeError {
        ReportDecodeError(message.into())
    }

    /// Prefixes the message with the entry index it occurred in.
    pub(crate) fn in_entry(self, i: usize) -> ReportDecodeError {
        ReportDecodeError(format!("entry {i}: {}", self.0))
    }
}

impl fmt::Display for ReportDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad performance report: {}", self.0)
    }
}

impl Error for ReportDecodeError {}

impl PerfReport {
    /// Most entries one report may carry. A real page loads hundreds of
    /// objects at the extreme (Fig. 15 sizes the median report under
    /// 10 KB); tens of thousands is a hostile client inflating per-user
    /// state.
    pub const MAX_ENTRIES: usize = 10_000;

    /// Largest accepted `bytes` value: 2^53, the biggest integer the
    /// JSON double carries exactly. Beyond it the value is both
    /// physically implausible for one object and imprecise, so it is
    /// rejected rather than rounded into the throughput statistics.
    pub const MAX_BYTES: u64 = 1 << 53;

    /// Largest accepted `time_ms`: about a year. MAD detection compares
    /// medians, but aggregates average raw values — one absurd timing
    /// must not be able to drag a server's mean.
    pub const MAX_TIME_MS: f64 = 3.2e10;

    /// An empty report.
    pub fn new(user: impl Into<String>, page: impl Into<String>) -> PerfReport {
        PerfReport {
            user: user.into(),
            page: page.into(),
            device: DeviceClass::Unknown,
            entries: Vec::new(),
        }
    }

    /// Sets the device-cohort hint, builder style.
    pub fn with_device(mut self, device: DeviceClass) -> PerfReport {
        self.device = device;
        self
    }

    /// Appends a measurement.
    pub fn push(&mut self, entry: ObjectTiming) {
        self.entries.push(entry);
    }

    /// Serializes to the JSON wire format clients POST.
    pub fn to_json(&self) -> String {
        let mut doc = Value::object();
        doc.set("user", self.user.as_str());
        doc.set("page", self.page.as_str());
        // Omitted for Unknown: a device-free report serializes exactly as
        // it did before the field existed.
        if self.device != DeviceClass::Unknown {
            doc.set("device", self.device.as_str());
        }
        let mut entries = Value::array();
        for e in &self.entries {
            let mut obj = Value::object();
            obj.set("url", e.url.as_str());
            obj.set("ip", e.ip.as_str());
            obj.set("bytes", e.bytes);
            obj.set("time_ms", e.time_ms);
            entries.push(obj);
        }
        doc.set("entries", entries);
        doc.to_string()
    }

    /// Decodes the JSON wire format.
    ///
    /// Implemented over the streaming [`Scanner`] rather than a
    /// [`Value`] tree: escape-free strings are borrowed from the input
    /// and only the four fields a report actually carries are ever
    /// materialized, so a well-formed report costs one allocation per
    /// kept string instead of one per JSON token.
    ///
    /// # Errors
    ///
    /// Returns [`ReportDecodeError`] on JSON errors, missing fields,
    /// non-finite/negative numbers (a hostile client must not be able to
    /// poison the MAD statistics with NaN), values beyond
    /// [`PerfReport::MAX_BYTES`]/[`PerfReport::MAX_TIME_MS`], or more
    /// than [`PerfReport::MAX_ENTRIES`] entries.
    pub fn from_json(text: &str) -> Result<PerfReport, ReportDecodeError> {
        let mut scanner = Scanner::new(text);
        let mut user: Option<String> = None;
        let mut page: Option<String> = None;
        // `Some(None)` marks a `device` key whose value was not a string
        // — distinct from an absent key, which is simply Unknown.
        let mut device: Option<Option<String>> = None;
        let mut entries: Option<Vec<ObjectTiming>> = None;
        match next(&mut scanner)? {
            Some(Event::ObjectStart) => {}
            // Any other well-formed document has no fields at all.
            Some(_) => {
                scanner.skip_value().ok();
                return Err(ReportDecodeError("missing user".into()));
            }
            None => return Err(ReportDecodeError("empty report".into())),
        }
        loop {
            match next(&mut scanner)? {
                Some(Event::Key(key)) => match key.as_ref() {
                    // Duplicate keys behave like the old tree parser:
                    // the last occurrence wins, whatever its type.
                    "user" => user = scan_string_value(&mut scanner)?,
                    "page" => page = scan_string_value(&mut scanner)?,
                    "device" => device = Some(scan_string_value(&mut scanner)?),
                    "entries" => entries = scan_entries(&mut scanner)?,
                    _ => scanner
                        .skip_value()
                        .map_err(|e| ReportDecodeError(e.to_string()))?,
                },
                Some(Event::ObjectEnd) => break,
                _ => return Err(ReportDecodeError("malformed report object".into())),
            }
        }
        // Rejects trailing garbage, exactly as the tree parser does.
        next(&mut scanner)?;
        let user = user.ok_or_else(|| ReportDecodeError("missing user".into()))?;
        let page = page.ok_or_else(|| ReportDecodeError("missing page".into()))?;
        let entries = entries.ok_or_else(|| ReportDecodeError("missing entries".into()))?;
        let device = match device {
            None => DeviceClass::Unknown,
            Some(Some(name)) => DeviceClass::parse(&name)
                .ok_or_else(|| ReportDecodeError(format!("unknown device class {name:?}")))?,
            Some(None) => return Err(ReportDecodeError("device not a string".into())),
        };
        Ok(PerfReport {
            user,
            page,
            device,
            entries,
        })
    }

    /// Decodes a JSON report straight from request-body bytes, without
    /// the lossy UTF-8 copy the server used to make.
    ///
    /// # Errors
    ///
    /// As [`PerfReport::from_json`], plus invalid UTF-8 is rejected
    /// outright (previously it was silently replaced with U+FFFD).
    pub fn from_json_bytes(body: &[u8]) -> Result<PerfReport, ReportDecodeError> {
        let text = std::str::from_utf8(body)
            .map_err(|_| ReportDecodeError("report body is not valid UTF-8".into()))?;
        PerfReport::from_json(text)
    }

    /// Encodes into the binary wire format (`application/x-oak-report`).
    pub fn to_binary(&self) -> Vec<u8> {
        crate::wire::encode(self)
    }

    /// Decodes the binary wire format; see [`crate::wire`].
    ///
    /// # Errors
    ///
    /// Returns [`ReportDecodeError`] on malformed frames or any value
    /// [`PerfReport::from_json`] would reject.
    pub fn from_binary(bytes: &[u8]) -> Result<PerfReport, ReportDecodeError> {
        crate::wire::decode(bytes)
    }

    /// Serialized size in bytes — the quantity Fig. 15 distributes.
    pub fn wire_size(&self) -> usize {
        self.to_json().len()
    }
}

/// Pulls one event, converting parse errors.
fn next<'a>(scanner: &mut Scanner<'a>) -> Result<Option<Event<'a>>, ReportDecodeError> {
    scanner
        .next_event()
        .map_err(|e: ParseError| ReportDecodeError(e.to_string()))
}

/// Reads one value in value position; container values are consumed to
/// their matching end so the scanner stays aligned.
fn next_value<'a>(scanner: &mut Scanner<'a>) -> Result<Event<'a>, ReportDecodeError> {
    let event = next(scanner)?.ok_or_else(|| ReportDecodeError("truncated report".into()))?;
    if matches!(event, Event::ObjectStart | Event::ArrayStart) {
        skip_open_container(scanner)?;
    }
    Ok(event)
}

/// Consumes a container whose opening bracket was already read.
fn skip_open_container(scanner: &mut Scanner<'_>) -> Result<(), ReportDecodeError> {
    let mut depth = 1usize;
    loop {
        match next(scanner)? {
            Some(Event::ObjectStart | Event::ArrayStart) => depth += 1,
            Some(Event::ObjectEnd | Event::ArrayEnd) => {
                depth -= 1;
                if depth == 0 {
                    return Ok(());
                }
            }
            Some(_) => {}
            None => return Err(ReportDecodeError("truncated report".into())),
        }
    }
}

/// A string field value, or `None` if the value has another type (which
/// surfaces later as the field's "missing" error, like the tree parser).
fn scan_string_value(scanner: &mut Scanner<'_>) -> Result<Option<String>, ReportDecodeError> {
    match next_value(scanner)? {
        Event::Str(s) => Ok(Some(s.into_owned())),
        _ => Ok(None),
    }
}

/// The `entries` array, or `None` when the value is not an array.
fn scan_entries(scanner: &mut Scanner<'_>) -> Result<Option<Vec<ObjectTiming>>, ReportDecodeError> {
    match next(scanner)?.ok_or_else(|| ReportDecodeError("truncated report".into()))? {
        Event::ArrayStart => {}
        Event::ObjectStart => {
            skip_open_container(scanner)?;
            return Ok(None);
        }
        _ => return Ok(None),
    }
    let mut entries = Vec::new();
    loop {
        match next(scanner)?.ok_or_else(|| ReportDecodeError("truncated report".into()))? {
            Event::ArrayEnd => return Ok(Some(entries)),
            Event::ObjectStart => {
                let i = entries.len();
                if i >= PerfReport::MAX_ENTRIES {
                    // Count the rest so the error names the real total.
                    skip_open_container(scanner)?;
                    let mut total = i + 1;
                    loop {
                        match next(scanner)?
                            .ok_or_else(|| ReportDecodeError("truncated report".into()))?
                        {
                            Event::ArrayEnd => break,
                            Event::ObjectStart | Event::ArrayStart => {
                                skip_open_container(scanner)?;
                                total += 1;
                            }
                            _ => total += 1,
                        }
                    }
                    return Err(ReportDecodeError(format!(
                        "{total} entries exceed the {} limit",
                        PerfReport::MAX_ENTRIES
                    )));
                }
                entries.push(scan_entry(scanner, i)?);
            }
            Event::ArrayStart => {
                // A non-object entry has no fields at all.
                skip_open_container(scanner)?;
                return Err(ReportDecodeError(format!(
                    "entry {}: missing url",
                    entries.len()
                )));
            }
            _ => {
                return Err(ReportDecodeError(format!(
                    "entry {}: missing url",
                    entries.len()
                )))
            }
        }
    }
}

/// One entry object (its `{` already consumed), validated field-by-field
/// with the same bounds and error text as the binary decoder.
fn scan_entry(scanner: &mut Scanner<'_>, i: usize) -> Result<ObjectTiming, ReportDecodeError> {
    // `Some(value)` once seen with the right type; `bad` marks a field
    // present with the wrong type (distinct error from "missing").
    let mut url: (Option<Cow<'_, str>>, bool) = (None, false);
    let mut ip: (Option<Cow<'_, str>>, bool) = (None, false);
    let mut bytes: (Option<f64>, bool) = (None, false);
    let mut time_ms: (Option<f64>, bool) = (None, false);
    loop {
        match next(scanner)?.ok_or_else(|| ReportDecodeError("truncated report".into()))? {
            Event::ObjectEnd => break,
            Event::Key(key) => {
                let name = key.into_owned();
                let value = next_value(scanner)?;
                match name.as_str() {
                    "url" => {
                        url = match value {
                            Event::Str(s) => (Some(s), false),
                            _ => (None, true),
                        }
                    }
                    "ip" => {
                        ip = match value {
                            Event::Str(s) => (Some(s), false),
                            _ => (None, true),
                        }
                    }
                    "bytes" => {
                        bytes = match value {
                            Event::Number(n) => (Some(n), false),
                            _ => (None, true),
                        }
                    }
                    "time_ms" => {
                        time_ms = match value {
                            Event::Number(n) => (Some(n), false),
                            _ => (None, true),
                        }
                    }
                    _ => {}
                }
            }
            _ => return Err(ReportDecodeError("malformed entry object".into())),
        }
    }
    let require = |field: &str, pair: &(Option<Cow<'_, str>>, bool)| match pair {
        (Some(_), _) => Ok(()),
        (None, true) => Err(ReportDecodeError(format!(
            "entry {i}: {field} not a string"
        ))),
        (None, false) => Err(ReportDecodeError(format!("entry {i}: missing {field}"))),
    };
    require("url", &url)?;
    require("ip", &ip)?;
    // Mirrors `Value::as_u64`: a non-negative integer representable
    // exactly in an f64, then the report's own cap.
    let object_bytes = match bytes {
        (Some(n), _) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => {
            let b = n as u64;
            if b > PerfReport::MAX_BYTES {
                return Err(ReportDecodeError(format!(
                    "entry {i}: bytes not a non-negative integer within 2^53"
                )));
            }
            b
        }
        (None, false) => return Err(ReportDecodeError(format!("entry {i}: missing bytes"))),
        _ => {
            return Err(ReportDecodeError(format!(
                "entry {i}: bytes not a non-negative integer within 2^53"
            )))
        }
    };
    let time = match time_ms {
        (Some(t), _) if t.is_finite() && (0.0..=PerfReport::MAX_TIME_MS).contains(&t) => t,
        (None, false) => return Err(ReportDecodeError(format!("entry {i}: missing time_ms"))),
        _ => {
            return Err(ReportDecodeError(format!(
                "entry {i}: time_ms not a finite non-negative number within bounds"
            )))
        }
    };
    Ok(ObjectTiming::new(
        url.0.expect("validated above").into_owned(),
        ip.0.expect("validated above").into_owned(),
        object_bytes,
        time,
    ))
}
