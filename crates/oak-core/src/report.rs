//! Client performance reports.
//!
//! "This report contains information on which external servers the client
//! communicated with, the size of the objects loaded from each of those
//! servers, and download times for each loaded object" (§4). The
//! implementation section adds that reports use HAR-style infrastructure
//! but carry "only a limited set of fields: the loaded URL, the size of
//! the loaded object, and the timing information of that object" (§5) —
//! deliberately small, since Fig. 15 sizes the median report under 10 KB.

use std::error::Error;
use std::fmt;

use oak_json::{parse, Value};

/// One fetched object, as measured by the client.
#[derive(Clone, Debug, PartialEq)]
pub struct ObjectTiming {
    /// The loaded URL.
    pub url: String,
    /// The server IP the client ultimately connected to (dotted quad).
    /// This is the grouping key for analysis (§4.2).
    pub ip: String,
    /// Object size in bytes.
    pub bytes: u64,
    /// Download time in milliseconds.
    pub time_ms: f64,
}

impl ObjectTiming {
    /// Creates a timing entry.
    pub fn new(url: impl Into<String>, ip: impl Into<String>, bytes: u64, time_ms: f64) -> Self {
        ObjectTiming {
            url: url.into(),
            ip: ip.into(),
            bytes,
            time_ms,
        }
    }

    /// Achieved throughput in kbit/s (bits per millisecond).
    pub fn throughput_kbps(&self) -> f64 {
        self.bytes as f64 * 8.0 / self.time_ms.max(1e-9)
    }

    /// The hostname portion of the URL, if the URL parses.
    pub fn host(&self) -> Option<String> {
        oak_http::Url::parse(&self.url)
            .ok()
            .map(|u| u.host().to_owned())
    }
}

/// A complete report for one page load by one user.
#[derive(Clone, Debug, PartialEq)]
pub struct PerfReport {
    /// The reporting user's Oak cookie value.
    pub user: String,
    /// The page path the report describes.
    pub page: String,
    /// Per-object measurements.
    pub entries: Vec<ObjectTiming>,
}

/// A report that failed to decode.
#[derive(Clone, Debug, PartialEq)]
pub struct ReportDecodeError(String);

impl fmt::Display for ReportDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad performance report: {}", self.0)
    }
}

impl Error for ReportDecodeError {}

impl PerfReport {
    /// Most entries one report may carry. A real page loads hundreds of
    /// objects at the extreme (Fig. 15 sizes the median report under
    /// 10 KB); tens of thousands is a hostile client inflating per-user
    /// state.
    pub const MAX_ENTRIES: usize = 10_000;

    /// Largest accepted `bytes` value: 2^53, the biggest integer the
    /// JSON double carries exactly. Beyond it the value is both
    /// physically implausible for one object and imprecise, so it is
    /// rejected rather than rounded into the throughput statistics.
    pub const MAX_BYTES: u64 = 1 << 53;

    /// Largest accepted `time_ms`: about a year. MAD detection compares
    /// medians, but aggregates average raw values — one absurd timing
    /// must not be able to drag a server's mean.
    pub const MAX_TIME_MS: f64 = 3.2e10;

    /// An empty report.
    pub fn new(user: impl Into<String>, page: impl Into<String>) -> PerfReport {
        PerfReport {
            user: user.into(),
            page: page.into(),
            entries: Vec::new(),
        }
    }

    /// Appends a measurement.
    pub fn push(&mut self, entry: ObjectTiming) {
        self.entries.push(entry);
    }

    /// Serializes to the JSON wire format clients POST.
    pub fn to_json(&self) -> String {
        let mut doc = Value::object();
        doc.set("user", self.user.as_str());
        doc.set("page", self.page.as_str());
        let mut entries = Value::array();
        for e in &self.entries {
            let mut obj = Value::object();
            obj.set("url", e.url.as_str());
            obj.set("ip", e.ip.as_str());
            obj.set("bytes", e.bytes);
            obj.set("time_ms", e.time_ms);
            entries.push(obj);
        }
        doc.set("entries", entries);
        doc.to_string()
    }

    /// Decodes the JSON wire format.
    ///
    /// # Errors
    ///
    /// Returns [`ReportDecodeError`] on JSON errors, missing fields,
    /// non-finite/negative numbers (a hostile client must not be able to
    /// poison the MAD statistics with NaN), values beyond
    /// [`PerfReport::MAX_BYTES`]/[`PerfReport::MAX_TIME_MS`], or more
    /// than [`PerfReport::MAX_ENTRIES`] entries.
    pub fn from_json(text: &str) -> Result<PerfReport, ReportDecodeError> {
        let doc = parse(text).map_err(|e| ReportDecodeError(e.to_string()))?;
        let user = doc
            .get("user")
            .and_then(Value::as_str)
            .ok_or_else(|| ReportDecodeError("missing user".into()))?;
        let page = doc
            .get("page")
            .and_then(Value::as_str)
            .ok_or_else(|| ReportDecodeError("missing page".into()))?;
        let raw_entries = doc
            .get("entries")
            .and_then(Value::as_array)
            .ok_or_else(|| ReportDecodeError("missing entries".into()))?;
        if raw_entries.len() > PerfReport::MAX_ENTRIES {
            return Err(ReportDecodeError(format!(
                "{} entries exceed the {} limit",
                raw_entries.len(),
                PerfReport::MAX_ENTRIES
            )));
        }
        let mut entries = Vec::with_capacity(raw_entries.len());
        for (i, entry) in raw_entries.iter().enumerate() {
            let field = |name: &str| {
                entry
                    .get(name)
                    .ok_or_else(|| ReportDecodeError(format!("entry {i}: missing {name}")))
            };
            let url = field("url")?
                .as_str()
                .ok_or_else(|| ReportDecodeError(format!("entry {i}: url not a string")))?;
            let ip = field("ip")?
                .as_str()
                .ok_or_else(|| ReportDecodeError(format!("entry {i}: ip not a string")))?;
            let bytes = field("bytes")?
                .as_u64()
                .filter(|b| *b <= PerfReport::MAX_BYTES)
                .ok_or_else(|| {
                    ReportDecodeError(format!(
                        "entry {i}: bytes not a non-negative integer within 2^53"
                    ))
                })?;
            let time_ms = field("time_ms")?
                .as_f64()
                .filter(|t| t.is_finite() && (0.0..=PerfReport::MAX_TIME_MS).contains(t))
                .ok_or_else(|| {
                    ReportDecodeError(format!(
                        "entry {i}: time_ms not a finite non-negative number within bounds"
                    ))
                })?;
            entries.push(ObjectTiming::new(url, ip, bytes, time_ms));
        }
        Ok(PerfReport {
            user: user.to_owned(),
            page: page.to_owned(),
            entries,
        })
    }

    /// Serialized size in bytes — the quantity Fig. 15 distributes.
    pub fn wire_size(&self) -> usize {
        self.to_json().len()
    }
}
