//! The textual rule-specification format.
//!
//! §4.1 presents rules as parenthesized tuples:
//!
//! ```text
//! (2,                                            # Replacement Type
//!  "<script src=\"http://s1.com/jquery.js\">",
//!  "<script src=\"http://s2.net/jquery.js\">",
//!  0,                                            # Never Expire
//!  *)                                            # Site wide
//! ```
//!
//! This module parses that shape, with two regularizations over the
//! paper's free-hand listing: string fields use `\"`/`\\` escapes, and a
//! bracketed list supplies multiple alternatives (§4.2.4). Optional
//! trailing `key = value` options express the §4.2.4 policies. Grammar:
//!
//! ```text
//! rule   := '(' type ',' string ',' alts ',' ttl ',' scope option* ')'
//! type   := '1' | '2' | '3'
//! alts   := string | '[' string (',' string)* ']' | '-'
//! ttl    := integer                 # milliseconds; 0 = never expire
//! scope  := '*' | string            # Scope::parse syntax
//! option := ',' ident '=' value
//!           # violations = <integer>        activation quota
//!           # selection  = linear|userhash  alternative walk
//!           # subnet     = <string>         client IP prefix filter
//!           # sub        = <string> => <string>   sub-rule (repeatable)
//! ```
//!
//! `#` starts a comment running to end of line. [`parse_rules`] accepts a
//! whole file of consecutive rules.

use std::error::Error;
use std::fmt;

use oak_pattern::Scope;

use crate::rule::{ClientFilter, Rule, RuleType, SelectionPolicy, SubRule};

/// A rule-spec syntax error with line information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line where parsing failed.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule spec error on line {}: {}", self.line, self.message)
    }
}

impl Error for SpecError {}

/// Renders a rule back into the spec format, inverse of [`parse_rule`]:
/// `parse_rule(&format_rule(&r))` reconstructs `r` (up to scope-pattern
/// recompilation). Lets operators export an engine's rule set to a file
/// `oak-serve --rules` can reload.
pub fn format_rule(rule: &Rule) -> String {
    use std::fmt::Write as _;

    let mut out = String::new();
    out.push('(');
    let _ = write!(out, "{}, ", rule.rule_type.code());
    push_string(&mut out, &rule.default_text);
    out.push_str(", ");
    match rule.alternatives.len() {
        0 => out.push('-'),
        1 => push_string(&mut out, &rule.alternatives[0]),
        _ => {
            out.push('[');
            for (i, alt) in rule.alternatives.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                push_string(&mut out, alt);
            }
            out.push(']');
        }
    }
    let _ = write!(out, ", {}, ", rule.ttl_ms.unwrap_or(0));
    let scope = rule.scope.to_source();
    if scope == "*" {
        out.push('*');
    } else {
        push_string(&mut out, &scope);
    }
    if rule.policy.violations_required != 1 {
        let _ = write!(out, ", violations = {}", rule.policy.violations_required);
    }
    if rule.policy.selection == SelectionPolicy::UserHash {
        out.push_str(", selection = userhash");
    }
    if let ClientFilter::IpPrefix(prefix) = &rule.policy.client_filter {
        out.push_str(", subnet = ");
        push_string(&mut out, prefix);
    }
    for sub in &rule.sub_rules {
        out.push_str(", sub = ");
        push_string(&mut out, &sub.find);
        out.push_str(" => ");
        push_string(&mut out, &sub.replace);
    }
    out.push(')');
    out
}

/// Renders a whole rule set, one tuple per line.
pub fn format_rules<'r>(rules: impl IntoIterator<Item = &'r Rule>) -> String {
    let mut out = String::from("# oak rules\n");
    for rule in rules {
        out.push_str(&format_rule(rule));
        out.push('\n');
    }
    out
}

fn push_string(out: &mut String, text: &str) {
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one rule tuple.
///
/// # Errors
///
/// Returns [`SpecError`] for syntax errors and for rules that fail
/// [`Rule::validate`].
///
/// # Examples
///
/// ```
/// let rule = oak_core::spec::parse_rule(r#"
///     (2,                                        # Replacement Type
///      "<script src=\"http://s1.com/jquery.js\">",
///      "<script src=\"http://s2.net/jquery.js\">",
///      0,                                        # Never Expire
///      *)                                        # Site wide
/// "#).unwrap();
/// assert_eq!(rule.rule_type.code(), 2);
/// assert!(rule.ttl_ms.is_none());
/// ```
pub fn parse_rule(text: &str) -> Result<Rule, SpecError> {
    let mut p = Parser::new(text);
    let rule = p.rule()?;
    p.skip_trivia();
    if !p.at_end() {
        return Err(p.err("trailing input after rule"));
    }
    Ok(rule)
}

/// Parses a file of consecutive rule tuples.
///
/// # Errors
///
/// Returns the first [`SpecError`] encountered.
pub fn parse_rules(text: &str) -> Result<Vec<Rule>, SpecError> {
    let mut p = Parser::new(text);
    let mut rules = Vec::new();
    loop {
        p.skip_trivia();
        if p.at_end() {
            return Ok(rules);
        }
        rules.push(p.rule()?);
    }
}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    source: &'a str,
}

impl<'a> Parser<'a> {
    fn new(source: &'a str) -> Parser<'a> {
        Parser {
            chars: source.chars().collect(),
            pos: 0,
            source,
        }
    }

    fn err(&self, message: impl Into<String>) -> SpecError {
        let consumed: usize = self.chars[..self.pos.min(self.chars.len())]
            .iter()
            .map(|c| c.len_utf8())
            .sum();
        let line = self.source[..consumed.min(self.source.len())]
            .bytes()
            .filter(|&b| b == b'\n')
            .count()
            + 1;
        SpecError {
            line,
            message: message.into(),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.chars.len()
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    /// Skips whitespace and `#`-comments.
    fn skip_trivia(&mut self) {
        loop {
            while self.peek().is_some_and(|c| c.is_whitespace()) {
                self.pos += 1;
            }
            if self.peek() == Some('#') {
                while self.peek().is_some_and(|c| c != '\n') {
                    self.pos += 1;
                }
            } else {
                return;
            }
        }
    }

    fn expect(&mut self, c: char) -> Result<(), SpecError> {
        self.skip_trivia();
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{c}', found {:?}", self.peek())))
        }
    }

    fn rule(&mut self) -> Result<Rule, SpecError> {
        self.expect('(')?;
        let type_code = self.integer()? as u8;
        let rule_type = RuleType::from_code(type_code)
            .ok_or_else(|| self.err(format!("unknown rule type {type_code} (expected 1..=3)")))?;
        self.expect(',')?;
        let default_text = self.string()?;
        self.expect(',')?;
        let alternatives = self.alternatives()?;
        self.expect(',')?;
        let ttl = self.integer()?;
        self.expect(',')?;
        let scope = self.scope()?;

        let mut rule = Rule {
            rule_type,
            default_text,
            alternatives,
            ttl_ms: (ttl != 0).then_some(ttl),
            scope,
            sub_rules: Vec::new(),
            policy: Default::default(),
        };
        // Optional trailing options.
        loop {
            self.skip_trivia();
            match self.peek() {
                Some(')') => {
                    self.pos += 1;
                    break;
                }
                Some(',') => {
                    self.pos += 1;
                    self.option(&mut rule)?;
                }
                other => {
                    return Err(self.err(format!("expected ',' or ')', found {other:?}")));
                }
            }
        }
        rule.validate().map_err(|m| self.err(m))?;
        Ok(rule)
    }

    /// Parses one `key = value` option into the rule.
    fn option(&mut self, rule: &mut Rule) -> Result<(), SpecError> {
        let key = self.ident()?;
        self.expect('=')?;
        match key.as_str() {
            "violations" => {
                let n = self.integer()?;
                if n == 0 {
                    return Err(self.err("violations quota must be at least 1"));
                }
                rule.policy.violations_required = n.min(u64::from(u32::MAX)) as u32;
            }
            "selection" => {
                let value = self.ident()?;
                rule.policy.selection = match value.as_str() {
                    "linear" => SelectionPolicy::Linear,
                    "userhash" => SelectionPolicy::UserHash,
                    other => {
                        return Err(self.err(format!(
                            "unknown selection policy {other:?} (expected linear or userhash)"
                        )))
                    }
                };
            }
            "subnet" => {
                let prefix = self.string()?;
                if prefix.is_empty() {
                    return Err(self.err("subnet prefix must not be empty"));
                }
                rule.policy.client_filter = ClientFilter::IpPrefix(prefix);
            }
            "sub" => {
                let find = self.string()?;
                self.skip_trivia();
                self.expect('=')?;
                self.expect('>')?;
                let replace = self.string()?;
                if find.is_empty() {
                    return Err(self.err("sub-rule find text must not be empty"));
                }
                rule.sub_rules.push(SubRule { find, replace });
            }
            other => return Err(self.err(format!("unknown option {other:?}"))),
        }
        Ok(())
    }

    fn ident(&mut self) -> Result<String, SpecError> {
        self.skip_trivia();
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err(format!("expected identifier, found {:?}", self.peek())));
        }
        Ok(self.chars[start..self.pos].iter().collect())
    }

    fn alternatives(&mut self) -> Result<Vec<String>, SpecError> {
        self.skip_trivia();
        match self.peek() {
            Some('-') => {
                self.pos += 1;
                Ok(Vec::new())
            }
            Some('[') => {
                self.pos += 1;
                let mut alts = vec![self.string()?];
                loop {
                    self.skip_trivia();
                    match self.peek() {
                        Some(',') => {
                            self.pos += 1;
                            alts.push(self.string()?);
                        }
                        Some(']') => {
                            self.pos += 1;
                            return Ok(alts);
                        }
                        other => {
                            return Err(self.err(format!("expected ',' or ']', found {other:?}")))
                        }
                    }
                }
            }
            _ => Ok(vec![self.string()?]),
        }
    }

    fn scope(&mut self) -> Result<Scope, SpecError> {
        self.skip_trivia();
        let text = if self.peek() == Some('*') {
            self.pos += 1;
            "*".to_owned()
        } else {
            self.string()?
        };
        Scope::parse(&text).map_err(|e| self.err(e.to_string()))
    }

    fn integer(&mut self) -> Result<u64, SpecError> {
        self.skip_trivia();
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err(format!("expected integer, found {:?}", self.peek())));
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse()
            .map_err(|_| self.err(format!("integer {text} out of range")))
    }

    fn string(&mut self) -> Result<String, SpecError> {
        self.skip_trivia();
        if self.peek() != Some('"') {
            return Err(self.err(format!("expected string, found {:?}", self.peek())));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some('"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some('"') => out.push('"'),
                        Some('\\') => out.push('\\'),
                        Some('n') => out.push('\n'),
                        Some('t') => out.push('\t'),
                        other => {
                            return Err(self.err(format!("bad escape \\{other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(c) => {
                    out.push(c);
                    self.pos += 1;
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }
}
