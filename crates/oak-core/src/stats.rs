//! Robust statistics: median and median absolute deviation.
//!
//! The paper motivates MAD over the standard deviation because the
//! deviation statistic itself must not be dragged around by the very
//! outliers it is meant to expose (§4.2.1): "The MAD gives the median
//! value of the deviation from the median of a population, providing a
//! measure of variance that is less effected by outliers than a standard
//! deviation."
//!
//! Order statistics here use `select_nth_unstable_by` (linear expected
//! time) rather than a full sort: the detector computes a median and a
//! MAD per server population per report, so these sit on the ingest hot
//! path. Results are identical to the sort-based definitions.

fn cmp(a: &f64, b: &f64) -> std::cmp::Ordering {
    a.partial_cmp(b).expect("NaN in sample")
}

/// The median of `scratch`, reordering it in place.
fn median_in_place(scratch: &mut [f64]) -> f64 {
    let n = scratch.len();
    debug_assert!(n > 0);
    let (left, mid, _) = scratch.select_nth_unstable_by(n / 2, cmp);
    let upper = *mid;
    if n % 2 == 1 {
        upper
    } else {
        // The lower middle is the largest element of the left partition.
        let lower = left
            .iter()
            .copied()
            .max_by(cmp)
            .expect("non-empty left half");
        (lower + upper) / 2.0
    }
}

/// The median of a sample. Returns `None` on an empty slice; averages the
/// middle pair for even lengths.
pub fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(median_in_place(&mut values.to_vec()))
}

/// Median absolute deviation about `center`:
/// `MAD = medianᵢ(|xᵢ − medianⱼ(xⱼ)|)` (§4.2.1).
pub fn mad(values: &[f64], center: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut deviations: Vec<f64> = values.iter().map(|x| (x - center).abs()).collect();
    Some(median_in_place(&mut deviations))
}

/// Median and MAD in one call, sharing a single scratch buffer for both
/// selections.
pub fn median_and_mad(values: &[f64]) -> Option<(f64, f64)> {
    if values.is_empty() {
        return None;
    }
    let mut scratch = values.to_vec();
    let m = median_in_place(&mut scratch);
    for (slot, x) in scratch.iter_mut().zip(values) {
        *slot = (x - m).abs();
    }
    let d = median_in_place(&mut scratch);
    Some((m, d))
}

/// Arithmetic mean; `None` on empty input.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

/// Population standard deviation; `None` on empty input. Used only by the
/// [`crate::detect::OutlierMethod::StdDev`] ablation the paper argues
/// against.
pub fn stddev(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    let var = values.iter().map(|x| (x - m).powi(2)).sum::<f64>() / values.len() as f64;
    Some(var.sqrt())
}

/// `p`-th percentile (0–100) by linear interpolation; `None` on empty
/// input. Used by the experiment harness when printing CDF rows.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut scratch = values.to_vec();
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (scratch.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let frac = rank - lo as f64;
    let (_, lo_value, right) = scratch.select_nth_unstable_by(lo, cmp);
    let lo_value = *lo_value;
    let hi_value = if frac == 0.0 {
        lo_value // rank is integral: hi == lo
    } else {
        // rank's ceiling is lo + 1: the smallest of the right partition.
        right.iter().copied().min_by(cmp).expect("rank below max")
    };
    Some(lo_value * (1.0 - frac) + hi_value * frac)
}
