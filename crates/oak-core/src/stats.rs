//! Robust statistics: median and median absolute deviation.
//!
//! The paper motivates MAD over the standard deviation because the
//! deviation statistic itself must not be dragged around by the very
//! outliers it is meant to expose (§4.2.1): "The MAD gives the median
//! value of the deviation from the median of a population, providing a
//! measure of variance that is less effected by outliers than a standard
//! deviation."

/// The median of a sample. Returns `None` on an empty slice; averages the
/// middle pair for even lengths.
pub fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let n = sorted.len();
    Some(if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    })
}

/// Median absolute deviation about `center`:
/// `MAD = medianᵢ(|xᵢ − medianⱼ(xⱼ)|)` (§4.2.1).
pub fn mad(values: &[f64], center: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let deviations: Vec<f64> = values.iter().map(|x| (x - center).abs()).collect();
    median(&deviations)
}

/// Median and MAD in one call.
pub fn median_and_mad(values: &[f64]) -> Option<(f64, f64)> {
    let m = median(values)?;
    Some((m, mad(values, m)?))
}

/// Arithmetic mean; `None` on empty input.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

/// Population standard deviation; `None` on empty input. Used only by the
/// [`crate::detect::OutlierMethod::StdDev`] ablation the paper argues
/// against.
pub fn stddev(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    let var = values.iter().map(|x| (x - m).powi(2)).sum::<f64>() / values.len() as f64;
    Some(var.sqrt())
}

/// `p`-th percentile (0–100) by linear interpolation; `None` on empty
/// input. Used by the experiment harness when printing CDF rows.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}
