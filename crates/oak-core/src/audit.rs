//! Offline auditing over the engine's activity log.
//!
//! "Examining which rules are being activated by clients enables site
//! operators to determine which components of their sites are performing
//! poorly, effectively using the performance reports of Oak as an offline
//! auditing tool." (§6)
//!
//! [`audit`] folds the activity log into per-rule summaries an operator
//! can read directly (or feed to a dashboard): how often each rule fired,
//! for how many distinct users, how severe the triggering violations
//! were, and how often the chosen alternates had to be advanced or
//! abandoned — a high abandon rate means the configured alternatives are
//! no better than the default.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::engine::{LogAction, LogEvent};
use crate::rule::RuleId;

/// Aggregates for one rule.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RuleAudit {
    /// Times the rule was activated (across all users).
    pub activations: usize,
    /// Times an alternate under-performed and the rule advanced to the
    /// next one.
    pub advancements: usize,
    /// Times the rule was deactivated because every alternate
    /// under-performed the recorded default.
    pub deactivations: usize,
    /// Times the rule expired by TTL.
    pub expirations: usize,
    /// Distinct users that ever activated the rule.
    pub distinct_users: usize,
    /// Mean severity (in deviation units past the median) of the
    /// violations that triggered activations.
    pub mean_severity: f64,
    /// Violating server IPs observed at activation, with counts.
    pub violator_ips: BTreeMap<String, usize>,
}

impl RuleAudit {
    /// Fraction of activations that ended in deactivation — when high,
    /// the operator's alternatives are not actually better than the
    /// default and should be reconsidered.
    pub fn abandon_rate(&self) -> f64 {
        if self.activations == 0 {
            return 0.0;
        }
        self.deactivations as f64 / self.activations as f64
    }
}

/// The full audit: per-rule summaries plus corpus-wide counts.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AuditReport {
    /// Per-rule aggregates, keyed by rule.
    pub rules: BTreeMap<RuleId, RuleAudit>,
    /// Distinct users appearing anywhere in the log.
    pub users: usize,
    /// Total events folded.
    pub events: usize,
}

impl AuditReport {
    /// Rules ordered by activation count, busiest first.
    pub fn busiest_rules(&self) -> Vec<(RuleId, &RuleAudit)> {
        let mut rules: Vec<(RuleId, &RuleAudit)> =
            self.rules.iter().map(|(id, a)| (*id, a)).collect();
        rules.sort_by(|a, b| b.1.activations.cmp(&a.1.activations).then(a.0.cmp(&b.0)));
        rules
    }

    /// Total activations across all rules.
    pub fn total_activations(&self) -> usize {
        self.rules.values().map(|a| a.activations).sum()
    }
}

/// Folds an activity log into an [`AuditReport`].
pub fn audit(log: &[LogEvent]) -> AuditReport {
    let mut report = AuditReport {
        events: log.len(),
        ..AuditReport::default()
    };
    let mut users: BTreeSet<&str> = BTreeSet::new();
    let mut users_per_rule: BTreeMap<RuleId, BTreeSet<&str>> = BTreeMap::new();
    let mut severity_sums: BTreeMap<RuleId, f64> = BTreeMap::new();

    for event in log {
        users.insert(&event.user);
        let entry = report.rules.entry(event.rule).or_default();
        match &event.action {
            LogAction::Activated {
                violator_ip,
                severity,
            } => {
                entry.activations += 1;
                *entry.violator_ips.entry(violator_ip.clone()).or_insert(0) += 1;
                *severity_sums.entry(event.rule).or_insert(0.0) += severity;
                users_per_rule
                    .entry(event.rule)
                    .or_default()
                    .insert(&event.user);
            }
            LogAction::Advanced { .. } => entry.advancements += 1,
            LogAction::Deactivated => entry.deactivations += 1,
            LogAction::Expired => entry.expirations += 1,
        }
    }

    for (rule, entry) in report.rules.iter_mut() {
        entry.distinct_users = users_per_rule.get(rule).map_or(0, BTreeSet::len);
        if entry.activations > 0 {
            entry.mean_severity =
                severity_sums.get(rule).copied().unwrap_or(0.0) / entry.activations as f64;
        }
    }
    report.users = users.len();
    report
}

impl fmt::Display for AuditReport {
    /// Renders the operator-facing audit table.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "oak audit: {} events, {} users, {} activations across {} rules",
            self.events,
            self.users,
            self.total_activations(),
            self.rules.len()
        )?;
        writeln!(
            f,
            "{:<8} {:>6} {:>6} {:>6} {:>6} {:>7} {:>9}  top violator",
            "rule", "act", "adv", "deact", "exp", "users", "severity"
        )?;
        for (id, a) in self.busiest_rules() {
            let top = a
                .violator_ips
                .iter()
                .max_by_key(|(_, &n)| n)
                .map(|(ip, n)| format!("{ip} ({n}x)"))
                .unwrap_or_default();
            writeln!(
                f,
                "{:<8} {:>6} {:>6} {:>6} {:>6} {:>7} {:>9.1}  {}",
                id.to_string(),
                a.activations,
                a.advancements,
                a.deactivations,
                a.expirations,
                a.distinct_users,
                a.mean_severity,
                top
            )?;
        }
        Ok(())
    }
}
