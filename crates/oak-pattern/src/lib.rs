//! Pattern matching for Oak rule scopes.
//!
//! The paper's rules carry a *scope*: "a path or regular expression which
//! indicates to which pages within a site a rule should be applied"
//! (§4.1). This crate supplies both halves from scratch:
//!
//! - [`Regex`]: a linear-time regular-expression engine (Thompson NFA
//!   executed by a Pike VM — no exponential backtracking, so hostile scope
//!   patterns cannot stall the Oak server's report-processing thread),
//! - [`Glob`]: shell-style path globs (`*`, `?`, `**`), the common case for
//!   scopes like `/products/*`,
//! - [`Scope`]: the operator-facing union of the two, plus the site-wide
//!   `*` shorthand used in the paper's example rule.
//!
//! Supported regex syntax: literals, `.`, classes `[a-z0-9]` / `[^…]`,
//! escapes `\d \D \w \W \s \S` and escaped metacharacters, repetition
//! `* + ?` and bounded `{m}`/`{m,}`/`{m,n}`, alternation `|`, grouping
//! `( … )`, and anchors `^` `$`.
//!
//! # Examples
//!
//! ```
//! use oak_pattern::{Regex, Scope};
//!
//! let re = Regex::new(r"^/(item|sku)/\d+$").unwrap();
//! assert!(re.is_match("/item/42"));
//! assert!(!re.is_match("/item/42/reviews"));
//!
//! let scope = Scope::parse("/products/*").unwrap();
//! assert!(scope.applies_to("/products/widget"));
//! assert!(!scope.applies_to("/about"));
//! ```

mod glob;
mod regex;
mod scope;

pub use glob::Glob;
pub use regex::{FindIter, Match, Regex};
pub use scope::Scope;

use std::error::Error;
use std::fmt;

/// An error produced while compiling a pattern.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PatternError {
    /// Byte offset into the pattern source where compilation failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pattern error at byte {}: {}", self.offset, self.message)
    }
}

impl Error for PatternError {}

#[cfg(test)]
mod tests;
