//! A linear-time regex engine: parser → Thompson NFA → Pike VM.
//!
//! The engine is deliberately capture-free: Oak only ever asks "does this
//! page path fall in scope" and "where does this domain occur", so the VM
//! tracks a single match span per thread. Execution cost is
//! `O(pattern × input)` regardless of the pattern, which matters because
//! scope patterns are operator input evaluated on the request path.

use crate::PatternError;

/// A compiled regular expression.
///
/// Cloning is cheap relative to recompilation (the program is a flat
/// instruction vector) but compiled patterns are intended to be built once
/// per rule and reused across requests.
#[derive(Clone, Debug)]
pub struct Regex {
    source: String,
    prog: Vec<Inst>,
    classes: Vec<CharClass>,
}

/// A successful match: byte offsets into the haystack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Match {
    /// Byte offset of the first matched character.
    pub start: usize,
    /// Byte offset one past the last matched character.
    pub end: usize,
}

impl Match {
    /// The matched slice of `haystack`.
    pub fn as_str<'h>(&self, haystack: &'h str) -> &'h str {
        &haystack[self.start..self.end]
    }
}

impl Regex {
    /// Compiles a pattern.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError`] for syntax errors (unbalanced groups,
    /// malformed classes or repetitions, dangling escapes) and for bounded
    /// repetitions larger than an internal expansion limit.
    pub fn new(pattern: &str) -> Result<Regex, PatternError> {
        let ast = Parser::new(pattern).parse()?;
        let mut c = Compiler::default();
        c.compile(&ast);
        c.prog.push(Inst::Match);
        Ok(Regex {
            source: pattern.to_owned(),
            prog: c.prog,
            classes: c.classes,
        })
    }

    /// The pattern source this regex was compiled from.
    pub fn as_str(&self) -> &str {
        &self.source
    }

    /// Returns true if the pattern matches anywhere in `haystack`.
    pub fn is_match(&self, haystack: &str) -> bool {
        self.search(haystack).is_some()
    }

    /// Returns the leftmost match, if any.
    ///
    /// Semantics are leftmost-first (Perl-like): among matches starting at
    /// the leftmost possible position, the one the pattern's preference
    /// order finds first wins.
    pub fn find(&self, haystack: &str) -> Option<Match> {
        self.search(haystack)
    }

    /// Returns true if the pattern matches the *entire* haystack.
    ///
    /// This runs the automaton anchored at position 0 and keeps the longest
    /// completion, so it is independent of the leftmost-first preference
    /// that [`Regex::find`] applies.
    pub fn is_full_match(&self, haystack: &str) -> bool {
        self.full_search(haystack)
    }

    /// Iterates over all non-overlapping matches, left to right.
    ///
    /// Empty matches are permitted but advance by one character so the
    /// iteration always terminates.
    pub fn find_iter<'r, 'h>(&'r self, haystack: &'h str) -> FindIter<'r, 'h> {
        FindIter {
            regex: self,
            haystack,
            at: 0,
        }
    }

    /// Replaces every non-overlapping match with `replacement` (literal —
    /// no capture-group interpolation; the engine is capture-free). The
    /// paper's server "use\[s\] regular expressions in order to apply
    /// active rules, allowing for straight forward and rapid replacement
    /// of text" (§5).
    pub fn replace_all(&self, haystack: &str, replacement: &str) -> String {
        let mut out = String::with_capacity(haystack.len());
        let mut cursor = 0;
        for m in self.find_iter(haystack) {
            out.push_str(&haystack[cursor..m.start]);
            out.push_str(replacement);
            cursor = m.end;
        }
        out.push_str(&haystack[cursor..]);
        out
    }

    /// Pike VM over the haystack, seeding a new lowest-priority thread at
    /// every position until a match is found (unanchored search).
    fn search(&self, haystack: &str) -> Option<Match> {
        self.run(haystack, false)
    }

    fn full_search(&self, haystack: &str) -> bool {
        self.run(haystack, true)
            .is_some_and(|m| m.start == 0 && m.end == haystack.len())
    }

    fn run(&self, haystack: &str, anchored_full: bool) -> Option<Match> {
        let chars: Vec<(usize, char)> = haystack.char_indices().collect();
        let n = chars.len();
        let mut clist = ThreadList::new(self.prog.len());
        let mut nlist = ThreadList::new(self.prog.len());
        let mut best: Option<Match> = None;

        for step in 0..=n {
            let at = chars.get(step).map(|&(o, _)| o).unwrap_or(haystack.len());
            // Seed a new thread unless we already committed to a match
            // (leftmost) or the search is anchored.
            if best.is_none() && (!anchored_full || step == 0) {
                self.add_thread(&mut clist, 0, step, n, at);
            }
            if clist.is_empty() {
                break;
            }
            let ch = chars.get(step).map(|&(_, c)| c);
            let next_at = chars
                .get(step + 1)
                .map(|&(o, _)| o)
                .unwrap_or(haystack.len());
            let mut i = 0;
            while i < clist.threads.len() {
                let th = clist.threads[i];
                i += 1;
                match &self.prog[th.pc] {
                    Inst::Match => {
                        let end = at;
                        match (&best, anchored_full) {
                            // Full-match mode: prefer the longest end so
                            // `^a*$` on "aaa" consumes everything.
                            (_, true) => {
                                if best.is_none_or(|b| end > b.end) {
                                    best = Some(Match {
                                        start: th.start,
                                        end,
                                    });
                                }
                            }
                            // Leftmost-first: every surviving thread is, by
                            // construction, higher priority than the thread
                            // that recorded the previous match, so a later
                            // Match overrides; lower-priority threads in the
                            // current step are cut.
                            (_, false) => {
                                best = Some(Match {
                                    start: th.start,
                                    end,
                                });
                                clist.threads.truncate(i);
                            }
                        }
                    }
                    Inst::Char(c) => {
                        if ch == Some(*c) {
                            self.add_thread_from(
                                &mut nlist,
                                th.pc + 1,
                                th.start,
                                step + 1,
                                n,
                                next_at,
                            );
                        }
                    }
                    Inst::Any => {
                        if ch.is_some() {
                            self.add_thread_from(
                                &mut nlist,
                                th.pc + 1,
                                th.start,
                                step + 1,
                                n,
                                next_at,
                            );
                        }
                    }
                    Inst::Class(idx) => {
                        if ch.is_some_and(|c| self.classes[*idx].contains(c)) {
                            self.add_thread_from(
                                &mut nlist,
                                th.pc + 1,
                                th.start,
                                step + 1,
                                n,
                                next_at,
                            );
                        }
                    }
                    // Epsilon instructions are resolved in add_thread.
                    Inst::Split(..) | Inst::Jmp(..) | Inst::AssertStart | Inst::AssertEnd => {
                        unreachable!("epsilon instruction survived closure")
                    }
                }
            }
            std::mem::swap(&mut clist, &mut nlist);
            nlist.clear();
            if best.is_some() && !anchored_full && clist.is_empty() {
                break;
            }
        }
        best
    }

    /// Adds `pc`'s epsilon-closure to `list` with a fresh start position.
    fn add_thread(&self, list: &mut ThreadList, pc: usize, step: usize, n: usize, _at: usize) {
        let start_offset = _at;
        self.close(list, pc, start_offset, step, n);
    }

    fn add_thread_from(
        &self,
        list: &mut ThreadList,
        pc: usize,
        start: usize,
        step: usize,
        n: usize,
        _at: usize,
    ) {
        self.close(list, pc, start, step, n);
    }

    /// Computes the epsilon-closure of `pc`, honoring anchors against the
    /// current step, and pushes non-epsilon successors in priority order.
    fn close(&self, list: &mut ThreadList, pc: usize, start: usize, step: usize, n: usize) {
        if list.seen[pc] {
            return;
        }
        list.seen[pc] = true;
        match &self.prog[pc] {
            Inst::Jmp(t) => self.close(list, *t, start, step, n),
            Inst::Split(a, b) => {
                self.close(list, *a, start, step, n);
                self.close(list, *b, start, step, n);
            }
            Inst::AssertStart => {
                if step == 0 {
                    self.close(list, pc + 1, start, step, n);
                }
            }
            Inst::AssertEnd => {
                if step == n {
                    self.close(list, pc + 1, start, step, n);
                }
            }
            _ => list.threads.push(Thread { pc, start }),
        }
    }
}

/// Iterator over non-overlapping matches; see [`Regex::find_iter`].
pub struct FindIter<'r, 'h> {
    regex: &'r Regex,
    haystack: &'h str,
    at: usize,
}

impl Iterator for FindIter<'_, '_> {
    type Item = Match;

    fn next(&mut self) -> Option<Match> {
        if self.at > self.haystack.len() {
            return None;
        }
        let rest = &self.haystack[self.at..];
        let m = self.regex.find(rest)?;
        let found = Match {
            start: self.at + m.start,
            end: self.at + m.end,
        };
        // Advance past the match; an empty match steps one char forward.
        self.at = if found.end > found.start {
            found.end
        } else {
            match self.haystack[found.end..].chars().next() {
                Some(c) => found.end + c.len_utf8(),
                None => self.haystack.len() + 1,
            }
        };
        Some(found)
    }
}

#[derive(Clone, Copy)]
struct Thread {
    pc: usize,
    start: usize,
}

struct ThreadList {
    threads: Vec<Thread>,
    seen: Vec<bool>,
}

impl ThreadList {
    fn new(len: usize) -> ThreadList {
        ThreadList {
            threads: Vec::new(),
            seen: vec![false; len],
        }
    }

    fn is_empty(&self) -> bool {
        self.threads.is_empty()
    }

    fn clear(&mut self) {
        self.threads.clear();
        self.seen.iter_mut().for_each(|s| *s = false);
    }
}

/// NFA instructions.
#[derive(Clone, Debug)]
enum Inst {
    Char(char),
    Any,
    Class(usize),
    Split(usize, usize),
    Jmp(usize),
    AssertStart,
    AssertEnd,
    Match,
}

/// A set of character ranges, possibly negated.
#[derive(Clone, Debug, PartialEq)]
struct CharClass {
    negated: bool,
    ranges: Vec<(char, char)>,
}

impl CharClass {
    fn contains(&self, c: char) -> bool {
        let inside = self.ranges.iter().any(|&(lo, hi)| lo <= c && c <= hi);
        inside != self.negated
    }
}

/// Parsed syntax tree.
#[derive(Clone, Debug)]
enum Ast {
    Empty,
    Char(char),
    Any,
    Class(CharClass),
    Concat(Vec<Ast>),
    Alt(Vec<Ast>),
    Repeat {
        node: Box<Ast>,
        min: u32,
        max: Option<u32>,
        greedy: bool,
    },
    AnchorStart,
    AnchorEnd,
}

/// Upper bound on `{m,n}` expansion so a pattern cannot inflate the program.
const MAX_BOUNDED_REPEAT: u32 = 256;

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    source: &'a str,
}

impl<'a> Parser<'a> {
    fn new(source: &'a str) -> Parser<'a> {
        Parser {
            chars: source.chars().collect(),
            pos: 0,
            source,
        }
    }

    fn err(&self, message: impl Into<String>) -> PatternError {
        // Convert the char index back to a byte offset for reporting.
        let offset = self
            .source
            .char_indices()
            .nth(self.pos)
            .map(|(o, _)| o)
            .unwrap_or(self.source.len());
        PatternError {
            offset,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn parse(mut self) -> Result<Ast, PatternError> {
        let ast = self.alternation()?;
        if self.pos != self.chars.len() {
            return Err(self.err("unbalanced ')'"));
        }
        Ok(ast)
    }

    fn alternation(&mut self) -> Result<Ast, PatternError> {
        let mut branches = vec![self.concat()?];
        while self.peek() == Some('|') {
            self.pos += 1;
            branches.push(self.concat()?);
        }
        if branches.len() == 1 {
            Ok(branches.pop().unwrap())
        } else {
            Ok(Ast::Alt(branches))
        }
    }

    fn concat(&mut self) -> Result<Ast, PatternError> {
        let mut parts = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            parts.push(self.repeat()?);
        }
        match parts.len() {
            0 => Ok(Ast::Empty),
            1 => Ok(parts.pop().unwrap()),
            _ => Ok(Ast::Concat(parts)),
        }
    }

    fn repeat(&mut self) -> Result<Ast, PatternError> {
        let atom = self.atom()?;
        let (min, max) = match self.peek() {
            Some('*') => {
                self.pos += 1;
                (0, None)
            }
            Some('+') => {
                self.pos += 1;
                (1, None)
            }
            Some('?') => {
                self.pos += 1;
                (0, Some(1))
            }
            Some('{') => {
                let save = self.pos;
                match self.bounded_repeat() {
                    Some(bounds) => bounds,
                    None => {
                        // Not a well-formed bound: treat '{' as a literal,
                        // matching common regex dialects.
                        self.pos = save;
                        return Ok(atom);
                    }
                }
            }
            _ => return Ok(atom),
        };
        if matches!(atom, Ast::AnchorStart | Ast::AnchorEnd) {
            return Err(self.err("repetition applied to anchor"));
        }
        if min > MAX_BOUNDED_REPEAT || max.is_some_and(|m| m > MAX_BOUNDED_REPEAT) {
            return Err(self.err(format!("repetition bound exceeds {MAX_BOUNDED_REPEAT}")));
        }
        if max.is_some_and(|m| m < min) {
            return Err(self.err("repetition bound {m,n} has n < m"));
        }
        let greedy = if self.peek() == Some('?') {
            self.pos += 1;
            false
        } else {
            true
        };
        Ok(Ast::Repeat {
            node: Box::new(atom),
            min,
            max,
            greedy,
        })
    }

    /// Parses `{m}`, `{m,}` or `{m,n}` after the opening brace; returns
    /// `None` (without consuming) if the text is not a valid bound.
    fn bounded_repeat(&mut self) -> Option<(u32, Option<u32>)> {
        debug_assert_eq!(self.peek(), Some('{'));
        self.pos += 1;
        let min = self.integer()?;
        match self.peek() {
            Some('}') => {
                self.pos += 1;
                Some((min, Some(min)))
            }
            Some(',') => {
                self.pos += 1;
                if self.peek() == Some('}') {
                    self.pos += 1;
                    return Some((min, None));
                }
                let max = self.integer()?;
                if self.peek() == Some('}') {
                    self.pos += 1;
                    Some((min, Some(max)))
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    fn integer(&mut self) -> Option<u32> {
        let mut saw = false;
        let mut v: u32 = 0;
        while let Some(c @ '0'..='9') = self.peek() {
            saw = true;
            v = v.saturating_mul(10).saturating_add(c as u32 - '0' as u32);
            self.pos += 1;
        }
        saw.then_some(v)
    }

    fn atom(&mut self) -> Result<Ast, PatternError> {
        match self.bump() {
            Some('(') => {
                let inner = self.alternation()?;
                if self.bump() != Some(')') {
                    self.pos -= 1;
                    return Err(self.err("unclosed group"));
                }
                Ok(inner)
            }
            Some('[') => self.class(),
            Some('.') => Ok(Ast::Any),
            Some('^') => Ok(Ast::AnchorStart),
            Some('$') => Ok(Ast::AnchorEnd),
            Some('\\') => self.escape(),
            Some(c @ ('*' | '+' | '?')) => Err(self.err(format!("dangling repetition '{c}'"))),
            Some(c) => Ok(Ast::Char(c)),
            None => Err(self.err("unexpected end of pattern")),
        }
    }

    fn escape(&mut self) -> Result<Ast, PatternError> {
        match self.bump() {
            Some('d') => Ok(Ast::Class(class_digit(false))),
            Some('D') => Ok(Ast::Class(class_digit(true))),
            Some('w') => Ok(Ast::Class(class_word(false))),
            Some('W') => Ok(Ast::Class(class_word(true))),
            Some('s') => Ok(Ast::Class(class_space(false))),
            Some('S') => Ok(Ast::Class(class_space(true))),
            Some('n') => Ok(Ast::Char('\n')),
            Some('r') => Ok(Ast::Char('\r')),
            Some('t') => Ok(Ast::Char('\t')),
            Some(
                c @ ('\\' | '.' | '*' | '+' | '?' | '(' | ')' | '[' | ']' | '{' | '}' | '|' | '^'
                | '$' | '/' | '-'),
            ) => Ok(Ast::Char(c)),
            Some(c) => Err(self.err(format!("unknown escape '\\{c}'"))),
            None => Err(self.err("dangling backslash")),
        }
    }

    fn class(&mut self) -> Result<Ast, PatternError> {
        let negated = if self.peek() == Some('^') {
            self.pos += 1;
            true
        } else {
            false
        };
        let mut ranges: Vec<(char, char)> = Vec::new();
        // A leading ']' is a literal, per POSIX convention.
        if self.peek() == Some(']') {
            self.pos += 1;
            ranges.push((']', ']'));
        }
        loop {
            let lo = match self.bump() {
                Some(']') => break,
                Some('\\') => match self.class_escape()? {
                    ClassAtom::Char(c) => c,
                    ClassAtom::Ranges(mut rs) => {
                        ranges.append(&mut rs);
                        continue;
                    }
                },
                Some(c) => c,
                None => return Err(self.err("unclosed character class")),
            };
            // Range `lo-hi` unless '-' is last or followed by ']'.
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.pos += 1;
                let hi = match self.bump() {
                    Some('\\') => match self.class_escape()? {
                        ClassAtom::Char(c) => c,
                        ClassAtom::Ranges(_) => {
                            return Err(self.err("class shorthand cannot end a range"))
                        }
                    },
                    Some(c) => c,
                    None => return Err(self.err("unclosed character class")),
                };
                if hi < lo {
                    return Err(self.err("invalid range: end precedes start"));
                }
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        Ok(Ast::Class(CharClass { negated, ranges }))
    }

    fn class_escape(&mut self) -> Result<ClassAtom, PatternError> {
        match self.bump() {
            Some('d') => Ok(ClassAtom::Ranges(vec![('0', '9')])),
            Some('w') => Ok(ClassAtom::Ranges(word_ranges())),
            Some('s') => Ok(ClassAtom::Ranges(space_ranges())),
            Some('n') => Ok(ClassAtom::Char('\n')),
            Some('r') => Ok(ClassAtom::Char('\r')),
            Some('t') => Ok(ClassAtom::Char('\t')),
            Some(c @ ('\\' | ']' | '[' | '^' | '-' | '.' | '/' | '$')) => Ok(ClassAtom::Char(c)),
            Some(c) => Err(self.err(format!("unknown class escape '\\{c}'"))),
            None => Err(self.err("dangling backslash in class")),
        }
    }
}

enum ClassAtom {
    Char(char),
    Ranges(Vec<(char, char)>),
}

fn word_ranges() -> Vec<(char, char)> {
    vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]
}

fn space_ranges() -> Vec<(char, char)> {
    vec![
        (' ', ' '),
        ('\t', '\t'),
        ('\n', '\n'),
        ('\r', '\r'),
        ('\u{b}', '\u{c}'),
    ]
}

fn class_digit(negated: bool) -> CharClass {
    CharClass {
        negated,
        ranges: vec![('0', '9')],
    }
}

fn class_word(negated: bool) -> CharClass {
    CharClass {
        negated,
        ranges: word_ranges(),
    }
}

fn class_space(negated: bool) -> CharClass {
    CharClass {
        negated,
        ranges: space_ranges(),
    }
}

#[derive(Default)]
struct Compiler {
    prog: Vec<Inst>,
    classes: Vec<CharClass>,
}

impl Compiler {
    fn compile(&mut self, ast: &Ast) {
        match ast {
            Ast::Empty => {}
            Ast::Char(c) => self.prog.push(Inst::Char(*c)),
            Ast::Any => self.prog.push(Inst::Any),
            Ast::Class(class) => {
                let idx = self.intern_class(class);
                self.prog.push(Inst::Class(idx));
            }
            Ast::AnchorStart => self.prog.push(Inst::AssertStart),
            Ast::AnchorEnd => self.prog.push(Inst::AssertEnd),
            Ast::Concat(parts) => {
                for p in parts {
                    self.compile(p);
                }
            }
            Ast::Alt(branches) => self.compile_alt(branches),
            Ast::Repeat {
                node,
                min,
                max,
                greedy,
            } => self.compile_repeat(node, *min, *max, *greedy),
        }
    }

    fn intern_class(&mut self, class: &CharClass) -> usize {
        if let Some(i) = self.classes.iter().position(|c| c == class) {
            return i;
        }
        self.classes.push(class.clone());
        self.classes.len() - 1
    }

    fn compile_alt(&mut self, branches: &[Ast]) {
        // branch_0 | rest — chain of Splits, each preferring the earlier
        // branch (leftmost-first priority).
        let mut jumps = Vec::new();
        for (i, branch) in branches.iter().enumerate() {
            if i + 1 < branches.len() {
                let split = self.prog.len();
                self.prog.push(Inst::Split(0, 0)); // patched below
                self.compile(branch);
                let jmp = self.prog.len();
                self.prog.push(Inst::Jmp(0)); // patched at end
                jumps.push(jmp);
                let next = self.prog.len();
                self.prog[split] = Inst::Split(split + 1, next);
            } else {
                self.compile(branch);
            }
        }
        let end = self.prog.len();
        for j in jumps {
            self.prog[j] = Inst::Jmp(end);
        }
    }

    fn compile_repeat(&mut self, node: &Ast, min: u32, max: Option<u32>, greedy: bool) {
        // Mandatory copies.
        for _ in 0..min {
            self.compile(node);
        }
        match max {
            None => {
                // Loop: split → body → jmp back.
                let split = self.prog.len();
                self.prog.push(Inst::Split(0, 0));
                self.compile(node);
                self.prog.push(Inst::Jmp(split));
                let after = self.prog.len();
                self.prog[split] = if greedy {
                    Inst::Split(split + 1, after)
                } else {
                    Inst::Split(after, split + 1)
                };
            }
            Some(max) => {
                // Optional copies, each guarded by a split to the end.
                let mut splits = Vec::new();
                for _ in min..max {
                    let split = self.prog.len();
                    self.prog.push(Inst::Split(0, 0));
                    splits.push(split);
                    self.compile(node);
                }
                let after = self.prog.len();
                for split in splits {
                    self.prog[split] = if greedy {
                        Inst::Split(split + 1, after)
                    } else {
                        Inst::Split(after, split + 1)
                    };
                }
            }
        }
    }
}
