//! Shell-style path globs, the common scope syntax for Oak rules.

use crate::PatternError;

/// A compiled glob pattern matched against a whole path.
///
/// Syntax:
///
/// - `?` matches any single character except `/`,
/// - `*` matches any run of characters except `/`,
/// - `**` matches any run of characters *including* `/`,
/// - every other character matches itself.
///
/// The pattern must match the entire input, mirroring how web routing
/// scopes behave: `/products/*` covers `/products/widget` but not
/// `/products/widget/reviews` (use `/products/**` for the subtree).
#[derive(Clone, Debug)]
pub struct Glob {
    source: String,
    tokens: Vec<Token>,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Token {
    Literal(char),
    AnyChar,
    AnySegment,
    AnyPath,
}

impl Glob {
    /// Compiles a glob pattern.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError`] for three or more consecutive `*`, which is
    /// always an operator typo.
    pub fn new(pattern: &str) -> Result<Glob, PatternError> {
        let mut tokens = Vec::new();
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            match chars[i] {
                '*' => {
                    let run = chars[i..].iter().take_while(|&&c| c == '*').count();
                    match run {
                        1 => tokens.push(Token::AnySegment),
                        2 => tokens.push(Token::AnyPath),
                        _ => {
                            return Err(PatternError {
                                offset: pattern.char_indices().nth(i).map(|(o, _)| o).unwrap_or(0),
                                message: format!("{run} consecutive '*' (max 2)"),
                            })
                        }
                    }
                    i += run;
                }
                '?' => {
                    tokens.push(Token::AnyChar);
                    i += 1;
                }
                c => {
                    tokens.push(Token::Literal(c));
                    i += 1;
                }
            }
        }
        Ok(Glob {
            source: pattern.to_owned(),
            tokens,
        })
    }

    /// The pattern source this glob was compiled from.
    pub fn as_str(&self) -> &str {
        &self.source
    }

    /// Returns true if the glob matches the entire `path`.
    pub fn matches(&self, path: &str) -> bool {
        let chars: Vec<char> = path.chars().collect();
        // Dynamic programming over (token, char) positions: linear-time in
        // pattern × input, same rationale as the regex engine.
        let nt = self.tokens.len();
        let nc = chars.len();
        let mut reach = vec![vec![false; nc + 1]; nt + 1];
        reach[0][0] = true;
        for t in 0..nt {
            for c in 0..=nc {
                if !reach[t][c] {
                    continue;
                }
                match &self.tokens[t] {
                    Token::Literal(l) => {
                        if c < nc && chars[c] == *l {
                            reach[t + 1][c + 1] = true;
                        }
                    }
                    Token::AnyChar => {
                        if c < nc && chars[c] != '/' {
                            reach[t + 1][c + 1] = true;
                        }
                    }
                    Token::AnySegment => {
                        reach[t + 1][c] = true;
                        if c < nc && chars[c] != '/' {
                            reach[t][c + 1] = true;
                        }
                    }
                    Token::AnyPath => {
                        reach[t + 1][c] = true;
                        if c < nc {
                            reach[t][c + 1] = true;
                        }
                    }
                }
            }
        }
        reach[nt][nc]
    }
}
