//! The operator-facing scope type used by Oak rules.

use crate::{Glob, PatternError, Regex};

/// Where within a site a rule applies.
///
/// The paper's rule format says the scope "is a path or regular expression"
/// (§4.1) and its example uses `*` for site-wide scope. `Scope::parse`
/// accepts:
///
/// - `*` — the whole site (the paper's example),
/// - `re:<pattern>` — a regular expression, matched anywhere in the path,
/// - anything else — a [`Glob`] that must match the full path.
///
/// # Examples
///
/// ```
/// use oak_pattern::Scope;
///
/// assert!(Scope::parse("*").unwrap().applies_to("/any/page"));
/// assert!(Scope::parse("re:^/a/\\d+$").unwrap().applies_to("/a/7"));
/// assert!(!Scope::parse("/a/*").unwrap().applies_to("/b/x"));
/// ```
#[derive(Clone, Debug)]
pub enum Scope {
    /// The rule applies to every page on the site.
    SiteWide,
    /// The rule applies to paths matching the glob exactly.
    Path(Glob),
    /// The rule applies to paths the regex matches anywhere.
    Pattern(Regex),
}

impl Scope {
    /// Parses the operator's scope string.
    ///
    /// # Errors
    ///
    /// Propagates [`PatternError`] from the underlying glob or regex
    /// compiler.
    pub fn parse(text: &str) -> Result<Scope, PatternError> {
        if text == "*" {
            return Ok(Scope::SiteWide);
        }
        if let Some(re) = text.strip_prefix("re:") {
            return Ok(Scope::Pattern(Regex::new(re)?));
        }
        Ok(Scope::Path(Glob::new(text)?))
    }

    /// Returns true if a rule with this scope applies to `path`.
    pub fn applies_to(&self, path: &str) -> bool {
        match self {
            Scope::SiteWide => true,
            Scope::Path(glob) => glob.matches(path),
            Scope::Pattern(re) => re.is_match(path),
        }
    }

    /// The canonical string form of this scope.
    pub fn to_source(&self) -> String {
        match self {
            Scope::SiteWide => "*".to_owned(),
            Scope::Path(glob) => glob.as_str().to_owned(),
            Scope::Pattern(re) => format!("re:{}", re.as_str()),
        }
    }
}
