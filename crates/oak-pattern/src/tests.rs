//! Unit and property tests for the pattern substrate.

use crate::{Glob, Regex, Scope};

fn m(pattern: &str, haystack: &str) -> Option<(usize, usize)> {
    Regex::new(pattern)
        .unwrap()
        .find(haystack)
        .map(|mat| (mat.start, mat.end))
}

#[test]
fn literal_match() {
    assert_eq!(m("abc", "xxabcxx"), Some((2, 5)));
    assert_eq!(m("abc", "ab"), None);
}

#[test]
fn dot_matches_any_char() {
    assert_eq!(m("a.c", "abc"), Some((0, 3)));
    assert_eq!(m("a.c", "a/c"), Some((0, 3)));
    assert_eq!(m("a.c", "ac"), None);
}

#[test]
fn star_plus_question() {
    assert_eq!(m("ab*c", "ac"), Some((0, 2)));
    assert_eq!(m("ab*c", "abbbc"), Some((0, 5)));
    assert_eq!(m("ab+c", "ac"), None);
    assert_eq!(m("ab+c", "abc"), Some((0, 3)));
    assert_eq!(m("ab?c", "ac"), Some((0, 2)));
    assert_eq!(m("ab?c", "abc"), Some((0, 3)));
    assert_eq!(m("ab?c", "abbc"), None);
}

#[test]
fn greedy_vs_lazy() {
    assert_eq!(m("a.*b", "a_b_b"), Some((0, 5)), "greedy takes the last b");
    assert_eq!(m("a.*?b", "a_b_b"), Some((0, 3)), "lazy takes the first b");
}

#[test]
fn alternation_prefers_left_branch() {
    assert_eq!(m("cat|category", "category"), Some((0, 3)));
    assert_eq!(m("category|cat", "category"), Some((0, 8)));
}

#[test]
fn leftmost_match_wins() {
    assert_eq!(m("b+", "abbbab"), Some((1, 4)));
}

#[test]
fn anchors() {
    assert_eq!(m("^abc", "abcd"), Some((0, 3)));
    assert_eq!(m("^abc", "xabc"), None);
    assert_eq!(m("abc$", "xabc"), Some((1, 4)));
    assert_eq!(m("abc$", "abcd"), None);
    assert_eq!(m("^$", ""), Some((0, 0)));
    assert_eq!(m("^$", "x"), None);
}

#[test]
fn classes() {
    assert_eq!(m("[a-c]+", "zzabcz"), Some((2, 5)));
    assert_eq!(m("[^a-c]+", "abxyc"), Some((2, 4)));
    assert_eq!(
        m("[-x]", "a-b"),
        Some((1, 2)),
        "leading/trailing dash is literal"
    );
    assert_eq!(m("[x-]", "a-b"), Some((1, 2)));
    assert_eq!(m("[]x]", "]"), Some((0, 1)), "leading ] is literal");
    assert_eq!(m(r"[\d]+", "ab123"), Some((2, 5)));
    assert_eq!(m(r"[\w.]+", "a_1.b!"), Some((0, 5)));
}

#[test]
fn escapes() {
    assert_eq!(m(r"\d+", "order 4251 shipped"), Some((6, 10)));
    assert_eq!(m(r"\D+", "12ab34"), Some((2, 4)));
    assert_eq!(m(r"\w+", "!!id_7!"), Some((2, 6)));
    assert_eq!(m(r"\s+", "a \t b"), Some((1, 4)));
    assert_eq!(m(r"\S+", "  ab  "), Some((2, 4)));
    assert_eq!(m(r"a\.b", "a.b"), Some((0, 3)));
    assert_eq!(m(r"a\.b", "axb"), None);
    assert_eq!(m(r"\n", "a\nb"), Some((1, 2)));
}

#[test]
fn bounded_repetition() {
    assert_eq!(m("a{3}", "aaaa"), Some((0, 3)));
    assert_eq!(m("^a{3}$", "aa"), None);
    assert_eq!(m("a{2,}", "aaa"), Some((0, 3)));
    assert_eq!(m("^a{2,3}$", "aaa"), Some((0, 3)));
    assert_eq!(m("^a{2,3}$", "aaaa"), None);
    // Malformed bound degrades to a literal brace.
    assert_eq!(m("a{x}", "a{x}"), Some((0, 4)));
}

#[test]
fn bounded_repetition_errors() {
    assert!(Regex::new("a{3,2}").is_err());
    assert!(Regex::new("a{9999}").is_err());
}

#[test]
fn groups_compose() {
    assert_eq!(m("(ab)+", "ababab"), Some((0, 6)));
    assert_eq!(m("^(a|b)*c$", "abbac"), Some((0, 5)));
    assert_eq!(m("x(y(z))w", "xyzw"), Some((0, 4)));
}

#[test]
fn syntax_errors() {
    for bad in [
        "(",
        ")",
        "(ab",
        "[a",
        "*a",
        "+",
        "?x"[0..1].as_ref(),
        r"\q",
        r"[\q]",
        "[z-a]",
        "a**",
    ] {
        assert!(Regex::new(bad).is_err(), "{bad:?} should fail to compile");
    }
}

#[test]
fn full_match() {
    let re = Regex::new("a*").unwrap();
    assert!(re.is_full_match("aaa"));
    assert!(re.is_full_match(""));
    assert!(!re.is_full_match("aab"));
    let re = Regex::new("ab|a").unwrap();
    assert!(
        re.is_full_match("ab"),
        "full match ignores branch preference"
    );
}

#[test]
fn unicode_input() {
    assert_eq!(
        m("é+", "caféé"),
        Some((3, 7)),
        "byte offsets span multibyte chars"
    );
    assert_eq!(m(".", "😀"), Some((0, 4)));
}

#[test]
fn match_as_str() {
    let re = Regex::new(r"\d+").unwrap();
    let hay = "abc 123 def";
    assert_eq!(re.find(hay).unwrap().as_str(hay), "123");
}

#[test]
fn find_iter_yields_non_overlapping_matches() {
    let re = Regex::new(r"\d+").unwrap();
    let hay = "a1b22c333d";
    let spans: Vec<(usize, usize)> = re.find_iter(hay).map(|m| (m.start, m.end)).collect();
    assert_eq!(spans, [(1, 2), (3, 5), (6, 9)]);
    assert_eq!(re.find_iter("no digits").count(), 0);
}

#[test]
fn find_iter_handles_empty_matches() {
    // `a*` matches empty everywhere; the iterator must still terminate.
    let re = Regex::new("a*").unwrap();
    let hay = "baab";
    let spans: Vec<(usize, usize)> = re.find_iter(hay).map(|m| (m.start, m.end)).collect();
    assert!(spans.len() <= hay.len() + 1, "terminates");
    assert!(spans.contains(&(1, 3)), "the real run of a's is found");
}

#[test]
fn regex_replace_all() {
    let re = Regex::new(r"s\d\.example").unwrap();
    assert_eq!(
        re.replace_all("x s1.example y s2.example z", "mirror.example"),
        "x mirror.example y mirror.example z"
    );
    assert_eq!(re.replace_all("untouched", "m"), "untouched");
    // Empty-match replacement terminates and leaves text intact between.
    let every = Regex::new("").unwrap();
    assert_eq!(every.replace_all("ab", "-"), "-a-b-");
}

#[test]
fn pathological_patterns_terminate_quickly() {
    // The classic exponential-backtracking killer: (a*)*b against aⁿ.
    // A Pike VM runs this in linear time.
    let re = Regex::new("(a*)*b").unwrap();
    let hay = "a".repeat(2000);
    let start = std::time::Instant::now();
    assert!(!re.is_match(&hay));
    assert!(
        start.elapsed() < std::time::Duration::from_secs(2),
        "pathological pattern took {:?}",
        start.elapsed()
    );
}

#[test]
fn url_and_path_patterns() {
    // The kinds of patterns rule scopes actually use.
    let re = Regex::new(r"^/product/\d+$").unwrap();
    assert!(re.is_match("/product/991"));
    assert!(!re.is_match("/product/991/reviews"));

    let re = Regex::new(r"(cdn|static)\.example\.(com|net)").unwrap();
    assert!(re.is_match("http://cdn.example.net/app.js"));
    assert!(!re.is_match("http://cdnXexample.com/app.js"));
}

#[test]
fn glob_basics() {
    let g = Glob::new("/products/*").unwrap();
    assert!(g.matches("/products/widget"));
    assert!(g.matches("/products/"));
    assert!(!g.matches("/products/widget/reviews"));
    assert!(!g.matches("/about"));
}

#[test]
fn glob_double_star_crosses_slashes() {
    let g = Glob::new("/products/**").unwrap();
    assert!(g.matches("/products/widget/reviews"));
    assert!(g.matches("/products/"));
    let g = Glob::new("**/*.js").unwrap();
    assert!(g.matches("static/js/app.js"));
    assert!(!g.matches("static/js/app.css"));
}

#[test]
fn glob_question_mark() {
    let g = Glob::new("/v?/api").unwrap();
    assert!(g.matches("/v1/api"));
    assert!(g.matches("/v2/api"));
    assert!(!g.matches("/v10/api"));
    assert!(!g.matches("/v//api"), "? does not match '/'");
}

#[test]
fn glob_literal_and_empty() {
    assert!(Glob::new("/exact").unwrap().matches("/exact"));
    assert!(!Glob::new("/exact").unwrap().matches("/exact2"));
    assert!(Glob::new("").unwrap().matches(""));
    assert!(!Glob::new("").unwrap().matches("x"));
    assert!(Glob::new("***").is_err());
}

#[test]
fn glob_star_runs_compose() {
    let g = Glob::new("a*b*c").unwrap();
    assert!(g.matches("a__b__c"));
    assert!(g.matches("abc"));
    assert!(!g.matches("a/b/c"), "single star stays within a segment");
}

#[test]
fn scope_parse_forms() {
    assert!(matches!(Scope::parse("*").unwrap(), Scope::SiteWide));
    assert!(matches!(Scope::parse("/x/*").unwrap(), Scope::Path(_)));
    assert!(matches!(Scope::parse("re:^/x").unwrap(), Scope::Pattern(_)));
    assert!(Scope::parse("re:(").is_err());
}

#[test]
fn scope_applies_to() {
    let site = Scope::parse("*").unwrap();
    assert!(site.applies_to("/anything/at/all"));

    let glob = Scope::parse("/blog/*").unwrap();
    assert!(glob.applies_to("/blog/post-1"));
    assert!(!glob.applies_to("/shop/item"));

    let re = Scope::parse(r"re:^/(a|b)/\d+$").unwrap();
    assert!(re.applies_to("/a/1"));
    assert!(re.applies_to("/b/22"));
    assert!(!re.applies_to("/c/1"));
}

#[test]
fn scope_roundtrips_source() {
    for src in ["*", "/x/**", r"re:^/item/\d+$"] {
        assert_eq!(Scope::parse(src).unwrap().to_source(), src);
    }
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The regex compiler and matcher never panic on arbitrary inputs.
        #[test]
        fn regex_is_total(pattern in "\\PC{0,24}", hay in "\\PC{0,48}") {
            if let Ok(re) = Regex::new(&pattern) {
                let _ = re.is_match(&hay);
                let _ = re.find(&hay);
                let _ = re.is_full_match(&hay);
            }
        }

        /// A literal pattern (no metacharacters) behaves like `str::find`.
        #[test]
        fn literal_patterns_agree_with_str_find(
            needle in "[a-z]{1,6}",
            hay in "[a-z]{0,32}",
        ) {
            let re = Regex::new(&needle).unwrap();
            let expected = hay.find(&needle);
            prop_assert_eq!(re.find(&hay).map(|m| m.start), expected);
        }

        /// Any match reported by `find` lies on char boundaries and the
        /// matched slice re-matches as a full match of itself.
        #[test]
        fn find_spans_are_valid(pattern in "[a-c.*+?|()\\[\\]]{1,10}", hay in "[a-d]{0,24}") {
            if let Ok(re) = Regex::new(&pattern) {
                if let Some(mat) = re.find(&hay) {
                    prop_assert!(hay.is_char_boundary(mat.start));
                    prop_assert!(hay.is_char_boundary(mat.end));
                    prop_assert!(mat.start <= mat.end);
                }
            }
        }

        /// Glob matching never panics and `**` is a superset of `*`.
        #[test]
        fn glob_total_and_monotone(path in "[a-z/]{0,24}") {
            let single = Glob::new("/a/*").unwrap();
            let double = Glob::new("/a/**").unwrap();
            if single.matches(&path) {
                prop_assert!(double.matches(&path));
            }
        }
    }
}
