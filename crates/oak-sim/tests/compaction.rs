//! Snapshot compaction racing concurrent ingest on a crashing disk.
//!
//! Real threads hammer the engine while the main thread forces
//! snapshot+compaction cycles, all on a [`SimFs`] with an armed crash
//! trigger — so the crash can land inside an append, inside the snapshot
//! tmp+rename dance, or inside the compaction deletes that follow it.
//! After the dust settles the store recovers and the same exact oracles
//! the scenario harness uses must hold: nothing acknowledged under
//! `FsyncPolicy::Always` may be missing, and the recovered state must be
//! byte-identical to the replay of exactly the event set it claims.

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::thread;

use oak_core::engine::{Oak, OakConfig};
use oak_core::events::{EventSink, SequencedEvent};
use oak_core::matching::NoFetch;
use oak_core::report::{ObjectTiming, PerfReport};
use oak_core::rule::Rule;
use oak_core::Instant;
use oak_sim::{fingerprint, SimFs, SimFsOptions};
use oak_store::{FsyncPolicy, OakStore, StorageBackend, StoreOptions};
use proptest::prelude::*;

const THREADS: u64 = 3;
const REPORTS_PER_THREAD: u64 = 40;

/// Mirrors every emitted event after the store acknowledges it, tagged
/// with whether the disk was already down — the same oracle the scenario
/// world interposes, rebuilt here so the race uses public API only.
struct RaceSink {
    store: Arc<OakStore>,
    fs: SimFs,
    entries: Mutex<Vec<(SequencedEvent, bool)>>,
}

impl EventSink for RaceSink {
    fn record(&self, shard: Option<usize>, event: &SequencedEvent) {
        self.store.record(shard, event);
        let post_crash = self.fs.crashed();
        self.entries
            .lock()
            .expect("mirror")
            .push((event.clone(), post_crash));
    }
}

fn violating_report(user: u64) -> PerfReport {
    let mut report = PerfReport::new(format!("u-{user}"), "/p");
    report.push(ObjectTiming::new(
        "http://cdn0.example/lib.js".to_owned(),
        "10.0.0.1".to_owned(),
        30_000,
        900.0,
    ));
    for good in 0..4u64 {
        report.push(ObjectTiming::new(
            format!("http://good{good}.example/obj"),
            format!("10.1.{good}.1"),
            30_000,
            80.0 + good as f64 * 5.0,
        ));
    }
    report
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Compaction may never eat acknowledged history, wherever the crash
    /// lands in the race.
    #[test]
    fn compaction_racing_ingest_survives_crash_points(
        seed in 0u64..u64::MAX / 2,
        crash_ops in 5u64..400,
    ) {
        let fs = SimFs::new(seed, SimFsOptions::default());
        let dir = PathBuf::from("/sim/race");
        let config = OakConfig::default();
        let options = StoreOptions {
            fsync: FsyncPolicy::Always,
            // Tiny thresholds so the 12 forced snapshots below are not
            // the only compactions: appends trip their own.
            snapshot_every_events: 8,
            rotate_segment_bytes: 1024,
            keep_snapshots: 2,
        };
        let boot = OakStore::boot_with(
            Arc::new(fs.clone()) as Arc<dyn StorageBackend>,
            &dir,
            config,
            options,
        )
        .expect("fresh boot on an empty disk");
        let mut oak = boot.oak;
        let sink = Arc::new(RaceSink {
            store: Arc::clone(&boot.store),
            fs: fs.clone(),
            entries: Mutex::new(Vec::new()),
        });
        oak.set_event_sink(sink.clone());
        oak.add_rule(Rule::remove(
            r#"<script src="http://cdn0.example/lib.js">"#.to_owned(),
        ))
        .expect("rule is valid");
        let oak = Arc::new(oak);

        fs.schedule_crash(crash_ops, seed ^ 0x5bd1_e995);

        let mut workers = Vec::new();
        for t in 0..THREADS {
            let oak = Arc::clone(&oak);
            workers.push(thread::spawn(move || {
                for i in 0..REPORTS_PER_THREAD {
                    let now = Instant(10 + (t * REPORTS_PER_THREAD + i) * 7);
                    // Crash-time append failures are swallowed exactly
                    // like the serving path swallows them; the recovery
                    // audit below accounts for the damage.
                    let _ = oak.ingest_report(now, &violating_report(t), &NoFetch);
                }
            }));
        }
        let store = Arc::clone(&boot.store);
        for _ in 0..12 {
            let _ = store.snapshot(&oak);
            thread::yield_now();
        }
        for worker in workers {
            worker.join().expect("ingest worker");
        }

        // Pull the plug (a no-op if the trigger already fired), power
        // back on, and recover from whatever survived.
        fs.crash_now();
        fs.restart();
        let recovered = OakStore::boot_with(
            Arc::new(fs.clone()) as Arc<dyn StorageBackend>,
            &dir,
            config,
            options,
        )
        .expect("recovery after the race");

        let covered: HashSet<u64> = recovered.replayed_seqs.iter().copied().collect();
        let in_set = |seq: u64| seq < recovered.watermark || covered.contains(&seq);

        let mut entries = std::mem::take(&mut *sink.entries.lock().expect("mirror"));
        // Threads publish out of order; the oracle is per-seq.
        entries.sort_by_key(|(event, _)| event.seq);

        // Durability: fsync was Always, so every event acknowledged while
        // the disk was up must be covered by the recovered state.
        for (event, post_crash) in &entries {
            prop_assert!(
                *post_crash || in_set(event.seq),
                "acknowledged event seq {} lost (watermark {}, {} replayed)",
                event.seq,
                recovered.watermark,
                recovered.replayed_seqs.len(),
            );
        }

        // Consistency: the recovered engine is exactly the replay of the
        // event set it claims — compaction dropped no covered history.
        let expected = Oak::new(config);
        let mut seen = HashSet::new();
        for (event, _) in &entries {
            if in_set(event.seq) && seen.insert(event.seq) {
                expected.apply_event(event);
            }
        }
        prop_assert_eq!(
            fingerprint(&recovered.oak),
            fingerprint(&expected),
            "recovered state is not the replay of its own event set",
        );
    }
}
