//! Cluster-simulation conformance: replicated scenarios hold their
//! invariants across a seed sweep, runs are deterministic, the v1
//! scenario wire format stays replayable, and the deliberately broken
//! failover (`buggy_promotion`) is caught and ddmin-minimized — the
//! proof the losslessness oracle has teeth.

use oak_sim::{
    minimize_with, run_any_scenario, run_cluster_scenario, ClusterSimOptions, Scenario,
    SimFsOptions,
};

fn healthy() -> ClusterSimOptions {
    ClusterSimOptions::default()
}

fn buggy_promotion() -> ClusterSimOptions {
    ClusterSimOptions {
        fs: SimFsOptions::default(),
        buggy_promotion: true,
    }
}

#[test]
fn cluster_invariants_hold_across_a_seed_sweep() {
    for seed in 0..25 {
        let scenario = Scenario::generate_cluster(seed);
        if let Err(failure) = run_cluster_scenario(&scenario, healthy()) {
            panic!("cluster seed {seed} violated an invariant: {failure}");
        }
    }
}

#[test]
fn mixed_pool_runs_through_the_same_entry_point() {
    for seed in 0..10 {
        let scenario = Scenario::generate_mixed(seed);
        assert_eq!(
            scenario.cluster.is_some(),
            seed % 2 == 1,
            "mixed pool must alternate shapes"
        );
        if let Err(failure) = run_any_scenario(&scenario, healthy()) {
            panic!("mixed seed {seed} violated an invariant: {failure}");
        }
    }
}

#[test]
fn cluster_runs_are_deterministic_in_the_seed() {
    for seed in [3, 7, 11] {
        let scenario = Scenario::generate_cluster(seed);
        let a = run_cluster_scenario(&scenario, healthy()).expect("clean seed");
        let b = run_cluster_scenario(&scenario, healthy()).expect("clean seed");
        assert_eq!(a.steps, b.steps, "seed {seed}: steps diverged");
        assert_eq!(a.events, b.events, "seed {seed}: events diverged");
        assert_eq!(a.requests, b.requests, "seed {seed}: requests diverged");
        assert_eq!(a.failovers, b.failovers, "seed {seed}: failovers diverged");
        assert_eq!(a.refused, b.refused, "seed {seed}: refusals diverged");
        assert_eq!(
            a.recoveries, b.recoveries,
            "seed {seed}: recoveries diverged"
        );
        assert_eq!(
            a.fs.crashes, b.fs.crashes,
            "seed {seed}: crash schedule diverged"
        );
    }
}

/// A pre-cluster (v1) failure artifact checked in verbatim: the exact
/// JSON `oak-sim --buggy-dirsync` wrote before the scenario format grew
/// its version tag and cluster steps. It must keep decoding and must
/// still reproduce the recorded invariant under the recorded fault —
/// and pass clean without it.
#[test]
fn checked_in_v1_artifact_still_decodes_and_replays() {
    let text = include_str!("../testdata/SIM_FAILURE_v1.json");
    let doc = oak_json::parse(text).expect("artifact is valid JSON");
    let scenario = Scenario::from_value(doc.get("scenario").expect("artifact nests a scenario"))
        .expect("v1 scenario decodes without a version tag");
    assert!(
        scenario.cluster.is_none(),
        "v1 artifacts predate cluster scenarios"
    );

    let recorded_invariant = doc
        .get("invariant")
        .and_then(oak_json::Value::as_str)
        .expect("artifact records the invariant");
    let buggy = ClusterSimOptions {
        fs: SimFsOptions {
            ignore_dir_sync: true,
        },
        buggy_promotion: false,
    };
    let failure = run_any_scenario(&scenario, buggy).expect_err("recorded fault still reproduces");
    assert_eq!(
        failure.invariant, recorded_invariant,
        "replay must reproduce the recorded invariant"
    );
    run_any_scenario(&scenario, healthy()).expect("fixed code passes the same schedule");
}

fn find_promotion_failure() -> (u64, Scenario, oak_sim::SimFailure) {
    for seed in 0..200 {
        let scenario = Scenario::generate_cluster(seed);
        if let Err(failure) = run_cluster_scenario(&scenario, buggy_promotion()) {
            return (seed, scenario, failure);
        }
    }
    panic!("no seed in 0..200 catches the buggy promotion — the oracle has lost its teeth");
}

/// The self-check the ISSUE demands: promote-without-watermark must be
/// caught by the losslessness/election oracles, and ddmin must shrink
/// the failing schedule to a smaller one that provably still fails.
#[test]
fn buggy_promotion_is_caught_and_minimized() {
    let (seed, scenario, failure) = find_promotion_failure();
    assert!(
        failure.invariant == "acked_loss" || failure.invariant == "single_primary",
        "seed {seed}: expected a replication-safety violation, got {}",
        failure.invariant
    );

    let run = |candidate: &Scenario| run_cluster_scenario(candidate, buggy_promotion()).err();
    let minimized = minimize_with(&scenario, &run).expect("failing scenario minimizes");
    assert!(
        minimized.scenario.steps.len() <= scenario.steps.len(),
        "minimization may never grow the schedule"
    );

    // The minimized scenario round-trips through JSON and still fails —
    // exactly what the CI artifact relies on.
    let replayed = Scenario::from_value(&minimized.scenario.to_value())
        .expect("minimized scenario round-trips");
    run_cluster_scenario(&replayed, buggy_promotion())
        .expect_err("minimized scenario still catches the bug");
    // And the healthy protocol survives the exact same schedule.
    run_cluster_scenario(&replayed, healthy())
        .expect("watermark-gated promotion passes the minimized schedule");
}
