//! Whole-system simulation suite: seed sweeps with invariants on, the
//! reintroduced durability bug caught + minimized, and the snapshot
//! compaction vs. concurrent-ingest race.

use oak_sim::{minimize, run_scenario, run_scenario_observed, Scenario, SimFsOptions};

/// The fixed fs (dir fsyncs honored), as shipped.
fn fixed() -> SimFsOptions {
    SimFsOptions::default()
}

/// The pre-fix behavior: directory fsyncs silently dropped.
fn buggy() -> SimFsOptions {
    SimFsOptions {
        ignore_dir_sync: true,
    }
}

#[test]
fn invariants_hold_across_a_seed_sweep() {
    // CI soaks a larger range through the `oak-sim` bin; this in-tree
    // sweep is the tier-1 floor.
    for seed in 0..60 {
        let scenario = Scenario::generate(seed);
        if let Err(failure) = run_scenario(&scenario, fixed()) {
            panic!("replay with `oak-sim --seed {seed}`: {failure}");
        }
    }
}

#[test]
fn overload_oracle_holds_across_200_seeds_and_actually_bites() {
    // The overload agreement invariant (#7) is armed on every run; this
    // sweep is the acceptance floor for it. The aggregate assertions
    // prove the schedule has teeth — across 200 seeds the pressure
    // function must push real traffic into both Brownout (pages served
    // unrewritten) and Shedding (requests refused with Retry-After),
    // or the oracle is vacuously green.
    let mut sheds = 0u64;
    let mut browned = 0u64;
    for seed in 0..200 {
        let scenario = Scenario::generate(seed);
        match run_scenario(&scenario, fixed()) {
            Ok(stats) => {
                sheds += stats.sheds;
                browned += stats.browned;
            }
            Err(failure) => panic!("replay with `oak-sim --seed {seed}`: {failure}"),
        }
    }
    assert!(sheds > 0, "no request was ever shed across 200 seeds");
    assert!(browned > 0, "no page was ever browned across 200 seeds");
}

#[test]
fn runs_are_deterministic_in_the_seed() {
    for seed in [3, 17, 41] {
        let scenario = Scenario::generate(seed);
        let mut a = run_scenario(&scenario, fixed()).expect("clean seed");
        let mut b = run_scenario(&scenario, fixed()).expect("clean seed");
        // The only nondeterministic field is the wall-clock overhead
        // accounting; everything the simulation *does* must match.
        a.invariant_ns = 0;
        b.invariant_ns = 0;
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "seed {seed} diverged");
    }
}

#[test]
fn observability_is_deterministic_in_the_seed() {
    // Metrics and traces are read off simulated time, so the end-of-run
    // `/oak/metrics` scrape and the rendered trace ring must match byte
    // for byte across runs of one seed — including histogram buckets,
    // span durations, and trace ids.
    for seed in [5, 23] {
        let scenario = Scenario::generate(seed);
        let a = run_scenario_observed(&scenario, fixed()).expect("clean seed");
        let b = run_scenario_observed(&scenario, fixed()).expect("clean seed");
        assert_eq!(a.exposition, b.exposition, "seed {seed} scrape diverged");
        assert_eq!(a.traces, b.traces, "seed {seed} traces diverged");
        assert!(
            !a.traces.is_empty(),
            "seed {seed} left no traces in the ring"
        );
        assert!(
            a.exposition.contains("# TYPE oak_wal_append_count counter"),
            "seed {seed} scrape is missing store families"
        );
    }
}

/// Finds a seed whose scenario fails under the buggy filesystem.
fn find_buggy_failure() -> (u64, Scenario) {
    for seed in 0..400 {
        let scenario = Scenario::generate(seed);
        if run_scenario(&scenario, buggy()).is_err() {
            return (seed, scenario);
        }
    }
    panic!("no seed in 0..400 tripped over the missing dir fsync — the model lost its teeth");
}

#[test]
fn missing_dir_fsync_bug_is_caught_and_minimized_to_a_replayable_scenario() {
    // The acceptance demo: reintroduce the pre-fix bug (snapshot rename
    // and WAL-segment creation never directory-synced), let the harness
    // catch the data loss, shrink it, and replay it from JSON.
    let (seed, scenario) = find_buggy_failure();

    let minimized = minimize(&scenario, buggy()).expect("scenario fails, so it minimizes");
    assert!(
        minimized.scenario.steps.len() <= minimized.original_steps,
        "minimization never grows the schedule"
    );

    // The minimized scenario still fails — and survives a JSON round
    // trip, which is exactly what the CI artifact + `--replay` path does.
    let json = minimized.scenario.to_value().to_string();
    let replayed = Scenario::from_value(&oak_json::parse(&json).expect("valid json"))
        .expect("codec round-trips");
    assert_eq!(replayed, minimized.scenario);
    let failure = run_scenario(&replayed, buggy()).expect_err("minimized scenario still fails");
    assert_eq!(failure.seed, seed);
    assert!(
        failure.invariant == "durability" || failure.invariant == "consistency",
        "the bug manifests as lost or diverged state, got {:?}",
        failure.invariant
    );
}

#[test]
fn fixed_code_survives_the_schedules_that_break_the_buggy_fs() {
    // Differential regression for the S1 fix: the exact schedules that
    // lose data when dir fsyncs are dropped pass with them honored.
    let (_, scenario) = find_buggy_failure();
    run_scenario(&scenario, fixed()).expect("the fix closes the hole");
}
