//! The replicated simulation world: a whole `oak-cluster` deployment —
//! N nodes, each with its own simulated disk, joined by a simulated
//! network — driven through one seeded v2 scenario, with the cluster
//! invariants audited continuously.
//!
//! Everything is the real code: real engines, real WAL stores
//! ([`crate::fs::SimFs`] per node), the real lease/replication state
//! machines ([`oak_cluster::ClusterNode`]), and the real router. The
//! sim supplies only the physics — time ([`crate::clock::SimClock`]),
//! disks, and the message fabric ([`crate::net::SimNet`] with seeded
//! delay, reordering, duplication, loss, and scripted link cuts).
//!
//! Invariants, checked at every tick and at a forced end-of-run heal:
//!
//! 1. **Losslessness** — `committed_high[p]` records the highest
//!    replication watermark any seated primary of partition `p` ever
//!    reported; every event below it was durable on a majority, and a
//!    client ack may be released exactly up to it. No node may ever sit
//!    as primary with its WAL head below that watermark — that primary
//!    would serve (and take writes over) a history missing acked
//!    reports. Vote grants are watermark-gated precisely to make this
//!    impossible; `--buggy-promotion` removes the gate to prove the
//!    harness catches the loss.
//! 2. **Election safety** — at most one node observed as primary per
//!    `(partition, epoch)`, across the whole run.
//! 3. **Step-down & convergence** — after partitions heal and every
//!    node restarts, each partition settles to exactly one primary
//!    (stale ones stepped down), replication drains (primary lag 0),
//!    and every replica's engine fingerprint is byte-identical
//!    (`last_seen` masked, as in the single-node world).
//!
//! A violation is a [`SimFailure`] like any other: the scenario
//! minimizes by ddmin and round-trips through the v2 JSON codec.

use std::collections::BTreeMap;
use std::sync::Arc;

use oak_cluster::{
    ClusterNode, LeaseConfig, NodeId, NodeOptions, Role, RouteDecision, Router, Topology,
};
use oak_core::engine::{Oak, OakConfig};
use oak_core::report::PerfReport;
use oak_core::Instant;
use oak_store::{FsyncPolicy, StorageBackend, StoreOptions};

use crate::clock::SimClock;
use crate::fetch::{HostMode, SimFetcher};
use crate::fs::{SimFs, SimFsOptions};
use crate::net::{SimNet, SimNetOptions};
use crate::scenario::{ClusterSpec, Scenario, Step, HOSTS};
use crate::world::{
    benign_report, fingerprint, sim_page, step_rule, user_name, violating_report, RunStats,
    SharedFetcher, SimFailure, LOG_RETENTION,
};

/// Knobs for a cluster run, beyond the scenario itself.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClusterSimOptions {
    /// Per-node disk fault options.
    pub fs: SimFsOptions,
    /// Remove the watermark gate from vote grants — the deliberately
    /// broken failover ("promote whoever asks first") the harness
    /// self-check must catch as a losslessness violation.
    pub buggy_promotion: bool,
}

/// Simulated milliseconds per pump iteration. Must stay below the
/// heartbeat interval so protocol timers are observed, not skipped.
const TICK_MS: u64 = 20;

/// Bounded node-boot retries (a scheduled crash can land mid-recovery).
const MAX_BOOT_ATTEMPTS: usize = 8;

/// Simulated time the end-of-run audit allows for the healed cluster to
/// elect, drain replication, and converge before calling it a stall.
const SETTLE_BUDGET_MS: u64 = 30_000;

struct ClusterWorld<'a> {
    scenario: &'a Scenario,
    spec: ClusterSpec,
    topology: Topology,
    clock: SimClock,
    fetcher: Arc<SimFetcher>,
    net: SimNet,
    fses: Vec<SimFs>,
    /// `None` = node is down (crashed, not yet restarted).
    nodes: Vec<Option<ClusterNode>>,
    node_options: NodeOptions,
    router: Router,
    /// Partition → highest replication watermark any seated primary
    /// ever reported. The supremum of releasable client acks.
    committed_high: BTreeMap<u32, u64>,
    /// `(partition, epoch)` → the one node seen as its primary.
    claims: BTreeMap<(u32, u64), NodeId>,
    /// Partition → highest epoch with an observed primary (failover
    /// accounting).
    epoch_high: BTreeMap<u32, u64>,
    stats: RunStats,
    step: usize,
}

impl ClusterWorld<'_> {
    fn fail(&self, invariant: &str, detail: String) -> SimFailure {
        SimFailure {
            seed: self.scenario.seed,
            step: self.step,
            invariant: invariant.to_owned(),
            detail,
        }
    }

    fn node_count(&self) -> usize {
        self.spec.nodes as usize
    }

    fn kill(&mut self, idx: usize) {
        if self.nodes[idx].take().is_some() {
            for partition in self.topology.partitions_of(NodeId(idx as u32)) {
                self.router.invalidate(partition);
            }
        }
    }

    /// Boots (or re-boots) node `idx` from whatever its disk holds,
    /// retrying if a scheduled crash fires mid-recovery.
    fn boot_node(&mut self, idx: usize) -> Result<ClusterNode, SimFailure> {
        let mut attempt = 0;
        loop {
            attempt += 1;
            let backend = Arc::new(self.fses[idx].clone()) as Arc<dyn StorageBackend>;
            match ClusterNode::new(
                NodeId(idx as u32),
                self.topology.clone(),
                backend,
                format!("/sim/n{idx}"),
                self.node_options.clone(),
                self.clock.now().as_millis(),
            ) {
                Ok(node) => {
                    self.stats.recoveries += 1;
                    return Ok(node);
                }
                Err(err) if self.fses[idx].crashed() && attempt < MAX_BOOT_ATTEMPTS => {
                    let _ = err;
                    self.fses[idx].restart();
                }
                Err(err) => {
                    return Err(self.fail(
                        "recovery",
                        format!("node n{idx} failed to boot from surviving disk: {err}"),
                    ))
                }
            }
        }
    }

    /// Advances simulated time by `ms`, pumping protocol ticks and the
    /// message fabric, auditing invariants at every tick.
    fn pump(&mut self, ms: u64) -> Result<(), SimFailure> {
        let mut remaining = ms;
        while remaining > 0 {
            let delta = remaining.min(TICK_MS);
            remaining -= delta;
            self.clock.advance(delta);
            let now = self.clock.now().as_millis();
            for idx in 0..self.node_count() {
                let out = match self.nodes[idx].as_mut() {
                    Some(node) => node.tick(now),
                    None => continue,
                };
                if self.fses[idx].crashed() {
                    // Died mid-tick: nothing it "sent" ever left the box.
                    self.kill(idx);
                    continue;
                }
                for envelope in out {
                    self.net.send(now, envelope);
                }
            }
            for envelope in self.net.deliver_due(now) {
                let idx = envelope.to.0 as usize;
                let replies = match self.nodes[idx].as_mut() {
                    Some(node) => node.handle(now, &envelope),
                    None => continue, // delivered to a dead node: dropped
                };
                if self.fses[idx].crashed() {
                    self.kill(idx);
                    continue;
                }
                for reply in replies {
                    self.net.send(now, reply);
                }
            }
            self.audit()?;
        }
        Ok(())
    }

    /// The continuous audit: walks every live node's partition status,
    /// feeds the router, and checks election safety + losslessness.
    fn audit(&mut self) -> Result<(), SimFailure> {
        let started = std::time::Instant::now();
        let mut failure = None;
        for idx in 0..self.node_count() {
            let Some(node) = self.nodes[idx].as_ref() else {
                continue;
            };
            let me = NodeId(idx as u32);
            for st in node.status() {
                if st.role != Role::Primary {
                    continue;
                }
                self.stats.invariant_checks += 2;
                // Election safety: one primary per (partition, epoch).
                let holder = self.claims.entry((st.partition, st.epoch)).or_insert(me);
                if *holder != me {
                    failure = Some((
                        "single_primary",
                        format!(
                            "partition {} epoch {} has two primaries: {} and {}",
                            st.partition, st.epoch, holder, me
                        ),
                    ));
                    break;
                }
                // Failover accounting: a later epoch seating a primary.
                let high = self.epoch_high.entry(st.partition).or_insert(st.epoch);
                if st.epoch > *high {
                    self.stats.failovers += 1;
                    *high = st.epoch;
                }
                if st.epoch < *high {
                    // A deposed primary that has not yet heard the new
                    // epoch (partitioned away, inside its lease). Its
                    // commit is frozen — a majority now lives at a
                    // higher epoch and refuses its appends — so it can
                    // neither lose acked events nor mint new acks; it
                    // serves bounded-stale reads until it steps down.
                    // Losslessness is a claim about the *authoritative*
                    // line, below.
                    continue;
                }
                // Losslessness: the authoritative (highest-epoch)
                // primary may never sit below the highest watermark any
                // primary ever acked at.
                let acked = self.committed_high.entry(st.partition).or_insert(0);
                if st.head < *acked {
                    failure = Some((
                        "acked_loss",
                        format!(
                            "node {} seated as primary of partition {} (epoch {}) with \
                             head {} below the replication watermark {} — events acked \
                             durable on a majority are gone from the serving history",
                            me, st.partition, st.epoch, st.head, *acked
                        ),
                    ));
                    break;
                }
                *acked = (*acked).max(st.commit);
                self.router.observe_primary(st.partition, st.epoch, me);
            }
            if failure.is_some() {
                break;
            }
        }
        self.stats.invariant_ns += started.elapsed().as_nanos() as u64;
        match failure {
            Some((invariant, detail)) => Err(self.fail(invariant, detail)),
            None => Ok(()),
        }
    }

    /// Resolves `partition` to its live, seated primary's node index,
    /// through the router (503-counting on the way).
    fn primary_for(&mut self, partition: u32) -> Option<usize> {
        match self.router.route_partition(partition) {
            RouteDecision::Forward { node, .. } => {
                let idx = node.0 as usize;
                let seated = self.nodes[idx]
                    .as_ref()
                    .map(|n| n.role(partition) == Some(Role::Primary))
                    .unwrap_or(false);
                if seated {
                    Some(idx)
                } else {
                    // Forward bounced: the believed primary is dead or
                    // stepped down. Invalidate and 503.
                    self.router.invalidate(partition);
                    self.stats.refused += 1;
                    None
                }
            }
            RouteDecision::Unavailable { .. } => {
                self.stats.refused += 1;
                None
            }
        }
    }

    /// Runs one client operation against `partition`'s primary engine,
    /// then handles a disk crash that may have fired inside it.
    fn with_primary<R>(
        &mut self,
        partition: u32,
        op: impl FnOnce(&Oak, Instant) -> R,
    ) -> Option<R> {
        let idx = self.primary_for(partition)?;
        let engine = match self.nodes[idx].as_ref()?.primary_engine(partition) {
            Ok(engine) => engine,
            Err(_) => {
                self.router.invalidate(partition);
                self.stats.refused += 1;
                return None;
            }
        };
        self.stats.requests += 1;
        let result = op(&engine, self.clock.now());
        if self.fses[idx].crashed() {
            // The write may have been half-journaled; the node is gone
            // and the client never got an ack. Replication (or its
            // absence) is what the invariants audit.
            self.kill(idx);
        }
        Some(result)
    }

    /// Client ops that address every partition (operator rule pushes).
    fn each_partition(&mut self, mut op: impl FnMut(&mut Self, u32)) {
        for partition in 0..self.spec.partitions {
            op(self, partition);
        }
    }

    fn execute(&mut self, step: &Step) -> Result<(), SimFailure> {
        let fetcher = SharedFetcher(Arc::clone(&self.fetcher));
        match step {
            Step::AddRule { host, kind, ttl_ms } => {
                let (host, kind, ttl_ms) = (*host, *kind, *ttl_ms);
                self.each_partition(|world, partition| {
                    world.with_primary(partition, |oak, _| {
                        oak.add_rule(step_rule(host, kind, ttl_ms))
                            .expect("generated rules are valid");
                    });
                });
            }
            Step::RemoveRule { nth } => {
                let nth = *nth;
                self.each_partition(|world, partition| {
                    world.with_primary(partition, |oak, _| {
                        let ids: Vec<_> = oak.rules().map(|(id, _)| id).collect();
                        if !ids.is_empty() {
                            oak.remove_rule(ids[nth as usize % ids.len()]);
                        }
                    });
                });
            }
            Step::Ingest {
                user,
                host,
                violating,
                binary,
            } => {
                let report = if *violating {
                    violating_report(*user, *host)
                } else {
                    benign_report(*user)
                };
                // `binary` exercises the wire codec: what the cluster
                // ingests is the decode of the binary encoding.
                let report = if *binary {
                    PerfReport::from_binary(&report.to_binary()).map_err(|err| {
                        self.fail("wire", format!("binary report did not round-trip: {err}"))
                    })?
                } else {
                    report
                };
                let partition = self.topology.partition_of(&report.user);
                self.with_primary(partition, |oak, now| {
                    oak.ingest_report_from(now, &report, &fetcher, None);
                });
            }
            Step::Serve { user } => {
                let name = user_name(*user);
                let partition = self.topology.partition_of(&name);
                let page = sim_page();
                self.with_primary(partition, |oak, now| {
                    oak.modify_page(now, &name, "/p", &page);
                });
            }
            Step::ForceActivate { user, nth } => {
                let name = user_name(*user);
                let partition = self.topology.partition_of(&name);
                self.with_primary(partition, |oak, now| {
                    let ids: Vec<_> = oak.rules().map(|(id, _)| id).collect();
                    if !ids.is_empty() {
                        oak.force_activate(now, &name, ids[*nth as usize % ids.len()]);
                    }
                });
            }
            Step::ForceDeactivate { user, nth } => {
                let name = user_name(*user);
                let partition = self.topology.partition_of(&name);
                self.with_primary(partition, |oak, _| {
                    let ids: Vec<_> = oak.rules().map(|(id, _)| id).collect();
                    if !ids.is_empty() {
                        oak.force_deactivate(&name, ids[*nth as usize % ids.len()]);
                    }
                });
            }
            Step::AdvanceClock { ms } => self.pump(*ms)?,
            Step::Partition { host, mode } => {
                let host = format!("cdn{}.example", host % HOSTS as u64);
                let mode = match mode % 4 {
                    0 => HostMode::Healthy,
                    1 => HostMode::Unreachable,
                    2 => HostMode::Hanging(500),
                    _ => HostMode::Flaky { num: 1, den: 2 },
                };
                self.fetcher.set_host(host, mode);
            }
            // Store compaction is automatic (snapshot_every); the
            // explicit v1 step has no cluster-wide meaning.
            Step::Snapshot => {}
            Step::Prune { idle_ms } => {
                let cutoff = Instant(self.clock.now().as_millis().saturating_sub(*idle_ms));
                self.each_partition(|world, partition| {
                    world.with_primary(partition, |oak, _| {
                        oak.prune_inactive_users(cutoff);
                    });
                });
            }
            // A v1 crash in a cluster document: crash the node the
            // survival seed picks, immediately (defined behavior for
            // hand-edited scenarios; the generator emits CrashNode).
            Step::Crash { survival_seed, .. } => {
                let node = survival_seed % self.spec.nodes as u64;
                self.crash_node(node, 0, *survival_seed);
            }
            Step::CheckHealth => {
                // Any partition the router believes has a primary must
                // actually be served by a seated one (or bounce into a
                // 503, never into a stale engine).
                self.stats.invariant_checks += u64::from(self.spec.partitions);
                for partition in 0..self.spec.partitions {
                    if let Some(idx) = self.primary_for(partition) {
                        let node = self.nodes[idx].as_ref().expect("seated primary is live");
                        if node.primary_engine(partition).is_err() {
                            return Err(self.fail(
                                "health",
                                format!(
                                    "router forwarded partition {partition} to n{idx}, \
                                     which refuses as non-primary"
                                ),
                            ));
                        }
                    }
                }
            }
            Step::CrashNode {
                node,
                ops_ahead,
                survival_seed,
            } => self.crash_node(*node, *ops_ahead, *survival_seed),
            Step::RestartNode { node } => {
                let idx = (node % self.spec.nodes as u64) as usize;
                if self.nodes[idx].is_none() {
                    self.fses[idx].restart();
                    let node = self.boot_node(idx)?;
                    self.nodes[idx] = Some(node);
                }
            }
            Step::PartitionLink { a, b } => {
                let n = self.spec.nodes as u64;
                self.net
                    .partition_link(NodeId((a % n) as u32), NodeId((b % n) as u32));
            }
            Step::HealLink { a, b } => {
                let n = self.spec.nodes as u64;
                self.net
                    .heal_link(NodeId((a % n) as u32), NodeId((b % n) as u32));
            }
            Step::HealAll => self.net.heal_all(),
        }
        Ok(())
    }

    fn crash_node(&mut self, node: u64, ops_ahead: u64, survival_seed: u64) {
        let idx = (node % self.spec.nodes as u64) as usize;
        if self.nodes[idx].is_none() {
            return;
        }
        if ops_ahead == 0 {
            self.fses[idx].crash_now();
            self.kill(idx);
        } else {
            // The disk dies mid-flight: under a later tick's journaling
            // or snapshot write, exactly like a real power cut.
            self.fses[idx].schedule_crash(ops_ahead, survival_seed);
        }
    }

    /// End-of-run: heal everything, restart every dead node, and require
    /// the cluster to converge — one primary per partition, replication
    /// drained, replicas byte-identical.
    fn final_audit(&mut self) -> Result<(), SimFailure> {
        self.net.heal_all();
        let mut waited = 0;
        loop {
            // Revive every dead node — including nodes felled *during*
            // the settle by a crash the schedule armed earlier (the
            // trigger outlives the heal step that precedes it).
            for idx in 0..self.node_count() {
                if self.nodes[idx].is_none() {
                    self.fses[idx].restart();
                    let node = self.boot_node(idx)?;
                    self.nodes[idx] = Some(node);
                }
            }
            if self.converged() {
                break;
            }
            if waited >= SETTLE_BUDGET_MS {
                return Err(self.fail(
                    "convergence",
                    format!(
                        "healed cluster did not settle within {SETTLE_BUDGET_MS} sim-ms: {}",
                        self.settle_report()
                    ),
                ));
            }
            self.pump(TICK_MS)?;
            waited += TICK_MS;
        }

        // Stale primaries must all have stepped down: exactly one
        // primary per partition among (now fully healed) live nodes.
        let started = std::time::Instant::now();
        for partition in 0..self.spec.partitions {
            self.stats.invariant_checks += 2;
            let primaries: Vec<NodeId> = self.seated_primaries(partition);
            if primaries.len() != 1 {
                return Err(self.fail(
                    "step_down",
                    format!(
                        "partition {partition} has {} primaries after healing: {:?}",
                        primaries.len(),
                        primaries
                    ),
                ));
            }
            // Replica convergence: every copy of the partition is the
            // same state, byte for byte (last_seen masked).
            let mut prints: Vec<(NodeId, String)> = Vec::new();
            for replica in self.topology.replicas(partition) {
                if let Some(node) = self.nodes[replica.0 as usize].as_ref() {
                    if let Some(engine) = node.replica_engine(partition) {
                        prints.push((replica, fingerprint(&engine)));
                    }
                }
            }
            if let Some(((first, head), rest)) = prints.split_first() {
                if let Some((diverged, _)) = rest.iter().find(|(_, p)| p != head) {
                    return Err(self.fail(
                        "replica_divergence",
                        format!(
                            "partition {partition} replicas disagree after healing: \
                             {first} and {diverged} hold different states"
                        ),
                    ));
                }
            }
        }
        self.stats.invariant_ns += started.elapsed().as_nanos() as u64;
        Ok(())
    }

    fn seated_primaries(&self, partition: u32) -> Vec<NodeId> {
        (0..self.node_count())
            .filter_map(|idx| {
                let node = self.nodes[idx].as_ref()?;
                (node.role(partition) == Some(Role::Primary)).then_some(NodeId(idx as u32))
            })
            .collect()
    }

    /// Settled: every partition has exactly one primary whose followers
    /// have acked its whole log and whose commit covers its head.
    fn converged(&self) -> bool {
        (0..self.spec.partitions).all(|partition| {
            let primaries = self.seated_primaries(partition);
            let [primary] = primaries.as_slice() else {
                return false;
            };
            let node = self.nodes[primary.0 as usize].as_ref().expect("seated");
            node.status()
                .into_iter()
                .filter(|st| st.partition == partition)
                .all(|st| st.lag == 0 && st.commit == st.head)
        })
    }

    fn settle_report(&self) -> String {
        let mut parts = Vec::new();
        for partition in 0..self.spec.partitions {
            let primaries = self.seated_primaries(partition);
            let mut detail = match primaries.as_slice() {
                [] => "no primary".to_owned(),
                [p] => format!("primary {p}"),
                many => format!("{} primaries {:?}", many.len(), many),
            };
            for replica in self.topology.replicas(partition) {
                let Some(node) = self.nodes[replica.0 as usize].as_ref() else {
                    detail.push_str(&format!("; {replica} down"));
                    continue;
                };
                for st in node.status() {
                    if st.partition == partition {
                        detail.push_str(&format!(
                            "; {replica} {:?} epoch {} head {} commit {} lag {}",
                            st.role, st.epoch, st.head, st.commit, st.lag
                        ));
                    }
                }
            }
            parts.push(format!("partition {partition}: {detail}"));
        }
        parts.join("; ")
    }
}

/// Runs one cluster scenario to completion, auditing the cluster
/// invariants throughout and forcing a heal-and-converge audit at the
/// end. The scenario must carry a [`ClusterSpec`] (`"v": 2`).
pub fn run_cluster_scenario(
    scenario: &Scenario,
    options: ClusterSimOptions,
) -> Result<RunStats, SimFailure> {
    let Some(spec) = scenario.cluster else {
        return Err(SimFailure {
            seed: scenario.seed,
            step: 0,
            invariant: "setup".into(),
            detail: "scenario has no cluster spec; use run_scenario".into(),
        });
    };
    let topology = Topology::new(
        (0..spec.nodes).map(NodeId).collect(),
        spec.partitions,
        spec.replication,
    );
    let clock = SimClock::new();
    let fetcher = Arc::new(SimFetcher::new(clock.clone(), scenario.seed ^ 0xfe7c));
    let net = SimNet::new(
        scenario.seed.wrapping_mul(0x9e6d_7f4a_c1b5_8e63),
        SimNetOptions::default(),
    );
    let node_options = NodeOptions {
        oak: OakConfig {
            log_retention: Some(LOG_RETENTION),
            ..OakConfig::default()
        },
        store: StoreOptions {
            // Replication acks assert durability; anything looser makes
            // the losslessness invariant vacuous, so the cluster world
            // pins Always regardless of the scenario's fsync field.
            fsync: FsyncPolicy::Always,
            snapshot_every_events: scenario.snapshot_every,
            rotate_segment_bytes: 4 * 1024,
            keep_snapshots: 2,
        },
        lease: LeaseConfig {
            buggy_promotion: options.buggy_promotion,
            ..LeaseConfig::default()
        },
        ..NodeOptions::default()
    };

    let mut world = ClusterWorld {
        scenario,
        spec,
        topology: topology.clone(),
        clock,
        fetcher,
        net,
        fses: (0..spec.nodes)
            .map(|n| {
                SimFs::new(
                    scenario
                        .seed
                        .wrapping_mul(0x5851_f42d_4c95_7f2d)
                        .wrapping_add(n as u64 + 1),
                    options.fs,
                )
            })
            .collect(),
        nodes: (0..spec.nodes).map(|_| None).collect(),
        node_options,
        router: Router::new(topology),
        committed_high: BTreeMap::new(),
        claims: BTreeMap::new(),
        epoch_high: BTreeMap::new(),
        stats: RunStats::default(),
        step: 0,
    };
    for idx in 0..world.node_count() {
        let node = world.boot_node(idx)?;
        world.nodes[idx] = Some(node);
    }
    // Initial boots are cold starts, not recoveries.
    world.stats.recoveries = 0;

    for (index, step) in scenario.steps.iter().enumerate() {
        world.step = index;
        world.execute(step)?;
        // Client ops take effect over the next protocol ticks.
        world.pump(TICK_MS)?;
        world.stats.steps += 1;
    }

    world.step = scenario.steps.len();
    world.final_audit()?;

    world.stats.events = world.committed_high.values().sum();
    for fs in &world.fses {
        let c = fs.counters();
        world.stats.fs.crashes += c.crashes;
        world.stats.fs.torn_files += c.torn_files;
        world.stats.fs.lost_dir_entries += c.lost_dir_entries;
        world.stats.fs.garbled_bytes += c.garbled_bytes;
        world.stats.fs.failed_ops += c.failed_ops;
    }
    world.stats.fetch = world.fetcher.faults();
    Ok(world.stats)
}

/// Dispatches a scenario to the world its shape calls for: v2 cluster
/// scenarios to [`run_cluster_scenario`], everything else to the
/// single-node [`crate::world::run_scenario`].
pub fn run_any_scenario(
    scenario: &Scenario,
    options: ClusterSimOptions,
) -> Result<RunStats, SimFailure> {
    if scenario.cluster.is_some() {
        run_cluster_scenario(scenario, options)
    } else {
        crate::world::run_scenario(scenario, options.fs)
    }
}
