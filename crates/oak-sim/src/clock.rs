//! Simulated time: a shared millisecond counter the whole world reads.
//!
//! Every component that would consult a wall clock — the service's
//! `with_clock`, rule-TTL expiry, the rate-limiter's token refill, the
//! fetcher's hang accounting — reads this counter instead, so time is
//! part of the seed-determined schedule and a hang "takes" exactly as
//! long as the scenario says, in zero real time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use oak_core::Instant;

/// A shared, manually advanced millisecond clock.
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    now_ms: Arc<AtomicU64>,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// The current simulated instant.
    pub fn now(&self) -> Instant {
        Instant(self.now_ms.load(Ordering::SeqCst))
    }

    /// Advances time by `ms`. Time never rewinds.
    pub fn advance(&self, ms: u64) {
        self.now_ms.fetch_add(ms, Ordering::SeqCst);
    }

    /// A closure suitable for [`oak_server::OakService::with_clock`].
    pub fn reader(&self) -> impl Fn() -> Instant + Send + Sync + 'static {
        let clock = self.clone();
        move || clock.now()
    }
}

#[cfg(test)]
mod tests {
    use super::SimClock;

    #[test]
    fn clones_share_the_same_time() {
        let clock = SimClock::new();
        let view = clock.clone();
        clock.advance(250);
        assert_eq!(view.now().as_millis(), 250);
        view.advance(50);
        assert_eq!(clock.now().as_millis(), 300);
    }
}
