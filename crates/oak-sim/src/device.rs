//! Device-confound invariant: the cohort detector never blames a
//! healthy server for slowness the client's own device caused.
//!
//! Each seeded run builds a corpus with **zero network impairments** —
//! no persistent regional degradation, no transient congestion windows
//! — but heavy ad chains and a mixed desktop/mobile client population.
//! Every millisecond of extra latency in these page loads is therefore
//! either a stable property of the serving path (distance, server
//! quality) or the client's own silicon and radio. A detector flag on a
//! *healthy* server — one that is neither Poor-quality nor single-homed
//! far from the reporting client — can only be the device confound
//! leaking through, which is exactly what
//! [`oak_core::detect::DetectorPolicy::Cohort`] exists to stop.
//!
//! The sweep drives every report through a cohort-policy engine and
//! fails the moment any flag lands outside the truly-bad set. CI runs
//! `oak-sim --device-invariant --seeds N`, so the guarantee is checked
//! across many corpus draws, not one lucky seed.

use oak_client::{Browser, BrowserConfig, Universe};
use oak_core::detect::DetectorPolicy;
use oak_core::engine::{Oak, OakConfig};
use oak_core::Instant;
use oak_net::{DeviceProfile, SimTime};
use oak_webgen::{Corpus, CorpusConfig};

/// Counters from one clean device-invariant run.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeviceRunStats {
    /// Page loads driven through the engine.
    pub loads: u64,
    /// Cohort flags that landed on genuinely bad servers (allowed).
    pub flags_on_bad: u64,
    /// Individual flag-vs-ground-truth checks performed.
    pub checks: u64,
}

/// Runs one seeded device-confound scenario; `Err` carries a
/// human-readable description of the blamed healthy server.
pub fn run_device_invariant(seed: u64) -> Result<DeviceRunStats, String> {
    let corpus = Corpus::generate(&CorpusConfig {
        sites: 40,
        providers: 40,
        seed: seed.wrapping_mul(0x9E37_79B9).wrapping_add(0xD0D5),
        // The whole point: a world with no network faults at all.
        persistent_impairment_rate: 0.0,
        transient_windows_per_week: 0.0,
        // And the page shape that maximizes the device confound.
        ad_heavy_fraction: 1.0,
        ad_chain_depth: 3 + (seed % 3) as usize,
    });
    debug_assert!(corpus.world.impairments().is_empty());

    let universe = Universe::new(&corpus);
    let oak = Oak::new(OakConfig {
        detector_policy: DetectorPolicy::Cohort,
        ..OakConfig::default()
    });

    // Mixed population, rotated by seed so different sweeps pin
    // different devices to different vantage points.
    let mut browsers: Vec<Browser> = corpus
        .clients
        .iter()
        .enumerate()
        .map(|(i, &client)| {
            let device = DeviceProfile::ALL[(i + seed as usize) % DeviceProfile::ALL.len()];
            Browser::new(
                client,
                format!("u-{i}"),
                BrowserConfig {
                    device: Some(device),
                    ..BrowserConfig::default()
                },
            )
        })
        .collect();

    let mut stats = DeviceRunStats::default();
    let rounds: u64 = 10;
    let round_spacing_min = 14 * 24 * 60 / rounds;
    for round in 0..rounds {
        for (ci, browser) in browsers.iter_mut().enumerate() {
            let site = &corpus.sites[(round as usize * 3 + ci) % corpus.sites.len()];
            let t = SimTime::from_minutes(round * round_spacing_min + ci as u64 * 11);
            let load = browser.load_page(&universe, site, &site.html, &[], t);
            if load.report.entries.is_empty() {
                continue;
            }
            stats.loads += 1;
            let outcome = oak.ingest_report(Instant(t.as_millis()), &load.report, &universe);
            for violation in &outcome.violations {
                stats.checks += 1;
                if healthy_for(&corpus, &violation.ip, browser.client) {
                    let device =
                        DeviceProfile::ALL[(ci + seed as usize) % DeviceProfile::ALL.len()];
                    return Err(format!(
                        "seed {seed}: cohort detector blamed healthy server {} \
                         (device {}, site {}, round {round}) in an impairment-free \
                         world — device-induced slowness leaked through",
                        violation.ip, device.label, site.host,
                    ));
                }
                stats.flags_on_bad += 1;
            }
        }
    }
    Ok(stats)
}

/// Whether `ip` is a healthy serving path for `client` in a world with
/// no impairments: not Poor quality, and not single-homed in a distant
/// region. Mirrors the ground truth `bench_detector` scores against.
fn healthy_for(corpus: &Corpus, ip: &str, client: oak_net::ClientId) -> bool {
    let Some(addr) = oak_net::IpAddr::parse(ip) else {
        return true;
    };
    let Some(server) = corpus.world.server_at(addr) else {
        return true;
    };
    let distant = !server.distributed && server.region != corpus.world.client(client).region;
    server.quality != oak_net::Quality::Poor && !distant
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The CI-swept invariant, pinned at one seed so `cargo test` keeps
    /// covering it even where the sweep binary is not run.
    #[test]
    fn cohort_never_blames_healthy_servers_for_device_slowness() {
        let stats = run_device_invariant(7).expect("invariant holds");
        assert!(stats.loads > 100, "scenario drove {} loads", stats.loads);
    }
}
