//! `SimFs`: an in-memory [`StorageBackend`] with *pessimal* POSIX crash
//! semantics.
//!
//! The durability contract the store relies on is narrow — and `SimFs`
//! models exactly its failure modes:
//!
//! - **Torn writes.** Bytes appended since the last `sync_data` survive a
//!   crash only as a seed-chosen prefix, occasionally with one byte
//!   garbled inside it (a sector written out of order).
//! - **Lost directory entries.** Creations, renames, and deletions are
//!   volatile until `sync_dir` on the parent. At a crash, every pending
//!   namespace change survives *independently* with probability ½ — so a
//!   rename can vanish while the deletions that followed it persist,
//!   which is precisely the orphaned-rename schedule that loses
//!   acknowledged data when the store forgets the directory fsync.
//! - **Crash points everywhere.** An operation-counter trigger
//!   ([`SimFs::schedule_crash`]) fails the Nth mutating operation and
//!   every one after it, so a seed range sweeps the crash point across
//!   every write/rename/fsync boundary the store crosses.
//!
//! After a crash, [`SimFs::restart`] plays the role of the machine
//! coming back up: it materializes one possible surviving disk state
//! (using the crash's own survival seed) and the next
//! [`oak_store::recover_with`] sees only that.
//!
//! [`SimFsOptions::ignore_dir_sync`] turns `sync_dir` into a no-op —
//! reintroducing the pre-fix store bug — so the regression suite can
//! demonstrate that the harness catches it.

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

use oak_store::{StorageBackend, StorageFile};

use crate::rng::SimRng;

/// Knobs for [`SimFs`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SimFsOptions {
    /// Make `sync_dir` a no-op, reintroducing the
    /// missing-parent-directory-fsync bug the store used to have. Every
    /// namespace change then stays volatile until a crash's coin flips.
    pub ignore_dir_sync: bool,
}

/// Fault counts accumulated across a `SimFs`'s lifetime.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultCounters {
    /// Crashes materialized by [`SimFs::restart`].
    pub crashes: u64,
    /// Files that lost part of an unsynced tail at a crash.
    pub torn_files: u64,
    /// Pending namespace changes (creates/renames/removals) that did not
    /// survive a crash.
    pub lost_dir_entries: u64,
    /// Bytes garbled inside surviving unsynced tails.
    pub garbled_bytes: u64,
    /// Operations failed by the crash trigger (the crashing op and every
    /// op until restart).
    pub failed_ops: u64,
}

#[derive(Debug)]
struct Inode {
    data: Vec<u8>,
    synced_len: usize,
}

#[derive(Debug)]
struct State {
    /// Live namespace: what a running process sees (page cache included).
    volatile: BTreeMap<PathBuf, u64>,
    /// Durable namespace: entries a crash is guaranteed to preserve.
    durable: BTreeMap<PathBuf, u64>,
    dirs: Vec<PathBuf>,
    inodes: BTreeMap<u64, Inode>,
    next_ino: u64,
    ops: u64,
    crash_at: Option<u64>,
    /// Survival seed of the scheduled crash; falls back to a fork of the
    /// filesystem's own stream.
    crash_seed: Option<u64>,
    crashed: bool,
    /// Bumped at every restart; stale file handles from a previous life
    /// fail rather than scribble on the reborn disk.
    epoch: u64,
    rng: SimRng,
    counters: FaultCounters,
}

/// The simulated filesystem. Clones share state (it is one disk).
#[derive(Clone)]
pub struct SimFs {
    state: Arc<Mutex<State>>,
    options: SimFsOptions,
}

impl fmt::Debug for SimFs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimFs")
            .field("options", &self.options)
            .finish_non_exhaustive()
    }
}

fn crash_error() -> io::Error {
    io::Error::other("simulated crash: machine is down")
}

impl SimFs {
    /// An empty disk whose crash coin flips draw from `seed`.
    pub fn new(seed: u64, options: SimFsOptions) -> SimFs {
        SimFs {
            state: Arc::new(Mutex::new(State {
                volatile: BTreeMap::new(),
                durable: BTreeMap::new(),
                dirs: Vec::new(),
                inodes: BTreeMap::new(),
                next_ino: 1,
                ops: 0,
                crash_at: None,
                crash_seed: None,
                crashed: false,
                epoch: 0,
                rng: SimRng::new(seed),
                counters: FaultCounters::default(),
            })),
            options,
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().expect("simfs state")
    }

    /// Mutating operations performed so far (the crash-trigger clock).
    pub fn ops(&self) -> u64 {
        self.lock().ops
    }

    /// Whether the machine is currently down.
    pub fn crashed(&self) -> bool {
        self.lock().crashed
    }

    /// Fault counts so far.
    pub fn counters(&self) -> FaultCounters {
        self.lock().counters
    }

    /// Arms the crash trigger: the `ops_ahead`-th mutating operation from
    /// now fails, and so does everything after it until [`SimFs::restart`].
    /// `survival_seed` drives that crash's what-survives coin flips, so a
    /// scenario step owns its crash outcome regardless of history.
    pub fn schedule_crash(&self, ops_ahead: u64, survival_seed: u64) {
        let mut state = self.lock();
        state.crash_at = Some(state.ops.saturating_add(ops_ahead));
        state.crash_seed = Some(survival_seed);
    }

    /// Drops the machine immediately.
    pub fn crash_now(&self) {
        let mut state = self.lock();
        state.crashed = true;
        state.crash_at = None;
    }

    /// Whether a scheduled crash has not fired yet.
    pub fn crash_pending(&self) -> bool {
        let state = self.lock();
        !state.crashed && state.crash_at.is_some()
    }

    /// Brings the machine back up, materializing one possible surviving
    /// disk state: unsynced file tails keep a seed-chosen prefix (rarely
    /// with a garbled byte), and each pending namespace change survives
    /// independently with probability ½.
    pub fn restart(&self) {
        let mut state = self.lock();
        let state = &mut *state;
        let mut rng = match state.crash_seed.take() {
            Some(seed) => SimRng::new(seed),
            None => state.rng.fork(),
        };
        state.counters.crashes += 1;

        // Namespace: start from the durable view, then flip a coin per
        // pending difference. Each change survives or not independently —
        // the kernel wrote back directory blocks in whatever order it
        // pleased.
        let mut survived = state.durable.clone();
        let mut paths: Vec<PathBuf> = state.volatile.keys().cloned().collect();
        for path in state.durable.keys() {
            if !state.volatile.contains_key(path) {
                paths.push(path.clone());
            }
        }
        paths.sort();
        paths.dedup();
        for path in paths {
            let wanted = state.volatile.get(&path);
            if state.durable.get(&path) == wanted {
                continue;
            }
            if rng.chance(1, 2) {
                match wanted {
                    Some(ino) => {
                        survived.insert(path, *ino);
                    }
                    None => {
                        survived.remove(&path);
                    }
                }
            } else {
                state.counters.lost_dir_entries += 1;
            }
        }

        // File contents: synced bytes survive; unsynced tails keep a
        // seed-chosen prefix, occasionally with one byte flipped.
        let mut inodes = BTreeMap::new();
        for ino in survived.values() {
            if inodes.contains_key(ino) {
                continue;
            }
            let Some(inode) = state.inodes.get(ino) else {
                continue;
            };
            let unsynced = inode.data.len() - inode.synced_len;
            let keep = inode.synced_len + rng.below(unsynced as u64 + 1) as usize;
            let mut data = inode.data[..keep].to_vec();
            if keep < inode.data.len() {
                state.counters.torn_files += 1;
            }
            if keep > inode.synced_len && rng.chance(1, 8) {
                let at = inode.synced_len + rng.below((keep - inode.synced_len) as u64) as usize;
                data[at] ^= 0x40;
                state.counters.garbled_bytes += 1;
            }
            inodes.insert(
                *ino,
                Inode {
                    synced_len: data.len(),
                    data,
                },
            );
        }

        state.volatile = survived.clone();
        state.durable = survived;
        state.inodes = inodes;
        state.crashed = false;
        state.crash_at = None;
        state.epoch += 1;
    }

    /// Counts one mutating operation, firing the crash trigger when due.
    fn tick(state: &mut State) -> io::Result<()> {
        if state.crashed {
            state.counters.failed_ops += 1;
            return Err(crash_error());
        }
        state.ops += 1;
        if let Some(at) = state.crash_at {
            if state.ops >= at {
                state.crashed = true;
                state.crash_at = None;
                state.counters.failed_ops += 1;
                return Err(crash_error());
            }
        }
        Ok(())
    }

    fn check_up(state: &State) -> io::Result<()> {
        if state.crashed {
            return Err(crash_error());
        }
        Ok(())
    }
}

/// An open handle on a `SimFs` file.
struct SimFile {
    state: Arc<Mutex<State>>,
    ino: u64,
    epoch: u64,
}

impl fmt::Debug for SimFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimFile").field("ino", &self.ino).finish()
    }
}

impl SimFile {
    fn with_inode(&self, apply: impl FnOnce(&mut Inode)) -> io::Result<()> {
        let mut state = self.state.lock().expect("simfs state");
        if state.epoch != self.epoch {
            return Err(io::Error::other("stale file handle from before a crash"));
        }
        SimFs::tick(&mut state)?;
        match state.inodes.get_mut(&self.ino) {
            Some(inode) => {
                apply(inode);
                Ok(())
            }
            None => Err(io::Error::other("file was lost")),
        }
    }
}

impl StorageFile for SimFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.with_inode(|inode| inode.data.extend_from_slice(buf))
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.with_inode(|inode| inode.synced_len = inode.data.len())
    }
}

impl StorageBackend for SimFs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        let mut state = self.lock();
        SimFs::tick(&mut state)?;
        let dir = dir.to_path_buf();
        // Directories themselves always survive crashes: the store makes
        // one directory per lifetime, and modeling its loss would only
        // retest `create_dir_all`.
        if !state.dirs.contains(&dir) {
            state.dirs.push(dir);
        }
        Ok(())
    }

    fn dir_exists(&self, dir: &Path) -> bool {
        let state = self.lock();
        !state.crashed && state.dirs.iter().any(|d| d == dir)
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>> {
        let state = self.lock();
        SimFs::check_up(&state)?;
        let mut names = Vec::new();
        for path in state.volatile.keys() {
            if path.parent() == Some(dir) {
                if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                    names.push(name.to_owned());
                }
            }
        }
        Ok(names)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let state = self.lock();
        SimFs::check_up(&state)?;
        let ino = state
            .volatile
            .get(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        Ok(state.inodes[ino].data.clone())
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let mut state = self.lock();
        SimFs::tick(&mut state)?;
        let ino = state.next_ino;
        state.next_ino += 1;
        state.inodes.insert(
            ino,
            Inode {
                data: Vec::new(),
                synced_len: 0,
            },
        );
        state.volatile.insert(path.to_path_buf(), ino);
        Ok(Box::new(SimFile {
            state: Arc::clone(&self.state),
            ino,
            epoch: state.epoch,
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut state = self.lock();
        SimFs::tick(&mut state)?;
        let ino = state
            .volatile
            .remove(from)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "rename source missing"))?;
        state.volatile.insert(to.to_path_buf(), ino);
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut state = self.lock();
        SimFs::tick(&mut state)?;
        state
            .volatile
            .remove(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        let mut state = self.lock();
        SimFs::tick(&mut state)?;
        if self.options.ignore_dir_sync {
            return Ok(()); // the reintroduced bug: the fsync never lands
        }
        // Promote every pending change under `dir` to the durable view.
        let state = &mut *state;
        let in_dir = |path: &Path| path.parent() == Some(dir);
        state
            .durable
            .retain(|path, _| !in_dir(path) || state.volatile.contains_key(path));
        for (path, ino) in &state.volatile {
            if in_dir(path) {
                state.durable.insert(path.clone(), *ino);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use std::path::{Path, PathBuf};

    use oak_store::StorageBackend;

    use super::{SimFs, SimFsOptions};

    fn dir() -> PathBuf {
        PathBuf::from("/sim")
    }

    fn write_file(fs: &SimFs, path: &Path, bytes: &[u8], sync: bool) {
        let mut f = fs.create(path).unwrap();
        f.write_all(bytes).unwrap();
        if sync {
            f.sync_data().unwrap();
        }
    }

    #[test]
    fn synced_data_and_synced_entries_survive_any_crash() {
        for seed in 0..20 {
            let fs = SimFs::new(seed, SimFsOptions::default());
            fs.create_dir_all(&dir()).unwrap();
            write_file(&fs, &dir().join("a"), b"hello", true);
            fs.sync_dir(&dir()).unwrap();
            fs.crash_now();
            fs.restart();
            assert_eq!(fs.read(&dir().join("a")).unwrap(), b"hello");
        }
    }

    #[test]
    fn unsynced_tail_survives_only_as_a_prefix() {
        let mut torn = false;
        for seed in 0..40 {
            let fs = SimFs::new(seed, SimFsOptions::default());
            fs.create_dir_all(&dir()).unwrap();
            let mut f = fs.create(&dir().join("a")).unwrap();
            f.write_all(b"durable").unwrap();
            f.sync_data().unwrap();
            f.write_all(b"-volatile").unwrap();
            fs.sync_dir(&dir()).unwrap();
            fs.crash_now();
            fs.restart();
            let data = fs.read(&dir().join("a")).unwrap();
            assert!(data.len() >= b"durable".len(), "synced bytes are sacred");
            if data.len() < b"durable-volatile".len() {
                torn = true;
            }
        }
        assert!(torn, "some seed must tear the tail");
    }

    #[test]
    fn unsynced_rename_can_be_lost_while_deletion_persists() {
        // The orphaned-rename schedule: tmp -> final rename plus a
        // deletion of the old file, crash before sync_dir. Some seed must
        // lose the rename but keep the deletion — the dangerous corner.
        let mut orphaned = false;
        for seed in 0..40 {
            let fs = SimFs::new(seed, SimFsOptions::default());
            fs.create_dir_all(&dir()).unwrap();
            write_file(&fs, &dir().join("old"), b"old", true);
            fs.sync_dir(&dir()).unwrap();
            write_file(&fs, &dir().join("new.tmp"), b"new", true);
            fs.rename(&dir().join("new.tmp"), &dir().join("new"))
                .unwrap();
            fs.remove_file(&dir().join("old")).unwrap();
            fs.crash_now();
            fs.restart();
            let names = fs.list_dir(&dir()).unwrap();
            if !names.iter().any(|n| n == "new") && !names.iter().any(|n| n == "old") {
                orphaned = true;
            }
        }
        assert!(orphaned, "some seed must orphan the rename");
    }

    #[test]
    fn sync_dir_makes_the_rename_durable() {
        for seed in 0..40 {
            let fs = SimFs::new(seed, SimFsOptions::default());
            fs.create_dir_all(&dir()).unwrap();
            write_file(&fs, &dir().join("new.tmp"), b"new", true);
            fs.rename(&dir().join("new.tmp"), &dir().join("new"))
                .unwrap();
            fs.sync_dir(&dir()).unwrap();
            fs.crash_now();
            fs.restart();
            assert_eq!(fs.read(&dir().join("new")).unwrap(), b"new");
        }
    }

    #[test]
    fn scheduled_crash_fails_the_nth_op_and_everything_after() {
        let fs = SimFs::new(1, SimFsOptions::default());
        fs.create_dir_all(&dir()).unwrap();
        fs.schedule_crash(2, 99);
        assert!(fs.create(&dir().join("a")).is_ok(), "one op to spare");
        assert!(fs.create(&dir().join("c")).is_err(), "the 2nd op crashes");
        assert!(fs.crashed());
        assert!(fs.create(&dir().join("b")).is_err());
        assert!(fs.read(&dir().join("a")).is_err(), "reads fail while down");
        fs.restart();
        assert!(!fs.crashed());
        assert!(fs.create(&dir().join("b")).is_ok());
    }

    #[test]
    fn stale_handles_from_before_a_crash_cannot_write() {
        let fs = SimFs::new(3, SimFsOptions::default());
        fs.create_dir_all(&dir()).unwrap();
        let mut f = fs.create(&dir().join("a")).unwrap();
        f.write_all(b"x").unwrap();
        fs.crash_now();
        fs.restart();
        assert!(f.write_all(b"y").is_err());
        assert!(f.sync_data().is_err());
    }

    #[test]
    fn ignore_dir_sync_reintroduces_the_lost_entry_bug() {
        let mut lost = false;
        for seed in 0..40 {
            let fs = SimFs::new(
                seed,
                SimFsOptions {
                    ignore_dir_sync: true,
                },
            );
            fs.create_dir_all(&dir()).unwrap();
            write_file(&fs, &dir().join("a"), b"x", true);
            fs.sync_dir(&dir()).unwrap(); // no-op under the bug
            fs.crash_now();
            fs.restart();
            if fs.read(&dir().join("a")).is_err() {
                lost = true;
            }
        }
        assert!(lost, "the bug must be able to lose a synced file's name");
    }

    #[test]
    fn restart_is_deterministic_in_the_survival_seed() {
        let run = |seed: u64| {
            let fs = SimFs::new(7, SimFsOptions::default());
            fs.create_dir_all(&dir()).unwrap();
            for i in 0..6 {
                write_file(&fs, &dir().join(format!("f{i}")), b"data", i % 2 == 0);
            }
            fs.schedule_crash(u64::MAX, seed); // pin the survival seed
            fs.crash_now();
            fs.restart();
            let mut names = fs.list_dir(&dir()).unwrap();
            names.sort();
            names
        };
        assert_eq!(run(123), run(123));
    }
}
