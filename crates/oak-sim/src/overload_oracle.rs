//! The overload oracle: an independent reference model of the
//! production controller's state machine, plus the deterministic
//! pressure schedule that drives both.
//!
//! The single-node world arms a *driven* `oak_server::OverloadController`
//! (live sampling disabled) and feeds it one [`PressureSample`] per
//! scenario step, derived purely from `(seed, step index)` — so a run's
//! entire overload trajectory is replayable from the seed alone. This
//! module holds the other half of the check: [`RefOverload`] re-derives
//! the expected state from the same samples using its own arithmetic
//! (integer threshold comparisons, not the controller's float ratios),
//! and the world asserts the two machines agree after every step. A bug
//! in either implementation — a flipped hysteresis comparison, a
//! severity band off by one — shows up as a divergence with a seed that
//! reproduces it.
//!
//! The reference deliberately models only the queue-depth signal, which
//! is the only one the schedule exercises: driving one signal keeps the
//! expected-state derivation simple enough to audit by eye, and the
//! controller's signal fusion (max across ratios) is covered by its own
//! unit tests.

use oak_server::PressureSample;

/// Mirror of the default policy's queue thresholds. Constants, not a
/// policy import: the reference must not share the controller's data
/// any more than its code.
const QUEUE_BROWNOUT: u64 = 16;
const QUEUE_SHED: u64 = 64;
const COOLDOWN_SAMPLES: u32 = 5;

/// The deterministic per-step pressure schedule: a splitmix64 hash of
/// `(seed, step)` mapped onto bands that spend roughly half the run
/// calm, a quarter in the brownout band, and a quarter shedding at
/// varying severity — enough dwell time in each state for hysteresis
/// and the severity ladder to be exercised, with transitions at
/// seed-determined points.
pub fn pressure_of(seed: u64, step: usize) -> PressureSample {
    let mut x = seed ^ (step as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    let queue_depth = match x % 8 {
        // Calm: strictly below the brownout threshold.
        0..=3 => (x >> 3) % QUEUE_BROWNOUT,
        // Brownout band: [16, 64).
        4 | 5 => QUEUE_BROWNOUT + (x >> 3) % (QUEUE_SHED - QUEUE_BROWNOUT),
        // Shedding at 1×: [64, 96) — severity 1.
        6 => QUEUE_SHED + (x >> 3) % (QUEUE_SHED / 2),
        // Deep shedding: [96, 160) — severities 2 and 3.
        _ => QUEUE_SHED + QUEUE_SHED / 2 + (x >> 3) % QUEUE_SHED,
    };
    PressureSample {
        queue_depth,
        ..PressureSample::default()
    }
}

/// The independent reference state machine. States are plain integers
/// (0 nominal, 1 brownout, 2 shedding) and the severity bands are
/// integer inequalities, so agreement with the controller is a real
/// cross-check rather than the same float arithmetic twice.
#[derive(Debug)]
pub struct RefOverload {
    state: u8,
    severity: u8,
    calm_streak: u32,
}

impl RefOverload {
    pub fn new() -> RefOverload {
        RefOverload {
            state: 0,
            severity: 0,
            calm_streak: 0,
        }
    }

    /// Expected state after one sample: escalate immediately to the
    /// demanded state, de-escalate one level per `COOLDOWN_SAMPLES`
    /// consecutive samples demanding strictly less.
    pub fn observe(&mut self, sample: &PressureSample) {
        let q = sample.queue_depth;
        let (demanded, demanded_severity) = if q >= QUEUE_SHED {
            // r >= 1.5 ⇔ 2q >= 3·shed; r >= 2 ⇔ q >= 2·shed.
            let severity = if q >= 2 * QUEUE_SHED {
                3
            } else if 2 * q >= 3 * QUEUE_SHED {
                2
            } else {
                1
            };
            (2, severity)
        } else if q >= QUEUE_BROWNOUT {
            (1, 0)
        } else {
            (0, 0)
        };
        if demanded >= self.state {
            self.calm_streak = 0;
            self.state = demanded;
        } else {
            self.calm_streak += 1;
            if self.calm_streak >= COOLDOWN_SAMPLES {
                self.calm_streak = 0;
                self.state -= 1;
            }
        }
        self.severity = if self.state == 2 {
            demanded_severity.max(1)
        } else {
            0
        };
    }

    /// Expected controller state (0 nominal, 1 brownout, 2 shedding).
    pub fn state(&self) -> u8 {
        self.state
    }

    /// Expected shed severity (0 outside shedding).
    pub fn severity(&self) -> u8 {
        self.severity
    }

    /// Whether a report ingest must be refused right now.
    pub fn sheds_reports(&self) -> bool {
        self.state == 2 && self.severity >= 3
    }

    /// Whether a page serve must be refused right now.
    pub fn sheds_pages(&self) -> bool {
        self.state == 2
    }

    /// Whether the node is expected to report itself degraded.
    pub fn degraded(&self) -> bool {
        self.state >= 1
    }
}

impl Default for RefOverload {
    fn default() -> RefOverload {
        RefOverload::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_visits_every_band() {
        let mut calm = 0;
        let mut brown = 0;
        let mut shed = 0;
        let mut deep = 0;
        for step in 0..1_000 {
            let q = pressure_of(42, step).queue_depth;
            match q {
                0..=15 => calm += 1,
                16..=63 => brown += 1,
                64..=95 => shed += 1,
                _ => deep += 1,
            }
        }
        assert!(calm > 0 && brown > 0 && shed > 0 && deep > 0);
    }

    #[test]
    fn reference_walks_the_hysteresis() {
        let mut reference = RefOverload::new();
        reference.observe(&PressureSample {
            queue_depth: 128,
            ..PressureSample::default()
        });
        assert_eq!(reference.state(), 2);
        assert_eq!(reference.severity(), 3);
        for _ in 0..COOLDOWN_SAMPLES {
            reference.observe(&PressureSample::default());
        }
        assert_eq!(reference.state(), 1);
        for _ in 0..COOLDOWN_SAMPLES {
            reference.observe(&PressureSample::default());
        }
        assert_eq!(reference.state(), 0);
    }
}
