//! The simulation's only randomness source.
//!
//! One [`SimRng`] seeds everything a scenario does — workload shape,
//! fault schedule, crash-survival coin flips — so a seed is a complete,
//! replayable description of a run. The generator is splitmix64: tiny,
//! full-period over its 64-bit state, and identical on every platform.

/// A seeded splitmix64 stream.
#[derive(Clone, Debug)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// A stream over `seed`. Equal seeds produce equal streams, forever.
    pub fn new(seed: u64) -> SimRng {
        SimRng {
            // Decorrelate small consecutive seeds (0, 1, 2, …) so CI seed
            // ranges don't explore near-identical scenarios.
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; 0 when `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        self.next_u64() % bound
    }

    /// Uniform in `[lo, hi)` (empty ranges collapse to `lo`).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi.saturating_sub(lo))
    }

    /// `true` with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den.max(1)) < num
    }

    /// A child stream, decorrelated from this one. Lets a scenario hand
    /// independent randomness to subsystems (workload vs. crash
    /// survival) without their draws interleaving.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::SimRng;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn nearby_seeds_diverge_immediately() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bounds() {
        let mut rng = SimRng::new(7);
        for _ in 0..1000 {
            assert!(rng.below(10) < 10);
        }
        assert_eq!(rng.below(0), 0);
    }
}
