//! Failure minimization: shrink a failing scenario to the smallest step
//! list that still reproduces the violation.
//!
//! Classic delta debugging (ddmin): partition the step list into chunks,
//! try deleting each chunk, keep any deletion that still fails, and
//! refine the partition until single steps can't be removed. Every
//! candidate is a full deterministic re-run, so the result is not a
//! heuristic — the minimized scenario *provably* still violates an
//! invariant, and its JSON form replays anywhere.

use crate::fs::SimFsOptions;
use crate::scenario::Scenario;
use crate::world::{run_scenario, SimFailure};

/// A minimization result.
#[derive(Clone, Debug)]
pub struct Minimized {
    /// The smallest failing scenario found.
    pub scenario: Scenario,
    /// The violation the minimized scenario reproduces.
    pub failure: SimFailure,
    /// Steps the original scenario had.
    pub original_steps: usize,
    /// Re-runs the search spent.
    pub runs: usize,
}

/// Upper bound on minimization re-runs; ddmin converges long before
/// this on the step counts scenarios have.
const MAX_RUNS: usize = 600;

/// Shrinks `scenario` (which must fail under `fs_options`) to a minimal
/// failing step list. Returns `None` if the scenario does not fail.
pub fn minimize(scenario: &Scenario, fs_options: SimFsOptions) -> Option<Minimized> {
    minimize_with(scenario, &|candidate| {
        run_scenario(candidate, fs_options).err()
    })
}

/// [`minimize`] over any runner — the cluster world minimizes through
/// the same ddmin by passing its own `run` (which carries its extra
/// options in the closure). `run` returns `Some(failure)` when the
/// candidate still fails, `None` when it passes.
pub fn minimize_with(
    scenario: &Scenario,
    run: &dyn Fn(&Scenario) -> Option<SimFailure>,
) -> Option<Minimized> {
    let mut runs = 1;
    let mut failure = run(scenario)?;
    let original_steps = scenario.steps.len();
    let mut current = scenario.clone();

    let mut chunks = 2usize;
    while current.steps.len() > 1 && runs < MAX_RUNS {
        let len = current.steps.len();
        let chunk = len.div_ceil(chunks.min(len));
        let mut reduced = false;
        let mut start = 0;
        while start < current.steps.len() && runs < MAX_RUNS {
            let end = (start + chunk).min(current.steps.len());
            let mut candidate = current.clone();
            candidate.steps.drain(start..end);
            runs += 1;
            match run(&candidate) {
                Some(found) => {
                    // Still fails without this chunk: drop it for good.
                    current = candidate;
                    failure = found;
                    reduced = true;
                    // `start` now points at the steps that followed the
                    // deleted chunk; don't advance.
                }
                None => start = end,
            }
        }
        if reduced {
            chunks = 2.max(chunks - 1);
        } else if chunk <= 1 {
            break; // single steps, none removable: minimal
        } else {
            chunks = (chunks * 2).min(current.steps.len());
        }
    }

    Some(Minimized {
        scenario: current,
        failure,
        original_steps,
        runs,
    })
}
