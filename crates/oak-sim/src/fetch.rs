//! Simulated CDN hosts: a [`ScriptFetcher`] whose per-host behavior —
//! healthy, unreachable, hanging, flaky — is part of the fault plan.
//!
//! A hang costs no real time: the fetcher advances the shared
//! [`SimClock`] by the configured stall and returns `None`, exactly what
//! a deadline-bounded fetch against a black-holed host looks like from
//! the engine's side. Healthy fetches return a body that is a pure
//! function of the URL, so two fetches of one script always agree.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use oak_core::matching::ScriptFetcher;

use crate::clock::SimClock;
use crate::rng::SimRng;

/// How one simulated host answers fetches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostMode {
    /// Answers every fetch with the script body.
    Healthy,
    /// Connection refused: every fetch fails immediately.
    Unreachable,
    /// Black hole: every fetch stalls for this many simulated
    /// milliseconds, then fails.
    Hanging(u64),
    /// Answers with probability `num`/`den`, seeded per-fetch.
    Flaky { num: u64, den: u64 },
}

/// Fetch outcomes, for the bench and run summaries.
#[derive(Clone, Copy, Debug, Default)]
pub struct FetchFaults {
    /// Fetches answered with a body.
    pub served: u64,
    /// Fetches refused (unreachable or a flaky miss).
    pub failed: u64,
    /// Fetches that hung until their simulated deadline.
    pub hung: u64,
}

/// The simulated CDN: per-host modes over a shared clock.
#[derive(Debug)]
pub struct SimFetcher {
    clock: SimClock,
    modes: Mutex<(HashMap<String, HostMode>, SimRng)>,
    served: AtomicU64,
    failed: AtomicU64,
    hung: AtomicU64,
}

impl SimFetcher {
    /// Every host healthy; flaky coin flips draw from `seed`.
    pub fn new(clock: SimClock, seed: u64) -> SimFetcher {
        SimFetcher {
            clock,
            modes: Mutex::new((HashMap::new(), SimRng::new(seed))),
            served: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            hung: AtomicU64::new(0),
        }
    }

    /// Sets `host`'s behavior for subsequent fetches.
    pub fn set_host(&self, host: impl Into<String>, mode: HostMode) {
        self.modes
            .lock()
            .expect("fetch modes")
            .0
            .insert(host.into(), mode);
    }

    /// Outcome counts so far.
    pub fn faults(&self) -> FetchFaults {
        FetchFaults {
            served: self.served.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            hung: self.hung.load(Ordering::Relaxed),
        }
    }

    /// The deterministic body every healthy fetch of `url` returns.
    pub fn body_for(url: &str) -> String {
        format!("// sim script at {url}\n")
    }
}

/// The `host[:port]` part of an http(s) URL, or the whole string.
fn host_of(url: &str) -> &str {
    let rest = url
        .strip_prefix("http://")
        .or_else(|| url.strip_prefix("https://"))
        .unwrap_or(url);
    rest.split('/').next().unwrap_or(rest)
}

impl ScriptFetcher for SimFetcher {
    fn fetch_script(&self, url: &str) -> Option<String> {
        let mode = {
            let mut modes = self.modes.lock().expect("fetch modes");
            match modes.0.get(host_of(url)).copied() {
                Some(HostMode::Flaky { num, den }) => {
                    // Resolve the coin here so the lock isn't held while
                    // counting; the draw order is deterministic because
                    // the simulation calls fetches in schedule order.
                    let hit = modes.1.chance(num, den);
                    if hit {
                        Some(HostMode::Healthy)
                    } else {
                        Some(HostMode::Unreachable)
                    }
                }
                other => other,
            }
        };
        match mode.unwrap_or(HostMode::Healthy) {
            HostMode::Healthy => {
                self.served.fetch_add(1, Ordering::Relaxed);
                Some(SimFetcher::body_for(url))
            }
            HostMode::Unreachable => {
                self.failed.fetch_add(1, Ordering::Relaxed);
                None
            }
            HostMode::Hanging(stall_ms) => {
                self.clock.advance(stall_ms);
                self.hung.fetch_add(1, Ordering::Relaxed);
                None
            }
            HostMode::Flaky { .. } => unreachable!("resolved above"),
        }
    }
}

#[cfg(test)]
mod tests {
    use oak_core::matching::ScriptFetcher;

    use super::{host_of, HostMode, SimFetcher};
    use crate::clock::SimClock;

    #[test]
    fn hangs_advance_simulated_time_only() {
        let clock = SimClock::new();
        let fetcher = SimFetcher::new(clock.clone(), 1);
        fetcher.set_host("slow.example", HostMode::Hanging(2_500));
        assert!(fetcher.fetch_script("http://slow.example/a.js").is_none());
        assert_eq!(clock.now().as_millis(), 2_500);
        assert_eq!(fetcher.faults().hung, 1);
    }

    #[test]
    fn healthy_bodies_are_a_pure_function_of_the_url() {
        let fetcher = SimFetcher::new(SimClock::new(), 2);
        let a = fetcher.fetch_script("http://cdn.example/lib.js").unwrap();
        let b = fetcher.fetch_script("http://cdn.example/lib.js").unwrap();
        assert_eq!(a, b);
        assert_ne!(
            a,
            fetcher.fetch_script("http://cdn.example/other.js").unwrap()
        );
    }

    #[test]
    fn host_parsing_strips_scheme_and_path() {
        assert_eq!(host_of("http://cdn.example/a/b.js"), "cdn.example");
        assert_eq!(host_of("https://x.example"), "x.example");
        assert_eq!(host_of("cdn.example"), "cdn.example");
    }

    #[test]
    fn flaky_hosts_fail_some_of_the_time_deterministically() {
        let run = || {
            let fetcher = SimFetcher::new(SimClock::new(), 9);
            fetcher.set_host("f.example", HostMode::Flaky { num: 1, den: 2 });
            (0..32)
                .map(|i| {
                    fetcher
                        .fetch_script(&format!("http://f.example/{i}.js"))
                        .is_some()
                })
                .collect::<Vec<_>>()
        };
        let outcomes = run();
        assert!(outcomes.iter().any(|o| *o) && outcomes.iter().any(|o| !*o));
        assert_eq!(outcomes, run(), "same seed, same outcomes");
    }
}
