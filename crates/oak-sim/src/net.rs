//! Simulated cluster network: the message fabric between cluster
//! nodes, with seeded delay, reordering, duplication, stray loss, and
//! operator-scripted link partitions.
//!
//! [`SimNet`] sits beside [`crate::fs::SimFs`] and
//! [`crate::clock::SimClock`] as the third leg of the deterministic
//! world: every [`oak_cluster::Envelope`] a node emits is queued with a
//! seeded delivery time, and [`SimNet::deliver_due`] releases messages
//! in `(deliver_at, send order)` order — so two runs of one seed see
//! byte-identical message schedules. Partitioned links drop silently
//! (the sender cannot tell, exactly like a real cut), and random
//! duplication/loss keep the replication protocol honest about
//! idempotency and retransmission.

use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

use oak_cluster::{Envelope, NodeId};

use crate::rng::SimRng;

/// Fault mix for the simulated network.
#[derive(Clone, Copy, Debug)]
pub struct SimNetOptions {
    /// Minimum one-way delivery delay.
    pub min_delay_ms: u64,
    /// Maximum one-way delivery delay (inclusive). Spreading delays
    /// wider than the heartbeat interval reorders protocol traffic.
    pub max_delay_ms: u64,
    /// A message is duplicated with probability `dup_num / dup_den`.
    pub dup_num: u64,
    pub dup_den: u64,
    /// A message is lost with probability `loss_num / loss_den`, even
    /// on a healthy link (stray loss, distinct from partitions).
    pub loss_num: u64,
    pub loss_den: u64,
}

impl Default for SimNetOptions {
    fn default() -> Self {
        SimNetOptions {
            min_delay_ms: 1,
            max_delay_ms: 45,
            dup_num: 1,
            dup_den: 24,
            loss_num: 1,
            loss_den: 48,
        }
    }
}

/// What the fabric did, for run accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetCounters {
    /// Messages handed to [`SimNet::send`].
    pub sent: u64,
    /// Messages released by [`SimNet::deliver_due`].
    pub delivered: u64,
    /// Messages swallowed by a partitioned link.
    pub cut: u64,
    /// Messages lost to stray (non-partition) loss.
    pub lost: u64,
    /// Extra copies injected by duplication.
    pub duplicated: u64,
}

/// One queued message. Ordered by `(deliver_at, seq)` so the heap pops
/// deterministically; `seq` is the send counter, unique per flight.
struct Flight {
    deliver_at: u64,
    seq: u64,
    envelope: Envelope,
}

impl PartialEq for Flight {
    fn eq(&self, other: &Self) -> bool {
        (self.deliver_at, self.seq) == (other.deliver_at, other.seq)
    }
}
impl Eq for Flight {}
impl PartialOrd for Flight {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Flight {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.deliver_at, other.seq).cmp(&(self.deliver_at, self.seq))
    }
}

/// The seeded message fabric.
pub struct SimNet {
    rng: SimRng,
    options: SimNetOptions,
    queue: BinaryHeap<Flight>,
    next_seq: u64,
    /// Cut links, as normalized `(low, high)` node-id pairs.
    severed: BTreeSet<(u32, u32)>,
    counters: NetCounters,
}

fn link(a: NodeId, b: NodeId) -> (u32, u32) {
    (a.0.min(b.0), a.0.max(b.0))
}

impl SimNet {
    /// A fabric over `seed` with the given fault mix.
    pub fn new(seed: u64, options: SimNetOptions) -> SimNet {
        SimNet {
            rng: SimRng::new(seed ^ 0x6e65_745f_7369_6d00),
            options,
            queue: BinaryHeap::new(),
            next_seq: 0,
            severed: BTreeSet::new(),
            counters: NetCounters::default(),
        }
    }

    /// Queues `envelope`, sent at `now_ms`. Partitioned links swallow it
    /// silently; healthy ones may still lose or duplicate it.
    pub fn send(&mut self, now_ms: u64, envelope: Envelope) {
        self.counters.sent += 1;
        if self.severed.contains(&link(envelope.from, envelope.to)) {
            self.counters.cut += 1;
            return;
        }
        if self
            .rng
            .chance(self.options.loss_num, self.options.loss_den)
        {
            self.counters.lost += 1;
            return;
        }
        if self.rng.chance(self.options.dup_num, self.options.dup_den) {
            self.counters.duplicated += 1;
            let delay = self.delay();
            self.enqueue(now_ms + delay, envelope.clone());
        }
        let delay = self.delay();
        self.enqueue(now_ms + delay, envelope);
    }

    fn delay(&mut self) -> u64 {
        self.rng
            .range(self.options.min_delay_ms, self.options.max_delay_ms + 1)
    }

    fn enqueue(&mut self, deliver_at: u64, envelope: Envelope) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Flight {
            deliver_at,
            seq,
            envelope,
        });
    }

    /// Releases every message due at or before `now_ms`, in
    /// deterministic `(deliver_at, send order)` order. Messages queued
    /// before a link was cut still arrive: a partition stops new
    /// traffic, it does not un-send what is already in flight.
    pub fn deliver_due(&mut self, now_ms: u64) -> Vec<Envelope> {
        let mut out = Vec::new();
        while let Some(flight) = self.queue.peek() {
            if flight.deliver_at > now_ms {
                break;
            }
            let flight = self.queue.pop().expect("peeked");
            self.counters.delivered += 1;
            out.push(flight.envelope);
        }
        out
    }

    /// Cuts the bidirectional link between `a` and `b`.
    pub fn partition_link(&mut self, a: NodeId, b: NodeId) {
        if a != b {
            self.severed.insert(link(a, b));
        }
    }

    /// Restores the link between `a` and `b`.
    pub fn heal_link(&mut self, a: NodeId, b: NodeId) {
        self.severed.remove(&link(a, b));
    }

    /// Restores every link.
    pub fn heal_all(&mut self) {
        self.severed.clear();
    }

    /// Whether the `a`↔`b` link is currently cut.
    pub fn is_severed(&self, a: NodeId, b: NodeId) -> bool {
        self.severed.contains(&link(a, b))
    }

    /// Messages queued but not yet delivered.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Fabric accounting so far.
    pub fn counters(&self) -> NetCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oak_cluster::{LeaseMsg, Message};

    fn hb(from: u32, to: u32) -> Envelope {
        Envelope {
            from: NodeId(from),
            to: NodeId(to),
            msg: Message::Lease {
                partition: 0,
                msg: LeaseMsg::Heartbeat {
                    epoch: 1,
                    commit: 0,
                },
            },
        }
    }

    /// No faults: everything sent arrives, in deliver-time order.
    fn lossless() -> SimNetOptions {
        SimNetOptions {
            dup_num: 0,
            loss_num: 0,
            ..SimNetOptions::default()
        }
    }

    #[test]
    fn delivery_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut net = SimNet::new(seed, SimNetOptions::default());
            for t in 0..50u64 {
                net.send(t, hb(0, 1));
                net.send(t, hb(1, 2));
            }
            let order: Vec<(u32, u32)> = net
                .deliver_due(10_000)
                .iter()
                .map(|e| (e.from.0, e.to.0))
                .collect();
            (order, net.counters())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0.len(), 0);
    }

    #[test]
    fn partitioned_links_swallow_new_traffic_only() {
        let mut net = SimNet::new(1, lossless());
        net.send(0, hb(0, 1));
        net.partition_link(NodeId(0), NodeId(1));
        net.send(1, hb(0, 1));
        net.send(1, hb(1, 0)); // cuts are bidirectional
        net.send(1, hb(0, 2)); // other links unaffected
        let delivered = net.deliver_due(10_000);
        // The pre-cut message still arrives; both post-cut ones do not.
        assert_eq!(delivered.len(), 2);
        assert_eq!(net.counters().cut, 2);
        net.heal_link(NodeId(0), NodeId(1));
        net.send(2, hb(0, 1));
        assert_eq!(net.deliver_due(10_000).len(), 1);
    }

    #[test]
    fn due_messages_release_in_time_order() {
        let mut net = SimNet::new(3, lossless());
        for t in 0..20u64 {
            net.send(t * 3, hb(0, 1));
        }
        let mut last = 0;
        let mut total = 0;
        for now in (0..200).step_by(7) {
            for _ in net.deliver_due(now) {
                total += 1;
            }
            // deliver_due never returns anything due later than `now`.
            assert!(net.queue.peek().map(|f| f.deliver_at > now).unwrap_or(true));
            last = now;
        }
        let _ = last;
        assert_eq!(total, 20);
    }

    #[test]
    fn heal_all_restores_every_link() {
        let mut net = SimNet::new(9, lossless());
        net.partition_link(NodeId(0), NodeId(1));
        net.partition_link(NodeId(1), NodeId(2));
        assert!(net.is_severed(NodeId(0), NodeId(1)));
        net.heal_all();
        assert!(!net.is_severed(NodeId(0), NodeId(1)));
        assert!(!net.is_severed(NodeId(1), NodeId(2)));
    }
}
