//! Seed-sweep driver for the deterministic fault simulator.
//!
//! CI soaks a seed range (`--seeds`/`--start`); a developer replays one
//! failure (`--seed N` or `--replay FILE`). On a violation the driver
//! minimizes the scenario with delta debugging, writes it as a JSON
//! artifact, prints the replay command, and exits nonzero — so a red CI
//! run always leaves behind a file that reproduces the bug locally.
//!
//! `--cluster` generates replicated-cluster scenarios (WAL shipping,
//! elections, network partitions); `--mixed` alternates single-node and
//! cluster shapes through one seed range, which is what CI soaks.
//!
//! Two self-check faults prove the harness has teeth:
//! `--buggy-dirsync` drops directory fsyncs in the simulated filesystem
//! (the pre-fix store behavior); `--buggy-promotion` grants election
//! votes without the replication-watermark check, the classic failover
//! bug that silently loses acknowledged writes.

use std::process::ExitCode;

use oak_sim::{
    minimize_with, run_any_scenario, ClusterSimOptions, RunStats, Scenario, SimFailure,
    SimFsOptions,
};

struct Args {
    seeds: u64,
    start: u64,
    seed: Option<u64>,
    replay: Option<String>,
    buggy_dirsync: bool,
    buggy_promotion: bool,
    cluster: bool,
    mixed: bool,
    device_invariant: bool,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: 200,
        start: 0,
        seed: None,
        replay: None,
        buggy_dirsync: false,
        buggy_promotion: false,
        cluster: false,
        mixed: false,
        device_invariant: false,
        out: "SIM_FAILURE.json".to_owned(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--seeds" => args.seeds = parse_u64(&value("--seeds")?)?,
            "--start" => args.start = parse_u64(&value("--start")?)?,
            "--seed" => args.seed = Some(parse_u64(&value("--seed")?)?),
            "--replay" => args.replay = Some(value("--replay")?),
            "--out" => args.out = value("--out")?,
            "--buggy-dirsync" => args.buggy_dirsync = true,
            "--buggy-promotion" => args.buggy_promotion = true,
            "--cluster" => args.cluster = true,
            "--mixed" => args.mixed = true,
            "--device-invariant" => args.device_invariant = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if args.cluster && args.mixed {
        return Err("--cluster and --mixed are mutually exclusive".to_owned());
    }
    if args.device_invariant && (args.cluster || args.mixed || args.replay.is_some()) {
        return Err("--device-invariant only combines with --seeds/--start/--seed".to_owned());
    }
    Ok(args)
}

const USAGE: &str = "usage: oak-sim [--seeds N] [--start S] [--seed X] [--replay FILE]\n\
                \x20              [--cluster | --mixed | --device-invariant]\n\
                \x20              [--buggy-dirsync] [--buggy-promotion] [--out FILE]\n\
    --seeds N           sweep N consecutive seeds (default 200)\n\
    --start S           first seed of the sweep (default 0)\n\
    --seed X            run exactly one generated seed\n\
    --replay FILE       run a scenario JSON written by a previous failure\n\
    --cluster           generate replicated-cluster scenarios\n\
    --mixed             alternate single-node and cluster scenarios\n\
    --device-invariant  sweep the cohort-detector device confound check:\n\
                        in an impairment-free world with mixed devices and\n\
                        heavy ad chains, no healthy server is ever flagged\n\
    --buggy-dirsync     simulate a disk that drops directory fsyncs\n\
    --buggy-promotion   grant election votes without the watermark check\n\
    --out FILE          failure artifact path (default SIM_FAILURE.json)";

fn parse_u64(text: &str) -> Result<u64, String> {
    text.parse::<u64>()
        .map_err(|_| format!("{text:?} is not a non-negative integer"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(err) => {
            eprintln!("oak-sim: {err}");
            return ExitCode::from(2);
        }
    };
    if args.device_invariant {
        return run_device_sweep(&args);
    }
    let options = ClusterSimOptions {
        fs: SimFsOptions {
            ignore_dir_sync: args.buggy_dirsync,
        },
        buggy_promotion: args.buggy_promotion,
    };
    let generate = |seed: u64| -> Scenario {
        if args.cluster {
            Scenario::generate_cluster(seed)
        } else if args.mixed {
            Scenario::generate_mixed(seed)
        } else {
            Scenario::generate(seed)
        }
    };

    let scenarios: Vec<Scenario> = if let Some(path) = &args.replay {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("oak-sim: cannot read {path}: {err}");
                return ExitCode::from(2);
            }
        };
        let doc = match oak_json::parse(&text) {
            Ok(doc) => doc,
            Err(err) => {
                eprintln!("oak-sim: {path} is not valid JSON: {err}");
                return ExitCode::from(2);
            }
        };
        // Accept both a bare scenario and the failure artifact this very
        // binary writes (scenario nested under "scenario").
        let scenario = Scenario::from_value(doc.get("scenario").unwrap_or(&doc));
        match scenario {
            Ok(scenario) => vec![scenario],
            Err(err) => {
                eprintln!("oak-sim: {path} does not decode as a scenario: {err}");
                return ExitCode::from(2);
            }
        }
    } else if let Some(seed) = args.seed {
        vec![generate(seed)]
    } else {
        (args.start..args.start.saturating_add(args.seeds))
            .map(generate)
            .collect()
    };

    let mut totals = RunStats::default();
    let mut ran = 0u64;
    let started = std::time::Instant::now();
    for scenario in &scenarios {
        match run_any_scenario(scenario, options) {
            Ok(stats) => {
                ran += 1;
                accumulate(&mut totals, &stats);
            }
            Err(failure) => return report_failure(scenario, &failure, options, &args.out),
        }
    }

    let elapsed = started.elapsed();
    println!(
        "oak-sim: {ran} scenario(s) clean in {:.2}s ({:.1}/s)",
        elapsed.as_secs_f64(),
        ran as f64 / elapsed.as_secs_f64().max(1e-9),
    );
    println!(
        "  steps {}  requests {}  events {}  recoveries {}  invariant checks {}",
        totals.steps, totals.requests, totals.events, totals.recoveries, totals.invariant_checks,
    );
    println!(
        "  cluster: {} failovers, {} requests refused (503)",
        totals.failovers, totals.refused,
    );
    println!(
        "  storage faults: {} crashes, {} torn files, {} dir entries lost, \
         {} bytes garbled, {} ops failed",
        totals.fs.crashes,
        totals.fs.torn_files,
        totals.fs.lost_dir_entries,
        totals.fs.garbled_bytes,
        totals.fs.failed_ops,
    );
    println!(
        "  fetch: {} served, {} failed, {} hung",
        totals.fetch.served, totals.fetch.failed, totals.fetch.hung,
    );
    ExitCode::SUCCESS
}

/// Sweeps the device-confound invariant: every seed builds an
/// impairment-free, ad-chain-heavy world with mixed devices and fails
/// if the cohort detector ever flags a healthy server.
fn run_device_sweep(args: &Args) -> ExitCode {
    let seeds: Vec<u64> = match args.seed {
        Some(seed) => vec![seed],
        None => (args.start..args.start.saturating_add(args.seeds)).collect(),
    };
    let started = std::time::Instant::now();
    let mut loads = 0u64;
    let mut checks = 0u64;
    let mut flags_on_bad = 0u64;
    for &seed in &seeds {
        match oak_sim::run_device_invariant(seed) {
            Ok(stats) => {
                loads += stats.loads;
                checks += stats.checks;
                flags_on_bad += stats.flags_on_bad;
            }
            Err(detail) => {
                eprintln!("oak-sim: FAILURE: device invariant: {detail}");
                eprintln!("oak-sim: replay with `oak-sim --device-invariant --seed {seed}`");
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "oak-sim: device invariant clean over {} seed(s) in {:.2}s",
        seeds.len(),
        started.elapsed().as_secs_f64(),
    );
    println!(
        "  loads {loads}  flag checks {checks}  flags on truly-bad servers {flags_on_bad}  \
         flags on healthy servers 0",
    );
    ExitCode::SUCCESS
}

fn accumulate(totals: &mut RunStats, stats: &RunStats) {
    totals.steps += stats.steps;
    totals.requests += stats.requests;
    totals.events += stats.events;
    totals.recoveries += stats.recoveries;
    totals.failovers += stats.failovers;
    totals.refused += stats.refused;
    totals.invariant_checks += stats.invariant_checks;
    totals.invariant_ns += stats.invariant_ns;
    totals.fs.crashes += stats.fs.crashes;
    totals.fs.torn_files += stats.fs.torn_files;
    totals.fs.lost_dir_entries += stats.fs.lost_dir_entries;
    totals.fs.garbled_bytes += stats.fs.garbled_bytes;
    totals.fs.failed_ops += stats.fs.failed_ops;
    totals.fetch.served += stats.fetch.served;
    totals.fetch.failed += stats.fetch.failed;
    totals.fetch.hung += stats.fetch.hung;
}

/// Minimizes the failure, writes the replayable artifact, and tells the
/// reader exactly how to reproduce it.
fn report_failure(
    scenario: &Scenario,
    failure: &SimFailure,
    options: ClusterSimOptions,
    out: &str,
) -> ExitCode {
    eprintln!("oak-sim: FAILURE: {failure}");
    eprintln!("oak-sim: minimizing ({} steps)...", scenario.steps.len());
    let run = |candidate: &Scenario| run_any_scenario(candidate, options).err();
    let (minimal, min_failure, runs) = match minimize_with(scenario, &run) {
        Some(result) => (result.scenario, result.failure, result.runs),
        // A flaky environment (not the simulation) is the only way the
        // re-run can pass; fall back to the original scenario.
        None => (scenario.clone(), failure.clone(), 0),
    };
    eprintln!(
        "oak-sim: minimized to {} of {} steps in {runs} re-runs",
        minimal.steps.len(),
        scenario.steps.len(),
    );

    let mut doc = oak_json::Value::object();
    doc.set("invariant", min_failure.invariant.as_str());
    doc.set("detail", min_failure.detail.as_str());
    doc.set("failing_step", min_failure.step as u64);
    doc.set("buggy_dirsync", options.fs.ignore_dir_sync);
    doc.set("buggy_promotion", options.buggy_promotion);
    doc.set("scenario", minimal.to_value());
    if let Err(err) = std::fs::write(out, doc.to_string()) {
        eprintln!("oak-sim: cannot write artifact {out}: {err}");
        return ExitCode::from(2);
    }
    let mut faults = String::new();
    if options.fs.ignore_dir_sync {
        faults.push_str(" --buggy-dirsync");
    }
    if options.buggy_promotion {
        faults.push_str(" --buggy-promotion");
    }
    eprintln!("oak-sim: wrote {out}");
    eprintln!("oak-sim: replay with `oak-sim --replay {out}{faults}`");
    let shape = if minimal.cluster.is_some() {
        " --cluster"
    } else {
        ""
    };
    eprintln!(
        "oak-sim: or regenerate with `oak-sim --seed {}{shape}{faults}`",
        min_failure.seed,
    );
    ExitCode::FAILURE
}
