//! Deterministic whole-system fault simulation for Oak.
//!
//! FoundationDB-style testing: the **real** `oak-core` engine, the real
//! `oak-store` WAL/snapshot stack, and the real `oak-server` service
//! logic run against simulated storage ([`SimFs`]), simulated time
//! ([`SimClock`]), and simulated CDN hosts ([`SimFetcher`]) — all
//! driven by one seed. A [`Scenario`] generated from that seed mixes
//! report ingest, page serves, rule churn, clock advances, fetch-target
//! partitions, and crash-recovery cycles; [`run_scenario`] executes it
//! and audits invariants at every step and every recovery:
//!
//! 1. **Durability** — under `FsyncPolicy::Always`, no event the store
//!    acknowledged before a crash may be missing after recovery.
//! 2. **Consistency** — the recovered engine must equal, byte for byte,
//!    the replay of exactly the event set it claims to reflect
//!    (`watermark` + `replayed_seqs`), as recorded by an independent
//!    mirror of everything the engine emitted.
//! 3. **Health gating** — a recovering node answers 503 on
//!    `/oak/health`; a serving one answers 200.
//! 4. **Rule integrity** — no user is ever left active on a rule that
//!    no longer exists.
//! 5. **Bounded memory** — a closed user pool and a configured log
//!    retention keep shard state and the audit log bounded under any
//!    schedule.
//! 6. **Observability consistency** — the end-of-run `/oak/metrics`
//!    scrape passes the exposition-grammar validator,
//!    `oak_wal_append_count` covers every event the store acknowledged
//!    while the machine was up, and `oak_http_responses_total` sums
//!    across status labels to exactly the requests handled.
//! 7. **Overload agreement** — a seed-determined pressure schedule
//!    drives the production overload controller (in driven mode, one
//!    sample per step) and an independent reference model
//!    ([`RefOverload`]) in lockstep; the two state machines must agree
//!    after every sample, every shed the reference demands must answer
//!    503 with a Retry-After hint, `/oak/health` must answer 200 (with
//!    a truthful `degraded` flag) through every state, and the
//!    controller's shed counters must reconcile exactly with the
//!    refusals the oracle witnessed — no acknowledged 204 retroactively
//!    shed, no shed unaccounted.
//!
//! Scenarios tagged with a [`ClusterSpec`] run the same engine/store
//! stack replicated across simulated nodes instead
//! ([`run_cluster_scenario`]): WAL-shipping replication with
//! heartbeat/lease failover (`oak-cluster`), wired through a simulated
//! network ([`SimNet`] — seeded delay, reordering, duplication, loss,
//! and scripted link cuts) with one [`SimFs`] per node. The cluster
//! oracle checks, at every tick and at a forced end-of-run heal:
//!
//! 1. **Losslessness** — no event acked at the replication watermark is
//!    ever missing from the authoritative (highest-epoch) primary, across
//!    any schedule of crashes, partitions, and failovers.
//! 2. **Election safety** — at most one primary per (partition, epoch).
//! 3. **Step-down and convergence** — after healing every link and
//!    reviving every node, each partition settles to exactly one
//!    primary and byte-identical replicas.
//!
//! A failing seed is shrunk by [`minimize`] (delta debugging over the
//! step list; [`minimize_with`] for the cluster runner) and the result
//! round-trips through JSON, so CI uploads a replayable artifact and
//! `oak-sim --replay` reproduces it locally. Two deliberate faults prove
//! the harness has teeth: `--buggy-dirsync` (dropped directory fsyncs)
//! trips the durability oracle, and `--buggy-promotion` (election votes
//! granted without the watermark check) trips the losslessness oracle.
//!
//! Everything here is deterministic: same scenario, same outcome, every
//! time, on every platform. No real disk, no real sockets, no real
//! sleeps — a hang costs simulated milliseconds and zero wall time.

pub mod clock;
pub mod cluster_world;
pub mod device;
pub mod fetch;
pub mod fs;
pub mod minimize;
pub mod net;
pub mod overload_oracle;
pub mod rng;
pub mod scenario;
pub mod world;

pub use clock::SimClock;
pub use cluster_world::{run_any_scenario, run_cluster_scenario, ClusterSimOptions};
pub use device::{run_device_invariant, DeviceRunStats};
pub use fetch::{FetchFaults, HostMode, SimFetcher};
pub use fs::{FaultCounters, SimFs, SimFsOptions};
pub use minimize::{minimize, minimize_with, Minimized};
pub use net::{NetCounters, SimNet, SimNetOptions};
pub use overload_oracle::{pressure_of, RefOverload};
pub use rng::SimRng;
pub use scenario::{ClusterSpec, Scenario, Step, SCENARIO_VERSION};
pub use world::{
    fingerprint, run_scenario, run_scenario_observed, ObservedRun, RunStats, SimFailure,
};
