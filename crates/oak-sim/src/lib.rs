//! Deterministic whole-system fault simulation for Oak.
//!
//! FoundationDB-style testing: the **real** `oak-core` engine, the real
//! `oak-store` WAL/snapshot stack, and the real `oak-server` service
//! logic run against simulated storage ([`SimFs`]), simulated time
//! ([`SimClock`]), and simulated CDN hosts ([`SimFetcher`]) — all
//! driven by one seed. A [`Scenario`] generated from that seed mixes
//! report ingest, page serves, rule churn, clock advances, fetch-target
//! partitions, and crash-recovery cycles; [`run_scenario`] executes it
//! and audits invariants at every step and every recovery:
//!
//! 1. **Durability** — under `FsyncPolicy::Always`, no event the store
//!    acknowledged before a crash may be missing after recovery.
//! 2. **Consistency** — the recovered engine must equal, byte for byte,
//!    the replay of exactly the event set it claims to reflect
//!    (`watermark` + `replayed_seqs`), as recorded by an independent
//!    mirror of everything the engine emitted.
//! 3. **Health gating** — a recovering node answers 503 on
//!    `/oak/health`; a serving one answers 200.
//! 4. **Rule integrity** — no user is ever left active on a rule that
//!    no longer exists.
//! 5. **Bounded memory** — a closed user pool and a configured log
//!    retention keep shard state and the audit log bounded under any
//!    schedule.
//! 6. **Observability consistency** — the end-of-run `/oak/metrics`
//!    scrape passes the exposition-grammar validator,
//!    `oak_wal_append_count` covers every event the store acknowledged
//!    while the machine was up, and `oak_http_responses_total` sums
//!    across status labels to exactly the requests handled.
//!
//! A failing seed is shrunk by [`minimize`] (delta debugging over the
//! step list) and the result round-trips through JSON, so CI uploads a
//! replayable artifact and `oak-sim --replay` reproduces it locally.
//!
//! Everything here is deterministic: same scenario, same outcome, every
//! time, on every platform. No real disk, no real sockets, no real
//! sleeps — a hang costs simulated milliseconds and zero wall time.

pub mod clock;
pub mod fetch;
pub mod fs;
pub mod minimize;
pub mod rng;
pub mod scenario;
pub mod world;

pub use clock::SimClock;
pub use fetch::{FetchFaults, HostMode, SimFetcher};
pub use fs::{FaultCounters, SimFs, SimFsOptions};
pub use minimize::{minimize, Minimized};
pub use rng::SimRng;
pub use scenario::{Scenario, Step};
pub use world::{
    fingerprint, run_scenario, run_scenario_observed, ObservedRun, RunStats, SimFailure,
};
