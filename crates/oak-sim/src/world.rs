//! The simulation world: one seeded scenario driven through the *real*
//! engine, store, and service, with an invariant audit at every
//! crash-recovery boundary and cheap checks after every step.
//!
//! The oracle is a **mirror**: a [`TeeSink`] interposed between the
//! engine and the store records every emitted event, tagging each with
//! whether the machine had already crashed when the store acknowledged
//! it. After recovery, [`oak_store::Boot`] names exactly the event set
//! the recovered engine claims to reflect (`watermark` +
//! `replayed_seqs`); replaying that subset of the mirror into a fresh
//! engine must reproduce the recovered state byte-for-byte, and under
//! `FsyncPolicy::Always` every event acknowledged before the crash must
//! be in the set. Both checks are exact, not statistical.

use std::collections::HashSet;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use oak_core::engine::{Oak, OakConfig, SHARD_COUNT};
use oak_core::events::{EventSink, SequencedEvent};
use oak_core::report::{ObjectTiming, PerfReport};
use oak_core::rule::Rule;
use oak_core::Instant;
use oak_http::cookie::OAK_USER_COOKIE;
use oak_http::{Handler, Method, Request, StatusCode};
use oak_server::{
    HealthState, OakService, OverloadController, OverloadPolicy, OverloadState, PressureSample,
    ServiceObs, SiteStore, HEALTH_PATH, METRICS_PATH, REPORT_PATH,
};
use oak_store::{FsyncPolicy, OakStore, StorageBackend, StoreOptions};

use crate::clock::SimClock;
use crate::fetch::{FetchFaults, HostMode, SimFetcher};
use crate::fs::{FaultCounters, SimFs, SimFsOptions};
use crate::overload_oracle::{pressure_of, RefOverload};
use crate::scenario::{Scenario, Step, HOSTS, USERS};

/// Per-shard in-memory audit-log retention for simulated engines; small
/// so the bounded-memory invariant bites.
pub(crate) const LOG_RETENTION: usize = 32;

/// Completed traces the simulated tracer retains; small so ring
/// eviction is exercised by longer scenarios.
const TRACE_RING: usize = 64;

/// One invariant violation, replayable from `seed` alone.
#[derive(Clone, Debug)]
pub struct SimFailure {
    /// The scenario seed.
    pub seed: u64,
    /// Index of the step being executed when the violation surfaced
    /// (`steps.len()` for the end-of-run audit).
    pub step: usize,
    /// Which invariant broke.
    pub invariant: String,
    /// What exactly diverged.
    pub detail: String,
}

impl fmt::Display for SimFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed {}: invariant {:?} violated at step {}: {}",
            self.seed, self.invariant, self.step, self.detail
        )
    }
}

/// What a clean run did.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunStats {
    /// Steps executed.
    pub steps: u64,
    /// HTTP-level requests issued through the service handler.
    pub requests: u64,
    /// Engine events mirrored.
    pub events: u64,
    /// Crash-recovery cycles completed.
    pub recoveries: u64,
    /// Individual invariant checks evaluated.
    pub invariant_checks: u64,
    /// Wall nanoseconds inside invariant checking (bench overhead
    /// accounting; no simulation behavior depends on it).
    pub invariant_ns: u64,
    /// Storage fault counts.
    pub fs: FaultCounters,
    /// Fetch fault counts.
    pub fetch: FetchFaults,
    /// (cluster runs) Primary epochs seated beyond each partition's
    /// first — i.e. completed failovers.
    pub failovers: u64,
    /// (cluster runs) Client operations refused with 503 + Retry-After
    /// because no credible primary was routable.
    pub refused: u64,
    /// (single-node runs) Requests the overload controller refused with
    /// 503 + Retry-After across all priority classes.
    pub sheds: u64,
    /// (single-node runs) Pages served unrewritten under Brownout.
    pub browned: u64,
}

/// A mirrored event plus whether the machine was already down when the
/// store acknowledged it (down ⇒ the append was swallowed, so the event
/// is exempt from the durability guarantee).
struct MirrorEntry {
    event: SequencedEvent,
    post_crash: bool,
}

/// The oracle's event tape for the current engine life.
#[derive(Default)]
struct Mirror {
    entries: Mutex<Vec<MirrorEntry>>,
    /// Events acknowledged while the machine was up, over the whole run
    /// (never rebased): the observability invariant's lower bound on
    /// `oak_wal_append_count`.
    acked: AtomicU64,
}

/// [`EventSink`] that forwards to the real store, then mirrors.
struct TeeSink {
    store: Arc<OakStore>,
    mirror: Arc<Mirror>,
    fs: SimFs,
}

impl EventSink for TeeSink {
    fn record(&self, shard: Option<usize>, event: &SequencedEvent) {
        self.store.record(shard, event);
        // Crash state is read *after* the store returns: if the machine
        // died mid-append, the event was never acknowledged durable.
        let post_crash = self.fs.crashed();
        if !post_crash {
            self.mirror.acked.fetch_add(1, Ordering::Relaxed);
        }
        self.mirror
            .entries
            .lock()
            .expect("mirror")
            .push(MirrorEntry {
                event: event.clone(),
                post_crash,
            });
    }
}

/// A canonical fingerprint of every durable engine observable.
/// `last_seen` is masked: serves refresh it in memory but are by design
/// not journaled (see the store's recovery guarantee). `epoch` is
/// masked too — the replication-epoch stamp is coordination metadata a
/// primary carries ahead of its followers, not replicated user state.
pub fn fingerprint(oak: &Oak) -> String {
    let mut doc = oak.snapshot_json();
    mask_metadata(&mut doc);
    doc.to_string()
}

fn mask_metadata(value: &mut oak_json::Value) {
    use oak_json::Value;
    match value {
        Value::Object(members) => {
            members.retain(|key, _| key != "epoch");
            for (key, member) in members.iter_mut() {
                if key == "last_seen" {
                    *member = Value::Number(0.0);
                } else {
                    mask_metadata(member);
                }
            }
        }
        Value::Array(items) => {
            for item in items.iter_mut() {
                mask_metadata(item);
            }
        }
        _ => {}
    }
}

pub(crate) fn user_name(user: u64) -> String {
    format!("u-{}", user % USERS as u64)
}

pub(crate) fn script_tag(host: u64) -> String {
    format!(
        r#"<script src="http://cdn{}.example/lib.js">"#,
        host % HOSTS as u64
    )
}

pub(crate) fn sim_page() -> String {
    let mut page = String::from("<html><head>");
    for h in 0..HOSTS {
        page.push_str(&format!(
            r#"<script src="http://cdn{h}.example/lib.js"></script>"#
        ));
    }
    page.push_str("</head><body>sim</body></html>");
    page
}

/// The rule a `Step::AddRule { host, kind, ttl_ms }` registers — shared
/// by the single-node and cluster worlds so one step means one thing.
pub(crate) fn step_rule(host: u64, kind: u64, ttl_ms: u64) -> Rule {
    let tag = script_tag(host);
    let mut rule = match kind % 3 {
        0 => Rule::remove(tag),
        1 => Rule::replace_identical(
            tag,
            [
                format!(
                    r#"<script src="http://m1.example/cdn{}/lib.js">"#,
                    host % HOSTS as u64
                ),
                format!(
                    r#"<script src="http://m2.example/cdn{}/lib.js">"#,
                    host % HOSTS as u64
                ),
            ],
        ),
        _ => Rule::replace_different(
            tag,
            [format!(
                r#"<script src="http://alt.example/cdn{}/lib.js">"#,
                host % HOSTS as u64
            )],
        ),
    };
    if ttl_ms > 0 {
        rule = rule.with_ttl_ms(Some(ttl_ms));
    }
    rule
}

pub(crate) fn violating_report(user: u64, host: u64) -> PerfReport {
    let mut report = PerfReport::new(user_name(user), "/p");
    report.push(ObjectTiming::new(
        format!("http://cdn{}.example/lib.js", host % HOSTS as u64),
        format!("10.0.{}.1", host % HOSTS as u64),
        30_000,
        900.0,
    ));
    for good in 0..4u64 {
        report.push(ObjectTiming::new(
            format!("http://good{good}.example/obj"),
            format!("10.1.{good}.1"),
            30_000,
            80.0 + good as f64 * 5.0,
        ));
    }
    report
}

pub(crate) fn benign_report(user: u64) -> PerfReport {
    let mut report = PerfReport::new(user_name(user), "/p");
    for good in 0..5u64 {
        report.push(ObjectTiming::new(
            format!("http://good{good}.example/obj"),
            format!("10.1.{good}.1"),
            30_000,
            80.0 + good as f64 * 3.0,
        ));
    }
    report
}

/// Bounded boot retries: a crash scheduled to fire *during* recovery
/// costs one attempt; something has to be wrong for eight straight
/// lives to die mid-boot with nothing else running.
const MAX_BOOT_ATTEMPTS: usize = 8;

struct World<'a> {
    scenario: &'a Scenario,
    dir: PathBuf,
    fs: SimFs,
    clock: SimClock,
    fetcher: Arc<SimFetcher>,
    mirror: Arc<Mirror>,
    obs: Arc<ServiceObs>,
    service: Arc<OakService>,
    store: Arc<OakStore>,
    config: OakConfig,
    store_options: StoreOptions,
    stats: RunStats,
    step: usize,
    /// The production controller under test, in driven mode: the run
    /// loop feeds it one seed-determined [`PressureSample`] per step.
    /// Node-level state — it survives crash-recovery, so the rebuilt
    /// service is re-armed with the same instance.
    overload: Arc<OverloadController>,
    /// The independent reference model the controller must agree with.
    reference: RefOverload,
    /// Report ingests the reference said must be shed (and were).
    reports_shed: u64,
    /// Page serves the reference said must be shed (and were).
    pages_shed: u64,
}

impl World<'_> {
    fn fail(&self, invariant: &str, detail: String) -> SimFailure {
        SimFailure {
            seed: self.scenario.seed,
            step: self.step,
            invariant: invariant.to_owned(),
            detail,
        }
    }

    fn request(&mut self, request: &Request) -> oak_http::Response {
        self.stats.requests += 1;
        self.service.handle(request)
    }

    fn get(&mut self, path: &str, user: u64) -> oak_http::Response {
        let mut req = Request::new(Method::Get, path);
        req.headers
            .set("Cookie", format!("{OAK_USER_COOKIE}={}", user_name(user)));
        self.request(&req)
    }

    fn post_report(&mut self, report: &PerfReport, binary: bool) -> oak_http::Response {
        let (body, content_type) = if binary {
            (report.to_binary(), oak_core::wire::OAK_REPORT_CONTENT_TYPE)
        } else {
            (report.to_json().into_bytes(), "application/json")
        };
        let mut req = Request::new(Method::Post, REPORT_PATH).with_body(body, content_type);
        req.headers
            .set("Cookie", format!("{OAK_USER_COOKIE}={}", report.user));
        self.request(&req)
    }

    /// The `nth` live rule's id, if any rules exist.
    fn nth_rule(&self, nth: u64) -> Option<oak_core::rule::RuleId> {
        self.service.with_oak(|oak| {
            let ids: Vec<_> = oak.rules().map(|(id, _)| id).collect();
            if ids.is_empty() {
                None
            } else {
                Some(ids[nth as usize % ids.len()])
            }
        })
    }

    fn execute(&mut self, step: &Step) -> Result<(), SimFailure> {
        match step {
            Step::AddRule { host, kind, ttl_ms } => {
                self.service
                    .with_oak(|oak| oak.add_rule(step_rule(*host, *kind, *ttl_ms)))
                    .expect("generated rules are valid");
            }
            Step::RemoveRule { nth } => {
                if let Some(id) = self.nth_rule(*nth) {
                    self.service.with_oak(|oak| oak.remove_rule(id));
                }
            }
            Step::Ingest {
                user,
                host,
                violating,
                binary,
            } => {
                let report = if *violating {
                    violating_report(*user, *host)
                } else {
                    benign_report(*user)
                };
                let response = self.post_report(&report, *binary);
                if self.reference.sheds_reports() {
                    // The reference demands a shed: the ingest must be
                    // turned away before the store sees it, and the
                    // refusal must carry a retry hint.
                    self.expect_shed(&response, "report ingest")?;
                    if response.status == StatusCode::UNAVAILABLE {
                        self.reports_shed += 1;
                        self.stats.sheds += 1;
                    }
                } else if response.status.0 != 204 && !self.fs.crashed() {
                    // The machine may die mid-request; any other non-2xx
                    // is a service bug the harness should surface.
                    return Err(self.fail(
                        "service",
                        format!("report ingest answered {}", response.status.0),
                    ));
                }
            }
            Step::Serve { user } => {
                let response = self.get("/p", *user);
                if self.reference.sheds_pages() {
                    self.expect_shed(&response, "page serve")?;
                    if response.status == StatusCode::UNAVAILABLE {
                        self.pages_shed += 1;
                        self.stats.sheds += 1;
                    }
                } else if !response.status.is_success() && !self.fs.crashed() {
                    return Err(self.fail(
                        "service",
                        format!("page serve answered {}", response.status.0),
                    ));
                }
            }
            Step::ForceActivate { user, nth } => {
                if let Some(id) = self.nth_rule(*nth) {
                    let now = self.clock.now();
                    let user = user_name(*user);
                    self.service
                        .with_oak(|oak| oak.force_activate(now, &user, id));
                }
            }
            Step::ForceDeactivate { user, nth } => {
                if let Some(id) = self.nth_rule(*nth) {
                    let user = user_name(*user);
                    self.service.with_oak(|oak| oak.force_deactivate(&user, id));
                }
            }
            Step::AdvanceClock { ms } => self.clock.advance(*ms),
            Step::Partition { host, mode } => {
                let host = format!("cdn{}.example", host % HOSTS as u64);
                let mode = match mode % 4 {
                    0 => HostMode::Healthy,
                    1 => HostMode::Unreachable,
                    2 => HostMode::Hanging(500),
                    _ => HostMode::Flaky { num: 1, den: 2 },
                };
                self.fetcher.set_host(host, mode);
            }
            Step::Snapshot => {
                // Swallow errors like the serving path does: a crash mid-
                // snapshot is a scheduled fault, and recovery will audit.
                let store = Arc::clone(&self.store);
                let _ = self.service.with_oak(|oak| store.snapshot(oak));
            }
            Step::Prune { idle_ms } => {
                let cutoff = Instant(self.clock.now().as_millis().saturating_sub(*idle_ms));
                self.service
                    .with_oak(|oak| oak.prune_inactive_users(cutoff));
            }
            Step::Crash {
                ops_ahead,
                survival_seed,
            } => {
                self.fs.schedule_crash(*ops_ahead, *survival_seed);
            }
            Step::CrashNode { .. }
            | Step::RestartNode { .. }
            | Step::PartitionLink { .. }
            | Step::HealLink { .. }
            | Step::HealAll => {
                // Cluster steps are inert on a single node: there is no
                // peer to cut off and "crash node 0" is the v1 Crash
                // step's job. Tolerated (not an error) so a hand-pruned
                // v2 scenario replays against both worlds.
            }
            Step::CheckHealth => {
                let response = self.get(HEALTH_PATH, 0);
                // Between recoveries the node is always Serving — and the
                // health probe is shed-exempt, so it must answer 200 even
                // while every other class is being refused.
                if response.status != StatusCode::OK && !self.fs.crashed() {
                    return Err(self.fail(
                        "health",
                        format!(
                            "serving node answered {} on {HEALTH_PATH}",
                            response.status.0
                        ),
                    ));
                }
                // The body must tell the truth about degradation.
                if response.status == StatusCode::OK {
                    let body = response.body_text();
                    let doc = oak_json::parse(&body).map_err(|err| {
                        self.fail("health", format!("{HEALTH_PATH} body unparsable: {err}"))
                    })?;
                    let degraded = doc.get("degraded").and_then(|v| v.as_bool());
                    if degraded != Some(self.reference.degraded()) {
                        return Err(self.fail(
                            "overload",
                            format!(
                                "{HEALTH_PATH} reports degraded={degraded:?}, reference \
                                 expects {} (state {})",
                                self.reference.degraded(),
                                self.reference.state()
                            ),
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Invariant #7 — overload agreement: after every pressure sample,
    /// the production controller's state machine must sit exactly where
    /// the independent reference model says it should.
    fn check_overload_state(&mut self) -> Result<(), SimFailure> {
        self.stats.invariant_checks += 1;
        let expected = match self.reference.state() {
            0 => OverloadState::Nominal,
            1 => OverloadState::Brownout,
            _ => OverloadState::Shedding,
        };
        let got = self.overload.state();
        if got != expected || self.overload.severity() != self.reference.severity() {
            return Err(self.fail(
                "overload",
                format!(
                    "controller at {}/sev{} diverges from reference {}/sev{}",
                    got.as_str(),
                    self.overload.severity(),
                    expected.as_str(),
                    self.reference.severity()
                ),
            ));
        }
        Ok(())
    }

    /// A response the reference model says must be a shed: 503, with a
    /// Retry-After hint so clients back off instead of hammering.
    fn expect_shed(&self, response: &oak_http::Response, what: &str) -> Result<(), SimFailure> {
        if self.fs.crashed() {
            return Ok(());
        }
        if response.status != StatusCode::UNAVAILABLE {
            return Err(self.fail(
                "overload",
                format!(
                    "{what} answered {} while the reference demands a shed \
                     (state {}, severity {})",
                    response.status.0,
                    self.reference.state(),
                    self.reference.severity()
                ),
            ));
        }
        if response.header("retry-after").is_none() {
            return Err(self.fail(
                "overload",
                format!("{what} shed without a Retry-After hint"),
            ));
        }
        Ok(())
    }

    /// Cheap invariants evaluated after every step.
    fn check_step(&mut self) -> Result<(), SimFailure> {
        let started = std::time::Instant::now();
        self.stats.invariant_checks += 3;
        let result = self.service.with_oak(|oak| {
            // Referential integrity: an activation must point at a live
            // rule — rule removal and TTL expiry may not strand users.
            for user in 0..USERS as u64 {
                for (id, _) in oak.active_rules(&user_name(user)) {
                    if oak.rule(id).is_none() {
                        return Err((
                            "rule_integrity",
                            format!("user {} active on removed rule {id:?}", user_name(user)),
                        ));
                    }
                }
            }
            // Bounded memory: the user pool is closed, so shard state and
            // the retained log must stay bounded no matter the schedule.
            if oak.user_count() > USERS {
                return Err((
                    "bounded_memory",
                    format!("{} users tracked, workload has {USERS}", oak.user_count()),
                ));
            }
            let log_bound = LOG_RETENTION * SHARD_COUNT;
            if oak.log().len() > log_bound {
                return Err((
                    "bounded_memory",
                    format!(
                        "{} log entries retained, bound {log_bound}",
                        oak.log().len()
                    ),
                ));
            }
            Ok(())
        });
        self.stats.invariant_ns += started.elapsed().as_nanos() as u64;
        result.map_err(|(invariant, detail)| self.fail(invariant, detail))
    }

    /// The crash-recovery audit: restart the disk, boot from survivors,
    /// and prove the recovered engine is exactly the replay of the event
    /// set it claims — losing nothing acknowledged when fsync was Always.
    fn recover(&mut self) -> Result<(), SimFailure> {
        self.fs.restart();

        let boot = {
            let mut attempt = 0;
            loop {
                attempt += 1;
                match OakStore::boot_with(
                    Arc::new(self.fs.clone()) as Arc<dyn StorageBackend>,
                    &self.dir,
                    self.config,
                    self.store_options,
                ) {
                    Ok(boot) => break boot,
                    Err(err) if self.fs.crashed() && attempt < MAX_BOOT_ATTEMPTS => {
                        // Died again mid-recovery (a scheduled crash
                        // landed inside boot): power-cycle and try again.
                        let _ = err;
                        self.fs.restart();
                    }
                    Err(err) => {
                        return Err(
                            self.fail("recovery", format!("boot failed after crash: {err}"))
                        );
                    }
                }
            }
        };

        let started = std::time::Instant::now();
        self.stats.invariant_checks += 2;

        // The recovered engine names its event set; the mirror is the
        // truth about what those events were.
        let covered: HashSet<u64> = boot.replayed_seqs.iter().copied().collect();
        let in_set = |seq: u64| seq < boot.watermark || covered.contains(&seq);

        let mirror = Arc::clone(&self.mirror);
        let mut entries = mirror.entries.lock().expect("mirror");
        entries.sort_by_key(|e| e.event.seq);

        // Durability: with fsync Always, every event the store
        // acknowledged while the machine was up must have survived.
        if self.scenario.fsync == FsyncPolicy::Always {
            self.stats.invariant_checks += 1;
            if let Some(lost) = entries
                .iter()
                .find(|e| !e.post_crash && !in_set(e.event.seq))
            {
                let failure = self.fail(
                    "durability",
                    format!(
                        "acknowledged event seq {} lost across crash-recovery \
                         (watermark {}, {} replayed)",
                        lost.event.seq,
                        boot.watermark,
                        boot.replayed_seqs.len()
                    ),
                );
                self.stats.invariant_ns += started.elapsed().as_nanos() as u64;
                return Err(failure);
            }
        }

        // Consistency: replaying exactly the covered mirror events into
        // a fresh engine must reproduce the recovered state, bit for bit.
        let expected = Oak::new(self.config);
        let mut seen = HashSet::new();
        for entry in entries.iter() {
            if in_set(entry.event.seq) && seen.insert(entry.event.seq) {
                expected.apply_event(&entry.event);
            }
        }
        let recovered_print = fingerprint(&boot.oak);
        let expected_print = fingerprint(&expected);
        if recovered_print != expected_print {
            self.stats.invariant_ns += started.elapsed().as_nanos() as u64;
            return Err(self.fail(
                "consistency",
                format!(
                    "recovered state diverges from replay of its own event set \
                     (watermark {}, {} replayed events, {} mirrored): \
                     recovered {} bytes vs expected {} bytes of state",
                    boot.watermark,
                    boot.replayed_seqs.len(),
                    entries.len(),
                    recovered_print.len(),
                    expected_print.len()
                ),
            ));
        }

        // Rebase the mirror to the surviving history: seqs above it will
        // be re-allocated by the recovered engine.
        entries.retain(|e| in_set(e.event.seq));
        for entry in entries.iter_mut() {
            entry.post_crash = false;
        }
        drop(entries);
        self.stats.invariant_ns += started.elapsed().as_nanos() as u64;

        // Rebuild the serving stack on the recovered engine, walking the
        // health lifecycle a real boot walks.
        let mut oak = boot.oak;
        oak.set_event_sink(Arc::new(TeeSink {
            store: Arc::clone(&boot.store),
            mirror: Arc::clone(&self.mirror),
            fs: self.fs.clone(),
        }));
        self.store = boot.store;
        // Re-attach the run's one observability bundle: the rebuilt
        // store is a fresh instance, and the rebuilt service keeps
        // recording into the same registry, so counters span lives.
        self.store.set_obs(Arc::clone(&self.obs.store));
        let mut site = SiteStore::new();
        site.add_page("/p", sim_page());
        self.service = OakService::new(oak, site)
            .with_health(HealthState::Recovering)
            .with_clock(self.clock.reader())
            .with_fetcher(SharedFetcher(Arc::clone(&self.fetcher)))
            .with_durability(Arc::clone(&self.store))
            .with_obs(Arc::clone(&self.obs))
            // Same controller across lives: pressure is node state, not
            // engine state — a reboot does not cool the machine down.
            .with_overload(Arc::clone(&self.overload))
            .into_shared();

        // Health gating: a recovering node must refuse traffic…
        self.stats.invariant_checks += 2;
        let response = self.get(HEALTH_PATH, 0);
        if response.status != StatusCode::UNAVAILABLE {
            return Err(self.fail(
                "health",
                format!(
                    "recovering node answered {} on {HEALTH_PATH}",
                    response.status.0
                ),
            ));
        }
        // …and advertise readiness once recovery completes.
        self.service.set_health(HealthState::Serving);
        let response = self.get(HEALTH_PATH, 0);
        if response.status != StatusCode::OK {
            return Err(self.fail(
                "health",
                format!(
                    "recovered node answered {} on {HEALTH_PATH}",
                    response.status.0
                ),
            ));
        }

        self.stats.recoveries += 1;
        Ok(())
    }

    /// Invariant #6 — observability consistency: the end-of-run scrape
    /// of `/oak/metrics` must pass the exposition-grammar validator,
    /// `oak_wal_append_count` must cover every event the store
    /// acknowledged while the machine was up, and
    /// `oak_http_responses_total` must sum across its status labels to
    /// exactly the requests the scenario pushed through the handler.
    ///
    /// Returns the scrape text and the rendered trace ring, so callers
    /// can assert cross-run determinism byte for byte.
    fn check_observability(&mut self) -> Result<(String, String), SimFailure> {
        let started = std::time::Instant::now();
        self.stats.invariant_checks += 3;
        // Scrape through the real endpoint, bypassing the request
        // counter so the body reflects every counted request and the
        // scrape itself is not in its own denominator.
        let response = self
            .service
            .handle(&Request::new(Method::Get, METRICS_PATH));
        let text = response.body_text();
        let result = (|| {
            if response.status != StatusCode::OK {
                return Err((
                    "observability",
                    format!("{METRICS_PATH} answered {}", response.status.0),
                ));
            }
            let errors = oak_obs::validate_exposition(&text);
            if !errors.is_empty() {
                return Err((
                    "observability",
                    format!(
                        "{METRICS_PATH} failed exposition validation: {}",
                        errors.join("; ")
                    ),
                ));
            }
            let samples = oak_obs::parse_samples(&text);
            let wal_appends = samples
                .iter()
                .find(|s| s.name == "oak_wal_append_count")
                .map(|s| s.value)
                .unwrap_or(-1.0);
            let acked = self.mirror.acked.load(Ordering::Relaxed);
            if (wal_appends as u64) < acked || wal_appends < 0.0 {
                return Err((
                    "observability",
                    format!(
                        "oak_wal_append_count {wal_appends} below the {acked} events \
                         the store acknowledged"
                    ),
                ));
            }
            let responses: f64 = samples
                .iter()
                .filter(|s| s.name == "oak_http_responses_total")
                .map(|s| s.value)
                .sum();
            if responses as u64 != self.stats.requests {
                return Err((
                    "observability",
                    format!(
                        "oak_http_responses_total sums to {responses} across status \
                         labels, handler served {} requests",
                        self.stats.requests
                    ),
                ));
            }
            Ok(())
        })();
        self.stats.invariant_ns += started.elapsed().as_nanos() as u64;
        result.map_err(|(invariant, detail)| self.fail(invariant, detail))?;
        let traces = self
            .obs
            .tracer
            .recent()
            .iter()
            .map(|t| t.to_text())
            .collect::<String>();
        Ok((text, traces))
    }
}

/// [`ScriptFetcher`] by shared reference, so the service and the world
/// (or every node of a simulated cluster) can watch the same simulated
/// CDN.
pub(crate) struct SharedFetcher(pub(crate) Arc<SimFetcher>);

impl oak_core::matching::ScriptFetcher for SharedFetcher {
    fn fetch_script(&self, url: &str) -> Option<String> {
        self.0.fetch_script(url)
    }
}

/// A clean run plus its observability artifacts: the end-of-run
/// `/oak/metrics` scrape and the rendered trace ring. Both are fully
/// determined by the scenario, so two runs of one seed must produce
/// byte-identical artifacts.
#[derive(Clone, Debug)]
pub struct ObservedRun {
    /// What the run did.
    pub stats: RunStats,
    /// The end-of-run `/oak/metrics` body (Prometheus text exposition).
    pub exposition: String,
    /// Every trace still in the ring, rendered via `Trace::to_text`,
    /// oldest first.
    pub traces: String,
}

/// Runs one scenario to completion, auditing invariants throughout.
pub fn run_scenario(scenario: &Scenario, fs_options: SimFsOptions) -> Result<RunStats, SimFailure> {
    run_scenario_observed(scenario, fs_options).map(|run| run.stats)
}

/// [`run_scenario`], also returning the end-of-run metrics scrape and
/// trace ring for determinism assertions.
pub fn run_scenario_observed(
    scenario: &Scenario,
    fs_options: SimFsOptions,
) -> Result<ObservedRun, SimFailure> {
    if scenario.cluster.is_some() {
        return Err(SimFailure {
            seed: scenario.seed,
            step: 0,
            invariant: "setup".into(),
            detail: "cluster scenario given to the single-node world; \
                     use run_cluster_scenario (or oak-sim, which dispatches)"
                .into(),
        });
    }
    let fs = SimFs::new(
        scenario.seed.wrapping_mul(0x5851_f42d_4c95_7f2d),
        fs_options,
    );
    let clock = SimClock::new();
    let fetcher = Arc::new(SimFetcher::new(clock.clone(), scenario.seed ^ 0xfe7c));
    let mirror = Arc::new(Mirror::default());
    let dir = PathBuf::from("/sim/oak-store");
    let config = OakConfig {
        log_retention: Some(LOG_RETENTION),
        ..OakConfig::default()
    };
    let store_options = StoreOptions {
        fsync: scenario.fsync,
        snapshot_every_events: scenario.snapshot_every,
        // Tiny segments force rotation + compaction to race the workload.
        rotate_segment_bytes: 4 * 1024,
        keep_snapshots: 2,
    };

    let boot = OakStore::boot_with(
        Arc::new(fs.clone()) as Arc<dyn StorageBackend>,
        &dir,
        config,
        store_options,
    )
    .map_err(|err| SimFailure {
        seed: scenario.seed,
        step: 0,
        invariant: "recovery".into(),
        detail: format!("initial boot failed: {err}"),
    })?;
    let mut oak = boot.oak;
    oak.set_event_sink(Arc::new(TeeSink {
        store: Arc::clone(&boot.store),
        mirror: Arc::clone(&mirror),
        fs: fs.clone(),
    }));
    // One observability bundle for the whole run, on simulated time:
    // histograms and spans read SimClock milliseconds as nanoseconds×1e6,
    // so every recorded duration is seed-determined.
    let obs = {
        let clock = clock.clone();
        ServiceObs::new(
            Arc::new(move || clock.now().as_millis().saturating_mul(1_000_000)),
            TRACE_RING,
            // Slow-trace logging off: simulated clock advances would
            // flag arbitrary traces as slow and spam stderr.
            0,
        )
    };
    boot.store.set_obs(Arc::clone(&obs.store));
    let mut site = SiteStore::new();
    site.add_page("/p", sim_page());
    // The production overload controller in driven mode: live signal
    // sampling is off, and the run loop below feeds it one
    // seed-determined pressure sample per step instead.
    let overload = OverloadController::driven(OverloadPolicy::default());
    let service = OakService::new(oak, site)
        .with_clock(clock.reader())
        .with_fetcher(SharedFetcher(Arc::clone(&fetcher)))
        .with_durability(Arc::clone(&boot.store))
        .with_obs(Arc::clone(&obs))
        .with_overload(Arc::clone(&overload))
        .into_shared();

    let mut world = World {
        scenario,
        dir,
        fs,
        clock,
        fetcher,
        mirror,
        obs,
        service,
        store: boot.store,
        config,
        store_options,
        stats: RunStats::default(),
        step: 0,
        overload,
        reference: RefOverload::new(),
        reports_shed: 0,
        pages_shed: 0,
    };

    for (index, step) in scenario.steps.iter().enumerate() {
        world.step = index;
        // Pressure first: the sample in effect while this step runs is a
        // pure function of (seed, index), fed to the production
        // controller and the reference model alike — then the two state
        // machines must agree before the step's traffic is judged.
        let sample = pressure_of(scenario.seed, index);
        let now_ms = world.clock.now().as_millis();
        world.overload.observe(&sample, now_ms);
        world.reference.observe(&sample);
        world.check_overload_state()?;
        world.execute(step)?;
        if world.fs.crashed() {
            world.recover()?;
        }
        world.check_step()?;
        world.stats.steps += 1;
    }

    // Let the load subside before the end-of-run audit: walk both
    // machines back to Nominal on calm samples (checking agreement at
    // every de-escalation) so the final metrics scrape is not itself
    // shed. The bound is generous — two full cooldowns per level.
    let calm = PressureSample::default();
    let mut drain = 0;
    while world.overload.state() != OverloadState::Nominal {
        let now_ms = world.clock.now().as_millis();
        world.overload.observe(&calm, now_ms);
        world.reference.observe(&calm);
        world.check_overload_state()?;
        drain += 1;
        if drain > 64 {
            return Err(world.fail(
                "overload",
                "controller failed to cool down to Nominal on calm samples".into(),
            ));
        }
    }

    // Shed accounting: every refusal the oracle witnessed is in the
    // controller's counters, and nothing else is — an acknowledged 204
    // was never retroactively shed, and no shed slipped past the oracle.
    let snap = world.overload.snapshot();
    if snap.shed_reports != world.reports_shed
        || snap.shed_pages != world.pages_shed
        || snap.shed_scrapes != 0
    {
        return Err(world.fail(
            "overload",
            format!(
                "controller counted {} report / {} page / {} scrape sheds, \
                 oracle witnessed {} / {} / 0",
                snap.shed_reports,
                snap.shed_pages,
                snap.shed_scrapes,
                world.reports_shed,
                world.pages_shed
            ),
        ));
    }
    world.stats.browned = snap.pages_browned;

    // End-of-run audit: pull the plug one last time so every scenario
    // closes with a full recovery check, whatever its schedule did.
    world.step = scenario.steps.len();
    world.fs.crash_now();
    world.recover()?;
    let (exposition, traces) = world.check_observability()?;

    world.stats.events = world.mirror.entries.lock().expect("mirror").len() as u64;
    world.stats.fs = world.fs.counters();
    world.stats.fetch = world.fetcher.faults();
    Ok(ObservedRun {
        stats: world.stats,
        exposition,
        traces,
    })
}
