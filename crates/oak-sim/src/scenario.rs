//! Scenarios: the seeded workload + fault plan a simulation executes.
//!
//! A [`Scenario`] is plain data — a seed, an fsync policy, and a step
//! list — and the whole run is a deterministic function of it. That
//! buys the two properties the harness is for: any failure replays from
//! its scenario alone, and the minimizer can delete steps and re-run to
//! shrink a failure to its essence. Scenarios round-trip through JSON so
//! CI can upload a failing one as an artifact and a developer can replay
//! it locally with `oak-sim --replay`.
//!
//! Two scenario shapes share the format. **v1** (no `"v"` field) is the
//! original single-node shape: one engine, one disk, crash-recovery
//! cycles. **v2** (`"v": 2`) adds an optional `"cluster"` spec and
//! cluster fault steps — node crashes/restarts and link partitions —
//! and runs through the replicated world instead. Every v1 document
//! ever written by this tool still decodes and replays unchanged; v2
//! encoders only emit the new fields when a cluster is present, so
//! single-node scenarios round-trip byte-identically to v1.

use oak_json::Value;
use oak_store::FsyncPolicy;

use crate::rng::SimRng;

/// Users a scenario spreads traffic over (crosses engine shards).
pub const USERS: usize = 6;
/// Simulated CDN hosts (and the rule-per-host pool).
pub const HOSTS: usize = 4;

/// Highest scenario format version this build decodes.
pub const SCENARIO_VERSION: u64 = 2;

/// The replicated deployment a v2 scenario runs against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClusterSpec {
    /// Cluster size (node ids `0..nodes`).
    pub nodes: u32,
    /// User-space partitions.
    pub partitions: u32,
    /// Replicas per partition (clamped to `nodes` by the topology).
    pub replication: usize,
}

/// One scheduled action.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Step {
    /// Register a rule against `cdn{host}`: kind 0 = remove, 1 =
    /// replace-identical, 2 = replace-different; `ttl_ms` 0 = no TTL.
    AddRule { host: u64, kind: u64, ttl_ms: u64 },
    /// Retire the `nth` live rule (modulo the table size).
    RemoveRule { nth: u64 },
    /// POST a performance report for `u-{user}`; a violating one names
    /// `cdn{host}` as the slow server. `binary` selects the
    /// `application/x-oak-report` wire encoding over JSON, so every
    /// scenario exercises both decode paths against the same invariants.
    Ingest {
        user: u64,
        host: u64,
        violating: bool,
        binary: bool,
    },
    /// GET the page as `u-{user}` (exercises rewrite + TTL expiry).
    Serve { user: u64 },
    /// Operator force-activates the `nth` rule for `u-{user}`.
    ForceActivate { user: u64, nth: u64 },
    /// Operator force-deactivates the `nth` rule for `u-{user}`.
    ForceDeactivate { user: u64, nth: u64 },
    /// Advance simulated time.
    AdvanceClock { ms: u64 },
    /// Change `cdn{host}`'s fetch behavior: 0 healthy, 1 unreachable,
    /// 2 hanging, 3 flaky.
    Partition { host: u64, mode: u64 },
    /// Force a snapshot + compaction now.
    Snapshot,
    /// Evict users idle longer than `idle_ms`.
    Prune { idle_ms: u64 },
    /// Arm the crash trigger: the machine dies `ops_ahead` storage
    /// operations from now; `survival_seed` decides what the disk keeps.
    /// Recovery (and its invariant audit) runs when the crash fires.
    Crash { ops_ahead: u64, survival_seed: u64 },
    /// Probe `/oak/health` and assert it matches the node's lifecycle.
    CheckHealth,
    /// (v2) Crash cluster node `node % nodes`: its disk stops
    /// `ops_ahead` storage operations from now (`0` = immediately),
    /// `survival_seed` decides what the disk keeps. The node stays down
    /// until a [`Step::RestartNode`] (or the end-of-run audit) revives
    /// it, so failover has to happen without it.
    CrashNode {
        node: u64,
        ops_ahead: u64,
        survival_seed: u64,
    },
    /// (v2) Power a crashed node back on: recover its partitions from
    /// surviving disk and rejoin as a follower.
    RestartNode { node: u64 },
    /// (v2) Cut the network link between two cluster nodes (both
    /// directions). Messages already in flight still arrive.
    PartitionLink { a: u64, b: u64 },
    /// (v2) Restore one cut link.
    HealLink { a: u64, b: u64 },
    /// (v2) Restore every cut link.
    HealAll,
}

impl Step {
    fn name(&self) -> &'static str {
        match self {
            Step::AddRule { .. } => "add_rule",
            Step::RemoveRule { .. } => "remove_rule",
            Step::Ingest { .. } => "ingest",
            Step::Serve { .. } => "serve",
            Step::ForceActivate { .. } => "force_activate",
            Step::ForceDeactivate { .. } => "force_deactivate",
            Step::AdvanceClock { .. } => "advance_clock",
            Step::Partition { .. } => "partition",
            Step::Snapshot => "snapshot",
            Step::Prune { .. } => "prune",
            Step::Crash { .. } => "crash",
            Step::CheckHealth => "check_health",
            Step::CrashNode { .. } => "crash_node",
            Step::RestartNode { .. } => "restart_node",
            Step::PartitionLink { .. } => "partition_link",
            Step::HealLink { .. } => "heal_link",
            Step::HealAll => "heal_all",
        }
    }
}

/// A complete, replayable simulation input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scenario {
    /// The seed everything else was derived from (kept for provenance
    /// and for re-seeding subsystems at run time).
    pub seed: u64,
    /// WAL fsync cadence for the run. `Always` arms the strict
    /// acknowledged-durability invariant; the others still get the exact
    /// consistency audit.
    pub fsync: FsyncPolicy,
    /// Snapshot-compaction threshold (events), kept small so compaction
    /// races the workload.
    pub snapshot_every: u64,
    /// `Some` makes this a v2 cluster scenario: the step list runs
    /// against a replicated deployment (the cluster world forces
    /// `FsyncPolicy::Always` — replication acks assert durability).
    pub cluster: Option<ClusterSpec>,
    /// The schedule.
    pub steps: Vec<Step>,
}

impl Scenario {
    /// The canonical scenario for `seed`: a mixed workload of ingest,
    /// serves, rule churn, time, fetch partitions, and crash-recovery
    /// cycles, ending in one final crash so every run closes with a full
    /// recovery audit.
    pub fn generate(seed: u64) -> Scenario {
        let mut rng = SimRng::new(seed);
        let fsync = match rng.below(4) {
            0 | 1 => FsyncPolicy::Always,
            2 => FsyncPolicy::EveryN(rng.range(1, 16)),
            _ => FsyncPolicy::Never,
        };
        let mut steps = Vec::new();
        // Open with rules so the workload has something to activate.
        for host in 0..2 {
            steps.push(Step::AddRule {
                host,
                kind: rng.below(3),
                ttl_ms: if rng.chance(1, 2) {
                    rng.range(20, 200)
                } else {
                    0
                },
            });
        }
        let body = rng.range(30, 120);
        for _ in 0..body {
            steps.push(match rng.below(100) {
                0..=29 => Step::Ingest {
                    user: rng.below(USERS as u64),
                    host: rng.below(HOSTS as u64),
                    violating: rng.chance(3, 4),
                    binary: rng.chance(1, 2),
                },
                30..=44 => Step::Serve {
                    user: rng.below(USERS as u64),
                },
                45..=58 => Step::AdvanceClock {
                    ms: rng.range(5, 400),
                },
                59..=63 => Step::AddRule {
                    host: rng.below(HOSTS as u64),
                    kind: rng.below(3),
                    ttl_ms: if rng.chance(1, 2) {
                        rng.range(20, 200)
                    } else {
                        0
                    },
                },
                64..=67 => Step::RemoveRule { nth: rng.below(8) },
                68..=73 => {
                    if rng.chance(1, 2) {
                        Step::ForceActivate {
                            user: rng.below(USERS as u64),
                            nth: rng.below(8),
                        }
                    } else {
                        Step::ForceDeactivate {
                            user: rng.below(USERS as u64),
                            nth: rng.below(8),
                        }
                    }
                }
                74..=81 => Step::Partition {
                    host: rng.below(HOSTS as u64),
                    mode: rng.below(4),
                },
                82..=86 => Step::Snapshot,
                87..=90 => Step::Prune {
                    idle_ms: rng.range(50, 500),
                },
                91..=96 => Step::Crash {
                    ops_ahead: rng.range(1, 40),
                    survival_seed: rng.next_u64(),
                },
                _ => Step::CheckHealth,
            });
        }
        steps.push(Step::Crash {
            ops_ahead: rng.range(1, 10),
            survival_seed: rng.next_u64(),
        });
        Scenario {
            seed,
            fsync,
            snapshot_every: rng.range(8, 64),
            cluster: None,
            steps,
        }
    }

    /// The canonical **cluster** scenario for `seed`: client traffic
    /// and rule churn interleaved with node crashes, restarts, and link
    /// partitions against a 3–5 node replicated deployment. Fsync is
    /// always `Always` — a replication ack asserts durability, so a
    /// looser policy would make the losslessness invariant vacuous.
    pub fn generate_cluster(seed: u64) -> Scenario {
        let mut rng = SimRng::new(seed ^ 0x636c_7573_7465_7232);
        let nodes = rng.range(3, 6) as u32;
        let spec = ClusterSpec {
            nodes,
            partitions: rng.range(1, 4) as u32,
            // Majority quorums need 3 replicas to survive one failure.
            replication: 3,
        };
        let mut steps = Vec::new();
        // Let the first elections seat before traffic arrives.
        steps.push(Step::AdvanceClock {
            ms: rng.range(600, 1200),
        });
        for host in 0..2 {
            steps.push(Step::AddRule {
                host,
                kind: rng.below(3),
                ttl_ms: 0,
            });
        }
        let body = rng.range(40, 140);
        for _ in 0..body {
            steps.push(match rng.below(100) {
                0..=27 => Step::Ingest {
                    user: rng.below(USERS as u64),
                    host: rng.below(HOSTS as u64),
                    violating: rng.chance(3, 4),
                    binary: rng.chance(1, 2),
                },
                28..=38 => Step::Serve {
                    user: rng.below(USERS as u64),
                },
                // Cluster schedules lean on time: heartbeats, elections,
                // and WAL shipping all ride the tick cadence.
                39..=58 => Step::AdvanceClock {
                    ms: rng.range(20, 600),
                },
                59..=62 => Step::AddRule {
                    host: rng.below(HOSTS as u64),
                    kind: rng.below(3),
                    ttl_ms: 0,
                },
                63..=64 => Step::RemoveRule { nth: rng.below(8) },
                65..=68 => {
                    if rng.chance(1, 2) {
                        Step::ForceActivate {
                            user: rng.below(USERS as u64),
                            nth: rng.below(8),
                        }
                    } else {
                        Step::ForceDeactivate {
                            user: rng.below(USERS as u64),
                            nth: rng.below(8),
                        }
                    }
                }
                69..=76 => Step::PartitionLink {
                    a: rng.below(nodes as u64),
                    b: rng.below(nodes as u64),
                },
                77..=80 => Step::HealLink {
                    a: rng.below(nodes as u64),
                    b: rng.below(nodes as u64),
                },
                81..=83 => Step::HealAll,
                84..=90 => Step::CrashNode {
                    node: rng.below(nodes as u64),
                    ops_ahead: rng.range(0, 60),
                    survival_seed: rng.next_u64(),
                },
                91..=96 => Step::RestartNode {
                    node: rng.below(nodes as u64),
                },
                _ => Step::CheckHealth,
            });
        }
        Scenario {
            seed,
            fsync: FsyncPolicy::Always,
            snapshot_every: rng.range(8, 64),
            cluster: Some(spec),
            steps,
        }
    }

    /// The mixed CI pool: even seeds replay the single-node shape, odd
    /// seeds the cluster shape, so one sweep covers both worlds.
    pub fn generate_mixed(seed: u64) -> Scenario {
        if seed.is_multiple_of(2) {
            Scenario::generate(seed)
        } else {
            Scenario::generate_cluster(seed)
        }
    }

    /// How many crash-recovery cycles the schedule holds.
    pub fn crash_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, Step::Crash { .. } | Step::CrashNode { .. }))
            .count()
    }

    /// Encodes the scenario as JSON. `u64` fields ride as decimal
    /// strings: seeds use all 64 bits and must survive the trip exactly,
    /// which `f64` numbers would not.
    pub fn to_value(&self) -> Value {
        let mut doc = Value::object();
        // Single-node scenarios stay in the v1 shape (no "v" field) so
        // artifacts from older builds and this one are byte-compatible;
        // only an actual cluster needs the v2 envelope.
        if let Some(spec) = &self.cluster {
            doc.set("v", SCENARIO_VERSION);
            let mut cluster = Value::object();
            cluster.set("nodes", spec.nodes.to_string());
            cluster.set("partitions", spec.partitions.to_string());
            cluster.set("replication", spec.replication.to_string());
            doc.set("cluster", cluster);
        }
        doc.set("seed", self.seed.to_string());
        doc.set(
            "fsync",
            match self.fsync {
                FsyncPolicy::Always => "always".to_owned(),
                FsyncPolicy::EveryN(n) => n.to_string(),
                FsyncPolicy::Never => "never".to_owned(),
            },
        );
        doc.set("snapshot_every", self.snapshot_every.to_string());
        let mut steps = Value::array();
        for step in &self.steps {
            let mut row = Value::object();
            row.set("op", step.name());
            let mut arg = |key: &str, value: u64| row.set(key, value.to_string());
            match step {
                Step::AddRule { host, kind, ttl_ms } => {
                    arg("host", *host);
                    arg("kind", *kind);
                    arg("ttl_ms", *ttl_ms);
                }
                Step::RemoveRule { nth } => arg("nth", *nth),
                Step::Ingest {
                    user,
                    host,
                    violating,
                    binary,
                } => {
                    arg("user", *user);
                    arg("host", *host);
                    arg("violating", u64::from(*violating));
                    arg("binary", u64::from(*binary));
                }
                Step::Serve { user } => arg("user", *user),
                Step::ForceActivate { user, nth } | Step::ForceDeactivate { user, nth } => {
                    arg("user", *user);
                    arg("nth", *nth);
                }
                Step::AdvanceClock { ms } => arg("ms", *ms),
                Step::Partition { host, mode } => {
                    arg("host", *host);
                    arg("mode", *mode);
                }
                Step::Snapshot | Step::CheckHealth | Step::HealAll => {}
                Step::Prune { idle_ms } => arg("idle_ms", *idle_ms),
                Step::Crash {
                    ops_ahead,
                    survival_seed,
                } => {
                    arg("ops_ahead", *ops_ahead);
                    arg("survival_seed", *survival_seed);
                }
                Step::CrashNode {
                    node,
                    ops_ahead,
                    survival_seed,
                } => {
                    arg("node", *node);
                    arg("ops_ahead", *ops_ahead);
                    arg("survival_seed", *survival_seed);
                }
                Step::RestartNode { node } => arg("node", *node),
                Step::PartitionLink { a, b } | Step::HealLink { a, b } => {
                    arg("a", *a);
                    arg("b", *b);
                }
            }
            steps.push(row);
        }
        doc.set("steps", steps);
        doc
    }

    /// Decodes a scenario previously encoded with [`Scenario::to_value`].
    pub fn from_value(doc: &Value) -> Result<Scenario, String> {
        let field = |row: &Value, key: &str| -> Result<u64, String> {
            row.get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("missing field {key:?}"))?
                .parse::<u64>()
                .map_err(|_| format!("field {key:?} is not a u64"))
        };
        let version = match doc.get("v") {
            None => 1,
            Some(v) => v
                .as_u64()
                .ok_or_else(|| "field \"v\" is not a version number".to_owned())?,
        };
        if version > SCENARIO_VERSION {
            return Err(format!(
                "scenario version {version} is newer than this build understands \
                 (max {SCENARIO_VERSION})"
            ));
        }
        let cluster = match doc.get("cluster") {
            None => None,
            Some(spec) => Some(ClusterSpec {
                nodes: field(spec, "nodes")? as u32,
                partitions: field(spec, "partitions")? as u32,
                replication: field(spec, "replication")? as usize,
            }),
        };
        let fsync = match doc.get("fsync").and_then(Value::as_str) {
            Some("always") => FsyncPolicy::Always,
            Some("never") => FsyncPolicy::Never,
            Some(n) => FsyncPolicy::EveryN(n.parse().map_err(|_| "bad fsync cadence".to_owned())?),
            None => return Err("missing field \"fsync\"".into()),
        };
        let mut steps = Vec::new();
        for row in doc
            .get("steps")
            .and_then(Value::as_array)
            .ok_or("missing field \"steps\"")?
        {
            let op = row
                .get("op")
                .and_then(Value::as_str)
                .ok_or("step without op")?;
            steps.push(match op {
                "add_rule" => Step::AddRule {
                    host: field(row, "host")?,
                    kind: field(row, "kind")?,
                    ttl_ms: field(row, "ttl_ms")?,
                },
                "remove_rule" => Step::RemoveRule {
                    nth: field(row, "nth")?,
                },
                "ingest" => Step::Ingest {
                    user: field(row, "user")?,
                    host: field(row, "host")?,
                    violating: field(row, "violating")? != 0,
                    // Absent in scenarios minimized before the binary
                    // encoding existed; those replay as JSON ingests.
                    binary: match row.get("binary") {
                        Some(_) => field(row, "binary")? != 0,
                        None => false,
                    },
                },
                "serve" => Step::Serve {
                    user: field(row, "user")?,
                },
                "force_activate" => Step::ForceActivate {
                    user: field(row, "user")?,
                    nth: field(row, "nth")?,
                },
                "force_deactivate" => Step::ForceDeactivate {
                    user: field(row, "user")?,
                    nth: field(row, "nth")?,
                },
                "advance_clock" => Step::AdvanceClock {
                    ms: field(row, "ms")?,
                },
                "partition" => Step::Partition {
                    host: field(row, "host")?,
                    mode: field(row, "mode")?,
                },
                "snapshot" => Step::Snapshot,
                "prune" => Step::Prune {
                    idle_ms: field(row, "idle_ms")?,
                },
                "crash" => Step::Crash {
                    ops_ahead: field(row, "ops_ahead")?,
                    survival_seed: field(row, "survival_seed")?,
                },
                "check_health" => Step::CheckHealth,
                "crash_node" => Step::CrashNode {
                    node: field(row, "node")?,
                    ops_ahead: field(row, "ops_ahead")?,
                    survival_seed: field(row, "survival_seed")?,
                },
                "restart_node" => Step::RestartNode {
                    node: field(row, "node")?,
                },
                "partition_link" => Step::PartitionLink {
                    a: field(row, "a")?,
                    b: field(row, "b")?,
                },
                "heal_link" => Step::HealLink {
                    a: field(row, "a")?,
                    b: field(row, "b")?,
                },
                "heal_all" => Step::HealAll,
                other => return Err(format!("unknown step op {other:?}")),
            });
        }
        Ok(Scenario {
            seed: field(doc, "seed")?,
            fsync,
            snapshot_every: field(doc, "snapshot_every")?,
            cluster,
            steps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::{Scenario, Step};

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(Scenario::generate(7), Scenario::generate(7));
        assert_ne!(Scenario::generate(7), Scenario::generate(8));
    }

    #[test]
    fn every_scenario_ends_with_a_crash_audit() {
        for seed in 0..20 {
            let scenario = Scenario::generate(seed);
            assert!(matches!(scenario.steps.last(), Some(Step::Crash { .. })));
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        for seed in [0, 1, 42, u64::MAX / 3] {
            let scenario = Scenario::generate(seed);
            let text = scenario.to_value().to_string();
            let parsed = Scenario::from_value(&oak_json::parse(&text).unwrap()).unwrap();
            assert_eq!(scenario, parsed);
        }
    }

    #[test]
    fn cluster_scenarios_round_trip_with_version_tag() {
        for seed in [0, 1, 9, 77] {
            let scenario = Scenario::generate_cluster(seed);
            assert!(scenario.cluster.is_some());
            let text = scenario.to_value().to_string();
            assert!(text.contains("\"v\":2"), "v2 envelope missing: {text}");
            let parsed = Scenario::from_value(&oak_json::parse(&text).unwrap()).unwrap();
            assert_eq!(scenario, parsed);
        }
    }

    #[test]
    fn single_node_scenarios_still_encode_as_v1() {
        // No "v", no "cluster": byte-compatible with artifacts written
        // before the cluster existed.
        let text = Scenario::generate(5).to_value().to_string();
        assert!(!text.contains("\"v\""));
        assert!(!text.contains("\"cluster\""));
    }

    #[test]
    fn future_versions_are_rejected_with_a_clear_error() {
        let mut doc = Scenario::generate(1).to_value();
        doc.set("v", 3u64);
        let err = Scenario::from_value(&doc).unwrap_err();
        assert!(err.contains("version 3"), "unhelpful error: {err}");
    }

    #[test]
    fn mixed_pool_alternates_shapes() {
        assert!(Scenario::generate_mixed(0).cluster.is_none());
        assert!(Scenario::generate_mixed(1).cluster.is_some());
        assert_eq!(Scenario::generate_mixed(3), Scenario::generate_cluster(3));
    }
}
