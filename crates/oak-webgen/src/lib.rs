//! Synthetic web corpus generation.
//!
//! The paper's measurement study crawls the Alexa Top 500 from 25 vantage
//! points (§2, §5.3). That corpus is not reproducible offline, so this
//! crate generates a synthetic population calibrated to the paper's own
//! published marginals, and the experiment harness then *re-measures*
//! everything through the real Oak pipeline:
//!
//! - external-object fraction per site centered near the paper's ≈ 75 %
//!   median (Fig. 1),
//! - a provider pool with popularity skew, dominated in the problem tier
//!   by ads/analytics/social domains (Table 1),
//! - per-provider impairments split between transient congestion and
//!   persistent regional degradation (Fig. 3's ≈ 52 % one-day churn),
//! - four inclusion mechanisms per provider — direct `src`, inline-script
//!   text, via external JavaScript, and fully dynamic — in proportions
//!   that land Fig. 8's three matching-level medians (≈ 42/60/81 %),
//! - the paper's client split: half North America, the rest Europe and
//!   Asia/Oceania (§5).
//!
//! # Examples
//!
//! ```
//! use oak_webgen::{Corpus, CorpusConfig};
//!
//! let corpus = Corpus::generate(&CorpusConfig { sites: 10, ..CorpusConfig::default() });
//! assert_eq!(corpus.sites.len(), 10);
//! let site = &corpus.sites[0];
//! assert!(site.html.contains("<html>"));
//! assert!(site.objects.iter().any(|o| o.external));
//! ```

mod gen;
mod model;

pub use gen::standard_clients;
pub use model::{Category, Corpus, CorpusConfig, Inclusion, PageObject, Provider, Site};

#[cfg(test)]
mod tests;
