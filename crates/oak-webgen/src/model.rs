//! Corpus data model.

use std::collections::BTreeMap;

use oak_net::{ClientId, ServerId, World};

/// What kind of resource a provider serves; drives both page content and
/// the provider's quality mix (Table 1: "Advertisements, social
/// networking, and analytics dominate" the outliers).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// Assets on the site's own origin (never external).
    OriginAsset,
    /// Commodity CDN assets: images, stylesheets, bundles.
    Cdn,
    /// Advertising and analytics beacons/scripts.
    AdsAnalytics,
    /// Social-network widgets.
    Social,
    /// Video players and posters.
    Video,
    /// Web-font services.
    Fonts,
}

impl Category {
    /// Display label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            Category::OriginAsset => "Origin",
            Category::Cdn => "CDN",
            Category::AdsAnalytics => "Ads/Analytics",
            Category::Social => "Social Networking",
            Category::Video => "Video",
            Category::Fonts => "Fonts",
        }
    }
}

/// How the index page references an object — the mechanism determines at
/// which level Oak's connection-dependency matching can tie the object's
/// server to a rule (Fig. 8).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Inclusion {
    /// A plain `src`/`href` attribute: matchable at level 1.
    SrcAttr,
    /// An inline script that builds the URL from a domain string:
    /// matchable at level 2.
    InlineScript,
    /// Loaded by an external script hosted at `loader_url`: matchable at
    /// level 3 (the loader's body must be fetched and searched).
    ExternalJs {
        /// URL of the loader script that references this object.
        loader_url: String,
    },
    /// Chosen at runtime by opaque logic; not matchable at any level —
    /// the residue Fig. 8's top curve never reaches.
    Dynamic,
}

/// One object the page causes a client to fetch.
#[derive(Clone, Debug)]
pub struct PageObject {
    /// Absolute URL.
    pub url: String,
    /// The URL's hostname.
    pub domain: String,
    /// The serving host in the network model.
    pub server: ServerId,
    /// Object size, bytes.
    pub bytes: u64,
    /// Provider category.
    pub category: Category,
    /// How the index page references it.
    pub inclusion: Inclusion,
    /// True if the domain is outside the site's origin site
    /// (sub-domains of the origin are *not* external; paper §2).
    pub external: bool,
    /// The exact HTML snippet in the index page that references this
    /// object (rule default-text candidates); `None` for dynamic objects
    /// and objects referenced only inside an external script.
    pub snippet: Option<String>,
}

/// A third-party provider in the pool.
#[derive(Clone, Debug)]
pub struct Provider {
    /// The provider's primary domain.
    pub domain: String,
    /// Its server in the network model.
    pub server: ServerId,
    /// What it serves.
    pub category: Category,
    /// Popularity weight (Zipf-like; popular providers appear on many
    /// sites, which is what makes Table 3's "common" rules common).
    pub weight: f64,
    /// Whether the provider sends `Timing-Allow-Origin`, making its
    /// timings visible to the JavaScript Resource Timing API. §6 notes
    /// that "this opt-in behavior means many providers are not visible
    /// with the API, rendering Oak less effective" — the
    /// `ablation_resource_timing` experiment quantifies exactly that.
    pub timing_allow_origin: bool,
}

/// One generated site.
#[derive(Clone, Debug)]
pub struct Site {
    /// Site hostname, e.g. `site042.example`.
    pub host: String,
    /// The origin server.
    pub origin: ServerId,
    /// Path of the index page.
    pub index_path: String,
    /// The generated index HTML.
    pub html: String,
    /// Everything a client fetches when loading the page.
    pub objects: Vec<PageObject>,
}

impl Site {
    /// The absolute URL of the index page.
    pub fn index_url(&self) -> String {
        format!("http://{}{}", self.host, self.index_path)
    }

    /// Distinct external domains contacted by this page.
    pub fn external_domains(&self) -> Vec<&str> {
        let mut domains: Vec<&str> = self
            .objects
            .iter()
            .filter(|o| o.external)
            .map(|o| o.domain.as_str())
            .collect();
        domains.sort_unstable();
        domains.dedup();
        domains
    }

    /// Fraction of objects loaded from external hosts (Fig. 1's metric).
    pub fn external_fraction(&self) -> f64 {
        if self.objects.is_empty() {
            return 0.0;
        }
        self.objects.iter().filter(|o| o.external).count() as f64 / self.objects.len() as f64
    }
}

/// Generation parameters.
#[derive(Clone, Debug)]
pub struct CorpusConfig {
    /// Number of sites (the paper uses the Alexa Top 500).
    pub sites: usize,
    /// Master seed; every corpus quantity derives from it.
    pub seed: u64,
    /// Size of the shared third-party provider pool.
    pub providers: usize,
    /// Probability that a provider carries a persistent regional
    /// impairment (the Fig. 3 "consistent" outlier population).
    pub persistent_impairment_rate: f64,
    /// Expected number of transient congestion windows per provider per
    /// simulated week (the Fig. 3 "ephemeral" population).
    pub transient_windows_per_week: f64,
    /// Fraction of sites that are ad-chain-heavy: most of their directly
    /// included ad scripts are re-routed through dependent loader chains
    /// (each hop's body fetches the next), the adPerf page shape that
    /// makes mobile CPUs pay per hop. 0 (the default) generates no
    /// chains and leaves the corpus byte-identical to earlier versions.
    pub ad_heavy_fraction: f64,
    /// Number of chained loader hops in front of each re-routed ad
    /// object on ad-heavy sites. 0 disables chains regardless of
    /// `ad_heavy_fraction`.
    pub ad_chain_depth: usize,
}

impl Default for CorpusConfig {
    /// Paper-scale defaults: 500 sites, 120 providers, calibrated
    /// impairment rates.
    fn default() -> CorpusConfig {
        CorpusConfig {
            sites: 500,
            seed: DEFAULT_SEED,
            providers: 120,
            persistent_impairment_rate: 0.02,
            transient_windows_per_week: 1.8,
            ad_heavy_fraction: 0.0,
            ad_chain_depth: 0,
        }
    }
}

/// Default corpus seed; experiments that want other draws pass their own.
pub const DEFAULT_SEED: u64 = 0x04B_0B5E55;

/// The generated corpus: a network world plus the sites living in it.
#[derive(Clone, Debug)]
pub struct Corpus {
    /// The network model containing every origin, provider, replica, and
    /// client.
    pub world: World,
    /// The provider pool.
    pub providers: Vec<Provider>,
    /// The generated sites.
    pub sites: Vec<Site>,
    /// The paper's 25 vantage points (half NA, rest EU + AS/OC).
    pub clients: Vec<ClientId>,
    /// Replica servers (NA, EU, AS) available as rule alternatives
    /// (§5.3 "Alternative Servers").
    pub replicas: Vec<ServerId>,
    /// Bodies of external loader scripts, keyed by URL.
    pub script_bodies: BTreeMap<String, String>,
}

impl Corpus {
    /// The body of an external script, if `url` is one — back this into a
    /// script fetcher for matching experiments.
    pub fn script_body(&self, url: &str) -> Option<String> {
        self.script_bodies.get(url).cloned()
    }

    /// The provider owning `domain`, if any.
    pub fn provider_by_domain(&self, domain: &str) -> Option<&Provider> {
        self.providers.iter().find(|p| p.domain == domain)
    }
}
