//! Corpus generation.

use std::collections::BTreeMap;

use oak_net::{
    ClientId, Impairment, ImpairmentKind, Quality, Region, ServerId, SimTime, StatelessRng,
    WorldBuilder,
};

use crate::model::{Category, Corpus, CorpusConfig, Inclusion, PageObject, Provider, Site};

/// Number of shared tag-manager hosts serving sites' loader scripts.
const TAG_MANAGERS: u64 = 4;

/// Adds the paper's 25 vantage points to a world: "half of which are in
/// North America, and the remainder evenly spread between Europe and Asia
/// (including Oceania)" (§5).
pub fn standard_clients(builder: &mut WorldBuilder) -> Vec<ClientId> {
    let mut clients = Vec::with_capacity(25);
    for _ in 0..13 {
        clients.push(builder.client(Region::NorthAmerica));
    }
    for _ in 0..6 {
        clients.push(builder.client(Region::Europe));
    }
    for _ in 0..4 {
        clients.push(builder.client(Region::Asia));
    }
    for _ in 0..2 {
        clients.push(builder.client(Region::Oceania));
    }
    clients
}

impl Corpus {
    /// Generates a corpus from `config`. Deterministic in `config.seed`.
    pub fn generate(config: &CorpusConfig) -> Corpus {
        Generator::new(config).run()
    }
}

struct Generator<'c> {
    config: &'c CorpusConfig,
    builder: WorldBuilder,
    providers: Vec<Provider>,
    script_bodies: BTreeMap<String, String>,
}

impl<'c> Generator<'c> {
    fn new(config: &'c CorpusConfig) -> Generator<'c> {
        Generator {
            config,
            builder: WorldBuilder::new(config.seed),
            providers: Vec::new(),
            script_bodies: BTreeMap::new(),
        }
    }

    fn rng(&self, salt: u64, extra: u64) -> StatelessRng {
        StatelessRng::keyed(self.config.seed, &[salt, extra])
    }

    fn run(mut self) -> Corpus {
        self.make_providers();
        self.make_tag_managers();
        let replicas = self.make_replicas();
        let clients = standard_clients(&mut self.builder);
        let sites: Vec<Site> = (0..self.config.sites).map(|i| self.make_site(i)).collect();
        self.add_impairments();

        Corpus {
            world: self.builder.build(),
            providers: self.providers,
            sites,
            clients,
            replicas,
            script_bodies: self.script_bodies,
        }
    }

    // ------------------------------------------------------------------
    // Providers
    // ------------------------------------------------------------------

    fn make_providers(&mut self) {
        for i in 0..self.config.providers {
            let mut rng = self.rng(0x11, i as u64);
            let category = pick_category(&mut rng);
            let domain = provider_domain(category, i);
            // Popularity (low pool index) correlates with being well-run:
            // the doubleclicks and font APIs of the world are fast and
            // globally distributed; the long tail is where single-homed
            // and under-provisioned providers live. Without this coupling
            // a single popular-but-poor provider contaminates half the
            // corpus, which real Alexa-500 pages do not show.
            let popular = i < 25;
            let quality = if popular {
                // A top-25 provider appears on a large fraction of all
                // sites; one Poor or single-homed provider there would
                // mark hundreds of sites at once, which the paper's
                // census rules out. Popular services are well-run and
                // globally distributed.
                Quality::Good
            } else {
                pick_quality(category, &mut rng)
            };
            let region = pick_provider_region(&mut rng);
            let distributed = popular
                || rng.chance(match quality {
                    Quality::Good => 0.985,
                    Quality::Mediocre => 0.95,
                    Quality::Poor => 0.90,
                });
            let server = self
                .builder
                .server_opts(&domain, region, quality, distributed);
            // Popularity is Zipf-like in pool order: a handful of
            // providers (big font/ad networks) appear on most sites.
            let weight = 1.0 / ((i + 1) as f64).powf(0.85);
            self.providers.push(Provider {
                domain,
                server,
                category,
                weight,
                // Roughly a third of real third parties opt in to the
                // Resource Timing API; popular CDNs more often than the
                // long tail.
                timing_allow_origin: rng.chance(if popular { 0.6 } else { 0.3 }),
            });
        }
    }

    fn make_replicas(&mut self) -> Vec<ServerId> {
        [
            ("replica-na.example", Region::NorthAmerica),
            ("replica-eu.example", Region::Europe),
            ("replica-as.example", Region::Asia),
        ]
        .into_iter()
        .map(|(host, region)| {
            let id = self.builder.server(host, region, Quality::Good);
            // The paper's alternates are dedicated servers serving only
            // the experiment — idle, fast, and flat around the clock —
            // unlike the production third parties they stand in for.
            self.builder.tune_server(id, |s| {
                s.processing_ms = 5.0;
                s.bandwidth_kbps = 200_000.0;
                s.diurnal_amplitude = 0.05;
                s.affinity_neutral = true;
            });
            id
        })
        .collect()
    }

    /// The shared tag-manager hosts that serve sites' loader scripts.
    /// They sit past `config.providers` in the pool, so regular site
    /// sampling never picks them: a tag manager's only role on a page is
    /// the loader `<script src>` tag.
    fn make_tag_managers(&mut self) {
        for k in 0..TAG_MANAGERS {
            let domain = format!("tags.mgr{k}.example");
            let server =
                self.builder
                    .distributed_server(&domain, Region::NorthAmerica, Quality::Good);
            self.providers.push(Provider {
                domain,
                server,
                category: Category::AdsAnalytics,
                weight: 0.0,
                timing_allow_origin: true,
            });
        }
    }

    /// Weighted sample of `k` distinct provider indices from the regular
    /// pool (tag managers excluded).
    fn pick_providers(&self, rng: &mut StatelessRng, k: usize) -> Vec<usize> {
        let pool = &self.providers[..self.config.providers];
        let total: f64 = pool.iter().map(|p| p.weight).sum();
        let mut chosen = Vec::with_capacity(k);
        let mut attempts = 0;
        while chosen.len() < k && attempts < k * 40 {
            attempts += 1;
            let mut ticket = rng.next_f64() * total;
            let mut idx = 0;
            for (i, p) in pool.iter().enumerate() {
                ticket -= p.weight;
                if ticket <= 0.0 {
                    idx = i;
                    break;
                }
            }
            if !chosen.contains(&idx) {
                chosen.push(idx);
            }
        }
        chosen
    }

    // ------------------------------------------------------------------
    // Sites
    // ------------------------------------------------------------------

    fn make_site(&mut self, index: usize) -> Site {
        let mut rng = self.rng(0x22, index as u64);
        let host = format!("site{index:03}.example");
        let static_host = format!("static.site{index:03}.example");
        let origin_region = match rng.below(4) {
            0 | 1 => Region::NorthAmerica,
            2 => Region::Europe,
            _ => Region::Asia,
        };
        let origin_quality = if rng.chance(0.7) {
            Quality::Good
        } else {
            Quality::Mediocre
        };
        let origin = self.builder.server(&host, origin_region, origin_quality);
        self.builder.alias(&static_host, origin);

        // Object counts: total ≈ lognormal around 45, external fraction
        // centered near the paper's 75 % median (Fig. 1).
        let total = ((45.0 * rng.lognormal(0.65)) as usize).clamp(8, 200);
        let ext_fraction = (0.74 + rng.normal() * 0.13).clamp(0.2, 0.97);
        let external_count = ((total as f64 * ext_fraction) as usize).min(total);
        let origin_count = total - external_count;

        // Spread external objects over a weighted provider selection.
        let provider_count = ((external_count as f64 / 3.0).round() as usize)
            .clamp(2, 60)
            .min(external_count.max(2));
        let provider_indices = self.pick_providers(&mut rng, provider_count);

        let mut objects = Vec::with_capacity(total);
        // Origin-hosted assets, some on the static sub-domain (which must
        // NOT count as external).
        for j in 0..origin_count {
            let domain = if rng.chance(0.6) { &host } else { &static_host };
            let (path, bytes) = object_shape(Category::OriginAsset, j, &mut rng);
            let url = format!("http://{domain}{path}");
            // Half of same-host references are root-relative, as on real
            // pages; the browser resolves them against the page URL.
            let snippet = if domain == &host && rng.chance(0.5) {
                src_snippet(Category::OriginAsset, &path)
            } else {
                src_snippet(Category::OriginAsset, &url)
            };
            objects.push(PageObject {
                url,
                domain: domain.clone(),
                server: origin,
                bytes,
                category: Category::OriginAsset,
                inclusion: Inclusion::SrcAttr,
                external: false,
                snippet: Some(snippet),
            });
        }

        // External objects: each chosen provider gets a share and one
        // inclusion mechanism for this site.
        let mut loader_lines: Vec<String> = Vec::new();
        let mut loader_host: Option<String> = None;
        for (slot, &pi) in provider_indices.iter().enumerate() {
            let provider = self.providers[pi].clone();
            let share = (external_count / provider_indices.len()).max(1);
            let inclusion_draw = rng.next_f64();
            for j in 0..share {
                if objects.len() >= total {
                    break;
                }
                let (path, bytes) = object_shape(provider.category, slot * 16 + j, &mut rng);
                let url = format!("http://{}{path}", provider.domain);
                // Mechanism proportions calibrated to Fig. 8's medians:
                // 42 % direct, +18 % text, +21 % external JS, ~19 % dynamic.
                let (inclusion, snippet) = if inclusion_draw < 0.42 {
                    let s = src_snippet(provider.category, &url);
                    (Inclusion::SrcAttr, Some(s))
                } else if inclusion_draw < 0.60 {
                    let s = inline_script_snippet(&provider.domain, &path);
                    (Inclusion::InlineScript, Some(s))
                } else if inclusion_draw < 0.81 {
                    // Defer: collected into the site's loader script.
                    let lh = loader_host
                        .get_or_insert_with(|| self.pick_loader_host(index))
                        .clone();
                    let loader_url = format!("http://{lh}/loader-{index}.js");
                    loader_lines.push(format!("  oakFetch(\"{url}\");"));
                    (Inclusion::ExternalJs { loader_url }, None)
                } else {
                    (Inclusion::Dynamic, None)
                };
                objects.push(PageObject {
                    url,
                    domain: provider.domain.clone(),
                    server: provider.server,
                    bytes,
                    category: provider.category,
                    inclusion,
                    external: true,
                    snippet,
                });
            }
        }

        // Materialize the loader script body (one per site, if needed) and
        // account for the loader itself as a fetched object.
        let loader_tag = loader_host.as_ref().map(|lh| {
            let loader_url = format!("http://{lh}/loader-{index}.js");
            let body = format!(
                "// tag loader for {host}\nfunction oakFetch(u) {{ new Image().src = u; }}\n{}\n",
                loader_lines.join("\n")
            );
            let tag = format!(r#"<script src="{loader_url}"></script>"#);
            let manager = self
                .providers
                .iter()
                .find(|p| p.domain == *lh)
                .expect("tag manager exists")
                .clone();
            objects.push(PageObject {
                url: loader_url.clone(),
                domain: lh.clone(),
                server: manager.server,
                bytes: body.len() as u64,
                category: Category::AdsAnalytics,
                inclusion: Inclusion::SrcAttr,
                external: true,
                snippet: Some(tag.clone()),
            });
            self.script_bodies.insert(loader_url, body);
            tag
        });

        // Ad-chain-heavy sites: re-route directly-included ad scripts
        // through dependent loader chains. Keyed off a fresh salt, so
        // corpora generated without chains draw exactly the streams they
        // always did.
        if self.config.ad_chain_depth > 0 {
            let mut chain_rng = self.rng(0x55, index as u64);
            if chain_rng.chance(self.config.ad_heavy_fraction) {
                self.add_ad_chains(index, &mut objects, &mut chain_rng);
            }
        }

        let html = render_page(&host, &objects, loader_tag.as_deref());
        Site {
            host,
            origin,
            index_path: "/index.html".to_owned(),
            html,
            objects,
        }
    }

    /// Re-routes most of a site's directly-included ad scripts behind
    /// dependent loader chains, the adPerf page shape: the markup names
    /// only `chain…-0.js`, whose body fetches hop 1, whose body fetches
    /// hop 2, … until the last hop fetches the original ad object. Every
    /// hop is a small script hosted on the ad provider's own domain — on
    /// a desktop the chain is almost free, on a phone each hop pays the
    /// per-script CPU cost, which is exactly the device-induced slowness
    /// the cohort detector must not blame on the provider.
    fn add_ad_chains(
        &mut self,
        site_index: usize,
        objects: &mut Vec<PageObject>,
        rng: &mut StatelessRng,
    ) {
        let depth = self.config.ad_chain_depth;
        let candidates: Vec<usize> = objects
            .iter()
            .enumerate()
            .filter(|(_, o)| {
                o.external
                    && o.category == Category::AdsAnalytics
                    && matches!(o.inclusion, Inclusion::SrcAttr)
                    && o.snippet.is_some()
            })
            .map(|(i, _)| i)
            .collect();
        let mut chain_objects = Vec::new();
        for (slot, &oi) in candidates.iter().enumerate() {
            if !rng.chance(0.8) {
                continue;
            }
            let (domain, server, target_url) = {
                let o = &objects[oi];
                (o.domain.clone(), o.server, o.url.clone())
            };
            let hop_urls: Vec<String> = (0..depth)
                .map(|hop| format!("http://{domain}/chain{site_index}-{slot}-{hop}.js"))
                .collect();
            for hop in 0..depth {
                let next = hop_urls.get(hop + 1).unwrap_or(&target_url);
                let body = format!(
                    "// ad chain hop {hop} for {domain}\nfunction oakFetch(u) {{ new Image().src = u; }}\noakFetch(\"{next}\");\n"
                );
                chain_objects.push(PageObject {
                    url: hop_urls[hop].clone(),
                    domain: domain.clone(),
                    server,
                    bytes: body.len() as u64,
                    category: Category::AdsAnalytics,
                    inclusion: if hop == 0 {
                        Inclusion::SrcAttr
                    } else {
                        Inclusion::ExternalJs {
                            loader_url: hop_urls[hop - 1].clone(),
                        }
                    },
                    external: true,
                    snippet: (hop == 0)
                        .then(|| format!(r#"<script src="{}"></script>"#, hop_urls[hop])),
                });
                self.script_bodies.insert(hop_urls[hop].clone(), body);
            }
            // The original ad object now arrives only through the chain:
            // its markup snippet disappears and its inclusion is the last
            // hop's external-JS reference.
            objects[oi].snippet = None;
            objects[oi].inclusion = Inclusion::ExternalJs {
                loader_url: hop_urls.last().expect("depth > 0").clone(),
            };
        }
        objects.extend(chain_objects);
    }

    /// The host serving a site's tag-loader script: one of the shared
    /// tag-manager providers.
    fn pick_loader_host(&mut self, site_index: usize) -> String {
        let mut rng = self.rng(0x33, site_index as u64);
        format!("tags.mgr{}.example", rng.below(TAG_MANAGERS))
    }

    // ------------------------------------------------------------------
    // Impairments
    // ------------------------------------------------------------------

    fn add_impairments(&mut self) {
        let providers = self.providers.clone();
        for (i, provider) in providers.iter().enumerate() {
            let mut rng = self.rng(0x44, i as u64);
            // Persistent regional degradation: "about half of them are
            // consistent, appearing reliably" (Fig. 3 discussion).
            if rng.chance(self.config.persistent_impairment_rate) {
                let region = match rng.below(4) {
                    0 => Region::NorthAmerica,
                    1 => Region::Europe,
                    2 => Region::Asia,
                    _ => Region::Oceania,
                };
                self.builder.impairment(Impairment {
                    server: provider.server,
                    kind: ImpairmentKind::RegionalPathDegradation {
                        region,
                        severity: rng.uniform(3.0, 8.0),
                    },
                    window: None,
                });
            }
            // Transient congestion windows over a two-week horizon.
            let expected = self.config.transient_windows_per_week * 2.0;
            let count = (expected * rng.lognormal(0.4)).round() as u64;
            for _ in 0..count {
                let start_ms = rng.below(14 * 24 * 3_600_000);
                let duration_ms = (rng.exponential(4.0 * 3_600_000.0) as u64).max(600_000);
                self.builder.impairment(Impairment {
                    server: provider.server,
                    kind: ImpairmentKind::TransientCongestion {
                        severity: rng.uniform(3.0, 7.0),
                    },
                    window: Some((
                        SimTime::from_millis(start_ms),
                        SimTime::from_millis(start_ms + duration_ms),
                    )),
                });
            }
        }
    }
}

// ----------------------------------------------------------------------
// Content shaping
// ----------------------------------------------------------------------

fn pick_category(rng: &mut StatelessRng) -> Category {
    let draw = rng.next_f64();
    if draw < 0.40 {
        Category::AdsAnalytics
    } else if draw < 0.65 {
        Category::Cdn
    } else if draw < 0.77 {
        Category::Social
    } else if draw < 0.87 {
        Category::Fonts
    } else {
        Category::Video
    }
}

/// Quality mix by category: the problem tier skews ads/analytics/social,
/// matching Table 1's outlier census.
fn pick_quality(category: Category, rng: &mut StatelessRng) -> Quality {
    let draw = rng.next_f64();
    match category {
        Category::AdsAnalytics | Category::Social => {
            if draw < 0.12 {
                Quality::Poor
            } else if draw < 0.55 {
                Quality::Mediocre
            } else {
                Quality::Good
            }
        }
        Category::Cdn | Category::Fonts => {
            if draw < 0.02 {
                Quality::Poor
            } else if draw < 0.22 {
                Quality::Mediocre
            } else {
                Quality::Good
            }
        }
        Category::Video => {
            if draw < 0.04 {
                Quality::Poor
            } else if draw < 0.45 {
                Quality::Mediocre
            } else {
                Quality::Good
            }
        }
        Category::OriginAsset => Quality::Good,
    }
}

fn pick_provider_region(rng: &mut StatelessRng) -> Region {
    let draw = rng.next_f64();
    if draw < 0.45 {
        Region::NorthAmerica
    } else if draw < 0.70 {
        Region::Europe
    } else if draw < 0.90 {
        Region::Asia
    } else if draw < 0.95 {
        Region::Oceania
    } else {
        Region::SouthAmerica
    }
}

fn provider_domain(category: Category, index: usize) -> String {
    match category {
        Category::AdsAnalytics => format!("stats.adnet{index}.example"),
        Category::Cdn => format!("cdn{index}.edge.example"),
        Category::Social => format!("widgets.social{index}.example"),
        Category::Fonts => format!("fonts.api{index}.example"),
        Category::Video => format!("video.stream{index}.example"),
        Category::OriginAsset => format!("origin{index}.example"),
    }
}

/// Path and size for one object of a category. Sizes straddle the 50 KB
/// small/large split so both detection paths are exercised.
fn object_shape(category: Category, index: usize, rng: &mut StatelessRng) -> (String, u64) {
    let (ext, large_chance, large_max) = match category {
        Category::OriginAsset => ("css", 0.15, 300_000.0),
        Category::Cdn => ("png", 0.25, 600_000.0),
        Category::AdsAnalytics => ("js", 0.08, 150_000.0),
        Category::Social => ("js", 0.12, 200_000.0),
        Category::Fonts => ("woff", 0.30, 180_000.0),
        Category::Video => ("mp4", 0.70, 2_000_000.0),
    };
    let bytes = if rng.chance(large_chance) {
        // Floor at 120 KB: below that, connection setup dominates the
        // whole-object throughput, so a server's *size mix* would read
        // as a throughput deficit. Real "large" assets (bundles, media)
        // comfortably clear this.
        rng.uniform(120_000.0, f64::max(large_max, 400_000.0)) as u64
    } else {
        // Log-uniform: real small objects (beacons, snippets, icons)
        // cluster toward the bottom of the range, so per-server average
        // small-object times are dominated by path cost, not size draw —
        // a server's size mix must not read as a performance outlier.
        let ln = rng.uniform(800f64.ln(), 45_000f64.ln());
        ln.exp() as u64
    };
    (format!("/obj{index}.{ext}"), bytes)
}

/// The HTML block for a directly-included object. CDN images with an
/// even-length URL use the responsive `srcset` form (with the plain `src`
/// as fallback) so the pipeline exercises srcset extraction; the browser
/// fetches the object once either way.
fn src_snippet(category: Category, url: &str) -> String {
    match category {
        Category::AdsAnalytics | Category::Social => {
            format!(r#"<script src="{url}"></script>"#)
        }
        Category::Fonts => format!(r#"<link rel="stylesheet" href="{url}">"#),
        Category::Video => format!(r#"<video src="{url}"></video>"#),
        Category::Cdn if url.len().is_multiple_of(2) => {
            format!(r#"<img srcset="{url} 1x" src="{url}">"#)
        }
        Category::OriginAsset | Category::Cdn => format!(r#"<img src="{url}">"#),
    }
}

/// An inline script that constructs the URL programmatically — the
/// level-2 matching surface: the domain appears as a string, but no
/// well-formed URL does.
fn inline_script_snippet(domain: &str, path: &str) -> String {
    format!(
        "<script>\n(function() {{\n  var h = \"{domain}\";\n  var p = \"{path}\";\n  var img = new Image();\n  img.src = \"http://\" + h + p + \"?t=\" + Date.now();\n}})();\n</script>"
    )
}

fn render_page(host: &str, objects: &[PageObject], loader_tag: Option<&str>) -> String {
    let mut head = String::new();
    let mut body = String::new();
    for object in objects {
        let Some(snippet) = &object.snippet else {
            continue;
        };
        match object.category {
            Category::Fonts => {
                head.push_str(snippet);
                head.push('\n');
            }
            _ => {
                body.push_str(snippet);
                body.push('\n');
            }
        }
    }
    if let Some(tag) = loader_tag {
        head.push_str(tag);
        head.push('\n');
    }
    format!(
        "<!DOCTYPE html>\n<html>\n<head>\n<title>{host}</title>\n{head}</head>\n<body>\n<h1>Welcome to {host}</h1>\n{body}</body>\n</html>\n"
    )
}
