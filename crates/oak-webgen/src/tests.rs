//! Tests for the corpus generator.

use oak_html::Document;
use oak_net::WorldBuilder;

use crate::{standard_clients, Category, Corpus, CorpusConfig, Inclusion};

fn small_corpus(seed: u64) -> Corpus {
    Corpus::generate(&CorpusConfig {
        sites: 40,
        seed,
        providers: 50,
        ..CorpusConfig::default()
    })
}

#[test]
fn generation_is_deterministic() {
    let a = small_corpus(7);
    let b = small_corpus(7);
    assert_eq!(a.sites.len(), b.sites.len());
    for (sa, sb) in a.sites.iter().zip(&b.sites) {
        assert_eq!(sa.html, sb.html);
        assert_eq!(sa.objects.len(), sb.objects.len());
    }
    let c = small_corpus(8);
    assert_ne!(
        a.sites[0].html, c.sites[0].html,
        "different seed, different corpus"
    );
}

#[test]
fn standard_client_split_matches_paper() {
    let mut b = WorldBuilder::new(1);
    let clients = standard_clients(&mut b);
    let world = b.build();
    assert_eq!(clients.len(), 25);
    use oak_net::Region::*;
    let count = |r| {
        clients
            .iter()
            .filter(|&&c| world.client(c).region == r)
            .count()
    };
    assert_eq!(count(NorthAmerica), 13, "half in North America");
    assert_eq!(count(Europe), 6);
    assert_eq!(count(Asia) + count(Oceania), 6);
}

#[test]
fn external_fraction_centers_near_paper_median() {
    let corpus = Corpus::generate(&CorpusConfig {
        sites: 200,
        ..CorpusConfig::default()
    });
    let mut fractions: Vec<f64> = corpus.sites.iter().map(|s| s.external_fraction()).collect();
    fractions.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = fractions[fractions.len() / 2];
    assert!(
        (0.65..0.85).contains(&median),
        "median external fraction {median} should sit near the paper's 0.75"
    );
}

#[test]
fn subdomain_assets_are_not_external() {
    let corpus = small_corpus(3);
    for site in &corpus.sites {
        for object in &site.objects {
            if object.domain.ends_with(&site.host) {
                assert!(!object.external, "{} on {}", object.domain, site.host);
            }
        }
    }
}

#[test]
fn every_domain_resolves_in_the_world() {
    let corpus = small_corpus(4);
    let client = corpus.clients[0];
    for site in &corpus.sites {
        for object in &site.objects {
            let ip = corpus.world.resolve(&object.domain, client);
            assert!(ip.is_some(), "unresolvable domain {}", object.domain);
            assert_eq!(
                ip.unwrap(),
                corpus.world.ip_of(object.server),
                "domain {} must resolve to its assigned server",
                object.domain
            );
        }
    }
}

#[test]
fn html_contains_direct_and_loader_references() {
    let corpus = small_corpus(5);
    let mut saw_loader = false;
    for site in &corpus.sites {
        let doc = Document::parse(&site.html);
        let refs: Vec<&str> = doc.external_refs().iter().map(|r| r.url.as_str()).collect();
        for object in &site.objects {
            match &object.inclusion {
                Inclusion::SrcAttr => {
                    // Same-host references may be emitted root-relative.
                    let path = object
                        .url
                        .split_once("://")
                        .and_then(|(_, rest)| rest.find('/').map(|i| &rest[i..]))
                        .unwrap_or("");
                    assert!(
                        refs.contains(&object.url.as_str())
                            || (!object.external && refs.contains(&path)),
                        "direct object {} missing from page refs",
                        object.url
                    );
                }
                Inclusion::InlineScript => {
                    assert!(
                        site.html.contains(&object.domain),
                        "inline-script domain {} missing from page text",
                        object.domain
                    );
                    assert!(
                        !refs.contains(&object.url.as_str()),
                        "inline-script object must not be a direct ref"
                    );
                }
                Inclusion::ExternalJs { loader_url } => {
                    saw_loader = true;
                    assert!(refs.contains(&loader_url.as_str()), "loader tag in page");
                    let body = corpus.script_body(loader_url).expect("loader body exists");
                    assert!(
                        body.contains(&object.url),
                        "loader body must reference {}",
                        object.url
                    );
                    assert!(
                        !site.html.contains(&object.domain),
                        "externally-loaded domain must be invisible in the page"
                    );
                }
                Inclusion::Dynamic => {
                    assert!(
                        !site.html.contains(&object.domain),
                        "dynamic domain {} must be invisible in the page",
                        object.domain
                    );
                }
            }
        }
    }
    assert!(saw_loader, "corpus should exercise external-JS inclusion");
}

#[test]
fn inclusion_mix_is_near_calibration() {
    let corpus = Corpus::generate(&CorpusConfig {
        sites: 300,
        ..CorpusConfig::default()
    });
    let mut counts = [0usize; 4];
    let mut total = 0usize;
    for site in &corpus.sites {
        // Count per (site, provider) pair, the unit the mechanism is
        // assigned at.
        let mut seen = std::collections::BTreeSet::new();
        for object in site.objects.iter().filter(|o| o.external) {
            if !seen.insert(object.domain.clone()) {
                continue;
            }
            total += 1;
            match object.inclusion {
                Inclusion::SrcAttr => counts[0] += 1,
                Inclusion::InlineScript => counts[1] += 1,
                Inclusion::ExternalJs { .. } => counts[2] += 1,
                Inclusion::Dynamic => counts[3] += 1,
            }
        }
    }
    let frac = |c: usize| c as f64 / total as f64;
    assert!(
        (frac(counts[0]) - 0.42).abs() < 0.06,
        "direct {}",
        frac(counts[0])
    );
    assert!(
        (frac(counts[1]) - 0.18).abs() < 0.05,
        "inline {}",
        frac(counts[1])
    );
    assert!(
        (frac(counts[2]) - 0.21).abs() < 0.05,
        "ext-js {}",
        frac(counts[2])
    );
    assert!(
        (frac(counts[3]) - 0.19).abs() < 0.05,
        "dynamic {}",
        frac(counts[3])
    );
}

#[test]
fn ads_and_social_skew_toward_poor_quality() {
    let corpus = Corpus::generate(&CorpusConfig {
        sites: 10,
        providers: 200,
        ..CorpusConfig::default()
    });
    use oak_net::Quality;
    let poor_rate = |cat: Category| {
        let (poor, total) = corpus.providers.iter().filter(|p| p.category == cat).fold(
            (0usize, 0usize),
            |(p, t), prov| {
                let q = corpus.world.server(prov.server).quality;
                (p + usize::from(q == Quality::Poor), t + 1)
            },
        );
        poor as f64 / total.max(1) as f64
    };
    assert!(poor_rate(Category::AdsAnalytics) > poor_rate(Category::Cdn));
}

#[test]
fn replicas_cover_three_regions() {
    let corpus = small_corpus(9);
    assert_eq!(corpus.replicas.len(), 3);
    use oak_net::Region::*;
    let regions: Vec<_> = corpus
        .replicas
        .iter()
        .map(|&r| corpus.world.server(r).region)
        .collect();
    assert_eq!(regions, [NorthAmerica, Europe, Asia]);
}

#[test]
fn impairments_exist_in_both_populations() {
    let corpus = small_corpus(11);
    let imps = corpus.world.impairments();
    let transient = imps.iter().filter(|i| i.window.is_some()).count();
    let persistent = imps.iter().filter(|i| i.window.is_none()).count();
    assert!(transient > 0, "transient congestion present");
    assert!(persistent > 0, "persistent degradation present");
}

#[test]
fn site_accessors() {
    let corpus = small_corpus(13);
    let site = &corpus.sites[0];
    assert_eq!(site.index_url(), format!("http://{}/index.html", site.host));
    let domains = site.external_domains();
    assert!(!domains.is_empty());
    let mut sorted = domains.clone();
    sorted.sort_unstable();
    assert_eq!(domains, sorted, "external_domains is sorted and deduped");
    for d in &domains {
        assert!(corpus.provider_by_domain(d).is_some());
    }
}

#[test]
fn popular_providers_are_well_run_and_distributed() {
    let corpus = Corpus::generate(&CorpusConfig {
        sites: 5,
        providers: 120,
        ..CorpusConfig::default()
    });
    use oak_net::Quality;
    // Top-25 of the pool: pinned Good + distributed (one popular bad
    // provider would contaminate half the corpus — see DESIGN.md §4b).
    for provider in corpus.providers.iter().take(25) {
        let server = corpus.world.server(provider.server);
        assert_eq!(server.quality, Quality::Good, "{}", provider.domain);
        assert!(server.distributed, "{}", provider.domain);
    }
    // The tail contains single-homed and sub-Good providers.
    let tail = &corpus.providers[25..120];
    assert!(tail
        .iter()
        .any(|p| !corpus.world.server(p.server).distributed));
    assert!(tail
        .iter()
        .any(|p| corpus.world.server(p.server).quality != Quality::Good));
}

#[test]
fn timing_allow_origin_is_a_strict_subset() {
    let corpus = Corpus::generate(&CorpusConfig {
        sites: 5,
        providers: 120,
        ..CorpusConfig::default()
    });
    let opted_in = corpus
        .providers
        .iter()
        .filter(|p| p.timing_allow_origin)
        .count();
    assert!(opted_in > 0, "some providers opt in");
    assert!(
        opted_in < corpus.providers.len(),
        "many providers are not visible with the API (paper §6)"
    );
}

#[test]
fn replicas_are_dedicated_idle_mirrors() {
    let corpus = small_corpus(21);
    for &replica in &corpus.replicas {
        let server = corpus.world.server(replica);
        assert!(server.affinity_neutral, "{}", server.hostname);
        assert!(server.processing_ms < 10.0);
        assert!(server.diurnal_amplitude < 0.1);
    }
}

#[test]
fn generated_pages_tokenize_cleanly() {
    let corpus = small_corpus(17);
    for site in &corpus.sites {
        let doc = Document::parse(&site.html);
        assert!(
            doc.tokens().len() > 5,
            "{} should have structure",
            site.host
        );
    }
}

#[test]
fn ad_chains_are_off_by_default_and_leave_the_corpus_unchanged() {
    let plain = small_corpus(7);
    let explicit = Corpus::generate(&CorpusConfig {
        sites: 40,
        seed: 7,
        providers: 50,
        ad_heavy_fraction: 0.9,
        ad_chain_depth: 0, // depth 0 disables chains outright
        ..CorpusConfig::default()
    });
    for (a, b) in plain.sites.iter().zip(&explicit.sites) {
        assert_eq!(a.html, b.html);
        assert_eq!(a.objects.len(), b.objects.len());
    }
    assert!(!plain.script_bodies.keys().any(|u| u.contains("/chain")));
}

#[test]
fn ad_heavy_sites_route_ads_through_dependent_chains() {
    let depth = 4;
    let corpus = Corpus::generate(&CorpusConfig {
        sites: 40,
        seed: 7,
        providers: 50,
        ad_heavy_fraction: 1.0,
        ad_chain_depth: depth,
        ..CorpusConfig::default()
    });
    let chained_site = corpus
        .sites
        .iter()
        .find(|s| s.objects.iter().any(|o| o.url.contains("/chain")))
        .expect("with fraction 1.0 some site has chains");

    // Hop 0 is in the markup; later hops are not — they are discovered
    // only by executing the previous hop's body.
    let hop0 = chained_site
        .objects
        .iter()
        .find(|o| o.url.contains("-0.js") && o.url.contains("/chain"))
        .expect("chain hop 0 exists");
    assert!(chained_site.html.contains(&hop0.url));
    assert_eq!(hop0.inclusion, Inclusion::SrcAttr);

    // Each hop's body fetches the next; the last hop fetches a real ad
    // object of the same provider.
    let mut url = hop0.url.clone();
    for _ in 0..depth {
        let body = corpus.script_body(&url).expect("chain hop has a body");
        let next_start = body.find("oakFetch(\"").expect("hop fetches next") + "oakFetch(\"".len();
        let next_end = body[next_start..].find('"').unwrap() + next_start;
        url = body[next_start..next_end].to_owned();
    }
    let target = chained_site
        .objects
        .iter()
        .find(|o| o.url == url)
        .expect("chain terminates at a page object");
    assert_eq!(target.category, Category::AdsAnalytics);
    assert!(
        matches!(&target.inclusion, Inclusion::ExternalJs { loader_url } if loader_url.contains("/chain")),
        "target rides the chain: {:?}",
        target.inclusion
    );
    assert!(target.snippet.is_none(), "target left the markup");
    assert_eq!(target.domain, hop0.domain, "chain stays on the provider");
}
