//! A from-scratch HTTP/1.1 implementation.
//!
//! The paper's Oak server "serves a dual purpose as both the web server and
//! the Oak server platform" (§5, Implementation), speaking plain HTTP/1.1
//! to clients and reading client performance reports POSTed back to it.
//! This crate supplies that transport layer:
//!
//! - [`Url`]: absolute/relative URL parsing and resolution,
//! - [`Request`] / [`Response`] / [`Headers`]: message types with
//!   case-insensitive headers,
//! - wire codecs ([`Request::parse`], [`Response::write_to`], …) for
//!   `Content-Length`-framed HTTP/1.1,
//! - [`cookie`]: the identifying-cookie plumbing Oak uses to tie reports
//!   to users,
//! - [`TcpServer`] / [`fetch_tcp`]: a threaded server and blocking client
//!   over real `std::net` sockets (used by the live-proxy example and
//!   integration tests) — bounded by [`ServerLimits`] (connection cap,
//!   head/body byte ceilings, read/write deadlines) with handler-panic
//!   isolation and [`TransportStats`] counters,
//! - [`fault`]: a scripted chaos client (slowloris, mid-body disconnects,
//!   oversized heads/bodies) for deterministic resilience testing,
//! - [`Handler`]: the request-handling trait shared by the TCP server and
//!   the in-memory transport that experiments use for determinism.
//!
//! Scope: `Content-Length` and `Transfer-Encoding: chunked` bodies, no
//! TLS, no HTTP/2 — matching the unmodified "multi-threaded Python
//! servers … employ\[ing\] HTTP 1.1" of the paper's testbed.
//!
//! # Examples
//!
//! ```
//! use oak_http::{Method, Request, Response, StatusCode};
//!
//! let req = Request::new(Method::Get, "/index.html");
//! let bytes = req.to_bytes();
//! let parsed = Request::parse(&bytes).unwrap();
//! assert_eq!(parsed.path(), "/index.html");
//!
//! let resp = Response::new(StatusCode::OK).with_body(b"hi".to_vec(), "text/plain");
//! assert_eq!(resp.header("content-length"), Some("2"));
//! ```

pub mod cookie;
mod error;
pub mod fault;
pub mod framing;
mod headers;
mod message;
mod obs;
mod tcp;
mod url;

pub use error::HttpError;
pub use headers::Headers;
pub use message::{encode_chunked, Method, Request, Response, StatusCode};
pub use obs::{HttpMetrics, Stage};
pub use tcp::{
    fetch_tcp, over_capacity_response, queue_shed_response, Handler, ServerLimits, TcpServer,
    TransportEvent, TransportSnapshot, TransportStats, PEER_ADDR_HEADER, SHED_RETRY_AFTER_SECS,
};
pub use url::{host_of, Url};

#[cfg(test)]
mod tests;
