//! Case-insensitive header map.

use std::fmt;

/// An ordered multimap of HTTP headers with case-insensitive names.
///
/// Order is preserved (headers are serialized as inserted) and duplicate
/// names are allowed, as HTTP permits (`Set-Cookie` in particular).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Headers {
    entries: Vec<(String, String)>,
}

impl Headers {
    /// An empty header map.
    pub fn new() -> Headers {
        Headers::default()
    }

    /// Appends a header, keeping any existing values with the same name.
    pub fn append(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.entries.push((name.into(), value.into()));
    }

    /// Sets a header, replacing every existing value with the same name.
    pub fn set(&mut self, name: &str, value: impl Into<String>) {
        self.remove(name);
        self.entries.push((name.to_owned(), value.into()));
    }

    /// Removes all values for `name`; returns how many were removed.
    pub fn remove(&mut self, name: &str) -> usize {
        let before = self.entries.len();
        self.entries.retain(|(n, _)| !n.eq_ignore_ascii_case(name));
        before - self.entries.len()
    }

    /// First value for `name`, if any.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// All values for `name`, in insertion order.
    pub fn get_all<'h>(&'h self, name: &'h str) -> impl Iterator<Item = &'h str> {
        self.entries
            .iter()
            .filter(move |(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// True if at least one value for `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Number of header lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if there are no headers.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }
}

impl fmt::Display for Headers {
    /// Writes `Name: value\r\n` lines (no terminating blank line).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in self.iter() {
            write!(f, "{name}: {value}\r\n")?;
        }
        Ok(())
    }
}
