//! Cookie parsing and formatting.
//!
//! Oak identifies users with a cookie: the server hands one out with the
//! first page ("the server responds with the default version of the
//! requested page and an identifying cookie", §4) and the client echoes it
//! on every request and report so performance can be tied to a user.

/// The cookie name Oak uses for its user identifier.
pub const OAK_USER_COOKIE: &str = "oak_uid";

/// Parses a `Cookie:` request header into `(name, value)` pairs.
///
/// Malformed fragments (no `=`) are skipped rather than failing the whole
/// header — browsers send what they send.
///
/// ```
/// use oak_http::cookie::parse_cookie_header;
/// let cookies = parse_cookie_header("a=1; oak_uid=u-42; junk; b=2");
/// assert_eq!(cookies, [("a", "1"), ("oak_uid", "u-42"), ("b", "2")]);
/// ```
pub fn parse_cookie_header(value: &str) -> Vec<(&str, &str)> {
    value
        .split(';')
        .filter_map(|pair| {
            let (name, value) = pair.split_once('=')?;
            let name = name.trim();
            if name.is_empty() {
                return None;
            }
            Some((name, value.trim()))
        })
        .collect()
}

/// Finds a cookie by name in a `Cookie:` header value.
pub fn get_cookie<'v>(header_value: &'v str, name: &str) -> Option<&'v str> {
    parse_cookie_header(header_value)
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| v)
}

/// Formats a `Set-Cookie:` response header value for a session-scoped
/// cookie.
pub fn format_set_cookie(name: &str, value: &str) -> String {
    format!("{name}={value}; Path=/")
}

/// Formats a `Cookie:` request header value from pairs.
pub fn format_cookie_header(cookies: &[(String, String)]) -> String {
    cookies
        .iter()
        .map(|(n, v)| format!("{n}={v}"))
        .collect::<Vec<_>>()
        .join("; ")
}
