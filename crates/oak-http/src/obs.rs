//! Transport instrumentation: per-stage latency histograms.
//!
//! [`HttpMetrics`] holds pre-resolved histogram handles for the four
//! stages every served request passes through — reading bytes off the
//! socket, parsing them into a [`crate::Request`], running the handler,
//! and writing the response. The server threads record into the handles
//! directly; the registry is only touched here, at construction.

use std::sync::Arc;

use oak_obs::{elapsed_us, Clock, Histogram, Registry, DURATION_BOUNDS_US};

/// The four instrumented stages of serving one request.
const STAGES: [&str; 4] = ["read", "parse", "handle", "write"];

/// Per-stage duration histograms for the TCP server, all series of one
/// family: `oak_http_stage_duration_us{stage="read"|"parse"|"handle"|"write"}`.
pub struct HttpMetrics {
    clock: Clock,
    stages: [Arc<Histogram>; 4],
}

impl HttpMetrics {
    /// Registers the `oak_http_stage_duration_us` family in `registry`
    /// and resolves one handle per stage. Durations are measured with
    /// `clock`.
    pub fn new(registry: &Registry, clock: Clock) -> Arc<HttpMetrics> {
        let stages = STAGES.map(|stage| {
            registry.histogram(
                "oak_http_stage_duration_us",
                "Time per request stage in the HTTP server.",
                &[("stage", stage)],
                DURATION_BOUNDS_US,
            )
        });
        Arc::new(HttpMetrics { clock, stages })
    }

    /// The current clock reading, nanoseconds. Public so out-of-crate
    /// server backends (`oak-edge`) can timestamp their stages against
    /// the same clock.
    pub fn now(&self) -> u64 {
        (self.clock)()
    }

    /// Records one stage duration. Every backend sharing this handle
    /// lands in the same `oak_http_stage_duration_us` family, so the
    /// operator's latency view is backend-agnostic.
    pub fn record(&self, stage: Stage, start_ns: u64, end_ns: u64) {
        self.stages[stage as usize].record(elapsed_us(start_ns, end_ns));
    }
}

/// Index into [`HttpMetrics`]'s stage histograms; order matches [`STAGES`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Socket entry to a complete request byte buffer (includes any
    /// keep-alive idle wait before the first byte).
    Read = 0,
    /// Turning buffered bytes into a [`crate::Request`].
    Parse = 1,
    /// Running the [`crate::Handler`].
    Handle = 2,
    /// Writing the response to the socket.
    Write = 3,
}
