//! Request framing rules shared by every server backend.
//!
//! The blocking thread-per-connection server ([`crate::TcpServer`]) and
//! the non-blocking reactor (`oak-edge`) must agree byte-for-byte on how
//! a request head ends, how its body length is learned, and what counts
//! as malformed — a client must not be able to tell the backends apart
//! by probing framing edge cases. Both backends call these functions, so
//! the rules live in exactly one place.

use crate::error::HttpError;

/// Finds the end of a request head inside `buf`, scanning line by line
/// from `from` (a line-start offset from a previous partial scan).
///
/// Mirrors the blocking reader's termination rule exactly: the head ends
/// at the first *blank line*, where a line is everything up to and
/// including a `\n` and blank means the line is `"\n"` or `"\r\n"`.
///
/// Returns `(Some(end), _)` with `end` one past the terminator when the
/// head is complete, else `(None, resume)` where `resume` is the offset
/// of the first unterminated line — pass it back as `from` once more
/// bytes arrive so scanning never revisits completed lines.
pub fn head_end(buf: &[u8], from: usize) -> (Option<usize>, usize) {
    let mut line_start = from;
    for (i, &b) in buf.iter().enumerate().skip(from) {
        if b == b'\n' {
            let line = &buf[line_start..=i];
            if line == b"\n" || line == b"\r\n" {
                return (Some(i + 1), line_start);
            }
            line_start = i + 1;
        }
    }
    (None, line_start)
}

/// True if the raw head block declares `Transfer-Encoding: chunked`.
///
/// # Errors
///
/// [`HttpError::Malformed`] when the head is not UTF-8.
pub fn head_is_chunked(head: &[u8]) -> Result<bool, HttpError> {
    let text = std::str::from_utf8(head)
        .map_err(|_| HttpError::Malformed("non-UTF-8 header block".into()))?;
    Ok(text.split("\r\n").any(|line| {
        line.split_once(':').is_some_and(|(name, value)| {
            name.eq_ignore_ascii_case("transfer-encoding")
                && value.trim().eq_ignore_ascii_case("chunked")
        })
    }))
}

/// Extracts Content-Length from a raw head block (0 when absent).
///
/// Strict by design — the body length decides how many bytes the server
/// buffers, so anything ambiguous is rejected rather than defaulted:
/// non-digit values (including signs and whitespace padding beyond a
/// trim) and duplicate declarations that disagree are malformed.
/// Duplicate *identical* declarations are tolerated per RFC 9110 §8.6.
///
/// # Errors
///
/// [`HttpError::Malformed`] for non-UTF-8 heads and ambiguous or
/// non-numeric declarations.
pub fn content_length_of(head: &[u8]) -> Result<usize, HttpError> {
    let text = std::str::from_utf8(head)
        .map_err(|_| HttpError::Malformed("non-UTF-8 header block".into()))?;
    let mut found: Option<usize> = None;
    for line in text.split("\r\n") {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                let value = value.trim();
                if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
                    return Err(HttpError::Malformed(format!(
                        "bad content-length {value:?}"
                    )));
                }
                let parsed: usize = value
                    .parse()
                    .map_err(|_| HttpError::Malformed(format!("bad content-length {value:?}")))?;
                match found {
                    Some(prior) if prior != parsed => {
                        return Err(HttpError::Malformed(format!(
                            "conflicting content-length declarations ({prior} vs {parsed})"
                        )));
                    }
                    _ => found = Some(parsed),
                }
            }
        }
    }
    Ok(found.unwrap_or(0))
}

/// Extracts `(method-token, target)` from the request line of a raw
/// head block, without parsing the full message.
///
/// Both server backends consult [`crate::Handler::admit`] between head
/// completion and body read; this is the shared, minimal peek that makes
/// the decision possible before any body byte is buffered. `None` for
/// heads whose first line is not `token SP token …` — such requests fall
/// through to the full parser and earn their 400 there.
pub fn request_line_of(head: &[u8]) -> Option<(&str, &str)> {
    let end = head.iter().position(|&b| b == b'\n')?;
    let line = std::str::from_utf8(&head[..end])
        .ok()?
        .trim_end_matches('\r');
    let mut parts = line.split(' ');
    let method = parts.next().filter(|t| !t.is_empty())?;
    let target = parts.next().filter(|t| !t.is_empty())?;
    Some((method, target))
}

/// Incremental `Transfer-Encoding: chunked` progress over a growing
/// buffer of raw (still-encoded) body bytes.
///
/// A non-blocking reader cannot re-scan the body from the start on every
/// readiness event, so this state machine remembers where it stopped.
/// Feed it the raw bytes after the head each time more arrive; it
/// reports how many raw bytes the complete chunked body occupies once
/// the terminating zero-size chunk and its trailer section have landed.
/// The *decoded* running total is bounded by `max_body_bytes`, matching
/// the blocking reader's accumulation cap.
#[derive(Clone, Copy, Debug)]
pub struct ChunkedScan {
    /// Raw-byte offset (relative to the body start) scanning resumes at.
    cursor: usize,
    /// Offset where the current (incomplete) line began.
    line_start: usize,
    /// Decoded body bytes consumed so far, for the limit check.
    decoded: usize,
    phase: ChunkPhase,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ChunkPhase {
    /// Expecting a `<hex-size>[;ext]\r\n` line.
    SizeLine,
    /// Consuming a chunk's payload plus its trailing CRLF.
    Data { remaining: usize },
    /// After the zero-size chunk: discarding trailer lines to the blank.
    Trailer,
}

/// Outcome of one [`ChunkedScan::advance`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChunkedProgress {
    /// The body is complete and occupies this many raw bytes.
    Complete(usize),
    /// More bytes are needed.
    Incomplete,
}

impl ChunkedScan {
    /// A scanner positioned at the first chunk-size line.
    pub fn new() -> ChunkedScan {
        ChunkedScan {
            cursor: 0,
            line_start: 0,
            decoded: 0,
            phase: ChunkPhase::SizeLine,
        }
    }

    /// Consumes as much of `body` (raw bytes after the head) as possible.
    ///
    /// # Errors
    ///
    /// [`HttpError::Malformed`] on an unparseable chunk-size line,
    /// [`HttpError::BodyTooLarge`] when the decoded total would exceed
    /// `max_body_bytes`.
    pub fn advance(
        &mut self,
        body: &[u8],
        max_body_bytes: usize,
    ) -> Result<ChunkedProgress, HttpError> {
        loop {
            match self.phase {
                ChunkPhase::SizeLine => {
                    let Some(line_end) = find_lf(body, self.cursor) else {
                        self.cursor = body.len();
                        return Ok(ChunkedProgress::Incomplete);
                    };
                    let line = &body[self.line_start..=line_end];
                    // Only a literal `0` line ends the body — `0;ext`
                    // falls through to the data path, exactly like the
                    // blocking reader, so both backends reject the same
                    // exotic inputs with the same status.
                    let terminator = line == b"0\r\n" || line == b"0\n";
                    let text = String::from_utf8_lossy(line);
                    let size_text = text.trim_end().split(';').next().unwrap_or("").trim();
                    let size = usize::from_str_radix(size_text, 16).map_err(|_| {
                        HttpError::Malformed(format!("bad chunk size {size_text:?}"))
                    })?;
                    self.cursor = line_end + 1;
                    self.line_start = self.cursor;
                    if terminator {
                        self.phase = ChunkPhase::Trailer;
                        continue;
                    }
                    if self.decoded.saturating_add(size) > max_body_bytes {
                        return Err(HttpError::BodyTooLarge {
                            limit: max_body_bytes,
                        });
                    }
                    self.decoded += size;
                    // The payload is followed by its CRLF terminator.
                    self.phase = ChunkPhase::Data {
                        remaining: size + 2,
                    };
                }
                ChunkPhase::Data { remaining } => {
                    let available = body.len().saturating_sub(self.cursor);
                    if available < remaining {
                        self.cursor = body.len();
                        self.phase = ChunkPhase::Data {
                            remaining: remaining - available,
                        };
                        return Ok(ChunkedProgress::Incomplete);
                    }
                    self.cursor += remaining;
                    self.line_start = self.cursor;
                    self.phase = ChunkPhase::SizeLine;
                }
                ChunkPhase::Trailer => {
                    let Some(line_end) = find_lf(body, self.cursor) else {
                        self.cursor = body.len();
                        return Ok(ChunkedProgress::Incomplete);
                    };
                    let line = &body[self.line_start..=line_end];
                    let blank = line == b"\r\n" || line == b"\n";
                    self.cursor = line_end + 1;
                    self.line_start = self.cursor;
                    if blank {
                        return Ok(ChunkedProgress::Complete(self.cursor));
                    }
                }
            }
        }
    }
}

impl Default for ChunkedScan {
    fn default() -> ChunkedScan {
        ChunkedScan::new()
    }
}

fn find_lf(buf: &[u8], from: usize) -> Option<usize> {
    buf.iter()
        .enumerate()
        .skip(from)
        .find(|(_, &b)| b == b'\n')
        .map(|(i, _)| i)
}
