//! Threaded TCP server and blocking client.
//!
//! Mirrors the paper's deployment: "a multi-threaded server … which serves
//! a dual purpose as both the web server and the Oak server platform" (§5).
//! The [`Handler`] trait is the seam between transport and logic — the Oak
//! proxy implements it once and runs identically over TCP (live example)
//! and direct in-memory calls (deterministic experiments).
//!
//! The server is *bounded* ([`ServerLimits`]): concurrent connections are
//! capped by a permit gauge (over → 503), the request head and body have
//! byte ceilings (over → 431/413), reads and writes carry deadlines (a
//! slowloris gets a 408, not a parked thread), and handler panics are
//! caught and turned into 500s instead of silently killing the connection
//! thread. Every limit trip lands in a [`TransportStats`] counter so the
//! operator's `/oak/stats` view shows what the edge is absorbing.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::error::HttpError;
use crate::framing::{content_length_of, head_is_chunked, request_line_of};
use crate::message::{Method, Request, Response, StatusCode};
use crate::obs::{HttpMetrics, Stage};

/// Header the TCP server sets on inbound requests with the connection's
/// observed peer IP, overriding any client-supplied value. Handlers that
/// care about client addresses (Oak's subnet-scoped policies, §4.2.4 of
/// the paper) read this.
pub const PEER_ADDR_HEADER: &str = "X-Oak-Peer-Addr";

/// Turns a request into a response. Implementations must be thread-safe:
/// the TCP server invokes them from connection threads.
pub trait Handler: Send + Sync + 'static {
    /// Produces the response for `request`.
    fn handle(&self, request: &Request) -> Response;

    /// Consulted by both server backends after the request head is
    /// complete but *before* any body byte is read. Returning
    /// `Some(response)` sheds the request: the transport answers with it
    /// immediately (plus `Connection: close`, since the unread body makes
    /// the connection unframeable) and never buffers the body — the
    /// overload-control fast path. The default admits everything.
    fn admit(&self, method: Method, target: &str) -> Option<Response> {
        let _ = (method, target);
        None
    }

    /// True for targets the transport must never shed on its own
    /// (queue-deadline drops skip them). Health probes stay answerable
    /// under any overload; the default exempts nothing.
    fn shed_exempt(&self, target: &str) -> bool {
        let _ = target;
        false
    }
}

impl<F> Handler for F
where
    F: Fn(&Request) -> Response + Send + Sync + 'static,
{
    fn handle(&self, request: &Request) -> Response {
        self(request)
    }
}

/// Resource bounds for a [`TcpServer`].
///
/// The defaults reproduce the crate's historical behavior (10 s socket
/// timeouts, 64 KiB heads, 16 MiB bodies) with a generous connection cap;
/// deployments facing the open Internet tighten them via `oak-serve`
/// flags.
#[derive(Clone, Copy, Debug)]
pub struct ServerLimits {
    /// Maximum concurrently served connections; one more gets a 503 and
    /// an immediate close.
    pub max_connections: usize,
    /// Maximum request-head bytes (request line + headers + terminator);
    /// over yields a 431.
    pub max_head_bytes: usize,
    /// Maximum body bytes, whether declared via `Content-Length` or
    /// accumulated from chunks; over yields a 413 without reading the
    /// rest.
    pub max_body_bytes: usize,
    /// Wall-clock budget for reading one complete request. Enforced both
    /// per socket read and across reads, so byte-dribbling (slowloris)
    /// cannot hold a thread past it; tripping mid-request yields a 408.
    pub read_timeout: Duration,
    /// Per-write socket deadline; a peer that stops draining its receive
    /// window gets disconnected.
    pub write_timeout: Duration,
    /// How long [`TcpServer::shutdown`] waits for in-flight connections
    /// to finish before giving up on the stragglers.
    pub drain_timeout: Duration,
    /// CoDel-style queue deadline: a request that waited longer than
    /// this between being fully read and a worker picking it up is
    /// answered with a canned 503 + Retry-After instead of being
    /// processed — under overload, stale queued work is the least
    /// valuable work in the building. Zero disables the check. Targets
    /// for which [`Handler::shed_exempt`] returns true are never
    /// dropped. Only queued backends (the `oak-edge` reactor) have a
    /// queue to age in; the thread-per-connection server runs the
    /// handler synchronously after the read and so never trips this.
    pub queue_deadline: Duration,
}

impl Default for ServerLimits {
    fn default() -> ServerLimits {
        ServerLimits {
            max_connections: 1024,
            max_head_bytes: 64 * 1024,
            max_body_bytes: 16 * 1024 * 1024,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            drain_timeout: Duration::from_secs(5),
            queue_deadline: Duration::ZERO,
        }
    }
}

/// Transport-level counters, shared between the server and whoever
/// renders them (the Oak service exports these under `transport` in
/// `/oak/stats`).
#[derive(Debug, Default)]
pub struct TransportStats {
    connections_accepted: AtomicU64,
    connections_rejected: AtomicU64,
    connections_closed: AtomicU64,
    accepts_failed: AtomicU64,
    requests_served: AtomicU64,
    requests_shed: AtomicU64,
    panics: AtomicU64,
    timeouts: AtomicU64,
    heads_too_large: AtomicU64,
    bodies_too_large: AtomicU64,
    bad_requests: AtomicU64,
}

/// A point-in-time copy of [`TransportStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportSnapshot {
    /// Connections that got a permit and a serving thread.
    pub connections_accepted: u64,
    /// Connections turned away with a 503 at the connection cap.
    pub connections_rejected: u64,
    /// Accepted connections since closed; `accepted - closed` is the
    /// live permit occupancy the overload controller samples.
    pub connections_closed: u64,
    /// `accept()` failures (the loop backs off instead of hot-spinning).
    pub accepts_failed: u64,
    /// Requests that reached the handler and were answered.
    pub requests_served: u64,
    /// Requests dropped pre-handler: rejected by [`Handler::admit`]
    /// before their body was read, or aged out of the worker queue past
    /// [`ServerLimits::queue_deadline`].
    pub requests_shed: u64,
    /// Handler panics converted to 500s.
    pub panics: u64,
    /// Requests that timed out mid-read (408).
    pub timeouts: u64,
    /// Request heads over the limit (431).
    pub heads_too_large: u64,
    /// Request bodies over the limit (413).
    pub bodies_too_large: u64,
    /// Requests rejected as malformed or truncated (400).
    pub bad_requests: u64,
}

/// One transport-level occurrence worth counting, for backends that
/// share a [`TransportStats`] block without living in this module (the
/// `oak-edge` reactor records through this; the in-module threaded
/// server touches the counters directly).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportEvent {
    /// A connection got a permit and is being served.
    ConnectionAccepted,
    /// A connection was turned away with a 503 at the connection cap.
    ConnectionRejected,
    /// A previously accepted connection finished (permit returned).
    ConnectionClosed,
    /// `accept()` failed.
    AcceptFailed,
    /// A request reached the handler and was answered.
    RequestServed,
    /// A request was dropped pre-handler (admission shed or queue
    /// deadline).
    RequestShed,
    /// A handler panic was converted to a 500.
    Panic,
    /// A request timed out mid-read (408).
    Timeout,
    /// A request head exceeded the limit (431).
    HeadTooLarge,
    /// A request body exceeded the limit (413).
    BodyTooLarge,
    /// A request was rejected as malformed or truncated (400).
    BadRequest,
}

impl TransportStats {
    /// Counts one transport event. Every server backend sharing this
    /// stats block reports through the same counters, so the operator's
    /// `/oak/stats` view is backend-agnostic.
    pub fn record(&self, event: TransportEvent) {
        let counter = match event {
            TransportEvent::ConnectionAccepted => &self.connections_accepted,
            TransportEvent::ConnectionRejected => &self.connections_rejected,
            TransportEvent::ConnectionClosed => &self.connections_closed,
            TransportEvent::AcceptFailed => &self.accepts_failed,
            TransportEvent::RequestServed => &self.requests_served,
            TransportEvent::RequestShed => &self.requests_shed,
            TransportEvent::Panic => &self.panics,
            TransportEvent::Timeout => &self.timeouts,
            TransportEvent::HeadTooLarge => &self.heads_too_large,
            TransportEvent::BodyTooLarge => &self.bodies_too_large,
            TransportEvent::BadRequest => &self.bad_requests,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads every counter.
    pub fn snapshot(&self) -> TransportSnapshot {
        TransportSnapshot {
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_rejected: self.connections_rejected.load(Ordering::Relaxed),
            connections_closed: self.connections_closed.load(Ordering::Relaxed),
            accepts_failed: self.accepts_failed.load(Ordering::Relaxed),
            requests_served: self.requests_served.load(Ordering::Relaxed),
            requests_shed: self.requests_shed.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            heads_too_large: self.heads_too_large.load(Ordering::Relaxed),
            bodies_too_large: self.bodies_too_large.load(Ordering::Relaxed),
            bad_requests: self.bad_requests.load(Ordering::Relaxed),
        }
    }
}

/// Counts live connections against [`ServerLimits::max_connections`].
#[derive(Debug)]
struct Gauge {
    active: AtomicUsize,
    limit: usize,
}

impl Gauge {
    fn try_acquire(self: &Arc<Gauge>) -> Option<Permit> {
        let mut current = self.active.load(Ordering::Relaxed);
        loop {
            if current >= self.limit {
                return None;
            }
            match self.active.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(Permit(Arc::clone(self))),
                Err(now) => current = now,
            }
        }
    }
}

/// RAII connection permit: returned to the gauge on drop, which runs even
/// when the owning thread unwinds — permits cannot leak past a panic.
struct Permit(Arc<Gauge>);

impl Drop for Permit {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A running HTTP server; dropped or [`TcpServer::shutdown`] stops it.
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    gauge: Arc<Gauge>,
    stats: Arc<TransportStats>,
    drain_timeout: Duration,
}

impl TcpServer {
    /// Binds to `127.0.0.1:port` (port 0 picks a free port) and starts
    /// accepting with [`ServerLimits::default`].
    ///
    /// # Errors
    ///
    /// Propagates the bind error.
    pub fn start(port: u16, handler: Arc<dyn Handler>) -> Result<TcpServer, HttpError> {
        TcpServer::start_with(
            port,
            handler,
            ServerLimits::default(),
            Arc::new(TransportStats::default()),
        )
    }

    /// As [`TcpServer::start`] with explicit limits.
    ///
    /// # Errors
    ///
    /// Propagates the bind error.
    pub fn start_with_limits(
        port: u16,
        handler: Arc<dyn Handler>,
        limits: ServerLimits,
    ) -> Result<TcpServer, HttpError> {
        TcpServer::start_with(port, handler, limits, Arc::new(TransportStats::default()))
    }

    /// As [`TcpServer::start`] with explicit limits and a caller-owned
    /// stats block (so a service can render transport counters alongside
    /// its own).
    ///
    /// # Errors
    ///
    /// Propagates the bind error.
    pub fn start_with(
        port: u16,
        handler: Arc<dyn Handler>,
        limits: ServerLimits,
        stats: Arc<TransportStats>,
    ) -> Result<TcpServer, HttpError> {
        TcpServer::start_with_obs(port, handler, limits, stats, None)
    }

    /// As [`TcpServer::start_with`], additionally recording per-stage
    /// latencies (read/parse/handle/write) into `obs` when given.
    ///
    /// # Errors
    ///
    /// Propagates the bind error.
    pub fn start_with_obs(
        port: u16,
        handler: Arc<dyn Handler>,
        limits: ServerLimits,
        stats: Arc<TransportStats>,
        obs: Option<Arc<HttpMetrics>>,
    ) -> Result<TcpServer, HttpError> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let gauge = Arc::new(Gauge {
            active: AtomicUsize::new(0),
            limit: limits.max_connections.max(1),
        });
        let stop_flag = Arc::clone(&stop);
        let gauge_accept = Arc::clone(&gauge);
        let stats_accept = Arc::clone(&stats);
        let accept_thread = std::thread::spawn(move || {
            accept_loop(
                &listener,
                &stop_flag,
                &gauge_accept,
                &stats_accept,
                handler,
                limits,
                obs,
            );
        });
        Ok(TcpServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            gauge,
            stats,
            drain_timeout: limits.drain_timeout,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The transport counters (shared with the accept loop).
    pub fn stats(&self) -> Arc<TransportStats> {
        Arc::clone(&self.stats)
    }

    /// Connections currently holding a permit.
    pub fn active_connections(&self) -> usize {
        self.gauge.active.load(Ordering::Acquire)
    }

    /// Stops accepting, joins the accept thread, then drains: waits up to
    /// [`ServerLimits::drain_timeout`] for in-flight connections to
    /// return their permits before giving up on the stragglers.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Kick the accept loop out of `incoming()`.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let deadline = Instant::now() + self.drain_timeout;
        while self.active_connections() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    stop: &AtomicBool,
    gauge: &Arc<Gauge>,
    stats: &Arc<TransportStats>,
    handler: Arc<dyn Handler>,
    limits: ServerLimits,
    obs: Option<Arc<HttpMetrics>>,
) {
    // Consecutive accept failures back off up to this ceiling instead of
    // hot-spinning on e.g. EMFILE, which only the passage of time fixes.
    const MAX_BACKOFF: Duration = Duration::from_millis(100);
    let mut backoff = Duration::from_millis(1);
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(s) => {
                backoff = Duration::from_millis(1);
                s
            }
            Err(_) => {
                stats.accepts_failed.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(MAX_BACKOFF);
                continue;
            }
        };
        let Some(permit) = gauge.try_acquire() else {
            stats.connections_rejected.fetch_add(1, Ordering::Relaxed);
            reject_over_capacity(stream, &limits);
            continue;
        };
        stats.connections_accepted.fetch_add(1, Ordering::Relaxed);
        let handler = Arc::clone(&handler);
        let stats = Arc::clone(stats);
        let obs = obs.clone();
        std::thread::spawn(move || {
            // The permit lives exactly as long as this thread's work and
            // is returned even if `serve_connection` itself unwinds.
            let _permit = permit;
            let _ = serve_connection(stream, handler, &limits, &stats, obs.as_deref());
            stats.connections_closed.fetch_add(1, Ordering::Relaxed);
        });
    }
}

/// Seconds every transport-minted shed/throttle response suggests the
/// client back off before retrying. Shared so the two backends advertise
/// the same hint byte-for-byte.
pub const SHED_RETRY_AFTER_SECS: u64 = 1;

/// The terse 503 every backend answers with at the connection cap.
/// Shared so a client cannot tell the serving backends apart by the
/// rejection they receive.
pub fn over_capacity_response() -> Response {
    Response::new(StatusCode::UNAVAILABLE)
        .with_body(b"connection limit reached".to_vec(), "text/plain")
        .with_header("Retry-After", &SHED_RETRY_AFTER_SECS.to_string())
        .with_header("Connection", "close")
}

/// The canned 503 for a request that aged past
/// [`ServerLimits::queue_deadline`] in the worker queue. The request was
/// fully read, so keep-alive survives — only the stale work is dropped.
pub fn queue_shed_response() -> Response {
    Response::new(StatusCode::UNAVAILABLE)
        .with_body(b"dropped from queue under overload".to_vec(), "text/plain")
        .with_header("Retry-After", &SHED_RETRY_AFTER_SECS.to_string())
}

/// Answers a connection that arrived over the cap: a terse 503, written
/// under a short deadline so a non-draining peer cannot stall accepting.
fn reject_over_capacity(stream: TcpStream, limits: &ServerLimits) {
    let _ = stream.set_write_timeout(Some(limits.write_timeout.min(Duration::from_secs(1))));
    let mut stream = stream;
    let _ = over_capacity_response().write_to(&mut stream);
    drain_then_close(&stream);
}

/// Closes after an error response without nuking it: a close with unread
/// request bytes queued makes the kernel send RST, which discards the
/// response from the peer's receive buffer. Half-close the write side,
/// then briefly drain (bounded in time) so the FIN lands clean.
fn drain_then_close(stream: &TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let deadline = Instant::now() + Duration::from_millis(500);
    let mut sink = [0u8; 8192];
    let mut stream = stream;
    while let Ok(n) = stream.read(&mut sink) {
        if n == 0 || Instant::now() >= deadline {
            break;
        }
    }
}

/// How one request read attempt ended, beyond a clean request.
enum ReadOutcome {
    /// A complete, parseable request.
    Request(Box<Request>),
    /// Clean EOF (or idle keep-alive timeout) between requests.
    Closed,
    /// The peer broke the connection mid-request; nothing to answer.
    Lost,
    /// The request was rejected; answer with this status and close.
    Reject(StatusCode),
    /// [`Handler::admit`] shed the request after its head: answer with
    /// this response and close (the unread body makes keep-alive
    /// unframeable).
    Shed(Box<Response>),
}

/// Reads requests off one connection until EOF/error, handling keep-alive.
/// Limit violations are answered with their status code before closing;
/// handler panics become 500s and the connection survives to report it.
fn serve_connection(
    stream: TcpStream,
    handler: Arc<dyn Handler>,
    limits: &ServerLimits,
    stats: &TransportStats,
    obs: Option<&HttpMetrics>,
) -> Result<(), HttpError> {
    stream.set_write_timeout(Some(limits.write_timeout))?;
    let peer_ip = stream.peer_addr().ok().map(|a| a.ip().to_string());
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        let mut request = match read_request_outcome(&mut reader, &*handler, limits, stats, obs) {
            ReadOutcome::Request(r) => *r,
            ReadOutcome::Closed | ReadOutcome::Lost => return Ok(()),
            ReadOutcome::Reject(status) => {
                let response = Response::new(status)
                    .with_body(status.reason().as_bytes().to_vec(), "text/plain")
                    .with_header("Connection", "close");
                let _ = response.write_to(&mut writer);
                let _ = writer.flush();
                drain_then_close(&writer);
                return Ok(());
            }
            ReadOutcome::Shed(shed) => {
                let mut response = *shed;
                response.headers.set("Connection", "close");
                let _ = response.write_to(&mut writer);
                let _ = writer.flush();
                drain_then_close(&writer);
                return Ok(());
            }
        };
        // Surface the observed peer address to handlers (Oak's
        // subnet-scoped rule policies key on it). Set last, so a spoofed
        // header from the client cannot win.
        if let Some(ip) = &peer_ip {
            request.headers.set(PEER_ADDR_HEADER, ip.clone());
        }
        let close = request
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"));
        // A panicking handler must cost one response, not the thread: the
        // permit and keep-alive loop survive, the client gets a 500, and
        // the panic is visible in the stats instead of a dead silence.
        let handle_start = obs.map(|o| o.now());
        let response = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handler.handle(&request)
        })) {
            Ok(response) => response,
            Err(_) => {
                stats.panics.fetch_add(1, Ordering::Relaxed);
                Response::new(StatusCode::INTERNAL_ERROR)
                    .with_body(b"handler panicked".to_vec(), "text/plain")
            }
        };
        if let (Some(obs), Some(start)) = (obs, handle_start) {
            obs.record(Stage::Handle, start, obs.now());
        }
        stats.requests_served.fetch_add(1, Ordering::Relaxed);
        let write_start = obs.map(|o| o.now());
        response.write_to(&mut writer)?;
        writer.flush()?;
        if let (Some(obs), Some(start)) = (obs, write_start) {
            obs.record(Stage::Write, start, obs.now());
        }
        if close {
            return Ok(());
        }
    }
}

/// Classifies one [`read_request`] attempt into the connection's next
/// action, bumping the matching counter.
fn read_request_outcome(
    reader: &mut BufReader<TcpStream>,
    handler: &dyn Handler,
    limits: &ServerLimits,
    stats: &TransportStats,
    obs: Option<&HttpMetrics>,
) -> ReadOutcome {
    match read_request(reader, handler, limits, obs) {
        Ok(Some(ReadResult::Request(request))) => ReadOutcome::Request(request),
        Ok(Some(ReadResult::Shed(response))) => {
            stats.requests_shed.fetch_add(1, Ordering::Relaxed);
            ReadOutcome::Shed(response)
        }
        Ok(None) => ReadOutcome::Closed,
        Err(HttpError::TimedOut) => {
            stats.timeouts.fetch_add(1, Ordering::Relaxed);
            ReadOutcome::Reject(StatusCode::REQUEST_TIMEOUT)
        }
        Err(HttpError::HeadTooLarge { .. }) => {
            stats.heads_too_large.fetch_add(1, Ordering::Relaxed);
            ReadOutcome::Reject(StatusCode::HEADERS_TOO_LARGE)
        }
        Err(HttpError::BodyTooLarge { .. }) => {
            stats.bodies_too_large.fetch_add(1, Ordering::Relaxed);
            ReadOutcome::Reject(StatusCode::PAYLOAD_TOO_LARGE)
        }
        Err(HttpError::Malformed(_)) => {
            stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            ReadOutcome::Reject(StatusCode::BAD_REQUEST)
        }
        // The peer vanished mid-request (reset, or EOF inside a body);
        // there is nobody left to answer.
        Err(HttpError::Truncated | HttpError::Io(_)) => ReadOutcome::Lost,
        Err(HttpError::BadUrl(_)) => {
            stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            ReadOutcome::Reject(StatusCode::BAD_REQUEST)
        }
    }
}

/// The wall-clock budget for reading one request: socket timeouts are
/// re-armed with the *remaining* budget before every read, so a client
/// dribbling one byte per second exhausts the deadline instead of
/// resetting a per-read timer (the slowloris defense).
struct ReadDeadline {
    deadline: Instant,
    /// True once any request byte arrived: a deadline before the first
    /// byte is an idle keep-alive connection, not a slow request.
    started: bool,
}

impl ReadDeadline {
    fn new(budget: Duration) -> ReadDeadline {
        ReadDeadline {
            deadline: Instant::now() + budget,
            started: false,
        }
    }

    /// Arms the socket with the remaining budget; `TimedOut` when spent.
    fn arm(&self, stream: &TcpStream) -> Result<(), HttpError> {
        let remaining = self.deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(HttpError::TimedOut);
        }
        stream
            .set_read_timeout(Some(remaining))
            .map_err(HttpError::Io)?;
        Ok(())
    }

    /// Maps a socket timeout (`WouldBlock`/`TimedOut`) to [`HttpError::TimedOut`].
    fn classify(&self, e: std::io::Error) -> HttpError {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => HttpError::TimedOut,
            _ => HttpError::Io(e),
        }
    }
}

/// How [`read_request`] ended when it did produce something to act on.
enum ReadResult {
    /// A complete, parseable request.
    Request(Box<Request>),
    /// [`Handler::admit`] shed the request after its head; the body was
    /// never read.
    Shed(Box<Response>),
}

/// Reads one request; `None` on immediate EOF or an idle keep-alive
/// timeout before any byte arrived.
fn read_request(
    reader: &mut BufReader<TcpStream>,
    handler: &dyn Handler,
    limits: &ServerLimits,
    obs: Option<&HttpMetrics>,
) -> Result<Option<ReadResult>, HttpError> {
    // Read time covers socket entry to a complete byte buffer (including
    // any keep-alive idle wait before the first byte); parse time covers
    // turning those bytes into a Request. Only successful requests are
    // recorded — rejects have no stage to attribute.
    let read_start = obs.map(|o| o.now());
    let mut deadline = ReadDeadline::new(limits.read_timeout);
    let head = match read_head(reader, limits, &mut deadline) {
        Ok(Some(h)) => h,
        Ok(None) => return Ok(None),
        Err(HttpError::TimedOut) if !deadline.started => return Ok(None),
        Err(e) => return Err(e),
    };
    // The overload gate runs on the bare request line, before the body
    // is buffered — shedding that waits for the body has already paid
    // the cost it was meant to avoid.
    if let Some((token, target)) = request_line_of(&head) {
        if let Some(method) = Method::parse(token) {
            if let Some(response) = handler.admit(method, target) {
                return Ok(Some(ReadResult::Shed(Box::new(response))));
            }
        }
    }
    let mut bytes = head;
    if head_is_chunked(&bytes)? {
        // Accumulate until the zero-size terminating chunk, bounding the
        // running total by the body limit.
        let mut body = Vec::new();
        loop {
            let mut line = Vec::new();
            if read_until_lf(reader, &mut line, &mut deadline)? == 0 {
                return Err(HttpError::Truncated);
            }
            body.extend_from_slice(&line);
            if line == b"0\r\n" || line == b"0\n" {
                // Trailer section ends at a blank line.
                let mut blank = Vec::new();
                loop {
                    blank.clear();
                    if read_until_lf(reader, &mut blank, &mut deadline)? == 0 {
                        return Err(HttpError::Truncated);
                    }
                    body.extend_from_slice(&blank);
                    if blank == b"\r\n" || blank == b"\n" {
                        break;
                    }
                }
                break;
            }
            // The line was a chunk-size header; read that many bytes + CRLF.
            let text = String::from_utf8_lossy(&line);
            let size_text = text.trim_end().split(';').next().unwrap_or("").trim();
            let size = usize::from_str_radix(size_text, 16)
                .map_err(|_| HttpError::Malformed(format!("bad chunk size {size_text:?}")))?;
            if body.len().saturating_add(size) > limits.max_body_bytes {
                return Err(HttpError::BodyTooLarge {
                    limit: limits.max_body_bytes,
                });
            }
            let mut chunk = vec![0u8; size + 2];
            read_exact_deadlined(reader, &mut chunk, &deadline)?;
            body.extend_from_slice(&chunk);
        }
        bytes.extend_from_slice(&body);
    } else {
        // Learn Content-Length, then complete the body. The declared
        // length is checked against the limit *before* any body byte is
        // read, so an attacker cannot make the server buffer it.
        let needed = content_length_of(&bytes)?;
        if needed > limits.max_body_bytes {
            return Err(HttpError::BodyTooLarge {
                limit: limits.max_body_bytes,
            });
        }
        let mut body = vec![0u8; needed];
        read_exact_deadlined(reader, &mut body, &deadline)?;
        bytes.extend_from_slice(&body);
    }
    let parse_start = obs.map(|o| o.now());
    let request = Request::parse(&bytes)?;
    if let (Some(obs), Some(read_start), Some(parse_start)) = (obs, read_start, parse_start) {
        obs.record(Stage::Read, read_start, parse_start);
        obs.record(Stage::Parse, parse_start, obs.now());
    }
    Ok(Some(ReadResult::Request(Box::new(request))))
}

/// Reads up to and including the `\r\n\r\n` header terminator.
fn read_head(
    reader: &mut BufReader<TcpStream>,
    limits: &ServerLimits,
    deadline: &mut ReadDeadline,
) -> Result<Option<Vec<u8>>, HttpError> {
    let mut head = Vec::with_capacity(512);
    loop {
        let mut line = Vec::with_capacity(64);
        let n = read_until_lf(reader, &mut line, deadline)?;
        if n == 0 {
            return if head.is_empty() {
                Ok(None)
            } else {
                Err(HttpError::Truncated)
            };
        }
        let blank = line == b"\r\n" || line == b"\n";
        head.extend_from_slice(&line);
        if blank {
            return Ok(Some(head));
        }
        if head.len() > limits.max_head_bytes {
            return Err(HttpError::HeadTooLarge {
                limit: limits.max_head_bytes,
            });
        }
    }
}

fn read_until_lf(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    deadline: &mut ReadDeadline,
) -> Result<usize, HttpError> {
    deadline.arm(reader.get_ref())?;
    let before = buf.len();
    let result = reader.read_until(b'\n', buf);
    // Partial bytes before an error still mean a request is in flight —
    // a stalled half-line is a slow request (408), not an idle close.
    if buf.len() > before {
        deadline.started = true;
    }
    result.map_err(|e| deadline.classify(e))
}

/// `read_exact` under the request deadline, in pieces so the remaining
/// budget is re-armed as the body trickles in.
fn read_exact_deadlined(
    reader: &mut BufReader<TcpStream>,
    buf: &mut [u8],
    deadline: &ReadDeadline,
) -> Result<(), HttpError> {
    const STRIDE: usize = 8 * 1024;
    let mut filled = 0;
    while filled < buf.len() {
        deadline.arm(reader.get_ref())?;
        let end = (filled + STRIDE).min(buf.len());
        reader
            .read_exact(&mut buf[filled..end])
            .map_err(|e| match e.kind() {
                std::io::ErrorKind::UnexpectedEof => HttpError::Truncated,
                _ => deadline.classify(e),
            })?;
        filled = end;
    }
    Ok(())
}

/// Performs one blocking HTTP exchange over a fresh TCP connection.
///
/// # Errors
///
/// Propagates connect/read/write failures and response parse errors.
pub fn fetch_tcp(addr: SocketAddr, request: &Request) -> Result<Response, HttpError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut request = request.clone();
    request.headers.set("Connection", "close");
    stream.write_all(&request.to_bytes())?;
    stream.flush()?;
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes)?;
    Response::parse(&bytes)
}
