//! Threaded TCP server and blocking client.
//!
//! Mirrors the paper's deployment: "a multi-threaded server … which serves
//! a dual purpose as both the web server and the Oak server platform" (§5).
//! The [`Handler`] trait is the seam between transport and logic — the Oak
//! proxy implements it once and runs identically over TCP (live example)
//! and direct in-memory calls (deterministic experiments).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::error::HttpError;
use crate::message::{Request, Response};

/// Header the TCP server sets on inbound requests with the connection's
/// observed peer IP, overriding any client-supplied value. Handlers that
/// care about client addresses (Oak's subnet-scoped policies, §4.2.4 of
/// the paper) read this.
pub const PEER_ADDR_HEADER: &str = "X-Oak-Peer-Addr";

/// Turns a request into a response. Implementations must be thread-safe:
/// the TCP server invokes them from connection threads.
pub trait Handler: Send + Sync + 'static {
    /// Produces the response for `request`.
    fn handle(&self, request: &Request) -> Response;
}

impl<F> Handler for F
where
    F: Fn(&Request) -> Response + Send + Sync + 'static,
{
    fn handle(&self, request: &Request) -> Response {
        self(request)
    }
}

/// A running HTTP server; dropped or [`TcpServer::shutdown`] stops it.
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Binds to `127.0.0.1:port` (port 0 picks a free port) and starts
    /// accepting, one thread per connection.
    ///
    /// # Errors
    ///
    /// Propagates the bind error.
    pub fn start(port: u16, handler: Arc<dyn Handler>) -> Result<TcpServer, HttpError> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let handler = Arc::clone(&handler);
                std::thread::spawn(move || {
                    let _ = serve_connection(stream, handler);
                });
            }
        });
        Ok(TcpServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the accept thread. In-flight connection
    /// threads finish their current exchange.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Kick the accept loop out of `incoming()`.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Reads requests off one connection until EOF/error, handling keep-alive.
fn serve_connection(stream: TcpStream, handler: Arc<dyn Handler>) -> Result<(), HttpError> {
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let peer_ip = stream.peer_addr().ok().map(|a| a.ip().to_string());
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        let mut request = match read_request(&mut reader) {
            Ok(Some(r)) => r,
            Ok(None) => return Ok(()), // clean EOF between requests
            Err(e) => return Err(e),
        };
        // Surface the observed peer address to handlers (Oak's
        // subnet-scoped rule policies key on it). Set last, so a spoofed
        // header from the client cannot win.
        if let Some(ip) = &peer_ip {
            request.headers.set(PEER_ADDR_HEADER, ip.clone());
        }
        let close = request
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"));
        let response = handler.handle(&request);
        response.write_to(&mut writer)?;
        writer.flush()?;
        if close {
            return Ok(());
        }
    }
}

/// Reads one request; `None` on immediate EOF.
fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Option<Request>, HttpError> {
    let head = match read_head(reader)? {
        Some(h) => h,
        None => return Ok(None),
    };
    let mut bytes = head;
    if head_is_chunked(&bytes)? {
        // Accumulate until the zero-size terminating chunk.
        let mut body = Vec::new();
        loop {
            let mut line = Vec::new();
            if read_until_lf(reader, &mut line)? == 0 {
                return Err(HttpError::Truncated);
            }
            body.extend_from_slice(&line);
            if line == b"0\r\n" || line == b"0\n" {
                // Trailer section ends at a blank line.
                let mut blank = Vec::new();
                loop {
                    blank.clear();
                    if read_until_lf(reader, &mut blank)? == 0 {
                        return Err(HttpError::Truncated);
                    }
                    body.extend_from_slice(&blank);
                    if blank == b"\r\n" || blank == b"\n" {
                        break;
                    }
                }
                break;
            }
            // The line was a chunk-size header; read that many bytes + CRLF.
            let text = String::from_utf8_lossy(&line);
            let size_text = text.trim_end().split(';').next().unwrap_or("").trim();
            let size = usize::from_str_radix(size_text, 16)
                .map_err(|_| HttpError::Malformed(format!("bad chunk size {size_text:?}")))?;
            if size > 16 * 1024 * 1024 {
                return Err(HttpError::Malformed("chunk exceeds 16 MiB".into()));
            }
            let mut chunk = vec![0u8; size + 2];
            reader.read_exact(&mut chunk).map_err(HttpError::Io)?;
            body.extend_from_slice(&chunk);
        }
        bytes.extend_from_slice(&body);
    } else {
        // Learn Content-Length, then complete the body.
        let needed = content_length_of(&bytes)?;
        let mut body = vec![0u8; needed];
        reader.read_exact(&mut body).map_err(HttpError::Io)?;
        bytes.extend_from_slice(&body);
    }
    Request::parse(&bytes).map(Some)
}

/// True if the raw head block declares `Transfer-Encoding: chunked`.
fn head_is_chunked(head: &[u8]) -> Result<bool, HttpError> {
    let text = std::str::from_utf8(head)
        .map_err(|_| HttpError::Malformed("non-UTF-8 header block".into()))?;
    Ok(text.split("\r\n").any(|line| {
        line.split_once(':').is_some_and(|(name, value)| {
            name.eq_ignore_ascii_case("transfer-encoding")
                && value.trim().eq_ignore_ascii_case("chunked")
        })
    }))
}

/// Reads up to and including the `\r\n\r\n` header terminator.
fn read_head(reader: &mut impl BufRead) -> Result<Option<Vec<u8>>, HttpError> {
    let mut head = Vec::with_capacity(512);
    loop {
        let mut line = Vec::with_capacity(64);
        let n = read_until_lf(reader, &mut line)?;
        if n == 0 {
            return if head.is_empty() {
                Ok(None)
            } else {
                Err(HttpError::Truncated)
            };
        }
        let blank = line == b"\r\n" || line == b"\n";
        head.extend_from_slice(&line);
        if blank {
            // Normalize a bare-LF blank line so the parser's CRLF split works.
            if head.ends_with(b"\n") && !head.ends_with(b"\r\n\r\n") {
                // Tolerated: requests from hand-rolled clients.
            }
            return Ok(Some(head));
        }
        if head.len() > 64 * 1024 {
            return Err(HttpError::Malformed("header block exceeds 64 KiB".into()));
        }
    }
}

fn read_until_lf(reader: &mut impl BufRead, buf: &mut Vec<u8>) -> Result<usize, HttpError> {
    reader.read_until(b'\n', buf).map_err(HttpError::Io)
}

/// Extracts Content-Length from a raw head block (0 when absent).
fn content_length_of(head: &[u8]) -> Result<usize, HttpError> {
    let text = std::str::from_utf8(head)
        .map_err(|_| HttpError::Malformed("non-UTF-8 header block".into()))?;
    for line in text.split("\r\n") {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                return value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::Malformed(format!("bad content-length {value:?}")));
            }
        }
    }
    Ok(0)
}

/// Performs one blocking HTTP exchange over a fresh TCP connection.
///
/// # Errors
///
/// Propagates connect/read/write failures and response parse errors.
pub fn fetch_tcp(addr: SocketAddr, request: &Request) -> Result<Response, HttpError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut request = request.clone();
    request.headers.set("Connection", "close");
    stream.write_all(&request.to_bytes())?;
    stream.flush()?;
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes)?;
    Response::parse(&bytes)
}
