//! Deterministic fault injection for the TCP edge.
//!
//! The torture suite (and any embedder's resilience tests) drives a live
//! [`crate::TcpServer`] through the abuse patterns a public origin sees:
//! byte-dribbling slowloris clients, connections dropped mid-body,
//! oversized heads and bodies, and permit-hogging idle connections. Every
//! helper is scripted — fixed byte schedules and delays, no randomness —
//! so a failing run replays identically.
//!
//! These helpers are *clients*: they speak raw bytes at a real socket, so
//! the server under test exercises exactly the code path production
//! traffic hits.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

use crate::error::HttpError;
use crate::framing::content_length_of;
use crate::message::{Request, Response};

/// A scripted abusive client aimed at one server address.
#[derive(Clone, Copy, Debug)]
pub struct ChaosClient {
    addr: SocketAddr,
    /// How long to wait for the server's answer before giving up.
    read_timeout: Duration,
}

impl ChaosClient {
    /// Targets `addr` with a 5-second response-read timeout.
    pub fn new(addr: SocketAddr) -> ChaosClient {
        ChaosClient {
            addr,
            read_timeout: Duration::from_secs(5),
        }
    }

    /// Overrides the response-read timeout.
    pub fn with_read_timeout(mut self, timeout: Duration) -> ChaosClient {
        self.read_timeout = timeout;
        self
    }

    fn connect(&self) -> Result<TcpStream, HttpError> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_read_timeout(Some(self.read_timeout))?;
        Ok(stream)
    }

    /// Slowloris: sends `bytes` in `chunk`-byte pieces with `delay`
    /// between pieces, then reads whatever the server answers. Stops
    /// dribbling early if the server closes the connection (broken
    /// pipe), which is exactly what a deadline-enforcing server does.
    ///
    /// # Errors
    ///
    /// Propagates connect errors; response parse errors mean the server
    /// closed without answering.
    pub fn dribble(
        &self,
        bytes: &[u8],
        chunk: usize,
        delay: Duration,
    ) -> Result<Response, HttpError> {
        let mut stream = self.connect()?;
        for piece in bytes.chunks(chunk.max(1)) {
            if stream.write_all(piece).is_err() {
                break; // server hung up mid-dribble; go read its verdict
            }
            let _ = stream.flush();
            std::thread::sleep(delay);
        }
        let _ = stream.shutdown(Shutdown::Write);
        read_response(&mut stream)
    }

    /// Declares a `Content-Length` of `declared` bytes on a POST to
    /// `path`, sends only `sent` of them, and drops the connection —
    /// the mid-body disconnect pattern.
    ///
    /// # Errors
    ///
    /// Propagates connect/write errors.
    pub fn disconnect_mid_body(
        &self,
        path: &str,
        declared: usize,
        sent: usize,
    ) -> Result<(), HttpError> {
        let mut stream = self.connect()?;
        let head = format!(
            "POST {path} HTTP/1.1\r\nContent-Length: {declared}\r\nContent-Type: application/json\r\n\r\n"
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(&vec![b'x'; sent.min(declared)])?;
        stream.flush()?;
        drop(stream); // RST or FIN mid-body; the server must shrug
        Ok(())
    }

    /// Sends a request whose head (one giant padding header) is
    /// `head_bytes` long and returns the server's verdict (431 when over
    /// the limit).
    ///
    /// # Errors
    ///
    /// Propagates connect errors; parse errors mean no answer arrived.
    pub fn oversized_head(&self, head_bytes: usize) -> Result<Response, HttpError> {
        let mut stream = self.connect()?;
        let mut head = b"GET / HTTP/1.1\r\nX-Padding: ".to_vec();
        head.resize(head_bytes.max(head.len()), b'a');
        head.extend_from_slice(b"\r\n\r\n");
        let _ = stream.write_all(&head);
        let _ = stream.shutdown(Shutdown::Write);
        read_response(&mut stream)
    }

    /// Declares an oversized body via `Content-Length` (no body bytes are
    /// actually sent) and returns the server's verdict (413 when over
    /// the limit — *before* the server buffers anything).
    ///
    /// # Errors
    ///
    /// Propagates connect errors; parse errors mean no answer arrived.
    pub fn oversized_body(&self, path: &str, declared: usize) -> Result<Response, HttpError> {
        let mut stream = self.connect()?;
        let head = format!("POST {path} HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n");
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        read_response(&mut stream)
    }

    /// Sends raw `bytes` verbatim, half-closes, and returns the verdict.
    ///
    /// # Errors
    ///
    /// Propagates connect errors; parse errors mean no answer arrived.
    pub fn send_raw(&self, bytes: &[u8]) -> Result<Response, HttpError> {
        let mut stream = self.connect()?;
        let _ = stream.write_all(bytes);
        let _ = stream.shutdown(Shutdown::Write);
        read_response(&mut stream)
    }

    /// Opens a connection and holds it without sending a byte; the
    /// returned stream keeps a server permit occupied until dropped.
    ///
    /// # Errors
    ///
    /// Propagates connect errors.
    pub fn hold_open(&self) -> Result<TcpStream, HttpError> {
        self.connect()
    }

    /// Opens `n` simultaneous keep-alive connections and returns the
    /// driver holding them all.
    ///
    /// This is the concurrency primitive behind `bench_edge_latency`
    /// (thousands of open keep-alive connections per client thread) and
    /// the multi-connection slowloris torture (every connection dribbles
    /// at once, so the server must time each one out independently
    /// without stalling the rest).
    ///
    /// # Errors
    ///
    /// Propagates the first connect error; on failure no connections are
    /// leaked.
    pub fn concurrent(&self, n: usize) -> Result<ConnPool, HttpError> {
        let mut conns = Vec::with_capacity(n);
        for _ in 0..n {
            let stream = self.connect()?;
            // Request/response ping-pong across many connections is
            // latency-bound, not throughput-bound; Nagle would serialize
            // it against delayed ACKs.
            let _ = stream.set_nodelay(true);
            conns.push(BufReader::new(stream));
        }
        Ok(ConnPool { conns })
    }
}

/// `n` simultaneously open keep-alive connections to one server, driven
/// from a single thread (see [`ChaosClient::concurrent`]).
pub struct ConnPool {
    conns: Vec<BufReader<TcpStream>>,
}

impl ConnPool {
    /// How many connections the pool holds open.
    pub fn len(&self) -> usize {
        self.conns.len()
    }

    /// True when the pool holds no connections.
    pub fn is_empty(&self) -> bool {
        self.conns.is_empty()
    }

    /// Performs one keep-alive request/response exchange on connection
    /// `i`. The connection stays open for the next exchange, so a loop
    /// over `exchange` measures steady-state keep-alive latency with no
    /// per-request connect cost.
    ///
    /// # Errors
    ///
    /// Propagates write/read failures (a closed or timed-out connection
    /// surfaces as an I/O or parse error; reopen via a fresh pool).
    pub fn exchange(&mut self, i: usize, request: &Request) -> Result<Response, HttpError> {
        let conn = &mut self.conns[i];
        conn.get_mut().write_all(&request.to_bytes())?;
        conn.get_mut().flush()?;
        read_keepalive_response(conn)
    }

    /// Multi-connection slowloris: dribbles `bytes` in `chunk`-byte
    /// pieces on *every* pooled connection simultaneously (one piece per
    /// connection per round, `delay` between rounds), then half-closes
    /// each and collects every server verdict. A deadline-enforcing
    /// server answers each connection 408 independently; a server with a
    /// shared read loop would stall them all behind the first.
    pub fn dribble_all(
        &mut self,
        bytes: &[u8],
        chunk: usize,
        delay: Duration,
    ) -> Vec<Result<Response, HttpError>> {
        for piece in bytes.chunks(chunk.max(1)) {
            for conn in &mut self.conns {
                // A write error means the server already hung up on this
                // connection; its verdict is read below regardless.
                let _ = conn.get_mut().write_all(piece);
                let _ = conn.get_mut().flush();
            }
            std::thread::sleep(delay);
        }
        self.conns
            .iter_mut()
            .map(|conn| {
                let _ = conn.get_mut().shutdown(Shutdown::Write);
                let mut bytes = Vec::new();
                conn.read_to_end(&mut bytes)?;
                Response::parse(&bytes)
            })
            .collect()
    }
}

/// Reads exactly one `Content-Length`-framed response off a keep-alive
/// connection, leaving the stream open for the next exchange.
fn read_keepalive_response(conn: &mut BufReader<TcpStream>) -> Result<Response, HttpError> {
    let mut head = Vec::with_capacity(256);
    loop {
        let start = head.len();
        let n = conn.read_until(b'\n', &mut head)?;
        if n == 0 {
            return Err(HttpError::Truncated);
        }
        let line = &head[start..];
        if line == b"\r\n" || line == b"\n" {
            break;
        }
    }
    let body_len = content_length_of(&head)?;
    let mut bytes = head;
    let body_start = bytes.len();
    bytes.resize(body_start + body_len, 0);
    conn.read_exact(&mut bytes[body_start..])?;
    Response::parse(&bytes)
}

/// Reads to EOF and parses whatever the server sent.
fn read_response(stream: &mut TcpStream) -> Result<Response, HttpError> {
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes)?;
    Response::parse(&bytes)
}
