//! Deterministic fault injection for the TCP edge.
//!
//! The torture suite (and any embedder's resilience tests) drives a live
//! [`crate::TcpServer`] through the abuse patterns a public origin sees:
//! byte-dribbling slowloris clients, connections dropped mid-body,
//! oversized heads and bodies, and permit-hogging idle connections. Every
//! helper is scripted — fixed byte schedules and delays, no randomness —
//! so a failing run replays identically.
//!
//! These helpers are *clients*: they speak raw bytes at a real socket, so
//! the server under test exercises exactly the code path production
//! traffic hits.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

use crate::error::HttpError;
use crate::message::Response;

/// A scripted abusive client aimed at one server address.
#[derive(Clone, Copy, Debug)]
pub struct ChaosClient {
    addr: SocketAddr,
    /// How long to wait for the server's answer before giving up.
    read_timeout: Duration,
}

impl ChaosClient {
    /// Targets `addr` with a 5-second response-read timeout.
    pub fn new(addr: SocketAddr) -> ChaosClient {
        ChaosClient {
            addr,
            read_timeout: Duration::from_secs(5),
        }
    }

    /// Overrides the response-read timeout.
    pub fn with_read_timeout(mut self, timeout: Duration) -> ChaosClient {
        self.read_timeout = timeout;
        self
    }

    fn connect(&self) -> Result<TcpStream, HttpError> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_read_timeout(Some(self.read_timeout))?;
        Ok(stream)
    }

    /// Slowloris: sends `bytes` in `chunk`-byte pieces with `delay`
    /// between pieces, then reads whatever the server answers. Stops
    /// dribbling early if the server closes the connection (broken
    /// pipe), which is exactly what a deadline-enforcing server does.
    ///
    /// # Errors
    ///
    /// Propagates connect errors; response parse errors mean the server
    /// closed without answering.
    pub fn dribble(
        &self,
        bytes: &[u8],
        chunk: usize,
        delay: Duration,
    ) -> Result<Response, HttpError> {
        let mut stream = self.connect()?;
        for piece in bytes.chunks(chunk.max(1)) {
            if stream.write_all(piece).is_err() {
                break; // server hung up mid-dribble; go read its verdict
            }
            let _ = stream.flush();
            std::thread::sleep(delay);
        }
        let _ = stream.shutdown(Shutdown::Write);
        read_response(&mut stream)
    }

    /// Declares a `Content-Length` of `declared` bytes on a POST to
    /// `path`, sends only `sent` of them, and drops the connection —
    /// the mid-body disconnect pattern.
    ///
    /// # Errors
    ///
    /// Propagates connect/write errors.
    pub fn disconnect_mid_body(
        &self,
        path: &str,
        declared: usize,
        sent: usize,
    ) -> Result<(), HttpError> {
        let mut stream = self.connect()?;
        let head = format!(
            "POST {path} HTTP/1.1\r\nContent-Length: {declared}\r\nContent-Type: application/json\r\n\r\n"
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(&vec![b'x'; sent.min(declared)])?;
        stream.flush()?;
        drop(stream); // RST or FIN mid-body; the server must shrug
        Ok(())
    }

    /// Sends a request whose head (one giant padding header) is
    /// `head_bytes` long and returns the server's verdict (431 when over
    /// the limit).
    ///
    /// # Errors
    ///
    /// Propagates connect errors; parse errors mean no answer arrived.
    pub fn oversized_head(&self, head_bytes: usize) -> Result<Response, HttpError> {
        let mut stream = self.connect()?;
        let mut head = b"GET / HTTP/1.1\r\nX-Padding: ".to_vec();
        head.resize(head_bytes.max(head.len()), b'a');
        head.extend_from_slice(b"\r\n\r\n");
        let _ = stream.write_all(&head);
        let _ = stream.shutdown(Shutdown::Write);
        read_response(&mut stream)
    }

    /// Declares an oversized body via `Content-Length` (no body bytes are
    /// actually sent) and returns the server's verdict (413 when over
    /// the limit — *before* the server buffers anything).
    ///
    /// # Errors
    ///
    /// Propagates connect errors; parse errors mean no answer arrived.
    pub fn oversized_body(&self, path: &str, declared: usize) -> Result<Response, HttpError> {
        let mut stream = self.connect()?;
        let head = format!("POST {path} HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n");
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        read_response(&mut stream)
    }

    /// Sends raw `bytes` verbatim, half-closes, and returns the verdict.
    ///
    /// # Errors
    ///
    /// Propagates connect errors; parse errors mean no answer arrived.
    pub fn send_raw(&self, bytes: &[u8]) -> Result<Response, HttpError> {
        let mut stream = self.connect()?;
        let _ = stream.write_all(bytes);
        let _ = stream.shutdown(Shutdown::Write);
        read_response(&mut stream)
    }

    /// Opens a connection and holds it without sending a byte; the
    /// returned stream keeps a server permit occupied until dropped.
    ///
    /// # Errors
    ///
    /// Propagates connect errors.
    pub fn hold_open(&self) -> Result<TcpStream, HttpError> {
        self.connect()
    }
}

/// Reads to EOF and parses whatever the server sent.
fn read_response(stream: &mut TcpStream) -> Result<Response, HttpError> {
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes)?;
    Response::parse(&bytes)
}
