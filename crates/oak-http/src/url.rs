//! URL parsing and reference resolution.

use crate::error::HttpError;

/// A parsed URL.
///
/// Covers the subset Oak needs: `http`-style hierarchical URLs with host,
/// optional port, path, and query. Fragments are parsed and dropped (they
/// never reach the network). Userinfo is rejected — it does not occur on
/// resource URLs and is a classic spoofing vector in URL *matching*, which
/// is exactly what Oak does with rule text.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Url {
    scheme: String,
    host: String,
    port: Option<u16>,
    path: String,
    query: Option<String>,
}

impl Url {
    /// Parses an absolute URL.
    ///
    /// # Errors
    ///
    /// Returns [`HttpError::BadUrl`] when the scheme/host structure is
    /// missing or malformed.
    pub fn parse(text: &str) -> Result<Url, HttpError> {
        let bad = || HttpError::BadUrl(text.to_owned());
        let (scheme, rest) = text.split_once("://").ok_or_else(bad)?;
        if scheme.is_empty()
            || !scheme
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '+' || c == '-' || c == '.')
        {
            return Err(bad());
        }
        // Split off fragment first, then query, then path.
        let rest = rest.split('#').next().unwrap_or(rest);
        let (authority_path, query) = match rest.split_once('?') {
            Some((ap, q)) => (ap, Some(q.to_owned())),
            None => (rest, None),
        };
        let (authority, path) = match authority_path.find('/') {
            Some(i) => (&authority_path[..i], authority_path[i..].to_owned()),
            None => (authority_path, "/".to_owned()),
        };
        if authority.contains('@') {
            return Err(bad());
        }
        let (host, port) = match authority.rsplit_once(':') {
            Some((h, p)) => {
                let port: u16 = p.parse().map_err(|_| bad())?;
                (h, Some(port))
            }
            None => (authority, None),
        };
        if host.is_empty() || host.contains(['/', '?', '#', ' ']) {
            return Err(bad());
        }
        Ok(Url {
            scheme: scheme.to_ascii_lowercase(),
            host: host.to_ascii_lowercase(),
            port,
            path,
            query,
        })
    }

    /// Resolves `reference` against this base URL.
    ///
    /// Handles the reference forms that occur in pages: absolute URLs,
    /// protocol-relative (`//host/x`), absolute paths (`/x`), and relative
    /// paths (`x`, `../x`).
    ///
    /// # Errors
    ///
    /// Returns [`HttpError::BadUrl`] if the combined result is invalid.
    pub fn join(&self, reference: &str) -> Result<Url, HttpError> {
        if reference.contains("://") {
            return Url::parse(reference);
        }
        if let Some(rest) = reference.strip_prefix("//") {
            return Url::parse(&format!("{}://{}", self.scheme, rest));
        }
        let mut out = self.clone();
        out.query = None;
        let (ref_path, ref_query) = match reference.split_once('?') {
            Some((p, q)) => (p, Some(q.to_owned())),
            None => (reference, None),
        };
        out.query = ref_query;
        if ref_path.starts_with('/') {
            out.path = normalize_path(ref_path);
        } else if !ref_path.is_empty() {
            let base_dir = match self.path.rfind('/') {
                Some(i) => &self.path[..=i],
                None => "/",
            };
            out.path = normalize_path(&format!("{base_dir}{ref_path}"));
        }
        Ok(out)
    }

    /// The scheme, lowercased (`http`).
    pub fn scheme(&self) -> &str {
        &self.scheme
    }

    /// The hostname, lowercased.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The explicit port, if any.
    pub fn port(&self) -> Option<u16> {
        self.port
    }

    /// The port in effect (explicit, or 80/443 by scheme).
    pub fn effective_port(&self) -> u16 {
        self.port
            .unwrap_or(if self.scheme == "https" { 443 } else { 80 })
    }

    /// The path (always starts with `/`).
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The query string without `?`, if present.
    pub fn query(&self) -> Option<&str> {
        self.query.as_deref()
    }

    /// Path plus query, as used on an HTTP request line.
    pub fn request_target(&self) -> String {
        match &self.query {
            Some(q) => format!("{}?{q}", self.path),
            None => self.path.clone(),
        }
    }

    /// The registrable-site key Oak uses to decide whether a host is
    /// *external*: the last two labels of the hostname (`cdn.a.example.com`
    /// → `example.com`). The paper does "not consider sub-domains of the
    /// original domain to be outside hosts" (§2).
    pub fn site(&self) -> &str {
        site_of(&self.host)
    }

    /// True if `other_host` belongs to a different site than this URL.
    pub fn is_external_to(&self, origin_host: &str) -> bool {
        site_of(&self.host) != site_of(origin_host)
    }
}

/// The hostname slice of an absolute URL, borrowed from the input and in
/// its original case, or `None` exactly when [`Url::parse`] would fail.
///
/// This is the allocation-free companion to `Url::parse(..).map(Url::host)`
/// for the report-ingest hot path, which only needs the host. The two
/// must accept and reject identical inputs; the structural checks below
/// deliberately mirror [`Url::parse`] clause for clause.
pub fn host_of(text: &str) -> Option<&str> {
    let (scheme, rest) = text.split_once("://")?;
    if scheme.is_empty()
        || !scheme
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '+' || c == '-' || c == '.')
    {
        return None;
    }
    let rest = rest.split('#').next().unwrap_or(rest);
    let authority_path = rest.split('?').next().unwrap_or(rest);
    let authority = match authority_path.find('/') {
        Some(i) => &authority_path[..i],
        None => authority_path,
    };
    if authority.contains('@') {
        return None;
    }
    let host = match authority.rsplit_once(':') {
        Some((h, p)) => {
            p.parse::<u16>().ok()?;
            h
        }
        None => authority,
    };
    if host.is_empty() || host.contains(['/', '?', '#', ' ']) {
        return None;
    }
    Some(host)
}

/// Last-two-labels site key (see [`Url::site`]).
pub(crate) fn site_of(host: &str) -> &str {
    let mut dots = host.rmatch_indices('.');
    let _tld_dot = dots.next();
    match dots.next() {
        Some((i, _)) => &host[i + 1..],
        None => host,
    }
}

/// Removes `.` and `..` segments.
fn normalize_path(path: &str) -> String {
    let mut out: Vec<&str> = Vec::new();
    for seg in path.split('/') {
        match seg {
            "." | "" => {}
            ".." => {
                out.pop();
            }
            s => out.push(s),
        }
    }
    let mut joined = String::from("/");
    joined.push_str(&out.join("/"));
    if path.ends_with('/') && joined != "/" {
        joined.push('/');
    }
    joined
}

impl std::fmt::Display for Url {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}://{}", self.scheme, self.host)?;
        if let Some(p) = self.port {
            write!(f, ":{p}")?;
        }
        write!(f, "{}", self.path)?;
        if let Some(q) = &self.query {
            write!(f, "?{q}")?;
        }
        Ok(())
    }
}
