//! Unit, integration, and property tests for the HTTP substrate.

use std::sync::Arc;

use crate::cookie::{
    format_cookie_header, format_set_cookie, get_cookie, parse_cookie_header, OAK_USER_COOKIE,
};
use crate::{fetch_tcp, Headers, HttpError, Method, Request, Response, StatusCode, TcpServer, Url};

#[test]
fn url_parses_components() {
    let u = Url::parse("http://CDN.Example.com:8080/a/b?x=1&y=2#frag").unwrap();
    assert_eq!(u.scheme(), "http");
    assert_eq!(u.host(), "cdn.example.com");
    assert_eq!(u.port(), Some(8080));
    assert_eq!(u.effective_port(), 8080);
    assert_eq!(u.path(), "/a/b");
    assert_eq!(u.query(), Some("x=1&y=2"));
    assert_eq!(u.request_target(), "/a/b?x=1&y=2");
}

#[test]
fn url_defaults() {
    let u = Url::parse("http://h.example").unwrap();
    assert_eq!(u.path(), "/");
    assert_eq!(u.effective_port(), 80);
    assert_eq!(
        Url::parse("https://h.example").unwrap().effective_port(),
        443
    );
}

#[test]
fn url_rejects_malformed() {
    for bad in [
        "",
        "noscheme",
        "http://",
        "http://user@host/x",
        "http://h:not_a_port/",
        "://host/",
        "ht tp://host/",
    ] {
        assert!(Url::parse(bad).is_err(), "{bad:?}");
    }
}

#[test]
fn url_display_roundtrip() {
    for text in [
        "http://h.example/",
        "http://h.example:81/a?q=1",
        "https://a.b.c/x/y/z",
    ] {
        let u = Url::parse(text).unwrap();
        assert_eq!(Url::parse(&u.to_string()).unwrap(), u);
    }
}

#[test]
fn url_join_forms() {
    let base = Url::parse("http://site.example/dir/page.html?old=1").unwrap();
    assert_eq!(
        base.join("http://other.example/z").unwrap().to_string(),
        "http://other.example/z"
    );
    assert_eq!(
        base.join("//cdn.example/lib.js").unwrap().to_string(),
        "http://cdn.example/lib.js"
    );
    assert_eq!(
        base.join("/rooted.png").unwrap().to_string(),
        "http://site.example/rooted.png"
    );
    assert_eq!(
        base.join("sibling.css").unwrap().to_string(),
        "http://site.example/dir/sibling.css"
    );
    assert_eq!(
        base.join("../up.js").unwrap().to_string(),
        "http://site.example/up.js"
    );
    assert_eq!(
        base.join("a/./b/../c?n=2").unwrap().to_string(),
        "http://site.example/dir/a/c?n=2"
    );
    // Empty reference keeps the base path, drops the query.
    assert_eq!(base.join("").unwrap().path(), "/dir/page.html");
}

#[test]
fn url_site_and_externality() {
    let u = Url::parse("http://static.cdn.shop.example/img.png").unwrap();
    assert_eq!(u.site(), "shop.example");
    // Sub-domains of the origin are NOT external (paper §2).
    assert!(!u.is_external_to("www.shop.example"));
    assert!(u.is_external_to("other.example"));
    let bare = Url::parse("http://localhost/x").unwrap();
    assert_eq!(bare.site(), "localhost");
}

#[test]
fn headers_case_insensitive_multimap() {
    let mut h = Headers::new();
    h.append("Set-Cookie", "a=1");
    h.append("set-cookie", "b=2");
    h.set("Content-Type", "text/html");
    assert_eq!(h.get("SET-COOKIE"), Some("a=1"));
    assert_eq!(h.get_all("Set-Cookie").count(), 2);
    assert!(h.contains("content-TYPE"));
    h.set("content-type", "text/plain");
    assert_eq!(h.get_all("Content-Type").count(), 1);
    assert_eq!(h.remove("set-cookie"), 2);
    assert_eq!(h.len(), 1);
    assert!(!h.is_empty());
}

#[test]
fn request_roundtrip() {
    let req = Request::new(Method::Post, "/oak/report")
        .with_header("Cookie", "oak_uid=u-7")
        .with_body(br#"{"objects":[]}"#.to_vec(), "application/json");
    let parsed = Request::parse(&req.to_bytes()).unwrap();
    assert_eq!(parsed, req);
    assert_eq!(parsed.path(), "/oak/report");
    assert_eq!(parsed.header("COOKIE"), Some("oak_uid=u-7"));
}

#[test]
fn response_roundtrip() {
    let resp = Response::html("<html>hi</html>").with_header("X-Oak-Alternate", "cdn2.example");
    let parsed = Response::parse(&resp.to_bytes()).unwrap();
    assert_eq!(parsed, resp);
    assert_eq!(parsed.body_text(), "<html>hi</html>");
    assert!(parsed.status.is_success());
}

#[test]
fn parse_rejects_malformed() {
    assert!(matches!(
        Request::parse(b"FROB / HTTP/1.1\r\n\r\n"),
        Err(HttpError::Malformed(_))
    ));
    assert!(matches!(
        Request::parse(b"GET / HTTP/2\r\n\r\n"),
        Err(HttpError::Malformed(_))
    ));
    assert!(matches!(
        Request::parse(b"GET  HTTP/1.1\r\n\r\n"),
        Err(HttpError::Malformed(_))
    ));
    assert!(matches!(
        Request::parse(b"GET / HTTP/1.1\r\nBad Header Name: x\r\n\r\n"),
        Err(HttpError::Malformed(_))
    ));
    assert!(matches!(
        Response::parse(b"HTTP/1.1 abc OK\r\n\r\n"),
        Err(HttpError::Malformed(_))
    ));
}

#[test]
fn parse_detects_truncation() {
    assert!(matches!(
        Request::parse(b"GET / HTTP/1.1\r\n"),
        Err(HttpError::Truncated)
    ));
    assert!(matches!(
        Request::parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
        Err(HttpError::Truncated)
    ));
}

#[test]
fn body_respects_content_length_exactly() {
    let parsed = Request::parse(b"POST / HTTP/1.1\r\nContent-Length: 2\r\n\r\nabEXTRA").unwrap();
    assert_eq!(parsed.body, b"ab");
}

#[test]
fn status_codes() {
    assert_eq!(StatusCode::OK.reason(), "OK");
    assert_eq!(StatusCode(503).reason(), "Service Unavailable");
    assert_eq!(StatusCode(299).reason(), "Unknown");
    assert!(StatusCode::NO_CONTENT.is_success());
    assert!(!StatusCode::NOT_FOUND.is_success());
}

#[test]
fn cookie_parsing() {
    assert_eq!(
        parse_cookie_header("a=1; oak_uid=u-42; junk; b=2"),
        [("a", "1"), ("oak_uid", "u-42"), ("b", "2")]
    );
    assert_eq!(get_cookie("a=1; b=2", "b"), Some("2"));
    assert_eq!(get_cookie("a=1", "missing"), None);
    assert_eq!(parse_cookie_header(""), []);
    assert_eq!(parse_cookie_header("=v; ;;"), []);
}

#[test]
fn cookie_formatting() {
    assert_eq!(
        format_set_cookie(OAK_USER_COOKIE, "u-1"),
        "oak_uid=u-1; Path=/"
    );
    assert_eq!(
        format_cookie_header(&[("a".into(), "1".into()), ("b".into(), "2".into())]),
        "a=1; b=2"
    );
}

#[test]
fn chunked_bodies_decode() {
    use crate::encode_chunked;
    let payload = b"hello chunked world, hello again".to_vec();
    let chunked = encode_chunked(&payload, 7);
    let mut raw = b"POST /oak/report HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
    raw.extend_from_slice(&chunked);
    let parsed = Request::parse(&raw).unwrap();
    assert_eq!(parsed.body, payload);
}

#[test]
fn chunked_tolerates_extensions_and_rejects_garbage() {
    let ok = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5;ext=1\r\nhello\r\n0\r\n\r\n";
    assert_eq!(Request::parse(ok).unwrap().body, b"hello");

    let bad_size = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nZZ\r\nhello\r\n0\r\n\r\n";
    assert!(matches!(
        Request::parse(bad_size),
        Err(HttpError::Malformed(_))
    ));

    let truncated = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhel";
    assert!(matches!(
        Request::parse(truncated),
        Err(HttpError::Truncated)
    ));

    let missing_crlf =
        b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhelloXX0\r\n\r\n";
    assert!(matches!(
        Request::parse(missing_crlf),
        Err(HttpError::Malformed(_))
    ));
}

#[test]
fn chunked_roundtrip_various_chunk_sizes() {
    use crate::encode_chunked;
    let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
    for chunk_size in [1, 13, 4096, 100_000] {
        let mut raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
        raw.extend_from_slice(&encode_chunked(&payload, chunk_size));
        assert_eq!(
            Request::parse(&raw).unwrap().body,
            payload,
            "chunk={chunk_size}"
        );
    }
}

#[test]
fn tcp_server_accepts_chunked_requests() {
    use crate::encode_chunked;
    use std::io::{Read, Write};
    let handler = Arc::new(|req: &Request| {
        Response::new(StatusCode::OK).with_body(req.body.clone(), "application/octet-stream")
    });
    let mut server = TcpServer::start(0, handler).unwrap();
    let payload = b"chunk me across the wire".to_vec();
    let mut raw =
        b"POST /echo HTTP/1.1\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n".to_vec();
    raw.extend_from_slice(&encode_chunked(&payload, 5));

    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream.write_all(&raw).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).unwrap();
    let resp = Response::parse(&bytes).unwrap();
    assert_eq!(resp.body, payload);
    server.shutdown();
}

#[test]
fn tcp_server_round_trips_requests() {
    let handler = Arc::new(|req: &Request| {
        Response::html(format!("you asked for {}", req.target))
            .with_header("Set-Cookie", &format_set_cookie(OAK_USER_COOKIE, "u-9"))
    });
    let mut server = TcpServer::start(0, handler).unwrap();
    let resp = fetch_tcp(server.addr(), &Request::new(Method::Get, "/page")).unwrap();
    assert_eq!(resp.status, StatusCode::OK);
    assert_eq!(resp.body_text(), "you asked for /page");
    assert_eq!(
        resp.header("set-cookie")
            .and_then(|v| get_cookie(v, OAK_USER_COOKIE)),
        Some("u-9")
    );
    server.shutdown();
}

#[test]
fn tcp_server_handles_post_bodies_and_parallel_clients() {
    let handler = Arc::new(|req: &Request| {
        Response::new(StatusCode::OK).with_body(req.body.clone(), "application/octet-stream")
    });
    let mut server = TcpServer::start(0, handler).unwrap();
    let addr = server.addr();
    let threads: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                let body = vec![i as u8; 1000 + i * 10];
                let req = Request::new(Method::Post, "/echo")
                    .with_body(body.clone(), "application/octet-stream");
                let resp = fetch_tcp(addr, &req).unwrap();
                assert_eq!(resp.body, body);
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    server.shutdown();
}

#[test]
fn tcp_server_shutdown_is_idempotent() {
    let handler = Arc::new(|_: &Request| Response::not_found());
    let mut server = TcpServer::start(0, handler).unwrap();
    server.shutdown();
    server.shutdown();
    assert!(fetch_tcp(server.addr(), &Request::new(Method::Get, "/")).is_err());
}

/// A server whose handler echoes the request target, with tight limits
/// for the edge-case tests.
fn echo_server(limits: crate::ServerLimits) -> TcpServer {
    let handler = Arc::new(|req: &Request| {
        Response::new(StatusCode::OK).with_body(req.target.clone().into_bytes(), "text/plain")
    });
    TcpServer::start_with_limits(0, handler, limits).unwrap()
}

#[test]
fn keep_alive_serves_pipelined_requests() {
    use std::io::{Read, Write};
    let mut server = echo_server(crate::ServerLimits::default());
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    // Two requests in one burst; the second asks to close.
    stream
        .write_all(b"GET /first HTTP/1.1\r\n\r\nGET /second HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut bytes = Vec::new();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .unwrap();
    stream.read_to_end(&mut bytes).unwrap();
    let text = String::from_utf8_lossy(&bytes);
    assert_eq!(text.matches("HTTP/1.1 200").count(), 2, "{text}");
    assert!(
        text.contains("/first") && text.contains("/second"),
        "{text}"
    );
    server.shutdown();
}

#[test]
fn connection_close_header_is_case_insensitive() {
    use std::io::{Read, Write};
    let mut server = echo_server(crate::ServerLimits::default());
    for variant in ["close", "Close", "CLOSE", "cLoSe"] {
        let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(format!("GET /x HTTP/1.1\r\nConnection: {variant}\r\n\r\n").as_bytes())
            .unwrap();
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .unwrap();
        let mut bytes = Vec::new();
        // The server closing (not the client) unblocks read_to_end: if
        // the casing variant were missed, this would hang to the timeout.
        stream.read_to_end(&mut bytes).unwrap();
        assert!(
            String::from_utf8_lossy(&bytes).starts_with("HTTP/1.1 200"),
            "{variant}"
        );
    }
    server.shutdown();
}

#[test]
fn keep_alive_sequential_requests_share_a_connection() {
    use std::io::{Read, Write};
    let mut server = echo_server(crate::ServerLimits::default());
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .unwrap();
    stream.write_all(b"GET /one HTTP/1.1\r\n\r\n").unwrap();
    let mut seen = Vec::new();
    let mut buf = [0u8; 256];
    while !String::from_utf8_lossy(&seen).contains("/one") {
        let n = stream.read(&mut buf).unwrap();
        assert!(n > 0, "server closed a keep-alive connection early");
        seen.extend_from_slice(&buf[..n]);
    }
    // Same socket, second exchange.
    stream
        .write_all(b"GET /two HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(String::from_utf8_lossy(&rest).contains("/two"));
    assert_eq!(
        server.stats().snapshot().connections_accepted,
        1,
        "both requests must ride one connection"
    );
    server.shutdown();
}

#[test]
fn client_disconnect_mid_body_leaves_server_serving() {
    let mut server = echo_server(crate::ServerLimits::default());
    let chaos = crate::fault::ChaosClient::new(server.addr());
    for _ in 0..3 {
        chaos
            .disconnect_mid_body("/oak/report", 10_000, 37)
            .unwrap();
    }
    // The permits all came back and a normal request still works.
    let resp = fetch_tcp(server.addr(), &Request::new(Method::Get, "/alive")).unwrap();
    assert_eq!(resp.status, StatusCode::OK);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while server.active_connections() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert_eq!(server.active_connections(), 0, "permits leaked");
    server.shutdown();
}

#[test]
fn malformed_and_conflicting_content_length_yield_400() {
    let mut server = echo_server(crate::ServerLimits::default());
    let chaos = crate::fault::ChaosClient::new(server.addr());
    for raw in [
        // Signs and padding are not digits: `usize::from_str` would have
        // accepted "+5", so strictness must be explicit.
        b"POST / HTTP/1.1\r\nContent-Length: +5\r\n\r\nhello".to_vec(),
        b"POST / HTTP/1.1\r\nContent-Length: 5x\r\n\r\nhello".to_vec(),
        b"POST / HTTP/1.1\r\nContent-Length: \r\n\r\n".to_vec(),
        // Conflicting duplicates smell like request smuggling.
        b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 5\r\n\r\nhello".to_vec(),
    ] {
        let resp = chaos.send_raw(&raw).unwrap();
        assert_eq!(resp.status, StatusCode::BAD_REQUEST, "{raw:?}");
    }
    // Duplicate *identical* declarations are tolerated (RFC 9110 §8.6).
    let resp = chaos
        .send_raw(b"POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello")
        .unwrap();
    assert_eq!(resp.status, StatusCode::OK);
    assert_eq!(server.stats().snapshot().bad_requests, 4);
    server.shutdown();
}

#[test]
fn head_and_body_limits_return_431_and_413() {
    let limits = crate::ServerLimits {
        max_head_bytes: 1024,
        max_body_bytes: 2048,
        ..crate::ServerLimits::default()
    };
    let mut server = echo_server(limits);
    let chaos = crate::fault::ChaosClient::new(server.addr());

    let resp = chaos.oversized_head(10_000).unwrap();
    assert_eq!(resp.status, StatusCode::HEADERS_TOO_LARGE);

    // The body is rejected from its declaration alone — no bytes sent.
    let resp = chaos.oversized_body("/x", 1_000_000).unwrap();
    assert_eq!(resp.status, StatusCode::PAYLOAD_TOO_LARGE);

    // Chunked bodies trip the same cap as they accumulate.
    let mut raw = b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
    raw.extend_from_slice(&crate::encode_chunked(&vec![b'z'; 10_000], 512));
    let resp = chaos.send_raw(&raw).unwrap();
    assert_eq!(resp.status, StatusCode::PAYLOAD_TOO_LARGE);

    let snapshot = server.stats().snapshot();
    assert_eq!(snapshot.heads_too_large, 1);
    assert_eq!(snapshot.bodies_too_large, 2);
    server.shutdown();
}

#[test]
fn slowloris_gets_408_within_the_read_deadline() {
    let limits = crate::ServerLimits {
        read_timeout: std::time::Duration::from_millis(200),
        ..crate::ServerLimits::default()
    };
    let mut server = echo_server(limits);
    let chaos = crate::fault::ChaosClient::new(server.addr());
    // One byte every 50 ms: each read succeeds, but the per-request
    // budget runs out long before the head completes.
    let resp = chaos
        .dribble(
            b"GET /never-finishes HTTP/1.1\r\nX-Slow: 1\r\n",
            1,
            std::time::Duration::from_millis(50),
        )
        .unwrap();
    assert_eq!(resp.status, StatusCode::REQUEST_TIMEOUT);
    assert_eq!(server.stats().snapshot().timeouts, 1);
    // And the server still answers a well-behaved client.
    let resp = fetch_tcp(server.addr(), &Request::new(Method::Get, "/ok")).unwrap();
    assert_eq!(resp.status, StatusCode::OK);
    server.shutdown();
}

#[test]
fn connection_cap_rejects_with_503_and_recovers() {
    let limits = crate::ServerLimits {
        max_connections: 2,
        ..crate::ServerLimits::default()
    };
    let mut server = echo_server(limits);
    let chaos = crate::fault::ChaosClient::new(server.addr());
    let hog1 = chaos.hold_open().unwrap();
    let hog2 = chaos.hold_open().unwrap();
    // Both permits are taken once the accept loop picks the hogs up.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while server.active_connections() < 2 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let resp = fetch_tcp(server.addr(), &Request::new(Method::Get, "/full")).unwrap();
    assert_eq!(resp.status, StatusCode::UNAVAILABLE);
    assert_eq!(server.stats().snapshot().connections_rejected, 1);
    // Releasing the hogs returns the permits; service resumes.
    drop(hog1);
    drop(hog2);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while server.active_connections() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let resp = fetch_tcp(server.addr(), &Request::new(Method::Get, "/again")).unwrap();
    assert_eq!(resp.status, StatusCode::OK);
    server.shutdown();
}

#[test]
fn handler_panic_becomes_500_and_connection_thread_survives() {
    let handler = Arc::new(|req: &Request| {
        if req.target == "/boom" {
            panic!("handler exploded");
        }
        Response::new(StatusCode::OK).with_body(b"fine".to_vec(), "text/plain")
    });
    let mut server = TcpServer::start(0, handler).unwrap();
    // Quiet the default panic hook for this deliberate explosion.
    let prior = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let resp = fetch_tcp(server.addr(), &Request::new(Method::Get, "/boom")).unwrap();
    std::panic::set_hook(prior);
    assert_eq!(resp.status, StatusCode::INTERNAL_ERROR);
    assert_eq!(server.stats().snapshot().panics, 1);
    let resp = fetch_tcp(server.addr(), &Request::new(Method::Get, "/ok")).unwrap();
    assert_eq!(resp.status, StatusCode::OK);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while server.active_connections() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert_eq!(server.active_connections(), 0, "panic leaked a permit");
    server.shutdown();
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Request serialize → parse is the identity.
        #[test]
        fn request_roundtrip(
            target in "/[a-z0-9/_.-]{0,24}",
            body in prop::collection::vec(any::<u8>(), 0..256),
        ) {
            let req = Request::new(Method::Post, &target)
                .with_body(body, "application/octet-stream");
            prop_assert_eq!(Request::parse(&req.to_bytes()).unwrap(), req);
        }

        /// Response serialize → parse is the identity.
        #[test]
        fn response_roundtrip(
            code in 100u16..600,
            body in prop::collection::vec(any::<u8>(), 0..256),
        ) {
            let resp = Response::new(StatusCode(code)).with_body(body, "text/plain");
            prop_assert_eq!(Response::parse(&resp.to_bytes()).unwrap(), resp);
        }

        /// The parsers never panic on arbitrary bytes.
        #[test]
        fn parsers_are_total(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
            let _ = Request::parse(&bytes);
            let _ = Response::parse(&bytes);
        }

        /// Chunked encode → parse recovers the payload for any chunk size.
        #[test]
        fn chunked_roundtrip(
            payload in prop::collection::vec(any::<u8>(), 0..2048),
            chunk_size in 1usize..512,
        ) {
            let mut raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
            raw.extend_from_slice(&crate::encode_chunked(&payload, chunk_size));
            prop_assert_eq!(Request::parse(&raw).unwrap().body, payload);
        }

        /// URL parse/display round-trips.
        #[test]
        fn url_roundtrip(
            host in "[a-z]{1,8}(\\.[a-z]{1,8}){0,2}",
            path in "(/[a-z0-9]{0,6}){0,3}",
            port in prop::option::of(1u16..),
        ) {
            let text = match port {
                Some(p) => format!("http://{host}:{p}{path}"),
                None => format!("http://{host}{path}"),
            };
            let u = Url::parse(&text).unwrap();
            prop_assert_eq!(Url::parse(&u.to_string()).unwrap(), u);
        }

        /// join() is total for path-like references.
        #[test]
        fn join_is_total(reference in "[a-z0-9/?=.&_-]{0,32}") {
            let base = Url::parse("http://base.example/a/b").unwrap();
            if let Ok(joined) = base.join(&reference) {
                prop_assert!(joined.path().starts_with('/'));
            }
        }
    }
}
