//! Error type shared across the HTTP crate.

use std::error::Error;
use std::fmt;
use std::io;

/// Anything that can go wrong parsing or transporting an HTTP message.
#[derive(Debug)]
pub enum HttpError {
    /// The bytes are not a valid HTTP/1.1 message.
    Malformed(String),
    /// The message was cut off before `Content-Length` was satisfied.
    Truncated,
    /// The request head exceeded the server's configured limit (→ 431).
    HeadTooLarge {
        /// The configured cap in bytes.
        limit: usize,
    },
    /// The declared or accumulated body exceeded the server's configured
    /// limit (→ 413).
    BodyTooLarge {
        /// The configured cap in bytes.
        limit: usize,
    },
    /// The peer failed to produce a complete request within the read
    /// deadline (→ 408 on a slowloris).
    TimedOut,
    /// A URL failed to parse.
    BadUrl(String),
    /// An underlying socket error.
    Io(io::Error),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Malformed(what) => write!(f, "malformed HTTP message: {what}"),
            HttpError::Truncated => write!(f, "message truncated before body completed"),
            HttpError::HeadTooLarge { limit } => {
                write!(f, "request head exceeds the {limit}-byte limit")
            }
            HttpError::BodyTooLarge { limit } => {
                write!(f, "request body exceeds the {limit}-byte limit")
            }
            HttpError::TimedOut => write!(f, "deadline elapsed before the message completed"),
            HttpError::BadUrl(url) => write!(f, "invalid URL: {url}"),
            HttpError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl Error for HttpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HttpError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

impl PartialEq for HttpError {
    /// Io errors compare by kind; the rest structurally. Useful in tests.
    fn eq(&self, other: &HttpError) -> bool {
        match (self, other) {
            (HttpError::Malformed(a), HttpError::Malformed(b)) => a == b,
            (HttpError::Truncated, HttpError::Truncated) => true,
            (HttpError::HeadTooLarge { limit: a }, HttpError::HeadTooLarge { limit: b }) => a == b,
            (HttpError::BodyTooLarge { limit: a }, HttpError::BodyTooLarge { limit: b }) => a == b,
            (HttpError::TimedOut, HttpError::TimedOut) => true,
            (HttpError::BadUrl(a), HttpError::BadUrl(b)) => a == b,
            (HttpError::Io(a), HttpError::Io(b)) => a.kind() == b.kind(),
            _ => false,
        }
    }
}
