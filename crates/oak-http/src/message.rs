//! HTTP/1.1 request and response types with wire codecs.

use crate::error::HttpError;
use crate::headers::Headers;

/// Request methods Oak's traffic uses. Pages are GETs; performance reports
/// arrive "via HTTP POST" (§4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    /// GET.
    Get,
    /// HEAD.
    Head,
    /// POST.
    Post,
    /// PUT.
    Put,
    /// DELETE.
    Delete,
    /// OPTIONS.
    Options,
}

impl Method {
    /// The wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Head => "HEAD",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
            Method::Options => "OPTIONS",
        }
    }

    /// Parses a wire token (case-sensitive, per RFC 9110).
    pub fn parse(token: &str) -> Option<Method> {
        Some(match token {
            "GET" => Method::Get,
            "HEAD" => Method::Head,
            "POST" => Method::Post,
            "PUT" => Method::Put,
            "DELETE" => Method::Delete,
            "OPTIONS" => Method::Options,
            _ => return None,
        })
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A response status code.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StatusCode(pub u16);

impl StatusCode {
    /// 200 OK.
    pub const OK: StatusCode = StatusCode(200);
    /// 204 No Content (Oak's report endpoint acknowledgment).
    pub const NO_CONTENT: StatusCode = StatusCode(204);
    /// 400 Bad Request.
    pub const BAD_REQUEST: StatusCode = StatusCode(400);
    /// 404 Not Found.
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// 408 Request Timeout (slowloris and half-sent requests).
    pub const REQUEST_TIMEOUT: StatusCode = StatusCode(408);
    /// 413 Content Too Large (body over the server's limit).
    pub const PAYLOAD_TOO_LARGE: StatusCode = StatusCode(413);
    /// 429 Too Many Requests (report admission control).
    pub const TOO_MANY_REQUESTS: StatusCode = StatusCode(429);
    /// 431 Request Header Fields Too Large (head over the server's limit).
    pub const HEADERS_TOO_LARGE: StatusCode = StatusCode(431);
    /// 500 Internal Server Error.
    pub const INTERNAL_ERROR: StatusCode = StatusCode(500);
    /// 503 Service Unavailable (connection limit reached).
    pub const UNAVAILABLE: StatusCode = StatusCode(503);

    /// The standard reason phrase (a fixed subset; anything unknown says
    /// "Unknown").
    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            204 => "No Content",
            301 => "Moved Permanently",
            302 => "Found",
            304 => "Not Modified",
            400 => "Bad Request",
            403 => "Forbidden",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Content Too Large",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            502 => "Bad Gateway",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// True for 2xx.
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }
}

/// An HTTP request.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// The method.
    pub method: Method,
    /// The request target (origin-form: path plus optional query).
    pub target: String,
    /// Header lines.
    pub headers: Headers,
    /// The body (empty when absent).
    pub body: Vec<u8>,
}

impl Request {
    /// A bodyless request for `target`.
    pub fn new(method: Method, target: impl Into<String>) -> Request {
        Request {
            method,
            target: target.into(),
            headers: Headers::new(),
            body: Vec::new(),
        }
    }

    /// Builder-style: attach a body and set `Content-Type` +
    /// `Content-Length`.
    pub fn with_body(mut self, body: Vec<u8>, content_type: &str) -> Request {
        self.headers.set("Content-Type", content_type);
        self.headers.set("Content-Length", body.len().to_string());
        self.body = body;
        self
    }

    /// Builder-style: set a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Request {
        self.headers.set(name, value);
        self
    }

    /// The path portion of the target (query stripped).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// First header value, case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(name)
    }

    /// Serializes to wire bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut headers = self.headers.clone();
        if !self.body.is_empty() && !headers.contains("content-length") {
            headers.set("Content-Length", self.body.len().to_string());
        }
        let mut out =
            format!("{} {} HTTP/1.1\r\n{headers}\r\n", self.method, self.target).into_bytes();
        out.extend_from_slice(&self.body);
        out
    }

    /// Parses wire bytes into a request.
    ///
    /// # Errors
    ///
    /// [`HttpError::Malformed`] for bad syntax, [`HttpError::Truncated`]
    /// when the body is shorter than `Content-Length`.
    pub fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        let (head, body) = split_message(bytes)?;
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or_default();
        let mut parts = request_line.split(' ');
        let method = parts
            .next()
            .and_then(Method::parse)
            .ok_or_else(|| HttpError::Malformed(format!("bad method in {request_line:?}")))?;
        let target = parts
            .next()
            .filter(|t| !t.is_empty())
            .ok_or_else(|| HttpError::Malformed("missing request target".into()))?
            .to_owned();
        match parts.next() {
            Some(v) if v.starts_with("HTTP/1.") => {}
            other => {
                return Err(HttpError::Malformed(format!("bad version {other:?}")));
            }
        }
        let headers = parse_headers(lines)?;
        let body = read_body(&headers, body)?;
        Ok(Request {
            method,
            target,
            headers,
            body,
        })
    }
}

/// An HTTP response.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// The status code.
    pub status: StatusCode,
    /// Header lines.
    pub headers: Headers,
    /// The body (empty when absent).
    pub body: Vec<u8>,
}

impl Response {
    /// A bodyless response.
    pub fn new(status: StatusCode) -> Response {
        Response {
            status,
            headers: Headers::new(),
            body: Vec::new(),
        }
    }

    /// Builder-style: attach a body and set `Content-Type` +
    /// `Content-Length`.
    pub fn with_body(mut self, body: Vec<u8>, content_type: &str) -> Response {
        self.headers.set("Content-Type", content_type);
        self.headers.set("Content-Length", body.len().to_string());
        self.body = body;
        self
    }

    /// Builder-style: set a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.set(name, value);
        self
    }

    /// Convenience: an HTML page response.
    pub fn html(markup: impl Into<Vec<u8>>) -> Response {
        Response::new(StatusCode::OK).with_body(markup.into(), "text/html; charset=utf-8")
    }

    /// Convenience: a 404.
    pub fn not_found() -> Response {
        Response::new(StatusCode::NOT_FOUND).with_body(b"not found".to_vec(), "text/plain")
    }

    /// First header value, case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(name)
    }

    /// The body interpreted as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Serializes to wire bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut headers = self.headers.clone();
        if !headers.contains("content-length") {
            headers.set("Content-Length", self.body.len().to_string());
        }
        let mut out = format!(
            "HTTP/1.1 {} {}\r\n{headers}\r\n",
            self.status.0,
            self.status.reason()
        )
        .into_bytes();
        out.extend_from_slice(&self.body);
        out
    }

    /// Writes the wire form to `w`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_to(&self, w: &mut impl std::io::Write) -> Result<(), HttpError> {
        w.write_all(&self.to_bytes())?;
        Ok(())
    }

    /// Parses wire bytes into a response.
    ///
    /// # Errors
    ///
    /// [`HttpError::Malformed`] for bad syntax, [`HttpError::Truncated`]
    /// when the body is shorter than `Content-Length`.
    pub fn parse(bytes: &[u8]) -> Result<Response, HttpError> {
        let (head, body) = split_message(bytes)?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or_default();
        let mut parts = status_line.splitn(3, ' ');
        match parts.next() {
            Some(v) if v.starts_with("HTTP/1.") => {}
            other => return Err(HttpError::Malformed(format!("bad version {other:?}"))),
        }
        let code: u16 = parts
            .next()
            .and_then(|c| c.parse().ok())
            .ok_or_else(|| HttpError::Malformed(format!("bad status in {status_line:?}")))?;
        let headers = parse_headers(lines)?;
        let body = read_body(&headers, body)?;
        Ok(Response {
            status: StatusCode(code),
            headers,
            body,
        })
    }
}

/// Splits raw bytes at the header/body boundary; the head must be ASCII.
fn split_message(bytes: &[u8]) -> Result<(&str, &[u8]), HttpError> {
    let boundary = find_subslice(bytes, b"\r\n\r\n").ok_or(HttpError::Truncated)?;
    let head = std::str::from_utf8(&bytes[..boundary])
        .map_err(|_| HttpError::Malformed("non-UTF-8 header block".into()))?;
    Ok((head, &bytes[boundary + 4..]))
}

fn parse_headers<'a>(lines: impl Iterator<Item = &'a str>) -> Result<Headers, HttpError> {
    let mut headers = Headers::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header line without colon: {line:?}")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed(format!("bad header name: {name:?}")));
        }
        headers.append(name, value.trim());
    }
    Ok(headers)
}

fn read_body(headers: &Headers, body: &[u8]) -> Result<Vec<u8>, HttpError> {
    if headers
        .get("transfer-encoding")
        .is_some_and(|v| v.eq_ignore_ascii_case("chunked"))
    {
        return decode_chunked(body);
    }
    match headers.get("content-length") {
        None => Ok(Vec::new()),
        Some(len) => {
            let len: usize = len
                .trim()
                .parse()
                .map_err(|_| HttpError::Malformed(format!("bad content-length {len:?}")))?;
            if body.len() < len {
                return Err(HttpError::Truncated);
            }
            Ok(body[..len].to_vec())
        }
    }
}

/// Decodes a `Transfer-Encoding: chunked` body (RFC 9112 §7.1). Chunk
/// extensions are tolerated and ignored; trailers are discarded.
fn decode_chunked(mut body: &[u8]) -> Result<Vec<u8>, HttpError> {
    let mut out = Vec::new();
    loop {
        let line_end = find_subslice(body, b"\r\n").ok_or(HttpError::Truncated)?;
        let size_line = std::str::from_utf8(&body[..line_end])
            .map_err(|_| HttpError::Malformed("non-ASCII chunk size line".into()))?;
        let size_text = size_line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_text, 16)
            .map_err(|_| HttpError::Malformed(format!("bad chunk size {size_text:?}")))?;
        body = &body[line_end + 2..];
        if size == 0 {
            // Optional trailers up to the final blank line are discarded.
            return Ok(out);
        }
        if body.len() < size + 2 {
            return Err(HttpError::Truncated);
        }
        out.extend_from_slice(&body[..size]);
        if &body[size..size + 2] != b"\r\n" {
            return Err(HttpError::Malformed("chunk missing CRLF terminator".into()));
        }
        body = &body[size + 2..];
    }
}

/// Encodes `data` as a chunked body with chunks of `chunk_size` bytes —
/// used by tests and by handlers that stream large mirrored objects.
pub fn encode_chunked(data: &[u8], chunk_size: usize) -> Vec<u8> {
    let chunk_size = chunk_size.max(1);
    let mut out = Vec::with_capacity(data.len() + data.len() / chunk_size * 8 + 8);
    for chunk in data.chunks(chunk_size) {
        out.extend_from_slice(format!("{:x}\r\n", chunk.len()).as_bytes());
        out.extend_from_slice(chunk);
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(b"0\r\n\r\n");
    out
}

/// Naive subslice search (messages are small; no need for anything fancy).
pub(crate) fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}
