//! Thin OS readiness layer, dependency-free.
//!
//! Linux gets edge-triggered epoll through four `extern "C"`
//! declarations (no libc crate); every other unix falls back to
//! level-triggered poll(2). The [`Poller`] surface is identical either
//! way: register/reregister/deregister a raw fd under a `u64` token and
//! wait for [`Event`]s. Non-unix targets compile the crate but
//! [`crate::EdgeServer`] refuses to start there.

#![allow(unsafe_code)]

/// One readiness notification. `readable` folds in error/hangup states
/// so the read path discovers the close (as EOF or an error) instead of
/// the reactor needing a separate teardown path.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
}

/// What a registration wants to hear about.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Interest {
    pub readable: bool,
    pub writable: bool,
}

pub(crate) use imp::Poller;

#[cfg(target_os = "linux")]
mod imp {
    use super::{Event, Interest};
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::c_int;

    // The kernel reads/writes this layout directly; on x86 it is packed
    // (no padding between `events` and `data`), elsewhere naturally
    // aligned — mirroring the kernel's own definition.
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLLET: u32 = 1 << 31;

    /// Edge-triggered epoll instance.
    pub(crate) struct Poller {
        epfd: c_int,
        buf: Vec<EpollEvent>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
            })
        }

        fn mask(interest: Interest) -> u32 {
            // Always edge-triggered; RDHUP so a peer half-close surfaces
            // as readability (read returns 0) rather than silence.
            let mut m = EPOLLET | EPOLLRDHUP;
            if interest.readable {
                m |= EPOLLIN;
            }
            if interest.writable {
                m |= EPOLLOUT;
            }
            m
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: Poller::mask(interest),
                data: token,
            };
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                Err(io::Error::last_os_error())
            } else {
                Ok(())
            }
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            // Pre-2.6.9 kernels insist on a non-null event for DEL.
            self.ctl(
                EPOLL_CTL_DEL,
                fd,
                0,
                Interest {
                    readable: false,
                    writable: false,
                },
            )
        }

        /// Waits up to `timeout_ms` (-1 blocks) and appends readiness
        /// into `out`. A signal interruption returns empty, not an error.
        pub fn wait(&mut self, timeout_ms: i32, out: &mut Vec<Event>) -> io::Result<()> {
            out.clear();
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as c_int,
                    timeout_ms,
                )
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for ev in &self.buf[..n as usize] {
                // Copy fields out of the (possibly packed) struct by value.
                let events = { ev.events };
                let token = { ev.data };
                out.push(Event {
                    token,
                    readable: events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                    writable: events & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod imp {
    use super::{Event, Interest};
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::{c_int, c_short, c_uint};

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_uint, timeout: c_int) -> c_int;
    }

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    /// Level-triggered poll(2) fallback; the reactor's progress
    /// functions drain to `WouldBlock`, so level semantics only cost
    /// spurious wakeups, never stalls.
    pub(crate) struct Poller {
        registered: Vec<(RawFd, u64, Interest)>,
        fds: Vec<PollFd>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                registered: Vec::new(),
                fds: Vec::new(),
            })
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.registered.push((fd, token, interest));
            Ok(())
        }

        pub fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            for slot in &mut self.registered {
                if slot.0 == fd {
                    *slot = (fd, token, interest);
                    return Ok(());
                }
            }
            self.register(fd, token, interest)
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.registered.retain(|&(f, _, _)| f != fd);
            Ok(())
        }

        pub fn wait(&mut self, timeout_ms: i32, out: &mut Vec<Event>) -> io::Result<()> {
            out.clear();
            self.fds.clear();
            for &(fd, _, interest) in &self.registered {
                let mut events = 0;
                if interest.readable {
                    events |= POLLIN;
                }
                if interest.writable {
                    events |= POLLOUT;
                }
                self.fds.push(PollFd {
                    fd,
                    events,
                    revents: 0,
                });
            }
            let n = unsafe { poll(self.fds.as_mut_ptr(), self.fds.len() as c_uint, timeout_ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for (pfd, &(_, token, _)) in self.fds.iter().zip(&self.registered) {
                if pfd.revents == 0 {
                    continue;
                }
                out.push(Event {
                    token,
                    readable: pfd.revents & (POLLIN | POLLERR | POLLHUP) != 0,
                    writable: pfd.revents & (POLLOUT | POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

#[cfg(not(unix))]
mod imp {
    use super::{Event, Interest};
    use std::io;
    use std::os::fd::RawFd;

    /// Stub so the crate compiles off-unix; `EdgeServer::start*` refuses
    /// before ever constructing one.
    pub(crate) struct Poller;

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "oak-edge reactor requires a unix target",
            ))
        }

        pub fn register(&mut self, _: RawFd, _: u64, _: Interest) -> io::Result<()> {
            unreachable!("stub Poller cannot be constructed")
        }

        pub fn reregister(&mut self, _: RawFd, _: u64, _: Interest) -> io::Result<()> {
            unreachable!("stub Poller cannot be constructed")
        }

        pub fn deregister(&mut self, _: RawFd) -> io::Result<()> {
            unreachable!("stub Poller cannot be constructed")
        }

        pub fn wait(&mut self, _: i32, _: &mut Vec<Event>) -> io::Result<()> {
            unreachable!("stub Poller cannot be constructed")
        }
    }
}

/// Raises the process soft fd limit to the hard limit (Linux), returning
/// the soft limit now in force. The latency bench opens thousands of
/// simultaneous sockets — client and server ends both count — so default
/// 1024-fd environments (bare CI runners) need the headroom.
#[cfg(target_os = "linux")]
pub fn raise_fd_limit() -> u64 {
    use std::os::raw::c_int;

    #[repr(C)]
    struct Rlimit {
        cur: u64,
        max: u64,
    }

    extern "C" {
        fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
        fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
    }

    const RLIMIT_NOFILE: c_int = 7;

    let mut lim = Rlimit { cur: 0, max: 0 };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return 0;
    }
    if lim.cur < lim.max {
        let raised = Rlimit {
            cur: lim.max,
            max: lim.max,
        };
        if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } == 0 {
            return lim.max;
        }
    }
    lim.cur
}

/// Non-Linux targets: no-op, returns 0 (callers treat that as unknown).
#[cfg(not(target_os = "linux"))]
pub fn raise_fd_limit() -> u64 {
    0
}
