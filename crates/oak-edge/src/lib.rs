//! Event-driven edge: a non-blocking reactor behind the `oak-http`
//! transport seam.
//!
//! The blocking [`oak_http::TcpServer`] spends one OS thread per
//! connection — fine for tens of connections, ruinous for thousands of
//! mostly-idle keep-alive clients posting occasional Oak reports. This
//! crate serves the same protocol with a fixed thread budget:
//!
//! - **one reactor thread** owning every socket, woken by edge-triggered
//!   epoll (Linux, via four raw `extern "C"` declarations — no
//!   dependencies) or level-triggered poll(2) (other unix),
//! - **a hashed timer wheel** enforcing the same read/write deadlines
//!   the blocking backend arms via socket timeouts (slowloris → 408,
//!   idle keep-alive → silent close, stalled writer → disconnect),
//! - **a small fixed worker pool** running [`oak_http::Handler`]s off
//!   the loop, with `catch_unwind` panic isolation (panic → 500).
//!
//! Observable behavior is deliberately identical to the blocking
//! backend — same statuses (400/408/413/431/500/503), same framing
//! rules (shared [`oak_http::framing`]), same keep-alive, drain, and
//! counter semantics — proven by running the torture gauntlet over both
//! backends. [`EdgeServer::start_with_obs`] mirrors
//! [`oak_http::TcpServer::start_with_obs`] exactly, and [`AnyServer`]
//! lets embedders pick a [`Backend`] at runtime (`oak-serve --edge`).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use oak_http::{Request, Response, StatusCode};
//!
//! let server = oak_edge::EdgeServer::start(
//!     0,
//!     Arc::new(|_req: &Request| {
//!         Response::new(StatusCode::OK).with_body(b"ok".to_vec(), "text/plain")
//!     }),
//! )
//! .unwrap();
//! let resp = oak_http::fetch_tcp(server.addr(), &Request::new(oak_http::Method::Get, "/"))
//!     .unwrap();
//! assert_eq!(resp.status, StatusCode::OK);
//! ```

use std::fmt;
use std::net::SocketAddr;
use std::sync::Arc;

use oak_http::{Handler, HttpError, HttpMetrics, ServerLimits, TcpServer, TransportStats};

#[cfg(unix)]
mod conn;
#[cfg(unix)]
mod reactor;
mod stats;
mod sys;
#[cfg(unix)]
mod wheel;
#[cfg(unix)]
mod workers;

#[cfg(all(test, unix))]
mod tests;

pub use stats::{EdgeSnapshot, EdgeStats};
pub use sys::raise_fd_limit;

#[cfg(unix)]
pub use reactor::EdgeServer;

/// Reactor tuning knobs, all defaultable.
#[derive(Clone, Copy, Debug)]
pub struct EdgeConfig {
    /// Handler worker threads; `0` sizes from the host's available
    /// parallelism, clamped to `[2, 8]` (handlers are CPU-bound and
    /// short; more threads than cores just adds scheduling churn).
    pub workers: usize,
    /// Timer-wheel granularity in milliseconds. Deadlines fire up to one
    /// tick late, never early; the reactor's idle wakeup rate is bounded
    /// by `1000 / tick_ms` per second while connections exist.
    pub tick_ms: u64,
}

impl Default for EdgeConfig {
    fn default() -> EdgeConfig {
        EdgeConfig {
            workers: 0,
            tick_ms: 5,
        }
    }
}

impl EdgeConfig {
    /// The worker count this configuration resolves to on this host.
    pub fn resolved_workers(&self) -> usize {
        if self.workers != 0 {
            return self.workers;
        }
        std::thread::available_parallelism().map_or(2, |n| n.get().clamp(2, 8))
    }
}

/// Which transport backend serves the edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Blocking thread-per-connection [`oak_http::TcpServer`].
    Threads,
    /// Non-blocking reactor ([`EdgeServer`]).
    Epoll,
}

impl Backend {
    /// Parses the `--edge` flag value.
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "threads" => Some(Backend::Threads),
            "epoll" => Some(Backend::Epoll),
            _ => None,
        }
    }

    /// The flag spelling (`threads` / `epoll`).
    pub fn as_str(self) -> &'static str {
        match self {
            Backend::Threads => "threads",
            Backend::Epoll => "epoll",
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A running server of either backend, so call sites (daemon, tests,
/// benches) select the backend at runtime and treat it uniformly.
pub enum AnyServer {
    /// Blocking backend.
    Threads(TcpServer),
    /// Reactor backend.
    Epoll(EdgeServer),
}

impl AnyServer {
    /// Starts `backend` with the shared `start_with_obs` signature.
    ///
    /// # Errors
    ///
    /// Propagates bind (and, for the reactor, poller-creation) errors.
    pub fn start_with_obs(
        backend: Backend,
        port: u16,
        handler: Arc<dyn Handler>,
        limits: ServerLimits,
        stats: Arc<TransportStats>,
        obs: Option<Arc<HttpMetrics>>,
    ) -> Result<AnyServer, HttpError> {
        AnyServer::start_with_config(
            backend,
            port,
            handler,
            limits,
            stats,
            obs,
            EdgeConfig::default(),
        )
    }

    /// As [`AnyServer::start_with_obs`] with reactor tuning (ignored by
    /// the threads backend, which has no equivalent knobs).
    ///
    /// # Errors
    ///
    /// Propagates bind (and, for the reactor, poller-creation) errors.
    pub fn start_with_config(
        backend: Backend,
        port: u16,
        handler: Arc<dyn Handler>,
        limits: ServerLimits,
        stats: Arc<TransportStats>,
        obs: Option<Arc<HttpMetrics>>,
        config: EdgeConfig,
    ) -> Result<AnyServer, HttpError> {
        match backend {
            Backend::Threads => Ok(AnyServer::Threads(TcpServer::start_with_obs(
                port, handler, limits, stats, obs,
            )?)),
            Backend::Epoll => Ok(AnyServer::Epoll(EdgeServer::start_with_config(
                port, handler, limits, stats, obs, config,
            )?)),
        }
    }

    /// Which backend is serving.
    pub fn backend(&self) -> Backend {
        match self {
            AnyServer::Threads(_) => Backend::Threads,
            AnyServer::Epoll(_) => Backend::Epoll,
        }
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        match self {
            AnyServer::Threads(s) => s.addr(),
            AnyServer::Epoll(s) => s.addr(),
        }
    }

    /// The transport counters.
    pub fn stats(&self) -> Arc<TransportStats> {
        match self {
            AnyServer::Threads(s) => s.stats(),
            AnyServer::Epoll(s) => s.stats(),
        }
    }

    /// Connections currently counted against the cap.
    pub fn active_connections(&self) -> usize {
        match self {
            AnyServer::Threads(s) => s.active_connections(),
            AnyServer::Epoll(s) => s.active_connections(),
        }
    }

    /// Reactor gauges — `None` on the threads backend, which has no
    /// loop to instrument.
    pub fn edge_stats(&self) -> Option<Arc<EdgeStats>> {
        match self {
            AnyServer::Threads(_) => None,
            AnyServer::Epoll(s) => Some(s.edge_stats()),
        }
    }

    /// Stops accepting and drains (see each backend's `shutdown`).
    pub fn shutdown(&mut self) {
        match self {
            AnyServer::Threads(s) => s.shutdown(),
            AnyServer::Epoll(s) => s.shutdown(),
        }
    }
}

/// Off-unix stub: compiles, refuses to start. The threads backend
/// remains fully available there.
#[cfg(not(unix))]
pub struct EdgeServer {
    never: std::convert::Infallible,
}

#[cfg(not(unix))]
impl EdgeServer {
    fn unsupported() -> HttpError {
        HttpError::Io(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "oak-edge reactor requires a unix target; use the threads backend",
        ))
    }

    /// Always fails off-unix.
    ///
    /// # Errors
    ///
    /// `Unsupported`, unconditionally.
    pub fn start(_port: u16, _handler: Arc<dyn Handler>) -> Result<EdgeServer, HttpError> {
        Err(EdgeServer::unsupported())
    }

    /// Always fails off-unix.
    ///
    /// # Errors
    ///
    /// `Unsupported`, unconditionally.
    pub fn start_with_obs(
        _port: u16,
        _handler: Arc<dyn Handler>,
        _limits: ServerLimits,
        _stats: Arc<TransportStats>,
        _obs: Option<Arc<HttpMetrics>>,
    ) -> Result<EdgeServer, HttpError> {
        Err(EdgeServer::unsupported())
    }

    /// Always fails off-unix.
    ///
    /// # Errors
    ///
    /// `Unsupported`, unconditionally.
    pub fn start_with_config(
        _port: u16,
        _handler: Arc<dyn Handler>,
        _limits: ServerLimits,
        _stats: Arc<TransportStats>,
        _obs: Option<Arc<HttpMetrics>>,
        _config: EdgeConfig,
    ) -> Result<EdgeServer, HttpError> {
        Err(EdgeServer::unsupported())
    }

    /// Unreachable: the stub cannot be constructed.
    pub fn addr(&self) -> SocketAddr {
        match self.never {}
    }

    /// Unreachable: the stub cannot be constructed.
    pub fn stats(&self) -> Arc<TransportStats> {
        match self.never {}
    }

    /// Unreachable: the stub cannot be constructed.
    pub fn edge_stats(&self) -> Arc<EdgeStats> {
        match self.never {}
    }

    /// Unreachable: the stub cannot be constructed.
    pub fn active_connections(&self) -> usize {
        match self.never {}
    }

    /// Unreachable: the stub cannot be constructed.
    pub fn shutdown(&mut self) {
        match self.never {}
    }
}
