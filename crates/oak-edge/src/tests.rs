//! Reactor behavior tests over real sockets.
//!
//! Protocol *parity* with the blocking backend is proven by the torture
//! gauntlet running over both backends (`tests/torture_edge.rs` at the
//! workspace root); these tests cover reactor-specific mechanics —
//! keep-alive re-kicks, pipelining, chunked framing, timers, capacity,
//! drain — close to the implementation.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use oak_http::fault::ChaosClient;
use oak_http::framing::content_length_of;
use oak_http::{
    encode_chunked, fetch_tcp, Handler, Method, Request, Response, ServerLimits, StatusCode,
};

use crate::{Backend, EdgeConfig, EdgeServer};

fn echo() -> Arc<dyn Handler> {
    Arc::new(|req: &Request| {
        if req.path() == "/boom" {
            panic!("scripted handler panic");
        }
        let line = format!("path={} body={}", req.path(), req.body.len());
        Response::new(StatusCode::OK).with_body(line.into_bytes(), "text/plain")
    })
}

fn tight() -> ServerLimits {
    ServerLimits {
        max_connections: 4,
        max_head_bytes: 2048,
        max_body_bytes: 8192,
        read_timeout: Duration::from_millis(300),
        write_timeout: Duration::from_secs(2),
        drain_timeout: Duration::from_secs(2),
        queue_deadline: Duration::ZERO,
    }
}

fn start_tight() -> EdgeServer {
    EdgeServer::start_with_limits(0, echo(), tight()).expect("edge server starts")
}

/// Reads one `Content-Length`-framed response off a keep-alive stream.
fn read_one_response(reader: &mut BufReader<TcpStream>) -> Response {
    let mut head = Vec::new();
    loop {
        let start = head.len();
        let n = reader.read_until(b'\n', &mut head).expect("response head");
        assert!(n > 0, "EOF before response head completed");
        if &head[start..] == b"\r\n" || &head[start..] == b"\n" {
            break;
        }
    }
    let body_len = content_length_of(&head).expect("content-length");
    let mut bytes = head;
    let body_start = bytes.len();
    bytes.resize(body_start + body_len, 0);
    reader.read_exact(&mut bytes[body_start..]).expect("body");
    Response::parse(&bytes).expect("parseable response")
}

#[test]
fn serves_basic_get() {
    let server = start_tight();
    let resp = fetch_tcp(server.addr(), &Request::new(Method::Get, "/hello")).unwrap();
    assert_eq!(resp.status, StatusCode::OK);
    assert_eq!(resp.body, b"path=/hello body=0");
}

#[test]
fn keepalive_serves_many_exchanges_on_one_connection() {
    let server = start_tight();
    let mut pool = ChaosClient::new(server.addr()).concurrent(1).unwrap();
    for i in 0..5 {
        let req = Request::new(Method::Get, format!("/r{i}"));
        let resp = pool.exchange(0, &req).unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(resp.body, format!("path=/r{i} body=0").into_bytes());
    }
    assert_eq!(server.stats().snapshot().requests_served, 5);
    assert_eq!(server.stats().snapshot().connections_accepted, 1);
}

#[test]
fn pipelined_requests_answered_in_order() {
    let server = start_tight();
    let stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    // Both requests land in one segment; the reactor must serve the
    // second from its buffer without a fresh readiness edge.
    writer
        .write_all(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n")
        .unwrap();
    writer.flush().unwrap();
    let mut reader = BufReader::new(stream);
    let first = read_one_response(&mut reader);
    let second = read_one_response(&mut reader);
    assert_eq!(first.body, b"path=/a body=0");
    assert_eq!(second.body, b"path=/b body=0");
}

#[test]
fn chunked_body_is_decoded_for_the_handler() {
    let server = start_tight();
    let stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut wire = b"POST /up HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
    wire.extend_from_slice(&encode_chunked(b"hello chunked world", 7));
    writer.write_all(&wire).unwrap();
    writer.flush().unwrap();
    let mut reader = BufReader::new(stream);
    let resp = read_one_response(&mut reader);
    assert_eq!(resp.status, StatusCode::OK);
    assert_eq!(resp.body, b"path=/up body=19");
}

#[test]
fn slowloris_is_answered_408() {
    let server = start_tight();
    let chaos = ChaosClient::new(server.addr());
    // 20 bytes dribbled 2 at a time with 60 ms gaps blows the 300 ms
    // budget long before the head could complete.
    let resp = chaos
        .dribble(
            b"GET / HTTP/1.1\r\nX-Slow: yes",
            2,
            Duration::from_millis(60),
        )
        .unwrap();
    assert_eq!(resp.status, StatusCode::REQUEST_TIMEOUT);
    assert_eq!(server.stats().snapshot().timeouts, 1);
}

#[test]
fn idle_keepalive_connection_closed_silently() {
    let server = start_tight();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(3)))
        .unwrap();
    // Never send a byte: the idle deadline must close without a 408.
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).unwrap();
    assert!(
        buf.is_empty(),
        "idle close must be silent, got {:?}",
        String::from_utf8_lossy(&buf)
    );
    assert_eq!(server.stats().snapshot().timeouts, 0);
}

#[test]
fn over_capacity_connection_gets_503() {
    let limits = ServerLimits {
        max_connections: 1,
        ..tight()
    };
    let server = EdgeServer::start_with_limits(0, echo(), limits).unwrap();
    let chaos = ChaosClient::new(server.addr());
    let _holder = chaos.hold_open().unwrap();
    // Give the reactor a beat to count the holder before the probe.
    std::thread::sleep(Duration::from_millis(50));
    let resp = fetch_tcp(server.addr(), &Request::new(Method::Get, "/")).unwrap();
    assert_eq!(resp.status, StatusCode::UNAVAILABLE);
    assert_eq!(server.stats().snapshot().connections_rejected, 1);
}

#[test]
fn handler_panic_costs_one_response_not_the_connection() {
    let server = start_tight();
    let mut pool = ChaosClient::new(server.addr()).concurrent(1).unwrap();
    let boom = pool
        .exchange(0, &Request::new(Method::Get, "/boom"))
        .unwrap();
    assert_eq!(boom.status, StatusCode::INTERNAL_ERROR);
    // Same connection keeps serving afterwards.
    let ok = pool.exchange(0, &Request::new(Method::Get, "/ok")).unwrap();
    assert_eq!(ok.status, StatusCode::OK);
    let snap = server.stats().snapshot();
    assert_eq!(snap.panics, 1);
    assert_eq!(snap.requests_served, 2);
}

#[test]
fn connection_close_header_is_honored() {
    let server = start_tight();
    let stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    writer
        .write_all(b"GET /bye HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut reader = BufReader::new(stream);
    let resp = read_one_response(&mut reader);
    assert_eq!(resp.status, StatusCode::OK);
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "server must close after Connection: close");
}

#[test]
fn malformed_head_gets_400() {
    let server = start_tight();
    let chaos = ChaosClient::new(server.addr());
    let resp = chaos.send_raw(b"NOT A REQUEST\r\n\r\n").unwrap();
    assert_eq!(resp.status, StatusCode::BAD_REQUEST);
    assert_eq!(server.stats().snapshot().bad_requests, 1);
}

#[test]
fn oversized_head_and_body_rejected() {
    let server = start_tight();
    let chaos = ChaosClient::new(server.addr());
    let head = chaos.oversized_head(4096).unwrap();
    assert_eq!(head.status, StatusCode::HEADERS_TOO_LARGE);
    let body = chaos.oversized_body("/up", 1 << 20).unwrap();
    assert_eq!(body.status, StatusCode::PAYLOAD_TOO_LARGE);
    let snap = server.stats().snapshot();
    assert_eq!(snap.heads_too_large, 1);
    assert_eq!(snap.bodies_too_large, 1);
}

#[test]
fn gauges_track_connections_and_recover_after_close() {
    let server = start_tight();
    {
        let mut pool = ChaosClient::new(server.addr()).concurrent(2).unwrap();
        let _ = pool.exchange(0, &Request::new(Method::Get, "/a")).unwrap();
        let _ = pool.exchange(1, &Request::new(Method::Get, "/b")).unwrap();
        assert_eq!(server.active_connections(), 2);
        let snap = server.edge_stats().snapshot();
        assert_eq!(snap.connections_open, 2);
        assert!(snap.wakeups >= 1, "worker completions must wake the loop");
    }
    // Pool dropped: the reactor must notice both EOFs and return slots.
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while server.active_connections() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(server.active_connections(), 0);
}

#[test]
fn shutdown_is_idempotent_and_quick_when_idle() {
    let mut server = start_tight();
    let addr = server.addr();
    let started = std::time::Instant::now();
    server.shutdown();
    server.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(1),
        "idle shutdown must not wait out the drain timeout"
    );
    // A post-shutdown connect must fail outright or be met with
    // silence (the kernel may still complete the handshake from the
    // dead listener's backlog, but nothing serves it).
    if let Ok(mut stream) = TcpStream::connect(addr) {
        let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
        let _ = stream.write_all(b"GET / HTTP/1.1\r\n\r\n");
        let mut buf = Vec::new();
        let _ = stream.read_to_end(&mut buf);
        assert!(buf.is_empty(), "no responses may be served after shutdown");
    }
}

#[test]
fn backend_parse_round_trips() {
    assert_eq!(Backend::parse("threads"), Some(Backend::Threads));
    assert_eq!(Backend::parse("epoll"), Some(Backend::Epoll));
    assert_eq!(Backend::parse("fibers"), None);
    assert_eq!(Backend::Epoll.as_str(), "epoll");
    assert_eq!(Backend::Threads.to_string(), "threads");
}

#[test]
fn worker_count_resolves_sanely() {
    let auto = EdgeConfig::default().resolved_workers();
    assert!((2..=8).contains(&auto));
    let pinned = EdgeConfig {
        workers: 3,
        ..EdgeConfig::default()
    };
    assert_eq!(pinned.resolved_workers(), 3);
}
