//! Reactor-specific gauges, exported next to [`oak_http::TransportStats`].
//!
//! The transport counters answer *what the edge absorbed*; these gauges
//! answer *how the reactor is coping*: how long one loop iteration spent
//! processing before it could wait for readiness again (loop lag), how
//! many events the last wait delivered, how deep the worker-pool queue
//! is, and how many connections and timers the reactor is tracking.
//! `/oak/stats` and `/oak/health` render a snapshot when the epoll
//! backend is serving.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live gauges updated by the reactor loop and worker pool.
#[derive(Debug, Default)]
pub struct EdgeStats {
    loop_lag_us: AtomicU64,
    max_loop_lag_us: AtomicU64,
    ready_batch: AtomicU64,
    max_ready_batch: AtomicU64,
    worker_queue_depth: AtomicU64,
    connections_open: AtomicU64,
    timers_pending: AtomicU64,
    wakeups: AtomicU64,
}

/// A point-in-time copy of [`EdgeStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EdgeSnapshot {
    /// Microseconds the most recent loop iteration spent processing
    /// events (time readiness dispatch was blocked).
    pub loop_lag_us: u64,
    /// Worst loop iteration observed since start.
    pub max_loop_lag_us: u64,
    /// Readiness events delivered by the most recent wait.
    pub ready_batch: u64,
    /// Largest readiness batch observed since start.
    pub max_ready_batch: u64,
    /// Jobs queued for the worker pool but not yet picked up.
    pub worker_queue_depth: u64,
    /// Connections currently counted against the connection cap.
    pub connections_open: u64,
    /// Timer-wheel entries pending (includes lazily cancelled ones).
    pub timers_pending: u64,
    /// Wake-pipe signals the reactor has drained (worker completions
    /// plus shutdown kicks).
    pub wakeups: u64,
}

impl EdgeStats {
    /// Reads every gauge.
    pub fn snapshot(&self) -> EdgeSnapshot {
        EdgeSnapshot {
            loop_lag_us: self.loop_lag_us.load(Ordering::Relaxed),
            max_loop_lag_us: self.max_loop_lag_us.load(Ordering::Relaxed),
            ready_batch: self.ready_batch.load(Ordering::Relaxed),
            max_ready_batch: self.max_ready_batch.load(Ordering::Relaxed),
            worker_queue_depth: self.worker_queue_depth.load(Ordering::Relaxed),
            connections_open: self.connections_open.load(Ordering::Relaxed),
            timers_pending: self.timers_pending.load(Ordering::Relaxed),
            wakeups: self.wakeups.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn note_loop_lag(&self, us: u64) {
        self.loop_lag_us.store(us, Ordering::Relaxed);
        self.max_loop_lag_us.fetch_max(us, Ordering::Relaxed);
    }

    pub(crate) fn note_ready_batch(&self, n: u64) {
        self.ready_batch.store(n, Ordering::Relaxed);
        self.max_ready_batch.fetch_max(n, Ordering::Relaxed);
    }

    pub(crate) fn inc_worker_queue(&self) {
        self.worker_queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn dec_worker_queue(&self) {
        // Saturating: a racing snapshot must never see a wrapped gauge.
        let _ = self
            .worker_queue_depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    pub(crate) fn set_connections_open(&self, n: u64) {
        self.connections_open.store(n, Ordering::Relaxed);
    }

    pub(crate) fn set_timers_pending(&self, n: u64) {
        self.timers_pending.store(n, Ordering::Relaxed);
    }

    pub(crate) fn inc_wakeups(&self) {
        self.wakeups.fetch_add(1, Ordering::Relaxed);
    }
}
