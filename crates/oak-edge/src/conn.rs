//! Per-connection state for the reactor.
//!
//! One connection is a small state machine driven entirely by readiness
//! events and timer fires: reading a head, reading a body, waiting on a
//! worker, writing a response, or draining before close. All framing
//! decisions delegate to [`oak_http::framing`], the single source of
//! truth shared with the blocking backend, so a client probing edge
//! cases cannot tell the two servers apart.

use std::net::TcpStream;

use oak_http::framing::{
    content_length_of, head_end, head_is_chunked, ChunkedProgress, ChunkedScan,
};
use oak_http::{HttpError, ServerLimits};

/// Sentinel for "no deadline armed".
pub(crate) const NO_DEADLINE: u64 = u64::MAX;

/// Where the connection is in its request/response cycle.
pub(crate) enum State {
    /// Accumulating head bytes until the blank-line terminator.
    ReadingHead,
    /// Head complete; accumulating body bytes.
    ReadingBody(Body),
    /// A worker owns the request; the reactor neither reads nor writes
    /// (not reading is the backpressure: the peer's next pipelined
    /// request stays in the socket buffer until this response is out).
    Handling,
    /// Flushing `out` to the socket.
    Writing,
    /// Response written, write side half-closed; discarding any unread
    /// request bytes briefly so the FIN lands clean instead of an RST
    /// nuking the response out of the peer's receive buffer.
    DrainClose,
}

/// Body-framing progress, decided once per request from the head.
pub(crate) enum Body {
    /// `Content-Length` framing: the message ends at this total
    /// (head + declared length) in `in_buf`.
    Length { total: usize },
    /// `Transfer-Encoding: chunked`: incremental scan over the raw
    /// bytes after `head_len`.
    Chunked { head_len: usize, scan: ChunkedScan },
}

/// Outcome of advancing framing over the buffered bytes.
pub(crate) enum ParseStep {
    /// Need more socket bytes.
    NeedMore,
    /// The head just completed: `in_buf[..head_len]` is the full header
    /// block, no body byte has been consumed. Reported exactly once per
    /// request so the reactor can consult [`oak_http::Handler::admit`]
    /// before body framing begins — the same pre-body seam the blocking
    /// backend hooks between its head and body reads.
    HeadReady { head_len: usize },
    /// `in_buf[..msg_end]` is one complete request message.
    Complete { msg_end: usize },
}

/// One live connection owned by the reactor thread.
pub(crate) struct Conn {
    pub stream: TcpStream,
    /// Peer IP, stamped into [`oak_http::PEER_ADDR_HEADER`].
    pub peer_ip: Option<String>,
    pub state: State,
    /// Unparsed inbound bytes (head + body of the current request, plus
    /// any pipelined follow-on bytes).
    pub in_buf: Vec<u8>,
    /// Head-scan resume offset into `in_buf` (a line start).
    pub scan_from: usize,
    /// Response bytes being written, next-unwritten offset in `out_pos`.
    pub out: Vec<u8>,
    pub out_pos: usize,
    /// Close (instead of keep-alive) once `out` is flushed.
    pub close_after_write: bool,
    /// Half-close and drain after `out` is flushed (error verdicts).
    pub drain_after_write: bool,
    /// Whether `out` came from the handler (stage metrics record only
    /// handler responses, matching the blocking backend).
    pub from_handler: bool,
    /// Whether this connection holds a slot against `max_connections`
    /// (over-capacity rejects are served uncounted, like the blocking
    /// backend answering without a permit).
    pub counted: bool,
    /// Authoritative deadline, absolute reactor-ms; the wheel's entries
    /// are hints checked against this.
    pub deadline_ms: u64,
    /// Clock reading when the current request's read phase began.
    pub read_start_ns: u64,
    /// Clock reading when the current response's write phase began.
    pub write_start_ns: u64,
    /// Interest currently registered with the poller.
    pub want_read: bool,
    pub want_write: bool,
    /// Whether the current request's head was already surfaced as
    /// [`ParseStep::HeadReady`] (the admission gate runs once).
    pub head_seen: bool,
}

impl Conn {
    pub fn new(stream: TcpStream, peer_ip: Option<String>, counted: bool) -> Conn {
        Conn {
            stream,
            peer_ip,
            state: State::ReadingHead,
            in_buf: Vec::new(),
            scan_from: 0,
            out: Vec::new(),
            out_pos: 0,
            close_after_write: false,
            drain_after_write: false,
            from_handler: false,
            counted,
            deadline_ms: NO_DEADLINE,
            read_start_ns: 0,
            write_start_ns: 0,
            want_read: false,
            want_write: false,
            head_seen: false,
        }
    }

    /// True once any byte of the *current* request has arrived: a
    /// deadline firing before that is an idle keep-alive connection
    /// (silent close), after it a slow request (408) — the same
    /// distinction the blocking backend's `ReadDeadline.started` draws.
    pub fn request_started(&self) -> bool {
        !self.in_buf.is_empty()
    }

    /// Advances framing over `in_buf` as far as the buffered bytes
    /// allow, transitioning `ReadingHead → ReadingBody` internally.
    ///
    /// # Errors
    ///
    /// The same errors, under the same conditions, as the blocking
    /// reader: `HeadTooLarge` when the accumulated head exceeds its cap,
    /// `BodyTooLarge` when the *declared* length exceeds the body cap
    /// (before any body byte is buffered) or a chunked body's running
    /// total does, `Malformed` for unparseable framing headers.
    pub fn parse_step(&mut self, limits: &ServerLimits) -> Result<ParseStep, HttpError> {
        loop {
            match &mut self.state {
                State::ReadingHead => {
                    let (end, resume) = head_end(&self.in_buf, self.scan_from);
                    self.scan_from = resume;
                    let Some(head_len) = end else {
                        // The blocking reader checks the cap after each
                        // complete line; checking the raw buffer too
                        // rejects a never-terminated line early instead
                        // of buffering it until the deadline. Same final
                        // verdict (431), strictly less memory held.
                        if self.in_buf.len() > limits.max_head_bytes {
                            return Err(HttpError::HeadTooLarge {
                                limit: limits.max_head_bytes,
                            });
                        }
                        return Ok(ParseStep::NeedMore);
                    };
                    // `resume` is where the terminating blank line began:
                    // exactly the bytes the blocking reader counts
                    // against the cap (the blank line itself is free).
                    if resume > limits.max_head_bytes {
                        return Err(HttpError::HeadTooLarge {
                            limit: limits.max_head_bytes,
                        });
                    }
                    if !self.head_seen {
                        self.head_seen = true;
                        return Ok(ParseStep::HeadReady { head_len });
                    }
                    let head = &self.in_buf[..head_len];
                    if head_is_chunked(head)? {
                        self.state = State::ReadingBody(Body::Chunked {
                            head_len,
                            scan: ChunkedScan::new(),
                        });
                    } else {
                        let needed = content_length_of(head)?;
                        if needed > limits.max_body_bytes {
                            return Err(HttpError::BodyTooLarge {
                                limit: limits.max_body_bytes,
                            });
                        }
                        self.state = State::ReadingBody(Body::Length {
                            total: head_len + needed,
                        });
                    }
                }
                State::ReadingBody(Body::Length { total }) => {
                    let total = *total;
                    return if self.in_buf.len() >= total {
                        Ok(ParseStep::Complete { msg_end: total })
                    } else {
                        Ok(ParseStep::NeedMore)
                    };
                }
                State::ReadingBody(Body::Chunked { head_len, scan }) => {
                    let head_len = *head_len;
                    let body = &self.in_buf[head_len..];
                    return match scan.advance(body, limits.max_body_bytes)? {
                        ChunkedProgress::Complete(raw) => Ok(ParseStep::Complete {
                            msg_end: head_len + raw,
                        }),
                        ChunkedProgress::Incomplete => Ok(ParseStep::NeedMore),
                    };
                }
                State::Handling | State::Writing | State::DrainClose => {
                    return Ok(ParseStep::NeedMore);
                }
            }
        }
    }

    /// Resets per-request fields for the next keep-alive request,
    /// leaving any pipelined bytes in `in_buf`.
    pub fn reset_for_next_request(&mut self) {
        self.scan_from = 0;
        self.out.clear();
        self.out_pos = 0;
        self.close_after_write = false;
        self.drain_after_write = false;
        self.from_handler = false;
        self.head_seen = false;
        self.state = State::ReadingHead;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> ServerLimits {
        ServerLimits {
            max_head_bytes: 128,
            max_body_bytes: 64,
            ..ServerLimits::default()
        }
    }

    fn conn() -> Conn {
        // Framing logic never touches the socket; a connected pair just
        // satisfies the struct.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        Conn::new(stream, None, true)
    }

    /// Advances framing past the one-shot `HeadReady` admission gate,
    /// the way the reactor does after the handler admits the request.
    fn step(c: &mut Conn) -> Result<ParseStep, HttpError> {
        match c.parse_step(&limits())? {
            ParseStep::HeadReady { .. } => c.parse_step(&limits()),
            other => Ok(other),
        }
    }

    #[test]
    fn incremental_head_then_body_completes_once() {
        let mut c = conn();
        c.in_buf.extend_from_slice(b"POST /r HTTP/1.1\r\nContent-");
        assert!(matches!(step(&mut c).unwrap(), ParseStep::NeedMore));
        c.in_buf.extend_from_slice(b"Length: 5\r\n\r\nhel");
        assert!(matches!(step(&mut c).unwrap(), ParseStep::NeedMore));
        c.in_buf.extend_from_slice(b"lo");
        let ParseStep::Complete { msg_end } = step(&mut c).unwrap() else {
            panic!("expected completion");
        };
        assert_eq!(msg_end, c.in_buf.len());
    }

    #[test]
    fn head_ready_fires_once_with_no_body_byte_consumed() {
        let mut c = conn();
        c.in_buf
            .extend_from_slice(b"POST /r HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
        let ParseStep::HeadReady { head_len } = c.parse_step(&limits()).unwrap() else {
            panic!("expected the admission gate first");
        };
        assert_eq!(&c.in_buf[head_len..], b"hello", "body left untouched");
        // Second call proceeds to body framing; the gate never re-fires.
        assert!(matches!(
            c.parse_step(&limits()).unwrap(),
            ParseStep::Complete { .. }
        ));
    }

    #[test]
    fn declared_oversize_rejected_before_body_bytes() {
        let mut c = conn();
        c.in_buf
            .extend_from_slice(b"POST /r HTTP/1.1\r\nContent-Length: 9999\r\n\r\n");
        assert!(matches!(step(&mut c), Err(HttpError::BodyTooLarge { .. })));
    }

    #[test]
    fn unterminated_head_over_cap_rejected() {
        let mut c = conn();
        c.in_buf.extend_from_slice(b"GET / HTTP/1.1\r\nX-P: ");
        c.in_buf.resize(200, b'a');
        assert!(matches!(
            c.parse_step(&limits()),
            Err(HttpError::HeadTooLarge { .. })
        ));
    }

    #[test]
    fn chunked_body_completes_and_pipelined_tail_left_alone() {
        let mut c = conn();
        c.in_buf.extend_from_slice(
            b"POST /r HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabc\r\n0\r\n\r\nGET /next",
        );
        let ParseStep::Complete { msg_end } = step(&mut c).unwrap() else {
            panic!("expected completion");
        };
        assert_eq!(&c.in_buf[msg_end..], b"GET /next");
    }

    #[test]
    fn pipelined_second_request_parses_after_reset() {
        let mut c = conn();
        c.in_buf
            .extend_from_slice(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
        let ParseStep::Complete { msg_end } = step(&mut c).unwrap() else {
            panic!("expected completion");
        };
        c.in_buf.drain(..msg_end);
        c.reset_for_next_request();
        let ParseStep::Complete { msg_end } = step(&mut c).unwrap() else {
            panic!("expected second completion");
        };
        assert_eq!(msg_end, c.in_buf.len());
    }
}
