//! Hashed timer wheel with lazy cancellation.
//!
//! Every connection carries at most one *authoritative* deadline (a
//! field on the connection); the wheel only remembers that *some*
//! deadline was scheduled. Firing is therefore cheap to re-arm: moving a
//! deadline just overwrites the connection field and schedules a fresh
//! entry — stale entries fire, get compared against the authoritative
//! field, and are dropped or rescheduled. With one entry per keep-alive
//! request this stays O(1) per operation and never requires finding an
//! old entry to delete.
//!
//! Deadlines fire at tick granularity: up to `granularity_ms` late,
//! never early. The reactor's timeouts are hundreds of milliseconds, so
//! a ~10 ms tick is invisible to clients and keeps the idle wakeup rate
//! bounded.

/// The wheel. Slots hold `(token, deadline_ms)` pairs; a token's slot is
/// `(deadline / granularity) % slots`.
pub(crate) struct TimerWheel {
    slots: Vec<Vec<(u64, u64)>>,
    granularity: u64,
    /// Absolute ms the previous [`TimerWheel::advance`] ran at.
    cursor_ms: u64,
    pending: usize,
}

impl TimerWheel {
    pub fn new(granularity_ms: u64, slot_count: usize) -> TimerWheel {
        TimerWheel {
            slots: vec![Vec::new(); slot_count.max(1)],
            granularity: granularity_ms.max(1),
            cursor_ms: 0,
            pending: 0,
        }
    }

    /// Remembers that `token` has a deadline at absolute `deadline_ms`.
    pub fn schedule(&mut self, token: u64, deadline_ms: u64) {
        let slot = ((deadline_ms / self.granularity) as usize) % self.slots.len();
        self.slots[slot].push((token, deadline_ms));
        self.pending += 1;
    }

    /// Entries scheduled and not yet fired (stale ones included).
    pub fn pending(&self) -> usize {
        self.pending
    }

    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Collects every token whose scheduled deadline is `<= now_ms`,
    /// visiting only the slots whose tick boundaries passed since the
    /// previous call (capped at one full rotation, which covers every
    /// slot after a long stall).
    pub fn advance(&mut self, now_ms: u64, due: &mut Vec<u64>) {
        due.clear();
        if self.pending == 0 {
            self.cursor_ms = now_ms;
            return;
        }
        let slot_count = self.slots.len() as u64;
        let from_tick = self.cursor_ms / self.granularity;
        let to_tick = now_ms / self.granularity;
        let ticks = (to_tick.saturating_sub(from_tick)).min(slot_count);
        for i in 0..=ticks {
            let slot = ((from_tick + i) % slot_count) as usize;
            let bucket = &mut self.slots[slot];
            let mut j = 0;
            while j < bucket.len() {
                if bucket[j].1 <= now_ms {
                    due.push(bucket.swap_remove(j).0);
                    self.pending -= 1;
                } else {
                    j += 1;
                }
            }
        }
        self.cursor_ms = now_ms;
    }
}

#[cfg(test)]
mod tests {
    use super::TimerWheel;

    #[test]
    fn fires_at_or_after_deadline_never_before() {
        let mut wheel = TimerWheel::new(10, 64);
        let mut due = Vec::new();
        wheel.schedule(7, 105);
        wheel.advance(100, &mut due);
        assert!(due.is_empty(), "fired {}ms early", 105 - 100);
        wheel.advance(110, &mut due);
        assert_eq!(due, vec![7]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn long_stall_sweeps_every_slot() {
        let mut wheel = TimerWheel::new(10, 8);
        let mut due = Vec::new();
        for token in 0..20u64 {
            wheel.schedule(token, 10 + token * 7);
        }
        // One advance far past every deadline (more ticks than slots).
        wheel.advance(100_000, &mut due);
        due.sort_unstable();
        assert_eq!(due, (0..20u64).collect::<Vec<_>>());
        assert!(wheel.is_empty());
    }

    #[test]
    fn future_rotation_entry_survives_until_its_turn() {
        // Slot collision: deadline 15 and deadline 15 + 8*10 share slot 1.
        let mut wheel = TimerWheel::new(10, 8);
        let mut due = Vec::new();
        wheel.schedule(1, 15);
        wheel.schedule(2, 95);
        wheel.advance(20, &mut due);
        assert_eq!(due, vec![1]);
        assert_eq!(wheel.pending(), 1);
        wheel.advance(90, &mut due);
        assert!(due.is_empty());
        wheel.advance(100, &mut due);
        assert_eq!(due, vec![2]);
    }

    #[test]
    fn repeated_advance_within_one_tick_is_cheap_and_correct() {
        let mut wheel = TimerWheel::new(10, 16);
        let mut due = Vec::new();
        wheel.schedule(3, 12);
        wheel.advance(11, &mut due);
        assert!(due.is_empty());
        wheel.advance(12, &mut due);
        assert_eq!(due, vec![3]);
        wheel.advance(13, &mut due);
        assert!(due.is_empty());
    }
}
