//! The event loop: edge-triggered readiness over every connection.
//!
//! One reactor thread owns the listener, every connection, the timer
//! wheel, and the poller. Workers (see [`crate::workers`]) run handlers
//! and hand responses back through a completion list plus a wake pipe.
//! The result is the same observable protocol as the blocking
//! [`oak_http::TcpServer`] — same statuses, same timeouts, same
//! keep-alive and drain behavior — at a cost of a handful of threads
//! instead of one per connection.
//!
//! Edge-triggered discipline: every progress function drains its socket
//! to `WouldBlock`, and every state re-entry re-kicks progress by hand
//! (buffered pipelined bytes produce no new readiness edge). That same
//! discipline makes the level-triggered poll(2) fallback correct too.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use oak_http::{
    over_capacity_response, Handler, HttpError, HttpMetrics, Request, Response, ServerLimits,
    Stage, StatusCode, TransportEvent, TransportStats, PEER_ADDR_HEADER,
};

use crate::conn::{Conn, ParseStep, State, NO_DEADLINE};
use crate::stats::EdgeStats;
use crate::sys::{Event, Interest, Poller};
use crate::wheel::TimerWheel;
use crate::workers::{spawn_workers, Job, Pool, WorkerCtx};
use crate::EdgeConfig;

/// Poller token for the accept socket.
const LISTENER: u64 = u64::MAX;
/// Poller token for the wake pipe's read end.
const WAKEUP: u64 = u64::MAX - 1;

/// Connection tokens carry a generation so an event queued for a closed
/// slot can never touch its replacement: `(gen << 32) | slab_index`.
fn token_of(index: usize, gen: u32) -> u64 {
    (u64::from(gen) << 32) | index as u64
}

fn index_of(token: u64) -> usize {
    (token & 0xffff_ffff) as usize
}

fn gen_of(token: u64) -> u32 {
    (token >> 32) as u32
}

fn millis(d: Duration) -> u64 {
    (d.as_millis() as u64).max(1)
}

/// Handle workers use to kick the reactor out of its wait.
#[derive(Clone)]
pub(crate) struct Waker {
    tx: Arc<UnixStream>,
}

impl Waker {
    /// Best-effort single-byte write; a full pipe already guarantees a
    /// pending wakeup, so `WouldBlock` is success.
    pub fn wake(&self) {
        let _ = (&*self.tx).write(&[1u8]);
    }
}

/// A running reactor-backed HTTP server; dropped or
/// [`EdgeServer::shutdown`] stops it.
pub struct EdgeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    waker: Waker,
    loop_thread: Option<JoinHandle<()>>,
    stats: Arc<TransportStats>,
    edge: Arc<EdgeStats>,
    pool: Arc<Pool>,
    workers: usize,
}

impl EdgeServer {
    /// Binds to `127.0.0.1:port` (port 0 picks a free port) and starts
    /// the reactor with [`ServerLimits::default`].
    ///
    /// # Errors
    ///
    /// Propagates bind and poller-creation errors.
    pub fn start(port: u16, handler: Arc<dyn Handler>) -> Result<EdgeServer, HttpError> {
        EdgeServer::start_with(
            port,
            handler,
            ServerLimits::default(),
            Arc::new(TransportStats::default()),
        )
    }

    /// As [`EdgeServer::start`] with explicit limits.
    ///
    /// # Errors
    ///
    /// Propagates bind and poller-creation errors.
    pub fn start_with_limits(
        port: u16,
        handler: Arc<dyn Handler>,
        limits: ServerLimits,
    ) -> Result<EdgeServer, HttpError> {
        EdgeServer::start_with(port, handler, limits, Arc::new(TransportStats::default()))
    }

    /// As [`EdgeServer::start`] with explicit limits and a caller-owned
    /// stats block.
    ///
    /// # Errors
    ///
    /// Propagates bind and poller-creation errors.
    pub fn start_with(
        port: u16,
        handler: Arc<dyn Handler>,
        limits: ServerLimits,
        stats: Arc<TransportStats>,
    ) -> Result<EdgeServer, HttpError> {
        EdgeServer::start_with_obs(port, handler, limits, stats, None)
    }

    /// As [`EdgeServer::start_with`], additionally recording per-stage
    /// latencies into `obs` — the exact signature of
    /// [`oak_http::TcpServer::start_with_obs`], so embedders swap
    /// backends without touching call sites.
    ///
    /// # Errors
    ///
    /// Propagates bind and poller-creation errors.
    pub fn start_with_obs(
        port: u16,
        handler: Arc<dyn Handler>,
        limits: ServerLimits,
        stats: Arc<TransportStats>,
        obs: Option<Arc<HttpMetrics>>,
    ) -> Result<EdgeServer, HttpError> {
        EdgeServer::start_with_config(port, handler, limits, stats, obs, EdgeConfig::default())
    }

    /// Full-control constructor: worker count and timer tick.
    ///
    /// # Errors
    ///
    /// Propagates bind and poller-creation errors.
    pub fn start_with_config(
        port: u16,
        handler: Arc<dyn Handler>,
        limits: ServerLimits,
        stats: Arc<TransportStats>,
        obs: Option<Arc<HttpMetrics>>,
        config: EdgeConfig,
    ) -> Result<EdgeServer, HttpError> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        let mut poller = Poller::new()?;
        poller.register(
            listener.as_raw_fd(),
            LISTENER,
            Interest {
                readable: true,
                writable: false,
            },
        )?;
        poller.register(
            wake_rx.as_raw_fd(),
            WAKEUP,
            Interest {
                readable: true,
                writable: false,
            },
        )?;

        let stop = Arc::new(AtomicBool::new(false));
        let edge = Arc::new(EdgeStats::default());
        let pool = Arc::new(Pool::default());
        let completions = Arc::new(Mutex::new(Vec::new()));
        let waker = Waker {
            tx: Arc::new(wake_tx),
        };
        let workers = config.resolved_workers();
        spawn_workers(
            workers,
            &WorkerCtx {
                pool: Arc::clone(&pool),
                handler: Arc::clone(&handler),
                stats: Arc::clone(&stats),
                edge: Arc::clone(&edge),
                obs: obs.clone(),
                completions: Arc::clone(&completions),
                wake: waker.clone(),
                queue_deadline: limits.queue_deadline,
            },
        );

        let reactor = Reactor {
            poller,
            listener: Some(listener),
            wake_rx,
            conns: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            open_total: 0,
            open_counted: 0,
            wheel: TimerWheel::new(config.tick_ms.max(1), 256),
            tick_ms: config.tick_ms.max(1),
            epoch: Instant::now(),
            drain_until: None,
            stop: Arc::clone(&stop),
            stats: Arc::clone(&stats),
            edge: Arc::clone(&edge),
            obs,
            limits,
            handler,
            pool: Arc::clone(&pool),
            completions,
        };
        let loop_thread = std::thread::Builder::new()
            .name("oak-edge-reactor".to_string())
            .spawn(move || reactor.run())?;

        Ok(EdgeServer {
            addr,
            stop,
            waker,
            loop_thread: Some(loop_thread),
            stats,
            edge,
            pool,
            workers,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The transport counters (shared with the reactor and workers).
    pub fn stats(&self) -> Arc<TransportStats> {
        Arc::clone(&self.stats)
    }

    /// The reactor gauges.
    pub fn edge_stats(&self) -> Arc<EdgeStats> {
        Arc::clone(&self.edge)
    }

    /// Connections currently counted against the cap.
    pub fn active_connections(&self) -> usize {
        self.edge.snapshot().connections_open as usize
    }

    /// Worker threads serving handlers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Stops accepting, drains in-flight connections for up to
    /// [`ServerLimits::drain_timeout`], joins the reactor thread, and
    /// tells the workers to exit (without joining them: a handler stuck
    /// forever costs its thread, never the shutdown path).
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        self.waker.wake();
        if let Some(t) = self.loop_thread.take() {
            let _ = t.join();
        }
        for _ in 0..self.workers {
            self.pool.submit(Job::Stop);
        }
    }
}

impl Drop for EdgeServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Loop-thread state; everything here is single-threaded by design.
struct Reactor {
    poller: Poller,
    listener: Option<TcpListener>,
    wake_rx: UnixStream,
    conns: Vec<Option<Conn>>,
    gens: Vec<u32>,
    free: Vec<usize>,
    /// Live slab entries (counted + uncounted).
    open_total: usize,
    /// Connections holding a slot against `max_connections`.
    open_counted: usize,
    wheel: TimerWheel,
    tick_ms: u64,
    epoch: Instant,
    /// Set when draining: absolute ms the drain gives up at.
    drain_until: Option<u64>,
    stop: Arc<AtomicBool>,
    stats: Arc<TransportStats>,
    edge: Arc<EdgeStats>,
    obs: Option<Arc<HttpMetrics>>,
    limits: ServerLimits,
    /// Consulted at head completion ([`Handler::admit`]) before body
    /// framing; workers hold their own clone for `handle`.
    handler: Arc<dyn Handler>,
    pool: Arc<Pool>,
    completions: Arc<Mutex<Vec<(u64, Response)>>>,
}

impl Reactor {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn obs_now(&self) -> u64 {
        self.obs.as_ref().map_or(0, |o| o.now())
    }

    fn conn_mut(&mut self, idx: usize) -> Option<&mut Conn> {
        self.conns.get_mut(idx).and_then(Option::as_mut)
    }

    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        let mut due: Vec<u64> = Vec::new();
        loop {
            if self.stop.load(Ordering::SeqCst) && self.drain_until.is_none() {
                self.begin_drain();
            }
            if let Some(until) = self.drain_until {
                if self.open_total == 0 {
                    break;
                }
                if self.now_ms() >= until {
                    self.force_close_all();
                    break;
                }
            }
            let timeout_ms = self.wait_timeout_ms();
            if self.poller.wait(timeout_ms, &mut events).is_err() {
                // A broken poller cannot be waited on; back off so a
                // persistent failure does not hot-spin the thread.
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            let processing_started = Instant::now();
            self.edge.note_ready_batch(events.len() as u64);
            for ev in &events {
                match ev.token {
                    LISTENER => self.accept_ready(),
                    WAKEUP => self.drain_wakeups(),
                    token => self.conn_event(token, ev.readable, ev.writable),
                }
            }
            self.apply_completions();
            let now = self.now_ms();
            self.wheel.advance(now, &mut due);
            for &token in &due {
                self.timer_fired(token, now);
            }
            self.edge.set_timers_pending(self.wheel.pending() as u64);
            self.edge
                .note_loop_lag(processing_started.elapsed().as_micros() as u64);
        }
    }

    /// Short tick while anything is in flight (timers need the wheel
    /// advanced); long sleep when fully idle — the wake pipe interrupts
    /// either way.
    fn wait_timeout_ms(&self) -> i32 {
        if self.open_total > 0 || !self.wheel.is_empty() {
            self.tick_ms as i32
        } else {
            250
        }
    }

    // ---- accept path ----------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            if self.drain_until.is_some() {
                return;
            }
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, addr)) => self.admit(stream, addr),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.stats.record(TransportEvent::AcceptFailed);
                    return;
                }
            }
        }
    }

    fn admit(&mut self, stream: TcpStream, addr: SocketAddr) {
        let _ = stream.set_nonblocking(true);
        // Request/response ping-pong over keep-alive is latency-bound;
        // Nagle would serialize small responses against delayed ACKs.
        let _ = stream.set_nodelay(true);
        let now = self.now_ms();
        if self.open_counted >= self.limits.max_connections.max(1) {
            // Over capacity: answer 503 without occupying a counted
            // slot, under a short deadline so a non-draining peer
            // cannot pin the uncounted connection either.
            self.stats.record(TransportEvent::ConnectionRejected);
            let mut conn = Conn::new(stream, None, false);
            conn.out = over_capacity_response().to_bytes();
            conn.state = State::Writing;
            conn.close_after_write = true;
            conn.drain_after_write = true;
            conn.want_write = true;
            let idx = self.insert(conn);
            let cap = millis(self.limits.write_timeout).min(1000);
            self.arm(idx, now + cap);
            self.write_ready(idx);
            return;
        }
        self.stats.record(TransportEvent::ConnectionAccepted);
        let peer_ip = Some(addr.ip().to_string());
        let mut conn = Conn::new(stream, peer_ip, true);
        conn.want_read = true;
        conn.read_start_ns = self.obs_now();
        let idx = self.insert(conn);
        self.arm(idx, now + millis(self.limits.read_timeout));
        // Data may already be buffered; ET reports readiness present at
        // registration, but pumping now saves the extra loop turn.
        self.read_ready(idx);
    }

    // ---- slab -----------------------------------------------------------

    fn insert(&mut self, conn: Conn) -> usize {
        let idx = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.gens.push(0);
            self.conns.len() - 1
        });
        let token = token_of(idx, self.gens[idx]);
        let _ = self.poller.register(
            conn.stream.as_raw_fd(),
            token,
            Interest {
                readable: conn.want_read,
                writable: conn.want_write,
            },
        );
        if conn.counted {
            self.open_counted += 1;
            self.edge.set_connections_open(self.open_counted as u64);
        }
        self.open_total += 1;
        self.conns[idx] = Some(conn);
        idx
    }

    fn close(&mut self, idx: usize) {
        if let Some(conn) = self.conns.get_mut(idx).and_then(Option::take) {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            if conn.counted {
                self.open_counted -= 1;
                self.edge.set_connections_open(self.open_counted as u64);
                self.stats.record(TransportEvent::ConnectionClosed);
            }
            self.open_total -= 1;
            self.gens[idx] = self.gens[idx].wrapping_add(1);
            self.free.push(idx);
        }
    }

    /// Arms the authoritative deadline and drops a wheel hint for it.
    fn arm(&mut self, idx: usize, deadline_ms: u64) {
        let token = token_of(idx, self.gens[idx]);
        if let Some(conn) = self.conn_mut(idx) {
            conn.deadline_ms = deadline_ms;
            self.wheel.schedule(token, deadline_ms);
        }
    }

    fn set_interest(&mut self, idx: usize, readable: bool, writable: bool) {
        let token = token_of(idx, self.gens[idx]);
        let Some(conn) = self.conn_mut(idx) else {
            return;
        };
        if conn.want_read == readable && conn.want_write == writable {
            return;
        }
        conn.want_read = readable;
        conn.want_write = writable;
        let fd = conn.stream.as_raw_fd();
        let _ = self
            .poller
            .reregister(fd, token, Interest { readable, writable });
    }

    // ---- event dispatch -------------------------------------------------

    fn conn_event(&mut self, token: u64, readable: bool, writable: bool) {
        let idx = index_of(token);
        if idx >= self.gens.len() || self.gens[idx] != gen_of(token) {
            return; // stale: the slot was closed (and maybe reused)
        }
        if readable {
            self.read_ready(idx);
        }
        if writable && self.conns.get(idx).is_some_and(Option::is_some) {
            self.write_ready(idx);
        }
    }

    fn drain_wakeups(&mut self) {
        self.edge.inc_wakeups();
        let mut sink = [0u8; 64];
        loop {
            match (&self.wake_rx).read(&mut sink) {
                Ok(0) => return,
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return, // WouldBlock: fully drained
            }
        }
    }

    // ---- read path ------------------------------------------------------

    fn read_ready(&mut self, idx: usize) {
        let Some(conn) = self.conn_mut(idx) else {
            return;
        };
        if matches!(conn.state, State::DrainClose) {
            self.drain_discard(idx);
        } else if matches!(conn.state, State::ReadingHead | State::ReadingBody(_)) {
            self.pump_read(idx);
        }
        // Backpressure while Handling/Writing: the reactor leaves socket
        // bytes unread; the re-kick on keep-alive re-entry picks them up.
    }

    fn pump_read(&mut self, idx: usize) {
        enum ReadStep {
            Eof,
            Got,
            Blocked,
            Retry,
            Broken,
        }
        // Pipelined bytes buffered earlier may already complete the
        // message without any new socket data.
        if self.try_parse(idx) {
            return;
        }
        let mut buf = [0u8; 16 * 1024];
        loop {
            let step = {
                let Some(conn) = self.conn_mut(idx) else {
                    return;
                };
                if !matches!(conn.state, State::ReadingHead | State::ReadingBody(_)) {
                    return;
                }
                match conn.stream.read(&mut buf) {
                    Ok(0) => ReadStep::Eof,
                    Ok(n) => {
                        conn.in_buf.extend_from_slice(&buf[..n]);
                        ReadStep::Got
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => ReadStep::Blocked,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => ReadStep::Retry,
                    Err(_) => ReadStep::Broken,
                }
            };
            match step {
                // EOF (or a broken socket). Before any request byte this
                // is a clean keep-alive close; mid-request the peer
                // vanished and there is nobody to answer. Silent close
                // either way, exactly like the blocking backend.
                ReadStep::Eof | ReadStep::Broken => {
                    self.close(idx);
                    return;
                }
                ReadStep::Got => {
                    if self.try_parse(idx) {
                        return;
                    }
                }
                ReadStep::Blocked => return,
                ReadStep::Retry => {}
            }
        }
    }

    /// Advances framing; returns true when the connection left its
    /// reading state (request submitted, rejected, or closed).
    fn try_parse(&mut self, idx: usize) -> bool {
        let limits = self.limits;
        let Some(conn) = self.conn_mut(idx) else {
            return true;
        };
        if conn.in_buf.is_empty() {
            return false;
        }
        match conn.parse_step(&limits) {
            Ok(ParseStep::NeedMore) => false,
            Ok(ParseStep::HeadReady { head_len }) => {
                if let Some(response) = self.admit_head(idx, head_len) {
                    // Shed before the body: answer and close, exactly
                    // like the blocking backend's pre-body gate (the
                    // unread body makes keep-alive unframeable).
                    self.stats.record(TransportEvent::RequestShed);
                    let mut response = response;
                    response.headers.set("Connection", "close");
                    let Some(conn) = self.conn_mut(idx) else {
                        return true;
                    };
                    conn.close_after_write = true;
                    conn.drain_after_write = true;
                    self.enqueue_response(idx, &response, false);
                    return true;
                }
                // Admitted: resume framing over the same buffered bytes.
                self.try_parse(idx)
            }
            Ok(ParseStep::Complete { msg_end }) => {
                self.finish_request(idx, msg_end);
                true
            }
            Err(e) => {
                self.reject(idx, &e);
                true
            }
        }
    }

    /// Runs the pre-body admission gate over a just-completed head.
    /// `Some(response)` sheds the request. A head whose request line
    /// resists the minimal peek is admitted here — the full parser will
    /// deliver its 400 with the body accounted for.
    fn admit_head(&mut self, idx: usize, head_len: usize) -> Option<Response> {
        let (method, target) = {
            let conn = self.conn_mut(idx)?;
            let (token, target) = oak_http::framing::request_line_of(&conn.in_buf[..head_len])?;
            (oak_http::Method::parse(token)?, target.to_string())
        };
        self.handler.admit(method, &target)
    }

    /// A complete message is framed at `in_buf[..msg_end]`: parse it,
    /// stamp the peer header, and hand it to the workers.
    fn finish_request(&mut self, idx: usize, msg_end: usize) {
        let token = token_of(idx, self.gens[idx]);
        let parse_start = self.obs_now();
        let Some(conn) = self.conn_mut(idx) else {
            return;
        };
        match Request::parse(&conn.in_buf[..msg_end]) {
            Ok(mut request) => {
                // Observed peer address wins over anything the client
                // claimed (Oak's subnet-scoped policies key on it).
                if let Some(ip) = &conn.peer_ip {
                    request.headers.set(PEER_ADDR_HEADER, ip.clone());
                }
                conn.close_after_write = request
                    .header("connection")
                    .is_some_and(|v| v.eq_ignore_ascii_case("close"));
                conn.in_buf.drain(..msg_end);
                conn.scan_from = 0;
                conn.state = State::Handling;
                conn.deadline_ms = NO_DEADLINE;
                let read_start = conn.read_start_ns;
                if let Some(obs) = &self.obs {
                    // Read covers socket entry → complete buffer
                    // (keep-alive idle wait included); parse covers
                    // bytes → Request. Successful requests only, the
                    // blocking backend's rule.
                    obs.record(Stage::Read, read_start, parse_start);
                    obs.record(Stage::Parse, parse_start, obs.now());
                }
                self.set_interest(idx, false, false);
                self.edge.inc_worker_queue();
                self.pool.submit(Job::Run {
                    token,
                    request: Box::new(request),
                    enqueued: Instant::now(),
                });
            }
            Err(HttpError::Truncated | HttpError::Io(_)) => self.close(idx),
            Err(e) => self.reject(idx, &e),
        }
    }

    /// Maps a framing/parse error to its status + counter and queues the
    /// error response — the same table as the blocking backend.
    fn reject(&mut self, idx: usize, err: &HttpError) {
        let (status, event) = match err {
            HttpError::TimedOut => (StatusCode::REQUEST_TIMEOUT, TransportEvent::Timeout),
            HttpError::HeadTooLarge { .. } => {
                (StatusCode::HEADERS_TOO_LARGE, TransportEvent::HeadTooLarge)
            }
            HttpError::BodyTooLarge { .. } => {
                (StatusCode::PAYLOAD_TOO_LARGE, TransportEvent::BodyTooLarge)
            }
            HttpError::Malformed(_) | HttpError::BadUrl(_) => {
                (StatusCode::BAD_REQUEST, TransportEvent::BadRequest)
            }
            HttpError::Truncated | HttpError::Io(_) => {
                self.close(idx);
                return;
            }
        };
        self.stats.record(event);
        let response = Response::new(status)
            .with_body(status.reason().as_bytes().to_vec(), "text/plain")
            .with_header("Connection", "close");
        let Some(conn) = self.conn_mut(idx) else {
            return;
        };
        conn.close_after_write = true;
        conn.drain_after_write = true;
        self.enqueue_response(idx, &response, false);
    }

    // ---- write path -----------------------------------------------------

    /// Stages `response` for writing and pushes as much as the socket
    /// takes right now (with ET there may never be a writable event for
    /// an always-writable socket, so the eager attempt is correctness,
    /// not an optimization).
    fn enqueue_response(&mut self, idx: usize, response: &Response, from_handler: bool) {
        let now = self.now_ms();
        let write_start = self.obs_now();
        let write_deadline = now + millis(self.limits.write_timeout);
        let Some(conn) = self.conn_mut(idx) else {
            return;
        };
        conn.out = response.to_bytes();
        conn.out_pos = 0;
        conn.from_handler = from_handler;
        conn.write_start_ns = write_start;
        conn.state = State::Writing;
        self.arm(idx, write_deadline);
        self.set_interest(idx, false, true);
        self.write_ready(idx);
    }

    fn write_ready(&mut self, idx: usize) {
        loop {
            let now = self.now_ms();
            let write_timeout = millis(self.limits.write_timeout);
            let Some(conn) = self.conn_mut(idx) else {
                return;
            };
            if !matches!(conn.state, State::Writing) {
                return;
            }
            if conn.out_pos >= conn.out.len() {
                break;
            }
            let chunk = &conn.out[conn.out_pos..];
            match conn.stream.write(chunk) {
                Ok(0) => {
                    self.close(idx);
                    return;
                }
                Ok(n) => {
                    conn.out_pos += n;
                    if conn.out_pos >= conn.out.len() {
                        break;
                    }
                    // Progress re-arms the write deadline, mirroring the
                    // blocking backend's per-write socket timeout.
                    self.arm(idx, now + write_timeout);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close(idx);
                    return;
                }
            }
        }
        self.finish_write(idx);
    }

    fn finish_write(&mut self, idx: usize) {
        let now = self.now_ms();
        let obs_now = self.obs_now();
        let read_deadline = now + millis(self.limits.read_timeout);
        let draining = self.drain_until.is_some();
        let (from_handler, write_start, drain_after, close_after) = {
            let Some(conn) = self.conn_mut(idx) else {
                return;
            };
            (
                conn.from_handler,
                conn.write_start_ns,
                conn.drain_after_write,
                conn.close_after_write,
            )
        };
        if from_handler {
            if let Some(obs) = &self.obs {
                obs.record(Stage::Write, write_start, obs.now());
            }
        }
        if drain_after {
            // Error verdict out: half-close, then discard briefly so the
            // FIN lands clean instead of an RST nuking the response.
            if let Some(conn) = self.conn_mut(idx) {
                let _ = conn.stream.shutdown(Shutdown::Write);
                conn.state = State::DrainClose;
            }
            self.arm(idx, now + 500);
            self.set_interest(idx, true, false);
            self.drain_discard(idx);
        } else if close_after || draining {
            // Explicit `Connection: close`, or the server is draining
            // and keep-alive ends with the in-flight response delivered.
            self.close(idx);
        } else {
            if let Some(conn) = self.conn_mut(idx) {
                conn.reset_for_next_request();
                conn.read_start_ns = obs_now;
            }
            self.arm(idx, read_deadline);
            self.set_interest(idx, true, false);
            // Pipelined bytes (or reads skipped during Handling) never
            // produce a fresh edge; re-kick by hand.
            self.pump_read(idx);
        }
    }

    fn drain_discard(&mut self, idx: usize) {
        let mut sink = [0u8; 8 * 1024];
        loop {
            let Some(conn) = self.conn_mut(idx) else {
                return;
            };
            if !matches!(conn.state, State::DrainClose) {
                return;
            }
            match conn.stream.read(&mut sink) {
                Ok(0) => {
                    self.close(idx);
                    return;
                }
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => {
                    self.close(idx);
                    return;
                }
            }
        }
    }

    // ---- timers ---------------------------------------------------------

    fn timer_fired(&mut self, token: u64, now: u64) {
        let idx = index_of(token);
        if idx >= self.gens.len() || self.gens[idx] != gen_of(token) {
            return; // the connection this hint was for is gone
        }
        let Some(conn) = self.conn_mut(idx) else {
            return;
        };
        let deadline = conn.deadline_ms;
        if deadline == NO_DEADLINE {
            return; // lazily cancelled
        }
        if deadline > now {
            // The deadline moved (keep-alive re-arm); keep a hint alive.
            self.wheel.schedule(token, deadline);
            return;
        }
        let reading = matches!(conn.state, State::ReadingHead | State::ReadingBody(_));
        let flushing = matches!(conn.state, State::Writing | State::DrainClose);
        let started = conn.request_started();
        if reading {
            if started {
                // Slowloris: budget spent mid-request.
                self.reject(idx, &HttpError::TimedOut);
            } else {
                // Idle keep-alive connection: silent close.
                self.close(idx);
            }
        } else if flushing {
            // A peer that stops draining its receive window, or one
            // still dribbling into a drain-close: disconnect.
            self.close(idx);
        }
        // Handlers have no deadline (blocking parity): State::Handling
        // deliberately ignores a stale fire.
    }

    // ---- worker completions ---------------------------------------------

    fn apply_completions(&mut self) {
        let done: Vec<(u64, Response)> = {
            let mut guard = self.completions.lock().unwrap();
            std::mem::take(&mut *guard)
        };
        for (token, response) in done {
            let idx = index_of(token);
            if idx >= self.gens.len() || self.gens[idx] != gen_of(token) {
                continue; // connection force-closed while handling
            }
            if !self.conns.get(idx).is_some_and(Option::is_some) {
                continue;
            }
            self.enqueue_response(idx, &response, true);
        }
    }

    // ---- drain / shutdown -----------------------------------------------

    fn begin_drain(&mut self) {
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.deregister(listener.as_raw_fd());
        }
        self.drain_until = Some(self.now_ms() + millis(self.limits.drain_timeout));
        // Idle keep-alive connections hold no in-flight work; close them
        // now so they cannot stretch the drain.
        for idx in 0..self.conns.len() {
            let idle = matches!(
                &self.conns[idx],
                Some(c) if matches!(c.state, State::ReadingHead) && c.in_buf.is_empty()
            );
            if idle {
                self.close(idx);
            }
        }
    }

    fn force_close_all(&mut self) {
        for idx in 0..self.conns.len() {
            self.close(idx);
        }
    }
}
