//! Fixed worker pool running engine handlers off the reactor thread.
//!
//! The reactor never calls a [`oak_http::Handler`] itself: a slow or
//! panicking handler on the event loop would stall every connection.
//! Instead, complete requests are queued here; a worker runs the handler
//! under `catch_unwind` (panic → 500, same as the blocking backend's
//! connection threads), pushes the response into the completion list,
//! and kicks the reactor's wake pipe so it picks the response up.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use oak_http::{
    queue_shed_response, Handler, HttpMetrics, Request, Response, Stage, StatusCode,
    TransportEvent, TransportStats,
};

use crate::reactor::Waker;
use crate::stats::EdgeStats;

/// One unit of work for a worker.
pub(crate) enum Job {
    /// Run the handler for the request framed on connection `token`.
    Run {
        token: u64,
        request: Box<Request>,
        /// When the reactor queued this job; the CoDel-style queue
        /// deadline ([`oak_http::ServerLimits::queue_deadline`]) is
        /// measured against it at dequeue.
        enqueued: Instant,
    },
    /// Exit the worker loop (one sentinel per worker at shutdown).
    Stop,
}

/// The shared job queue.
#[derive(Default)]
pub(crate) struct Pool {
    queue: Mutex<VecDeque<Job>>,
    ready: Condvar,
}

impl Pool {
    pub fn submit(&self, job: Job) {
        self.queue.lock().unwrap().push_back(job);
        self.ready.notify_one();
    }

    fn next(&self) -> Job {
        let mut queue = self.queue.lock().unwrap();
        loop {
            if let Some(job) = queue.pop_front() {
                return job;
            }
            queue = self.ready.wait(queue).unwrap();
        }
    }
}

/// Everything a worker thread needs, cloneable per worker.
#[derive(Clone)]
pub(crate) struct WorkerCtx {
    pub pool: Arc<Pool>,
    pub handler: Arc<dyn Handler>,
    pub stats: Arc<TransportStats>,
    pub edge: Arc<EdgeStats>,
    pub obs: Option<Arc<HttpMetrics>>,
    pub completions: Arc<Mutex<Vec<(u64, Response)>>>,
    pub wake: Waker,
    /// Zero disables drop-at-dequeue.
    pub queue_deadline: Duration,
}

/// Spawns `n` detached workers. They exit on their `Stop` sentinel;
/// shutdown does not join them, so a handler stuck forever costs its
/// thread but never hangs the process exit path.
pub(crate) fn spawn_workers(n: usize, ctx: &WorkerCtx) {
    for i in 0..n {
        let ctx = ctx.clone();
        let _ = std::thread::Builder::new()
            .name(format!("oak-edge-worker-{i}"))
            .spawn(move || worker_loop(&ctx));
    }
}

fn worker_loop(ctx: &WorkerCtx) {
    loop {
        match ctx.pool.next() {
            Job::Stop => return,
            Job::Run {
                token,
                request,
                enqueued,
            } => {
                ctx.edge.dec_worker_queue();
                // CoDel-style drop-at-dequeue: work that overstayed its
                // queue deadline is answered with a canned 503 instead
                // of processed — under overload the queue's oldest
                // entries are the ones whose clients have already given
                // up. Exempt targets (health probes) always run.
                if !ctx.queue_deadline.is_zero()
                    && enqueued.elapsed() > ctx.queue_deadline
                    && !ctx.handler.shed_exempt(request.path())
                {
                    ctx.stats.record(TransportEvent::RequestShed);
                    ctx.completions
                        .lock()
                        .unwrap()
                        .push((token, queue_shed_response()));
                    ctx.wake.wake();
                    continue;
                }
                let handle_start = ctx.obs.as_ref().map(|o| o.now());
                // A panicking handler costs one response, not a worker:
                // the client gets a 500 and the panic lands in the stats.
                let response = match catch_unwind(AssertUnwindSafe(|| ctx.handler.handle(&request)))
                {
                    Ok(response) => response,
                    Err(_) => {
                        ctx.stats.record(TransportEvent::Panic);
                        Response::new(StatusCode::INTERNAL_ERROR)
                            .with_body(b"handler panicked".to_vec(), "text/plain")
                    }
                };
                if let (Some(obs), Some(start)) = (ctx.obs.as_ref(), handle_start) {
                    obs.record(Stage::Handle, start, obs.now());
                }
                // Counted whether or not the write later succeeds — the
                // blocking backend counts after the handler too.
                ctx.stats.record(TransportEvent::RequestServed);
                ctx.completions.lock().unwrap().push((token, response));
                ctx.wake.wake();
            }
        }
    }
}
