//! A small, dependency-free JSON implementation.
//!
//! Oak's performance reports travel as JSON (the paper describes a
//! HAR-like format with a limited set of fields). Rather than pulling in a
//! serialization framework, this crate implements the subset of JSON that the
//! wire format needs, from scratch:
//!
//! - [`Value`]: an owned JSON document tree,
//! - [`parse`]: a recursive-descent parser with byte-offset error positions,
//! - `Value::to_string` (via [`std::fmt::Display`]) / [`Value::to_pretty_string`]: writers,
//! - convenience accessors ([`Value::get`], [`Value::as_f64`], ...) used by
//!   the report codec in `oak-core`.
//!
//! The implementation accepts exactly RFC 8259 JSON: no comments, no trailing
//! commas, no `NaN`/`Infinity` literals.
//!
//! # Examples
//!
//! ```
//! use oak_json::{parse, Value};
//!
//! let doc = parse(r#"{"url": "http://a.com/x.js", "bytes": 1024}"#).unwrap();
//! assert_eq!(doc.get("bytes").and_then(Value::as_u64), Some(1024));
//!
//! let round = parse(&doc.to_string()).unwrap();
//! assert_eq!(doc, round);
//! ```

mod parser;
pub mod scan;
mod value;
mod writer;

pub use parser::{parse, ParseError};
pub use scan::{Event, Scanner};
pub use value::Value;

#[cfg(test)]
mod tests;
