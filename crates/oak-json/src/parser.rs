//! Recursive-descent JSON parser.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::Value;

/// An error produced while parsing JSON, with the byte offset where the
/// input stopped making sense.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// Human-readable description of what was expected.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl Error for ParseError {}

/// Parses a complete JSON document.
///
/// The entire input must be consumed (trailing whitespace is allowed);
/// trailing garbage is an error, which protects the report endpoint from
/// concatenated or truncated uploads.
///
/// # Errors
///
/// Returns a [`ParseError`] carrying the byte offset of the first invalid
/// input.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

use crate::scan::MAX_DEPTH;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(format!("expected '{kw}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("document nested too deeply"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte 0x{other:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => {
                    self.pos -= 1;
                    return Err(self.err("expected ',' or '}' in object"));
                }
            }
        }
        self.depth -= 1;
        Ok(Value::Object(map))
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => break,
                _ => {
                    self.pos -= 1;
                    return Err(self.err("expected ',' or ']' in array"));
                }
            }
        }
        self.depth -= 1;
        Ok(Value::Array(items))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected '\"'"));
        }
        // Shared lexer with the streaming scanner: escape-free strings come
        // back borrowed, so the `into_owned` below is the only copy.
        crate::scan::scan_string(self.bytes, &mut self.pos).map(std::borrow::Cow::into_owned)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        crate::scan::scan_number(self.bytes, &mut self.pos).map(Value::Number)
    }
}
