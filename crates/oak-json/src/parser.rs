//! Recursive-descent JSON parser.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::Value;

/// An error produced while parsing JSON, with the byte offset where the
/// input stopped making sense.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// Human-readable description of what was expected.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl Error for ParseError {}

/// Parses a complete JSON document.
///
/// The entire input must be consumed (trailing whitespace is allowed);
/// trailing garbage is an error, which protects the report endpoint from
/// concatenated or truncated uploads.
///
/// # Errors
///
/// Returns a [`ParseError`] carrying the byte offset of the first invalid
/// input.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

/// Nesting deeper than this is rejected to keep recursion bounded; real
/// performance reports nest exactly three levels.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(format!("expected '{kw}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("document nested too deeply"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte 0x{other:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => {
                    self.pos -= 1;
                    return Err(self.err("expected ',' or '}' in object"));
                }
            }
        }
        self.depth -= 1;
        Ok(Value::Object(map))
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => break,
                _ => {
                    self.pos -= 1;
                    return Err(self.err("expected ',' or ']' in array"));
                }
            }
        }
        self.depth -= 1;
        Ok(Value::Array(items))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes in one go.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is a &str, so this slice is valid UTF-8 as long
                // as it starts and ends on char boundaries, which it does:
                // we only stop on ASCII bytes.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
            }
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => self.escape(&mut out)?,
                Some(_) => {
                    self.pos -= 1;
                    return Err(self.err("raw control character in string"));
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), ParseError> {
        match self.bump() {
            Some(b'"') => out.push('"'),
            Some(b'\\') => out.push('\\'),
            Some(b'/') => out.push('/'),
            Some(b'b') => out.push('\u{0008}'),
            Some(b'f') => out.push('\u{000C}'),
            Some(b'n') => out.push('\n'),
            Some(b'r') => out.push('\r'),
            Some(b't') => out.push('\t'),
            Some(b'u') => {
                let first = self.hex4()?;
                let scalar = if (0xD800..0xDC00).contains(&first) {
                    // High surrogate: a low surrogate escape must follow.
                    if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                        return Err(self.err("high surrogate not followed by \\u escape"));
                    }
                    let second = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&second) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                } else if (0xDC00..0xE000).contains(&first) {
                    return Err(self.err("unpaired low surrogate"));
                } else {
                    first
                };
                match char::from_u32(scalar) {
                    Some(c) => out.push(c),
                    None => return Err(self.err("escape is not a Unicode scalar")),
                }
            }
            _ => return Err(self.err("invalid escape sequence")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected four hex digits")),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: a lone zero or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Value::Number(n)),
            _ => Err(self.err("number out of range")),
        }
    }
}
