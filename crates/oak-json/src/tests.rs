//! Unit tests for the JSON substrate.

use crate::{parse, Value};

#[test]
fn parses_literals() {
    assert_eq!(parse("null").unwrap(), Value::Null);
    assert_eq!(parse("true").unwrap(), Value::Bool(true));
    assert_eq!(parse("false").unwrap(), Value::Bool(false));
}

#[test]
fn parses_numbers() {
    assert_eq!(parse("0").unwrap(), Value::Number(0.0));
    assert_eq!(parse("-0").unwrap(), Value::Number(-0.0));
    assert_eq!(parse("42").unwrap(), Value::Number(42.0));
    assert_eq!(parse("-17.5").unwrap(), Value::Number(-17.5));
    assert_eq!(parse("1e3").unwrap(), Value::Number(1000.0));
    assert_eq!(parse("2.5E-2").unwrap(), Value::Number(0.025));
}

#[test]
fn rejects_malformed_numbers() {
    for bad in ["01", "1.", ".5", "+1", "1e", "1e+", "--2", "1f3"] {
        assert!(parse(bad).is_err(), "{bad:?} should not parse");
    }
}

#[test]
fn rejects_nonfinite_numbers() {
    assert!(parse("1e999").is_err());
    assert!(parse("NaN").is_err());
    assert!(parse("Infinity").is_err());
}

#[test]
fn parses_strings_with_escapes() {
    let v = parse(r#""a\"b\\c\/d\n\t\r\b\f""#).unwrap();
    assert_eq!(v.as_str(), Some("a\"b\\c/d\n\t\r\u{8}\u{c}"));
}

#[test]
fn parses_unicode_escapes() {
    assert_eq!(parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
    assert_eq!(parse("\"\\u00e9\"").unwrap().as_str(), Some("é"));
    assert_eq!(parse("\"\\uD83D\\uDE00\"").unwrap().as_str(), Some("😀"));
    assert_eq!(parse(r#""A""#).unwrap().as_str(), Some("A"));
    assert_eq!(parse(r#""é""#).unwrap().as_str(), Some("é"));
    // Surrogate pair → U+1F600.
    assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("😀"));
    // Raw UTF-8 passes through untouched.
    assert_eq!(parse(r#""héllo 😀""#).unwrap().as_str(), Some("héllo 😀"));
}

#[test]
fn rejects_bad_surrogates() {
    assert!(parse(r#""\ud83d""#).is_err(), "unpaired high surrogate");
    assert!(parse(r#""\ude00""#).is_err(), "unpaired low surrogate");
    assert!(
        parse(r#""\ud83dx""#).is_err(),
        "high surrogate then raw char"
    );
    assert!(parse(r#""\ud83dA""#).is_err(), "high then non-surrogate");
}

#[test]
fn rejects_control_chars_in_strings() {
    assert!(parse("\"a\u{1}b\"").is_err());
    assert!(parse("\"a\nb\"").is_err(), "raw newline must be escaped");
}

#[test]
fn parses_nested_structures() {
    let doc =
        parse(r#"{"objects": [{"url": "http://a.com/x", "bytes": 512, "ms": 12.5}], "ok": true}"#)
            .unwrap();
    let objects = doc.get("objects").and_then(Value::as_array).unwrap();
    assert_eq!(objects.len(), 1);
    assert_eq!(objects[0].get("bytes").and_then(Value::as_u64), Some(512));
    assert_eq!(objects[0].get("ms").and_then(Value::as_f64), Some(12.5));
    assert_eq!(doc.get("ok").and_then(Value::as_bool), Some(true));
}

#[test]
fn rejects_trailing_garbage() {
    assert!(parse("{} x").is_err());
    assert!(parse("1 2").is_err());
}

#[test]
fn allows_surrounding_whitespace() {
    assert_eq!(parse(" \t\n {} \r\n ").unwrap(), Value::object());
}

#[test]
fn rejects_trailing_commas_and_unclosed() {
    assert!(parse("[1,2,]").is_err());
    assert!(parse(r#"{"a":1,}"#).is_err());
    assert!(parse("[1,2").is_err());
    assert!(parse(r#"{"a":1"#).is_err());
    assert!(parse(r#""abc"#).is_err());
}

#[test]
fn rejects_overly_deep_nesting() {
    let deep = "[".repeat(200) + &"]".repeat(200);
    assert!(parse(&deep).is_err());
    let ok = "[".repeat(100) + &"]".repeat(100);
    assert!(parse(&ok).is_ok());
}

#[test]
fn error_reports_offset() {
    let err = parse(r#"{"a": @}"#).unwrap_err();
    assert_eq!(err.offset, 6);
    assert!(err.to_string().contains("byte 6"));
}

#[test]
fn compact_roundtrip() {
    let mut report = Value::object();
    report.set("page", "http://origin.example/index.html");
    report.set("user", "u-123");
    let mut obj = Value::object();
    obj.set("url", "http://cdn.example/app.js");
    obj.set("bytes", 90_112u64);
    obj.set("time_ms", 140.25);
    report.set("objects", Value::Array(vec![obj]));

    let text = report.to_string();
    assert_eq!(parse(&text).unwrap(), report);
    assert!(!text.contains('\n'));
}

#[test]
fn pretty_roundtrip() {
    let doc = parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
    let pretty = doc.to_pretty_string();
    assert!(pretty.contains('\n'));
    assert_eq!(parse(&pretty).unwrap(), doc);
}

#[test]
fn integers_serialize_without_fraction() {
    assert_eq!(Value::Number(3.0).to_string(), "3");
    assert_eq!(Value::Number(3.5).to_string(), "3.5");
    assert_eq!(Value::Number(-2.0).to_string(), "-2");
}

#[test]
fn string_escaping_roundtrip() {
    let v = Value::String("quote \" slash \\ newline \n ctl \u{1} tab \t".into());
    assert_eq!(parse(&v.to_string()).unwrap(), v);
}

#[test]
fn accessors_are_total() {
    let v = parse(r#"{"a": [10, "s"]}"#).unwrap();
    assert!(v.get("missing").is_none());
    assert!(v.at(0).is_none(), "object is not an array");
    let arr = v.get("a").unwrap();
    assert_eq!(arr.at(0).and_then(Value::as_u64), Some(10));
    assert_eq!(arr.at(1).and_then(Value::as_str), Some("s"));
    assert!(arr.at(2).is_none());
    assert!(Value::Null.is_null());
    assert_eq!(Value::default(), Value::Null);
}

#[test]
fn as_u64_rejects_fractions_and_negatives() {
    assert_eq!(Value::Number(1.5).as_u64(), None);
    assert_eq!(Value::Number(-1.0).as_u64(), None);
    assert_eq!(Value::Number(1.0).as_u64(), Some(1));
}

#[test]
fn from_impls() {
    assert_eq!(Value::from(true), Value::Bool(true));
    assert_eq!(Value::from(1u32), Value::Number(1.0));
    assert_eq!(Value::from(-1i64), Value::Number(-1.0));
    assert_eq!(Value::from("x"), Value::String("x".into()));
    assert_eq!(
        Value::from(vec![1u64, 2]),
        Value::Array(vec![Value::Number(1.0), Value::Number(2.0)])
    );
    assert_eq!(Value::from(None::<u64>), Value::Null);
    assert_eq!(Value::from(Some(2u64)), Value::Number(2.0));
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    /// Strategy producing arbitrary JSON trees of bounded depth.
    fn value_strategy() -> impl Strategy<Value = Value> {
        let leaf = prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            // Finite doubles that survive text round-trip exactly.
            (-1e12f64..1e12).prop_map(Value::Number),
            "[a-zA-Z0-9 _/:.\\\\\"\n\t\u{e9}]{0,20}".prop_map(Value::String),
        ];
        leaf.prop_recursive(4, 64, 8, |inner| {
            prop_oneof![
                prop::collection::vec(inner.clone(), 0..6).prop_map(Value::Array),
                prop::collection::btree_map("[a-z]{1,8}", inner, 0..6).prop_map(Value::Object),
            ]
        })
    }

    proptest! {
        /// Serialize → parse is the identity for all generated documents.
        #[test]
        fn roundtrip_compact(v in value_strategy()) {
            prop_assert_eq!(parse(&v.to_string()).unwrap(), v);
        }

        /// Pretty output parses back to the same document.
        #[test]
        fn roundtrip_pretty(v in value_strategy()) {
            prop_assert_eq!(parse(&v.to_pretty_string()).unwrap(), v);
        }

        /// The parser never panics on arbitrary input.
        #[test]
        fn parser_is_total(s in "\\PC{0,64}") {
            let _ = parse(&s);
        }
    }
}
