//! JSON serialization: compact and pretty writers.

use std::fmt::{self, Write as _};

use crate::Value;

/// Writes `value` with no interstitial whitespace.
pub(crate) fn write_compact(value: &Value, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let mut out = String::new();
    write_value(value, &mut out, None, 0);
    f.write_str(&out)
}

impl Value {
    /// Serializes with two-space indentation, for logs and fixtures.
    ///
    /// ```
    /// use oak_json::Value;
    /// let mut v = Value::object();
    /// v.set("a", 1u64);
    /// assert_eq!(v.to_pretty_string(), "{\n  \"a\": 1\n}");
    /// ```
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out, Some(2), 0);
        out
    }
}

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    // Integers serialize without a fractional part so reports stay compact
    // and byte counts round-trip exactly.
    if n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
