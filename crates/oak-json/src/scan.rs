//! Streaming (pull) JSON scanner with zero-copy strings.
//!
//! [`crate::parse`] builds an owned [`crate::Value`] tree — convenient,
//! but every string in the document costs an allocation even when the
//! caller immediately copies the few fields it wants. The report-ingest
//! hot path in `oak-core` instead pulls [`Event`]s from a [`Scanner`]:
//! escape-free strings are borrowed straight from the input slice
//! ([`std::borrow::Cow::Borrowed`]), and only the fields the caller keeps
//! are ever materialized.
//!
//! The scanner accepts exactly the same grammar as [`crate::parse`]
//! (RFC 8259, [`MAX_DEPTH`] nesting, trailing garbage rejected) and the
//! tree parser's string/number lexing is implemented on top of the same
//! [`scan_string`]/[`scan_number`] routines, so the two front ends cannot
//! drift apart.

use std::borrow::Cow;

use crate::ParseError;

/// Nesting deeper than this is rejected to keep state bounded; real
/// performance reports nest exactly three levels.
pub const MAX_DEPTH: usize = 128;

/// One grammar event pulled from a [`Scanner`].
#[derive(Clone, Debug, PartialEq)]
pub enum Event<'a> {
    /// `{` — an object opened.
    ObjectStart,
    /// `}` — the innermost object closed.
    ObjectEnd,
    /// `[` — an array opened.
    ArrayStart,
    /// `]` — the innermost array closed.
    ArrayEnd,
    /// An object key. Borrowed from the input when escape-free.
    Key(Cow<'a, str>),
    /// A string value. Borrowed from the input when escape-free.
    Str(Cow<'a, str>),
    /// A number value (finite; the grammar has no NaN/Infinity).
    Number(f64),
    /// `true` or `false`.
    Bool(bool),
    /// `null`.
    Null,
}

/// What the grammar allows at the scanner's cursor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    /// A value must follow (document root, after `:`, after `,` in an array).
    Value,
    /// A value or `]` (immediately after `[`).
    ValueOrEnd,
    /// A key or `}` (immediately after `{`).
    KeyOrEnd,
    /// A key must follow (after `,` in an object).
    Key,
    /// `,` or the closing bracket of the innermost container.
    CommaOrEnd,
    /// The root value is complete; only trailing whitespace may remain.
    Done,
}

/// A pull parser over one JSON document.
pub struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// One byte per open container: `b'{'` or `b'['`.
    stack: Vec<u8>,
    state: State,
}

impl<'a> Scanner<'a> {
    /// Starts scanning `input` from the first byte.
    pub fn new(input: &'a str) -> Scanner<'a> {
        Scanner {
            bytes: input.as_bytes(),
            pos: 0,
            stack: Vec::new(),
            state: State::Value,
        }
    }

    /// Byte offset of the cursor (for error reporting by callers).
    pub fn offset(&self) -> usize {
        self.pos
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        err_at(self.pos, message)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(format!("expected '{kw}'")))
        }
    }

    /// The state after a complete value at the current nesting.
    fn after_value(&self) -> State {
        if self.stack.is_empty() {
            State::Done
        } else {
            State::CommaOrEnd
        }
    }

    /// Pulls the next event, or `None` once the document (plus trailing
    /// whitespace) is fully consumed.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] at the first byte that violates the
    /// grammar; the scanner must not be used after an error.
    pub fn next_event(&mut self) -> Result<Option<Event<'a>>, ParseError> {
        loop {
            self.skip_ws();
            match self.state {
                State::Done => {
                    if self.pos != self.bytes.len() {
                        return Err(self.err("trailing characters after document"));
                    }
                    return Ok(None);
                }
                State::Value | State::ValueOrEnd => {
                    if self.state == State::ValueOrEnd && self.peek() == Some(b']') {
                        self.pos += 1;
                        self.stack.pop();
                        self.state = self.after_value();
                        return Ok(Some(Event::ArrayEnd));
                    }
                    return self.value_event().map(Some);
                }
                State::KeyOrEnd | State::Key => {
                    if self.state == State::KeyOrEnd && self.peek() == Some(b'}') {
                        self.pos += 1;
                        self.stack.pop();
                        self.state = self.after_value();
                        return Ok(Some(Event::ObjectEnd));
                    }
                    if self.peek() != Some(b'"') {
                        return Err(self.err("expected object key"));
                    }
                    let key = scan_string(self.bytes, &mut self.pos)?;
                    self.skip_ws();
                    if self.peek() != Some(b':') {
                        return Err(self.err("expected ':'"));
                    }
                    self.pos += 1;
                    self.state = State::Value;
                    return Ok(Some(Event::Key(key)));
                }
                State::CommaOrEnd => {
                    let container = *self.stack.last().expect("non-empty in CommaOrEnd");
                    match (self.peek(), container) {
                        (Some(b','), b'{') => {
                            self.pos += 1;
                            self.state = State::Key;
                        }
                        (Some(b','), _) => {
                            self.pos += 1;
                            self.state = State::Value;
                        }
                        (Some(b'}'), b'{') => {
                            self.pos += 1;
                            self.stack.pop();
                            self.state = self.after_value();
                            return Ok(Some(Event::ObjectEnd));
                        }
                        (Some(b']'), b'[') => {
                            self.pos += 1;
                            self.stack.pop();
                            self.state = self.after_value();
                            return Ok(Some(Event::ArrayEnd));
                        }
                        _ => {
                            let end = if container == b'{' { '}' } else { ']' };
                            return Err(self.err(format!("expected ',' or '{end}'")));
                        }
                    }
                }
            }
        }
    }

    /// One value-start event (the cursor sits on the value's first byte).
    fn value_event(&mut self) -> Result<Event<'a>, ParseError> {
        match self.peek() {
            Some(b'{') => {
                if self.stack.len() >= MAX_DEPTH {
                    return Err(self.err("document nested too deeply"));
                }
                self.pos += 1;
                self.stack.push(b'{');
                self.state = State::KeyOrEnd;
                Ok(Event::ObjectStart)
            }
            Some(b'[') => {
                if self.stack.len() >= MAX_DEPTH {
                    return Err(self.err("document nested too deeply"));
                }
                self.pos += 1;
                self.stack.push(b'[');
                self.state = State::ValueOrEnd;
                Ok(Event::ArrayStart)
            }
            Some(b'"') => {
                let s = scan_string(self.bytes, &mut self.pos)?;
                self.state = self.after_value();
                Ok(Event::Str(s))
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                self.state = self.after_value();
                Ok(Event::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                self.state = self.after_value();
                Ok(Event::Bool(false))
            }
            Some(b'n') => {
                self.expect_keyword("null")?;
                self.state = self.after_value();
                Ok(Event::Null)
            }
            Some(b'-' | b'0'..=b'9') => {
                let n = scan_number(self.bytes, &mut self.pos)?;
                self.state = self.after_value();
                Ok(Event::Number(n))
            }
            Some(other) => Err(self.err(format!("unexpected byte 0x{other:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    /// Consumes one complete value (scalar or whole container) without
    /// handing its events to the caller — how a reader skips fields it
    /// does not recognize.
    ///
    /// # Errors
    ///
    /// Propagates any grammar error inside the skipped value.
    pub fn skip_value(&mut self) -> Result<(), ParseError> {
        let mut depth = 0usize;
        loop {
            match self.next_event()? {
                Some(Event::ObjectStart | Event::ArrayStart) => depth += 1,
                Some(Event::ObjectEnd | Event::ArrayEnd) => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(());
                    }
                }
                Some(Event::Key(_)) => {}
                Some(_) => {
                    if depth == 0 {
                        return Ok(());
                    }
                }
                None => return Err(self.err("unexpected end of input")),
            }
        }
    }
}

fn err_at(offset: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        offset,
        message: message.into(),
    }
}

/// Lexes one JSON string starting at `pos` (which must point at the
/// opening quote), advancing `pos` past the closing quote.
///
/// Escape-free strings are returned as a borrowed slice of the input —
/// no allocation, no copy. Strings with escapes are decoded into an
/// owned buffer. `bytes` must be valid UTF-8 (both front ends start from
/// `&str`); the borrowed slice stays on char boundaries because lexing
/// only stops on ASCII bytes.
///
/// # Errors
///
/// Returns a [`ParseError`] on raw control characters, bad escapes,
/// broken surrogate pairs, or an unterminated string.
pub(crate) fn scan_string<'a>(
    bytes: &'a [u8],
    pos: &mut usize,
) -> Result<Cow<'a, str>, ParseError> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let start = *pos;
    // Fast path: find the closing quote without touching an escape.
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                let slice = &bytes[start..*pos];
                *pos += 1;
                return Ok(Cow::Borrowed(
                    std::str::from_utf8(slice).expect("input is str"),
                ));
            }
            b'\\' => break,
            _ if b < 0x20 => return Err(err_at(*pos, "raw control character in string")),
            _ => *pos += 1,
        }
    }
    if bytes.get(*pos).is_none() {
        return Err(err_at(*pos, "unterminated string"));
    }
    // Slow path: an escape appeared; decode into an owned buffer,
    // seeding it with the escape-free prefix.
    let mut out = String::with_capacity(*pos - start + 16);
    out.push_str(std::str::from_utf8(&bytes[start..*pos]).expect("input is str"));
    loop {
        match bytes.get(*pos).copied() {
            Some(b'"') => {
                *pos += 1;
                return Ok(Cow::Owned(out));
            }
            Some(b'\\') => {
                *pos += 1;
                unescape(bytes, pos, &mut out)?;
            }
            Some(b) if b < 0x20 => return Err(err_at(*pos, "raw control character in string")),
            Some(_) => {
                let run = *pos;
                while let Some(&b) = bytes.get(*pos) {
                    if b == b'"' || b == b'\\' || b < 0x20 {
                        break;
                    }
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[run..*pos]).expect("input is str"));
            }
            None => return Err(err_at(*pos, "unterminated string")),
        }
    }
}

/// Decodes one escape sequence (the backslash is already consumed).
fn unescape(bytes: &[u8], pos: &mut usize, out: &mut String) -> Result<(), ParseError> {
    let b = bytes.get(*pos).copied();
    *pos += 1;
    match b {
        Some(b'"') => out.push('"'),
        Some(b'\\') => out.push('\\'),
        Some(b'/') => out.push('/'),
        Some(b'b') => out.push('\u{0008}'),
        Some(b'f') => out.push('\u{000C}'),
        Some(b'n') => out.push('\n'),
        Some(b'r') => out.push('\r'),
        Some(b't') => out.push('\t'),
        Some(b'u') => {
            let first = hex4(bytes, pos)?;
            let scalar = if (0xD800..0xDC00).contains(&first) {
                // High surrogate: a low surrogate escape must follow.
                if bytes.get(*pos) != Some(&b'\\') || bytes.get(*pos + 1) != Some(&b'u') {
                    return Err(err_at(*pos, "high surrogate not followed by \\u escape"));
                }
                *pos += 2;
                let second = hex4(bytes, pos)?;
                if !(0xDC00..0xE000).contains(&second) {
                    return Err(err_at(*pos, "invalid low surrogate"));
                }
                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
            } else if (0xDC00..0xE000).contains(&first) {
                return Err(err_at(*pos, "unpaired low surrogate"));
            } else {
                first
            };
            match char::from_u32(scalar) {
                Some(c) => out.push(c),
                None => return Err(err_at(*pos, "escape is not a Unicode scalar")),
            }
        }
        _ => return Err(err_at(*pos, "invalid escape sequence")),
    }
    Ok(())
}

fn hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, ParseError> {
    let mut v = 0u32;
    for _ in 0..4 {
        let d = match bytes.get(*pos).copied() {
            Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
            Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
            Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
            _ => return Err(err_at(*pos, "expected four hex digits")),
        };
        *pos += 1;
        v = v * 16 + d;
    }
    Ok(v)
}

/// Lexes one JSON number starting at `pos`, advancing past it.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed digits or a value that does not
/// fit a finite `f64`.
pub(crate) fn scan_number(bytes: &[u8], pos: &mut usize) -> Result<f64, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    // Integer part: a lone zero or a nonzero digit followed by digits.
    match bytes.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(b'1'..=b'9') => {
            while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
                *pos += 1;
            }
        }
        _ => return Err(err_at(*pos, "expected digit")),
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            return Err(err_at(*pos, "expected digit after decimal point"));
        }
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            return Err(err_at(*pos, "expected digit in exponent"));
        }
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ASCII");
    match text.parse::<f64>() {
        Ok(n) if n.is_finite() => Ok(n),
        _ => Err(err_at(*pos, "number out of range")),
    }
}
